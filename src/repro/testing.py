"""Public verification helpers for downstream users.

A library whose whole point is nonobvious data movement should ship its
own oracle: :func:`ttm_reference` is the direct einsum transcription of
the paper's equation (1), and :func:`assert_ttm_consistent` checks any
TTM callable against it over a representative geometry grid (all modes,
both layouts, degenerate extents).  The internal test suite uses the
same functions, so user-side verification and CI verification cannot
drift apart.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor.dense import DenseTensor
from repro.tensor.layout import COL_MAJOR, ROW_MAJOR, Layout
from repro.util.rng import default_rng

#: Geometry grid: (shape, J, mode) covering orders 1-5, non-square
#: extents, size-1 modes, J = 1, and J > I_n.
DEFAULT_CASES: tuple[tuple[tuple[int, ...], int, int], ...] = (
    ((7,), 3, 0),
    ((5, 6), 4, 0),
    ((5, 6), 4, 1),
    ((3, 4, 5), 2, 0),
    ((3, 4, 5), 6, 1),
    ((3, 4, 5), 2, 2),
    ((1, 4, 5), 2, 1),
    ((3, 1, 5), 2, 0),
    ((3, 4, 1), 2, 2),
    ((4, 4, 4, 4), 3, 0),
    ((2, 3, 4, 5), 2, 1),
    ((2, 3, 4, 5), 7, 2),
    ((2, 3, 4, 5), 2, 3),
    ((2, 2, 2, 2, 3), 2, 0),
    ((2, 2, 3, 2, 2), 4, 2),
    ((2, 2, 2, 2, 3), 2, 4),
    ((6, 5), 1, 0),
    ((3, 4, 5), 9, 1),
)

#: Degenerate geometries: zero-extent modes (empty iteration spaces,
#: empty kernels, and k=0 contractions whose outputs must still be
#: exactly zero).  Checked by default alongside :data:`DEFAULT_CASES`;
#: kept separate so fixture grids pinned to DEFAULT_CASES stay stable.
DEGENERATE_CASES: tuple[tuple[tuple[int, ...], int, int], ...] = (
    ((0, 4, 5), 3, 1),
    ((0, 4, 5), 2, 0),
    ((3, 0, 5), 2, 0),
    ((3, 0, 5), 2, 1),  # contracts the empty mode: k = 0, output nonempty
    ((3, 4, 0), 2, 2),
    ((0, 0, 3), 2, 2),
    ((0,), 2, 0),
    ((4, 0), 3, 1),
)

#: Comparison tolerances per element type, scaled to the unit roundoff.
DTYPE_TOLERANCES: dict[str, tuple[float, float]] = {
    "float64": (1e-10, 1e-12),
    "float32": (1e-4, 1e-5),
    "float16": (2e-2, 2e-2),
}


def ttm_reference(x: np.ndarray, u: np.ndarray, mode: int) -> np.ndarray:
    """The mode-n product by definition (paper equation 1).

    ``Y[i1..j..iN] = sum_k X[i1..k..iN] * U[j, k]`` — computed with
    ``tensordot`` and an axis move; deliberately simple, never optimized.
    """
    moved = np.tensordot(np.asarray(u), np.asarray(x), axes=(1, mode))
    return np.moveaxis(moved, 0, mode)


def assert_ttm_consistent(
    ttm_callable: Callable[[DenseTensor, np.ndarray, int], object],
    cases: Sequence[tuple[tuple[int, ...], int, int]] | None = None,
    layouts: Sequence[Layout] = (ROW_MAJOR, COL_MAJOR),
    seed=0,
    rtol: float | None = None,
    atol: float | None = None,
    dtype: str = "float64",
) -> int:
    """Check *ttm_callable* against the reference on every case.

    The callable receives ``(DenseTensor, U, mode)`` and may return a
    DenseTensor or a plain ndarray.  Every case runs even after a
    failure; the AssertionError raised at the end enumerates *all*
    failing geometries, so one CI run diagnoses the full blast radius of
    a planner or executor regression.  Returns the number of cases
    checked.

    *dtype* selects the element type both operands are generated in
    (the reference is always accumulated in float64); when *rtol*/*atol*
    are omitted they default to the :data:`DTYPE_TOLERANCES` entry for
    that type.  *cases* defaults to :data:`DEFAULT_CASES` plus
    :data:`DEGENERATE_CASES` (zero-extent geometries included).
    """
    if cases is None:
        cases = DEFAULT_CASES + DEGENERATE_CASES
    np_dtype = np.dtype(dtype)
    default_rtol, default_atol = DTYPE_TOLERANCES[np_dtype.name]
    rtol = default_rtol if rtol is None else rtol
    atol = default_atol if atol is None else atol
    rng = default_rng(seed)
    checked = 0
    failures: list[str] = []
    for layout in layouts:
        for shape, j, mode in cases:
            x = DenseTensor(rng.standard_normal(shape), layout, dtype=np_dtype)
            u = rng.standard_normal((j, shape[mode])).astype(np_dtype)
            label = (
                f"shape={shape} J={j} mode={mode} layout={layout.name} "
                f"dtype={np_dtype.name}"
            )
            try:
                got = ttm_callable(x, u, mode)
            except Exception as exc:  # noqa: BLE001 - reported, not hidden
                failures.append(f"{label}: raised {type(exc).__name__}: {exc}")
                checked += 1
                continue
            got_arr = np.asarray(
                got.data if isinstance(got, DenseTensor) else got
            )
            expect = ttm_reference(
                x.data.astype(np.float64), u.astype(np.float64), mode
            )
            if got_arr.shape != expect.shape:
                failures.append(
                    f"{label}: shape mismatch "
                    f"{got_arr.shape} != {expect.shape}"
                )
            elif not np.allclose(
                got_arr.astype(np.float64), expect, rtol=rtol, atol=atol
            ):
                worst = float(np.max(np.abs(got_arr - expect)))
                failures.append(f"{label}: value mismatch, max abs error {worst:g}")
            checked += 1
    if failures:
        detail = "\n  ".join(failures)
        raise AssertionError(
            f"{len(failures)} of {checked} TTM cases disagree with the "
            f"equation-(1) reference:\n  {detail}"
        )
    return checked
