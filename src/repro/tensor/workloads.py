"""Application-domain synthetic workloads (the paper's §1 motivations).

The introduction motivates TTM with applications in neuroscience (EEG
analysis), signal/image processing (TensorFaces-style image ensembles),
and data analytics.  Real datasets from those domains are not shippable
here, so these generators produce tensors with the *structure* each
application's decompositions exploit — oscillatory multilinear structure
for EEG, low multilinear rank plus per-factor variation for image
ensembles — so the examples and benchmarks exercise the same shapes and
rank regimes the applications do.
"""

from __future__ import annotations

import math

import numpy as np

from repro.tensor.dense import DenseTensor
from repro.tensor.layout import Layout
from repro.util.rng import default_rng
from repro.util.validation import check_positive_int


def eeg_tensor(
    n_channels: int = 32,
    n_frequencies: int = 24,
    n_times: int = 128,
    n_sources: int = 3,
    noise: float = 0.1,
    layout: Layout | str = Layout.ROW_MAJOR,
    seed=None,
) -> DenseTensor:
    """A channels x frequencies x time tensor with oscillatory sources.

    Mimics wavelet-transformed event-related EEG (the paper's [28]):
    each latent source has a spatial topography over channels, a spectral
    signature concentrated around a centre frequency, and a temporal
    envelope — the trilinear structure PARAFAC/Tucker analyses extract.
    """
    for name, value in (
        ("n_channels", n_channels),
        ("n_frequencies", n_frequencies),
        ("n_times", n_times),
        ("n_sources", n_sources),
    ):
        check_positive_int(value, name)
    rng = default_rng(seed)
    data = np.zeros((n_channels, n_frequencies, n_times))
    freqs = np.linspace(1.0, 40.0, n_frequencies)
    times = np.linspace(0.0, 1.0, n_times)
    for _src in range(n_sources):
        topography = rng.standard_normal(n_channels)
        topography /= np.linalg.norm(topography)
        centre = rng.uniform(4.0, 30.0)
        bandwidth = rng.uniform(1.5, 5.0)
        spectrum = np.exp(-0.5 * ((freqs - centre) / bandwidth) ** 2)
        onset = rng.uniform(0.1, 0.6)
        envelope = np.exp(-0.5 * ((times - onset) / 0.12) ** 2)
        carrier = np.cos(2.0 * math.pi * centre * times + rng.uniform(0, 6.28))
        temporal = envelope * (0.6 + 0.4 * carrier)
        data += np.einsum("c,f,t->cft", topography, spectrum, temporal)
    if noise > 0.0:
        scale = noise * float(np.linalg.norm(data)) / math.sqrt(data.size)
        data += scale * rng.standard_normal(data.shape)
    return DenseTensor(data, layout)


def image_ensemble_tensor(
    n_people: int = 12,
    n_poses: int = 5,
    n_illuminations: int = 4,
    n_pixels: int = 256,
    rank: int = 6,
    noise: float = 0.05,
    layout: Layout | str = Layout.ROW_MAJOR,
    seed=None,
) -> DenseTensor:
    """A people x poses x illuminations x pixels ensemble (TensorFaces [44]).

    Each image is a multilinear mixture: person coefficients select an
    identity subspace, pose and illumination coefficients modulate it,
    and a shared pixel basis renders it — the exact generative model the
    TensorFaces HOSVD inverts.
    """
    for name, value in (
        ("n_people", n_people),
        ("n_poses", n_poses),
        ("n_illuminations", n_illuminations),
        ("n_pixels", n_pixels),
        ("rank", rank),
    ):
        check_positive_int(value, name)
    rng = default_rng(seed)
    r_person = min(rank, n_people)
    r_pose = min(rank, n_poses)
    r_illum = min(rank, n_illuminations)
    r_pixel = min(rank * 2, n_pixels)
    core = rng.standard_normal((r_person, r_pose, r_illum, r_pixel))
    person = rng.standard_normal((n_people, r_person))
    pose = rng.standard_normal((n_poses, r_pose))
    illum = np.abs(rng.standard_normal((n_illuminations, r_illum))) + 0.2
    # A smooth pixel basis: random low-frequency cosine mixtures.
    grid = np.linspace(0.0, math.pi, n_pixels)
    pixel = np.stack(
        [
            np.cos(grid * rng.integers(1, 8) + rng.uniform(0, 6.28))
            for _ in range(r_pixel)
        ],
        axis=1,
    )
    data = np.einsum(
        "abcd,ia,jb,kc,ld->ijkl", core, person, pose, illum, pixel,
        optimize=True,
    )
    if noise > 0.0:
        scale = noise * float(np.linalg.norm(data)) / math.sqrt(data.size)
        data += scale * rng.standard_normal(data.shape)
    return DenseTensor(data, layout)
