"""The :class:`DenseTensor` object.

A ``DenseTensor`` is a thin, layout-explicit wrapper around a contiguous
NumPy array.  It exists because the paper's algorithms are statements about
*storage*: whether a TTM can run in place depends on which modes are
contiguous in memory, and NumPy's implicit view semantics make it too easy
to lose track of that.  The wrapper guarantees:

* ``tensor.data`` is contiguous in ``tensor.layout`` order (C or F);
* element strides are available as ``tensor.strides`` and always agree
  with the declared layout;
* any physical reorganization (``permute``) is explicit and observable,
  which lets tests and the phase profiler attribute copy costs precisely.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.tensor.layout import Layout, element_strides, leading_mode
from repro.util.dtypes import DEFAULT_DTYPE, canonical_dtype, is_supported_dtype
from repro.util.errors import LayoutError, ShapeError
from repro.util.rng import default_rng
from repro.util.validation import normalized_order


class DenseTensor:
    """A dense N-way tensor with an explicit storage layout.

    Parameters
    ----------
    data:
        Array data.  It is used as-is when already contiguous in the
        requested layout (``copy=False``); otherwise it is copied into the
        requested layout.
    layout:
        ``Layout.ROW_MAJOR`` (default, the paper's convention) or
        ``Layout.COL_MAJOR`` (Tensor Toolbox convention).
    copy:
        Force a copy even when *data* already satisfies the layout.
    dtype:
        Explicit element type (one of the supported float dtypes).  When
        None, supported float dtypes of *data* are **preserved copy-free**
        — wrapping a float32 array never silently upcasts it to float64 —
        and anything else (ints, bools, Python lists) is materialized as
        float64, the library default.
    """

    __slots__ = ("_data", "_layout", "_strides")

    def __init__(
        self,
        data: np.ndarray,
        layout: Layout | str = Layout.ROW_MAJOR,
        *,
        copy: bool = False,
        dtype=None,
    ) -> None:
        layout = Layout.parse(layout)
        arr = np.asarray(data)
        if dtype is not None:
            target = canonical_dtype(dtype)
        elif is_supported_dtype(arr.dtype):
            target = arr.dtype
        else:
            target = DEFAULT_DTYPE
        order = layout.numpy_order
        want_flag = "C_CONTIGUOUS" if layout is Layout.ROW_MAJOR else "F_CONTIGUOUS"
        if copy or arr.dtype != target or not arr.flags[want_flag]:
            arr = np.array(arr, dtype=target, order=order, copy=True)
        self._data = arr
        self._layout = layout
        self._strides = element_strides(arr.shape, layout)

    # -- constructors ------------------------------------------------------

    @classmethod
    def _wrap(cls, data: np.ndarray, layout: Layout) -> "DenseTensor":
        """Wrap *data* without re-validating (internal hot paths only).

        The caller guarantees *data* is already contiguous in *layout*
        order with a supported dtype — e.g. a slice it just allocated.
        Skips the ``__init__`` checks, which dominate the cost of
        constructing many small tensors (the serving coalescer's case).
        """
        self = object.__new__(cls)
        self._data = data
        self._layout = layout
        self._strides = element_strides(data.shape, layout)
        return self

    @classmethod
    def zeros(
        cls,
        shape: Sequence[int],
        layout: Layout | str = Layout.ROW_MAJOR,
        dtype=None,
    ) -> "DenseTensor":
        """A zero-filled tensor of the given shape, layout and dtype."""
        layout = Layout.parse(layout)
        dt = DEFAULT_DTYPE if dtype is None else canonical_dtype(dtype)
        return cls(
            np.zeros(tuple(shape), dtype=dt, order=layout.numpy_order), layout
        )

    @classmethod
    def empty(
        cls,
        shape: Sequence[int],
        layout: Layout | str = Layout.ROW_MAJOR,
        dtype=None,
    ) -> "DenseTensor":
        """An uninitialized tensor (used for preallocating TTM outputs)."""
        layout = Layout.parse(layout)
        dt = DEFAULT_DTYPE if dtype is None else canonical_dtype(dtype)
        return cls(
            np.empty(tuple(shape), dtype=dt, order=layout.numpy_order), layout
        )

    @classmethod
    def random(
        cls,
        shape: Sequence[int],
        layout: Layout | str = Layout.ROW_MAJOR,
        seed=None,
        dtype=None,
    ) -> "DenseTensor":
        """A tensor with iid uniform [0, 1) entries (deterministic per seed)."""
        layout = Layout.parse(layout)
        dt = DEFAULT_DTYPE if dtype is None else canonical_dtype(dtype)
        rng = default_rng(seed)
        values = rng.random(tuple(shape))
        return cls(
            np.asarray(values, dtype=dt, order=layout.numpy_order), layout
        )

    @classmethod
    def from_array(
        cls,
        data: np.ndarray,
        layout: Layout | str = Layout.ROW_MAJOR,
        dtype=None,
    ) -> "DenseTensor":
        """Wrap (or copy into layout) an existing ndarray."""
        return cls(data, layout, dtype=dtype)

    # -- basic properties --------------------------------------------------

    @property
    def data(self) -> np.ndarray:
        """The underlying contiguous ndarray (a view, never a copy)."""
        return self._data

    @property
    def layout(self) -> Layout:
        """The declared storage layout."""
        return self._layout

    @property
    def shape(self) -> tuple[int, ...]:
        """Extent of each mode."""
        return self._data.shape

    @property
    def order(self) -> int:
        """Number of modes (the paper's tensor *order* N)."""
        return self._data.ndim

    @property
    def ndim(self) -> int:
        """Alias of :attr:`order` for NumPy familiarity."""
        return self._data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self._data.size

    @property
    def nbytes(self) -> int:
        """Total storage in bytes."""
        return self._data.nbytes

    @property
    def dtype(self) -> np.dtype:
        """Element dtype (one of the supported float dtypes; float64 default)."""
        return self._data.dtype

    @property
    def strides(self) -> tuple[int, ...]:
        """Element strides of each mode under the declared layout."""
        return self._strides

    @property
    def leading_mode(self) -> int:
        """The unit-stride mode (last for row-major, first for column-major)."""
        return leading_mode(self.order, self._layout)

    # -- element access ----------------------------------------------------

    def __getitem__(self, key):
        """Index into the underlying array; returns ndarray views/scalars."""
        return self._data[key]

    def __setitem__(self, key, value) -> None:
        self._data[key] = value

    def __array__(self, dtype=None, copy=None):
        if dtype is not None and dtype != self._data.dtype:
            return self._data.astype(dtype)
        if copy:
            return self._data.copy()
        return self._data

    def to_numpy(self) -> np.ndarray:
        """Return the underlying ndarray (no copy)."""
        return self._data

    # -- structural operations --------------------------------------------

    def copy(self) -> "DenseTensor":
        """A deep copy preserving layout."""
        return DenseTensor(self._data, self._layout, copy=True)

    def with_layout(self, layout: Layout | str) -> "DenseTensor":
        """Rematerialize this tensor in another storage layout (copies)."""
        layout = Layout.parse(layout)
        if layout is self._layout:
            return self.copy()
        return DenseTensor(self._data, layout, copy=True)

    def permute(self, perm: Sequence[int]) -> "DenseTensor":
        """Physically permute modes (an explicit copy; Algorithm 1's step).

        This is the operation the in-place algorithm avoids; baselines call
        it and the phase profiler charges its cost to the *transform* phase.
        """
        perm_t = normalized_order(perm, self.order)
        moved = np.transpose(self._data, perm_t)
        return DenseTensor(moved, self._layout, copy=True)

    def reshape_copyfree(self, shape: Sequence[int]) -> np.ndarray:
        """Reshape to *shape* without copying, or raise :class:`LayoutError`.

        Only reshapes that merge/split modes consistently with the storage
        layout are possible copy-free; NumPy would silently copy otherwise,
        so we demand a view and fail loudly if one cannot be formed.
        """
        new_shape = tuple(int(s) for s in shape)
        if math.prod(new_shape) != self.size:
            raise ShapeError(
                f"cannot reshape size-{self.size} tensor to {new_shape}"
            )
        try:
            view = self._data.reshape(new_shape, order=self._layout.numpy_order)
        except ValueError as exc:  # pragma: no cover - numpy message passthrough
            raise LayoutError(str(exc)) from exc
        if view.base is not self._data and view.base is not self._data.base:
            raise LayoutError(
                f"reshape to {new_shape} requires a copy under layout "
                f"{self._layout.name}"
            )
        return view

    # -- comparisons and debugging ------------------------------------------

    def allclose(self, other, rtol: float = 1e-10, atol: float = 1e-12) -> bool:
        """Elementwise closeness against another tensor/array (layout-agnostic)."""
        other_arr = np.asarray(other)
        if other_arr.shape != self.shape:
            return False
        return bool(np.allclose(self._data, other_arr, rtol=rtol, atol=atol))

    def __repr__(self) -> str:
        dims = "x".join(str(s) for s in self.shape)
        return f"DenseTensor(shape={dims}, layout={self._layout.name})"
