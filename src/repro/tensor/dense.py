"""The :class:`DenseTensor` object.

A ``DenseTensor`` is a thin, layout-explicit wrapper around a contiguous
NumPy array.  It exists because the paper's algorithms are statements about
*storage*: whether a TTM can run in place depends on which modes are
contiguous in memory, and NumPy's implicit view semantics make it too easy
to lose track of that.  The wrapper guarantees:

* ``tensor.data`` is contiguous in ``tensor.layout`` order (C or F);
* element strides are available as ``tensor.strides`` and always agree
  with the declared layout;
* any physical reorganization (``permute``) is explicit and observable,
  which lets tests and the phase profiler attribute copy costs precisely.

Out-of-core backings
--------------------

A ``DenseTensor`` may also wrap storage that does *not* live in process
RAM: an ``np.memmap`` (:meth:`DenseTensor.from_memmap`,
:func:`open_memmap_tensor`) or any buffer-protocol object
(:meth:`DenseTensor.from_buffer`).  The :attr:`DenseTensor.is_inmem`
flag records which kind of backing the tensor has, and every operation
that would materialize the *whole* array in RAM — ``copy``, ``permute``,
``with_layout``, ``materialize``, and the physical ``unfold`` — checks
the memory budget (:func:`repro.resilience.memory.available_bytes`)
first and raises a typed :class:`~repro.util.errors.ResourceError` when
the copy would not fit.  Pure views (fibers, slices, merged-mode
matrices, tile sub-tensors) never materialize anything and therefore
work unchanged on out-of-core tensors: the OS pages in exactly the
bytes a kernel touches.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.tensor.layout import Layout, element_strides, leading_mode
from repro.util.dtypes import DEFAULT_DTYPE, canonical_dtype, is_supported_dtype
from repro.util.errors import LayoutError, ResourceError, ShapeError
from repro.util.rng import default_rng
from repro.util.validation import normalized_order


def _memmap_backed(arr: np.ndarray) -> bool:
    """True when *arr*'s storage is an ``np.memmap`` (walking view bases)."""
    node = arr
    while node is not None:
        if isinstance(node, np.memmap):
            return True
        node = getattr(node, "base", None)
    return False


def _guard_materialize(nbytes: int, what: str) -> None:
    """Refuse a whole-array materialization that exceeds the memory budget.

    Out-of-core tensors exist precisely because the full array does not
    comfortably fit in RAM, so any operation that would copy all of it
    must clear the same budget the execution-time guard uses
    (``$REPRO_MEM_LIMIT``, else ``/proc/meminfo``); when the budget is
    unknowable the copy is permitted.  Raising *before* the allocation
    keeps the failure typed and the source untouched.
    """
    from repro.resilience.memory import available_bytes

    avail = available_bytes()
    if avail is not None and nbytes > avail:
        raise ResourceError(
            f"{what} would materialize {nbytes} bytes of an out-of-core "
            f"tensor in RAM but only {avail} appear available; use tiled "
            "execution (repro.core.tiling) or raise $REPRO_MEM_LIMIT"
        )


class DenseTensor:
    """A dense N-way tensor with an explicit storage layout.

    Parameters
    ----------
    data:
        Array data.  It is used as-is when already contiguous in the
        requested layout (``copy=False``); otherwise it is copied into the
        requested layout.
    layout:
        ``Layout.ROW_MAJOR`` (default, the paper's convention) or
        ``Layout.COL_MAJOR`` (Tensor Toolbox convention).
    copy:
        Force a copy even when *data* already satisfies the layout.
    dtype:
        Explicit element type (one of the supported float dtypes).  When
        None, supported float dtypes of *data* are **preserved copy-free**
        — wrapping a float32 array never silently upcasts it to float64 —
        and anything else (ints, bools, Python lists) is materialized as
        float64, the library default.
    """

    __slots__ = ("_data", "_layout", "_strides", "_inmem")

    def __init__(
        self,
        data: np.ndarray,
        layout: Layout | str = Layout.ROW_MAJOR,
        *,
        copy: bool = False,
        dtype=None,
    ) -> None:
        layout = Layout.parse(layout)
        arr = np.asarray(data)
        if dtype is not None:
            target = canonical_dtype(dtype)
        elif is_supported_dtype(arr.dtype):
            target = arr.dtype
        else:
            target = DEFAULT_DTYPE
        order = layout.numpy_order
        want_flag = "C_CONTIGUOUS" if layout is Layout.ROW_MAJOR else "F_CONTIGUOUS"
        if copy or arr.dtype != target or not arr.flags[want_flag]:
            if _memmap_backed(arr):
                nbytes = arr.size * np.dtype(target).itemsize
                _guard_materialize(nbytes, "DenseTensor(copy=True)")
            arr = np.array(arr, dtype=target, order=order, copy=True)
        self._data = arr
        self._layout = layout
        self._strides = element_strides(arr.shape, layout)
        self._inmem = not _memmap_backed(arr)

    # -- constructors ------------------------------------------------------

    @classmethod
    def _wrap(cls, data: np.ndarray, layout: Layout) -> "DenseTensor":
        """Wrap *data* without re-validating (internal hot paths only).

        The caller guarantees *data* is already contiguous in *layout*
        order with a supported dtype — e.g. a slice it just allocated.
        Skips the ``__init__`` checks, which dominate the cost of
        constructing many small tensors (the serving coalescer's case).
        """
        self = object.__new__(cls)
        self._data = data
        self._layout = layout
        self._strides = element_strides(data.shape, layout)
        self._inmem = not _memmap_backed(data)
        return self

    @classmethod
    def zeros(
        cls,
        shape: Sequence[int],
        layout: Layout | str = Layout.ROW_MAJOR,
        dtype=None,
    ) -> "DenseTensor":
        """A zero-filled tensor of the given shape, layout and dtype."""
        layout = Layout.parse(layout)
        dt = DEFAULT_DTYPE if dtype is None else canonical_dtype(dtype)
        return cls(
            np.zeros(tuple(shape), dtype=dt, order=layout.numpy_order), layout
        )

    @classmethod
    def empty(
        cls,
        shape: Sequence[int],
        layout: Layout | str = Layout.ROW_MAJOR,
        dtype=None,
    ) -> "DenseTensor":
        """An uninitialized tensor (used for preallocating TTM outputs)."""
        layout = Layout.parse(layout)
        dt = DEFAULT_DTYPE if dtype is None else canonical_dtype(dtype)
        return cls(
            np.empty(tuple(shape), dtype=dt, order=layout.numpy_order), layout
        )

    @classmethod
    def random(
        cls,
        shape: Sequence[int],
        layout: Layout | str = Layout.ROW_MAJOR,
        seed=None,
        dtype=None,
    ) -> "DenseTensor":
        """A tensor with iid uniform [0, 1) entries (deterministic per seed)."""
        layout = Layout.parse(layout)
        dt = DEFAULT_DTYPE if dtype is None else canonical_dtype(dtype)
        rng = default_rng(seed)
        values = rng.random(tuple(shape))
        return cls(
            np.asarray(values, dtype=dt, order=layout.numpy_order), layout
        )

    @classmethod
    def from_array(
        cls,
        data: np.ndarray,
        layout: Layout | str = Layout.ROW_MAJOR,
        dtype=None,
    ) -> "DenseTensor":
        """Wrap (or copy into layout) an existing ndarray."""
        return cls(data, layout, dtype=dtype)

    @classmethod
    def from_memmap(
        cls,
        source: np.memmap,
        layout: Layout | str | None = None,
    ) -> "DenseTensor":
        """Wrap an existing ``np.memmap`` without copying it into RAM.

        The declared layout must agree with the mapping's physical order
        — a mismatch raises :class:`LayoutError` rather than triggering
        the silent full-array copy ``__init__`` would perform.  When
        *layout* is None it is inferred from the mapping's contiguity
        flags (C wins for arrays contiguous both ways, e.g. vectors).
        """
        arr = source
        if not isinstance(arr, np.memmap) and not _memmap_backed(np.asarray(arr)):
            raise TypeError(
                f"from_memmap expects an np.memmap, got {type(source).__name__}; "
                "use from_array for in-memory data"
            )
        if not is_supported_dtype(arr.dtype):
            raise LayoutError(
                f"memmap dtype {arr.dtype} is not a supported float dtype; "
                "out-of-core tensors are never silently converted"
            )
        if layout is None:
            if arr.flags["C_CONTIGUOUS"]:
                layout = Layout.ROW_MAJOR
            elif arr.flags["F_CONTIGUOUS"]:
                layout = Layout.COL_MAJOR
            else:  # pragma: no cover - open_memmap only yields contiguous maps
                raise LayoutError("memmap is not contiguous in either order")
        else:
            layout = Layout.parse(layout)
            want = "C_CONTIGUOUS" if layout is Layout.ROW_MAJOR else "F_CONTIGUOUS"
            if not arr.flags[want]:
                raise LayoutError(
                    f"memmap is not {layout.name} contiguous; reopen it with "
                    "the matching layout instead of copying out of core"
                )
        return cls._wrap(np.asarray(arr), Layout.parse(layout))

    @classmethod
    def from_buffer(
        cls,
        buffer,
        shape: Sequence[int],
        layout: Layout | str = Layout.ROW_MAJOR,
        dtype=None,
    ) -> "DenseTensor":
        """Wrap a buffer-protocol object (bytes, mmap, array) copy-free.

        The buffer must hold exactly ``prod(shape)`` elements of *dtype*
        laid out in *layout* order.  Read-only buffers (e.g. ``bytes``)
        yield read-only tensors; writes raise NumPy's usual error.
        """
        layout = Layout.parse(layout)
        dt = DEFAULT_DTYPE if dtype is None else canonical_dtype(dtype)
        shape_t = tuple(int(s) for s in shape)
        flat = np.frombuffer(buffer, dtype=dt)
        want = math.prod(shape_t)
        if flat.size != want:
            raise ShapeError(
                f"buffer holds {flat.size} {dt} elements, shape {shape_t} "
                f"needs {want}"
            )
        arr = flat.reshape(shape_t, order=layout.numpy_order)
        return cls._wrap(arr, layout)

    # -- basic properties --------------------------------------------------

    @property
    def data(self) -> np.ndarray:
        """The underlying contiguous ndarray (a view, never a copy)."""
        return self._data

    @property
    def layout(self) -> Layout:
        """The declared storage layout."""
        return self._layout

    @property
    def shape(self) -> tuple[int, ...]:
        """Extent of each mode."""
        return self._data.shape

    @property
    def order(self) -> int:
        """Number of modes (the paper's tensor *order* N)."""
        return self._data.ndim

    @property
    def ndim(self) -> int:
        """Alias of :attr:`order` for NumPy familiarity."""
        return self._data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self._data.size

    @property
    def nbytes(self) -> int:
        """Total storage in bytes."""
        return self._data.nbytes

    @property
    def dtype(self) -> np.dtype:
        """Element dtype (one of the supported float dtypes; float64 default)."""
        return self._data.dtype

    @property
    def strides(self) -> tuple[int, ...]:
        """Element strides of each mode under the declared layout."""
        return self._strides

    @property
    def is_inmem(self) -> bool:
        """False when the backing storage is a disk-backed ``np.memmap``.

        Views of an out-of-core tensor (fibers, tiles, unfoldings built
        copy-free) inherit ``is_inmem=False`` because they share the
        mapped storage; only an explicit :meth:`materialize` (or a
        guarded structural copy) produces an in-memory tensor.
        """
        return self._inmem

    @property
    def leading_mode(self) -> int:
        """The unit-stride mode (last for row-major, first for column-major)."""
        return leading_mode(self.order, self._layout)

    # -- element access ----------------------------------------------------

    def __getitem__(self, key):
        """Index into the underlying array; returns ndarray views/scalars."""
        return self._data[key]

    def __setitem__(self, key, value) -> None:
        self._data[key] = value

    def __array__(self, dtype=None, copy=None):
        if dtype is not None and dtype != self._data.dtype:
            return self._data.astype(dtype)
        if copy:
            return self._data.copy()
        return self._data

    def to_numpy(self) -> np.ndarray:
        """Return the underlying ndarray (no copy)."""
        return self._data

    # -- structural operations --------------------------------------------

    def copy(self) -> "DenseTensor":
        """A deep copy preserving layout (budget-guarded when out-of-core)."""
        if not self._inmem:
            _guard_materialize(self.nbytes, "copy()")
        return DenseTensor(self._data, self._layout, copy=True)

    def materialize(self) -> "DenseTensor":
        """An explicit in-RAM copy of an out-of-core tensor.

        This is the *only* sanctioned way to turn a memmap-backed tensor
        into an in-memory one; it still refuses (``ResourceError``) when
        the full array exceeds the memory budget.  In-memory tensors are
        returned as-is.
        """
        if self._inmem:
            return self
        _guard_materialize(self.nbytes, "materialize()")
        return DenseTensor(self._data, self._layout, copy=True)

    def with_layout(self, layout: Layout | str) -> "DenseTensor":
        """Rematerialize this tensor in another storage layout (copies)."""
        layout = Layout.parse(layout)
        if not self._inmem:
            _guard_materialize(self.nbytes, "with_layout()")
        if layout is self._layout:
            return self.copy()
        return DenseTensor(self._data, layout, copy=True)

    def permute(self, perm: Sequence[int]) -> "DenseTensor":
        """Physically permute modes (an explicit copy; Algorithm 1's step).

        This is the operation the in-place algorithm avoids; baselines call
        it and the phase profiler charges its cost to the *transform* phase.
        """
        perm_t = normalized_order(perm, self.order)
        if not self._inmem:
            _guard_materialize(self.nbytes, "permute()")
        moved = np.transpose(self._data, perm_t)
        return DenseTensor(moved, self._layout, copy=True)

    def reshape_copyfree(self, shape: Sequence[int]) -> np.ndarray:
        """Reshape to *shape* without copying, or raise :class:`LayoutError`.

        Only reshapes that merge/split modes consistently with the storage
        layout are possible copy-free; NumPy would silently copy otherwise,
        so we demand a view and fail loudly if one cannot be formed.
        """
        new_shape = tuple(int(s) for s in shape)
        if math.prod(new_shape) != self.size:
            raise ShapeError(
                f"cannot reshape size-{self.size} tensor to {new_shape}"
            )
        try:
            view = self._data.reshape(new_shape, order=self._layout.numpy_order)
        except ValueError as exc:  # pragma: no cover - numpy message passthrough
            raise LayoutError(str(exc)) from exc
        if view.base is not self._data and view.base is not self._data.base:
            raise LayoutError(
                f"reshape to {new_shape} requires a copy under layout "
                f"{self._layout.name}"
            )
        return view

    # -- comparisons and debugging ------------------------------------------

    def allclose(self, other, rtol: float = 1e-10, atol: float = 1e-12) -> bool:
        """Elementwise closeness against another tensor/array (layout-agnostic)."""
        other_arr = np.asarray(other)
        if other_arr.shape != self.shape:
            return False
        return bool(np.allclose(self._data, other_arr, rtol=rtol, atol=atol))

    def flush(self) -> None:
        """Flush a memmap-backed tensor's dirty pages to disk (no-op in RAM)."""
        node = self._data
        while node is not None:
            if isinstance(node, np.memmap):
                node.flush()
                return
            node = getattr(node, "base", None)

    def __repr__(self) -> str:
        dims = "x".join(str(s) for s in self.shape)
        mem = "" if self._inmem else ", out-of-core"
        return f"DenseTensor(shape={dims}, layout={self._layout.name}{mem})"


def open_memmap_tensor(
    path,
    mode: str = "r+",
    shape: Sequence[int] | None = None,
    dtype=None,
    layout: Layout | str | None = None,
) -> DenseTensor:
    """Open (or create) a ``.npy``-backed out-of-core :class:`DenseTensor`.

    Built on ``np.lib.format.open_memmap`` so the file header carries
    shape, dtype and physical order — reopening needs only the path.

    Parameters
    ----------
    path:
        Filesystem path of the ``.npy`` file.
    mode:
        ``"w+"`` creates/overwrites (requires *shape*); ``"r+"`` opens
        read-write; ``"r"`` opens read-only.  Geometry arguments are
        taken from the header for the read modes, and a *layout* given
        explicitly on read must match the stored order
        (:class:`LayoutError` otherwise).
    shape, dtype, layout:
        Geometry for ``"w+"`` creation (dtype defaults to float64).

    I/O failures (missing file, bad header, full disk) surface as typed
    :class:`~repro.util.errors.ResourceError`; the deterministic
    ``store-read-error`` fault point fires here with
    ``site="memmap-open"`` so resilience tests can exercise that path.
    """
    from repro.resilience.faults import active_faults

    requested = None if layout is None else Layout.parse(layout)
    layout = Layout.ROW_MAJOR if requested is None else requested
    faults = active_faults()
    if faults is not None:
        try:
            faults.check("store-read-error", site="memmap-open", path=str(path))
        except ResourceError:
            raise
        except OSError as exc:
            raise ResourceError(
                f"injected I/O failure opening memmap tensor {path!s}: {exc}"
            ) from exc
    if mode == "w+" and shape is None:
        raise ShapeError("creating a memmap tensor (mode='w+') needs a shape")
    try:
        if mode == "w+":
            dt = DEFAULT_DTYPE if dtype is None else canonical_dtype(dtype)
            arr = np.lib.format.open_memmap(
                path,
                mode="w+",
                dtype=dt,
                shape=tuple(int(s) for s in shape),
                fortran_order=layout is Layout.COL_MAJOR,
            )
        else:
            arr = np.lib.format.open_memmap(path, mode=mode)
    except (OSError, ValueError) as exc:
        raise ResourceError(
            f"cannot open memmap tensor {path!s} (mode={mode}): {exc}"
        ) from exc
    if mode == "w+":
        return DenseTensor.from_memmap(arr, layout)
    inferred = (
        Layout.COL_MAJOR
        if arr.ndim > 1 and arr.flags["F_CONTIGUOUS"] and not arr.flags["C_CONTIGUOUS"]
        else Layout.ROW_MAJOR
    )
    if (
        requested is not None
        and requested is not inferred
        and not (arr.flags["C_CONTIGUOUS"] and arr.flags["F_CONTIGUOUS"])
    ):
        raise LayoutError(
            f"memmap tensor {path!s} is stored {inferred.name}; "
            f"requested {requested.name}"
        )
    return DenseTensor.from_memmap(arr, inferred)
