"""Mode-n matricization (*unfolding*) and its inverse (*folding*).

This is the operation the conventional TTM (Algorithm 1) performs
physically — permute the tensor so mode *n* leads, then reshape to a
matrix — and the operation INTENSLI avoids.  We provide:

* :func:`unfold` — the physical (copying) unfolding used by baselines, for
  both row- and column-major conventions;
* :func:`fold` — the inverse tensorization, also copying;
* :func:`logical_unfold_axes` — the copy-free unfoldings that *are*
  possible as pure views, used by the in-place algorithm and by tests.

Convention: the mode-*n* unfolding ``X_(n)`` is the ``I_n x (prod of the
other extents)`` matrix whose columns enumerate the non-*n* modes in
increasing index order — the Kolda/Bader definition used by the paper's
Algorithm 1 (``order = [n, 1:n-1, n+1:N]``).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.tensor.dense import DenseTensor, _guard_materialize
from repro.tensor.layout import Layout
from repro.tensor.views import subtensor_matrix
from repro.util.errors import LayoutError
from repro.util.validation import check_mode


def unfold_permutation(order: int, mode: int) -> tuple[int, ...]:
    """The mode-leading permutation Algorithm 1 applies before reshaping."""
    mode = check_mode(mode, order)
    return (mode, *range(0, mode), *range(mode + 1, order))


def inverse_permutation(perm: Sequence[int]) -> tuple[int, ...]:
    """The permutation undoing *perm* (Algorithm 1, line 7)."""
    inv = [0] * len(perm)
    for position, axis in enumerate(perm):
        inv[axis] = position
    return tuple(inv)


def unfold(tensor: DenseTensor, mode: int) -> np.ndarray:
    """Physically unfold *tensor* along *mode* (always copies).

    For a row-major tensor the result is C-contiguous; for column-major it
    is F-contiguous — matching what each convention's BLAS call expects.
    The copy cost of this function is exactly the "transform" overhead the
    paper profiles in figure 4.
    """
    mode = check_mode(mode, tensor.order)
    if not tensor.is_inmem:
        # Physical unfolding copies the whole tensor; for out-of-core
        # backings that must clear the memory budget, never happen silently.
        _guard_materialize(tensor.nbytes, f"unfold(mode={mode})")
    perm = unfold_permutation(tensor.order, mode)
    # The column count is the product of the *other* extents — computed
    # directly, not by division, so zero-extent modes keep the correct
    # (possibly nonzero) column count.
    rest = math.prod(s for i, s in enumerate(tensor.shape) if i != mode)
    np_order = tensor.layout.numpy_order
    moved = np.transpose(tensor.data, perm)
    flat = np.array(moved, order=np_order, copy=True)
    return flat.reshape((tensor.shape[mode], rest), order=np_order)


def fold(
    matrix: np.ndarray,
    mode: int,
    shape: Sequence[int],
    layout: Layout | str = Layout.ROW_MAJOR,
) -> DenseTensor:
    """Fold a mode-*mode* unfolding back into a tensor of *shape* (copies).

    Inverse of :func:`unfold`:
    ``fold(unfold(t, n), n, t.shape, t.layout)`` equals ``t``.
    """
    layout = Layout.parse(layout)
    shape_t = tuple(int(s) for s in shape)
    mode = check_mode(mode, len(shape_t))
    rest = math.prod(s for i, s in enumerate(shape_t) if i != mode)
    mat = np.asarray(matrix)
    if mat.shape != (shape_t[mode], rest):
        raise LayoutError(
            f"matrix shape {mat.shape} does not match mode-{mode} unfolding "
            f"of shape {shape_t} (expected {(shape_t[mode], rest)})"
        )
    perm = unfold_permutation(len(shape_t), mode)
    permuted_shape = tuple(shape_t[p] for p in perm)
    np_order = layout.numpy_order
    cube = mat.reshape(permuted_shape, order=np_order)
    restored = np.transpose(cube, inverse_permutation(perm))
    return DenseTensor(restored, layout, copy=True)


def logical_unfold_axes(order: int, layout: Layout) -> tuple[int, ...]:
    """Modes whose unfolding is possible as a pure view (no copy).

    A mode-*n* unfolding is a view exactly when the mode-leading permutation
    is a no-op in storage order: mode 0 for row-major tensors (the remaining
    modes already trail it contiguously) and mode N-1 for column-major.
    Order-2 tensors additionally admit the other mode via the transpose
    view, but we report only strict unfoldings here.
    """
    if order < 1:
        return ()
    if layout is Layout.ROW_MAJOR:
        return (0,)
    return (order - 1,)


def logical_unfold(tensor: DenseTensor, mode: int) -> np.ndarray:
    """Unfold as a pure view when possible, else raise :class:`LayoutError`.

    Used by fast paths; the general in-place algorithm never needs a full
    unfolding of a non-leading mode.
    """
    mode = check_mode(mode, tensor.order)
    if tensor.order == 1:
        # An order-1 tensor unfolds to a single-column matrix either way.
        return tensor.data.reshape(tensor.shape[0], 1)
    allowed = logical_unfold_axes(tensor.order, tensor.layout)
    if mode not in allowed:
        raise LayoutError(
            f"mode-{mode} unfolding of a {tensor.layout.name} order-"
            f"{tensor.order} tensor requires a copy; only modes {allowed} "
            "unfold as views"
        )
    if tensor.layout is Layout.ROW_MAJOR:
        return subtensor_matrix(tensor, 1)
    # Column-major, mode == N-1: rows are the last mode, columns merge the
    # leading modes; that is the transpose of the natural split view.
    return subtensor_matrix(tensor, tensor.order - 1).T


def vec(tensor: DenseTensor) -> np.ndarray:
    """Vectorize the tensor in its own storage order (a view)."""
    return tensor.data.reshape(-1, order=tensor.layout.numpy_order)
