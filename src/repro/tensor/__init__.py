"""Dense tensor substrate.

This subpackage provides the storage-layout-aware dense tensor object the
rest of the library is built on, plus pure-view sub-tensor extraction
(fibers, slices, merged-mode matrices per Lemma 4.1 of the paper) and both
*physical* (copying) and *logical* (view) mode-n matricization.
"""

from repro.tensor.layout import (
    ROW_MAJOR,
    COL_MAJOR,
    Layout,
    element_strides,
    is_contiguous_run,
    linear_index,
    storage_order,
)
from repro.tensor.dense import DenseTensor, open_memmap_tensor
from repro.tensor.views import (
    fiber,
    merged_matrix_view,
    mode_slice,
    subtensor_matrix,
)
from repro.tensor.unfold import (
    fold,
    logical_unfold_axes,
    unfold,
    unfold_permutation,
)
from repro.tensor.generate import (
    arange_tensor,
    low_rank_tensor,
    md_trajectory_tensor,
    random_tensor,
)
from repro.tensor.workloads import eeg_tensor, image_ensemble_tensor

__all__ = [
    "ROW_MAJOR",
    "COL_MAJOR",
    "Layout",
    "element_strides",
    "is_contiguous_run",
    "linear_index",
    "storage_order",
    "DenseTensor",
    "open_memmap_tensor",
    "fiber",
    "merged_matrix_view",
    "mode_slice",
    "subtensor_matrix",
    "fold",
    "logical_unfold_axes",
    "unfold",
    "unfold_permutation",
    "arange_tensor",
    "low_rank_tensor",
    "md_trajectory_tensor",
    "random_tensor",
    "eeg_tensor",
    "image_ensemble_tensor",
]
