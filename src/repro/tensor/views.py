"""Copy-free sub-tensor extraction (the paper's ``inplace-mat``).

Algorithm 2 computes the mode-n product by iterating over *loop modes* and,
at each loop iteration, running a GEMM on a 2-D **view** of the original
storage whose row and column dimensions are (possibly merged) runs of
tensor modes.  This module constructs those views.

The central invariant (Lemma 4.1): a run of modes can appear merged as one
matrix dimension *only if* its element strides nest — i.e. the run is
consecutive in index order and contiguous in storage.  ``merged_stride``
checks that nesting property directly on the strides, so it works for both
row-major and column-major tensors and fails loudly if a caller requests a
merge that would require a copy.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from repro.tensor.dense import DenseTensor
from repro.util.errors import LayoutError, ShapeError


def _as_dense(tensor) -> DenseTensor:
    if isinstance(tensor, DenseTensor):
        return tensor
    raise TypeError(
        f"expected DenseTensor, got {type(tensor).__name__}; wrap ndarrays "
        "with DenseTensor so the storage layout is explicit"
    )


def merged_stride(
    strides: Sequence[int], shape: Sequence[int], run: Sequence[int]
) -> int:
    """Element stride of the dimension formed by merging the mode *run*.

    Raises :class:`LayoutError` if the strides over *run* do not nest, i.e.
    the merge would require physical reorganization.  Size-1 modes are
    stride-agnostic and never block a merge.
    """
    run_t = [int(m) for m in run]
    if not run_t:
        raise ShapeError("cannot merge an empty mode run")
    if run_t != list(range(run_t[0], run_t[0] + len(run_t))):
        raise LayoutError(
            f"modes {run_t} are not consecutive; merging them without a "
            "copy is impossible (Lemma 4.1)"
        )
    effective = [m for m in run_t if shape[m] != 1]
    if not effective:
        return 1
    # The merged dimension enumerates the run in odometer order; its stride
    # is the smallest stride in the run, and every coarser stride must equal
    # the next-finer stride times that mode's extent ("nesting").
    order = sorted(effective, key=lambda m: strides[m])
    expected = strides[order[0]]
    for m in order:
        if strides[m] != expected:
            raise LayoutError(
                f"modes {run_t} have non-nesting strides "
                f"{[strides[m] for m in run_t]} for shape "
                f"{[shape[m] for m in run_t]}; merge requires a copy"
            )
        expected *= shape[m]
    return strides[order[0]]


def _base_offset(
    strides: Sequence[int],
    shape: Sequence[int],
    fixed: Mapping[int, int],
) -> int:
    offset = 0
    for mode, index in fixed.items():
        dim = shape[mode]
        if not 0 <= index < dim:
            raise IndexError(
                f"fixed index {index} out of bounds for mode {mode} (size {dim})"
            )
        offset += index * strides[mode]
    return offset


def _strided_2d(
    data: np.ndarray,
    offset: int,
    rows: int,
    cols: int,
    row_stride: int,
    col_stride: int,
) -> np.ndarray:
    """A writable (rows x cols) view at *offset* elements into *data*'s base.

    Geometry is validated against the buffer size before constructing the
    view so ``as_strided`` can never expose out-of-bounds memory.
    """
    itemsize = data.itemsize
    span = offset
    if rows > 0 and cols > 0:
        span = offset + (rows - 1) * row_stride + (cols - 1) * col_stride
    if offset < 0 or span >= data.size:
        raise ShapeError(
            f"view geometry out of bounds: offset={offset}, rows={rows}, "
            f"cols={cols}, strides=({row_stride},{col_stride}), "
            f"buffer={data.size}"
        )
    flat = data.reshape(-1, order="A")
    if flat.base is None and flat is not data:  # pragma: no cover
        raise LayoutError("tensor storage is unexpectedly non-contiguous")
    return np.lib.stride_tricks.as_strided(
        flat[offset:],
        shape=(rows, cols),
        strides=(row_stride * itemsize, col_stride * itemsize),
        writeable=True,
    )


def merged_matrix_view(
    tensor: DenseTensor,
    row_modes: Sequence[int],
    col_modes: Sequence[int],
    fixed: Mapping[int, int] | None = None,
) -> np.ndarray:
    """In-place 2-D matrix view of *tensor* (the paper's ``inplace-mat``).

    *row_modes* and *col_modes* are each a consecutive run of modes merged
    into the row and column dimension respectively; every other mode must
    appear in *fixed* with a concrete index.

    Returns a writable ndarray view sharing storage with ``tensor.data``.
    """
    t = _as_dense(tensor)
    fixed = dict(fixed or {})
    rows_t = tuple(int(m) for m in row_modes)
    cols_t = tuple(int(m) for m in col_modes)
    claimed = set(rows_t) | set(cols_t) | set(fixed)
    if set(rows_t) & set(cols_t):
        raise ShapeError(f"row modes {rows_t} and col modes {cols_t} overlap")
    if (set(rows_t) | set(cols_t)) & set(fixed):
        raise ShapeError("fixed modes overlap row/col modes")
    if claimed != set(range(t.order)):
        raise ShapeError(
            f"modes {sorted(claimed)} do not cover all modes of an "
            f"order-{t.order} tensor"
        )
    shape, strides = t.shape, t.strides
    n_rows = math.prod(shape[m] for m in rows_t)
    n_cols = math.prod(shape[m] for m in cols_t)
    row_stride = merged_stride(strides, shape, rows_t)
    col_stride = merged_stride(strides, shape, cols_t)
    offset = _base_offset(strides, shape, fixed)
    return _strided_2d(t.data, offset, n_rows, n_cols, row_stride, col_stride)


# The paper's name for the same operation (Algorithm 2, lines 3-4, 7-8).
inplace_mat = merged_matrix_view


def fiber(
    tensor: DenseTensor, mode: int, fixed: Mapping[int, int]
) -> np.ndarray:
    """A mode-*mode* fiber: fix every mode but one (figure 2b).

    Returns a 1-D writable view of length ``shape[mode]``.
    """
    t = _as_dense(tensor)
    mode = int(mode)
    if not 0 <= mode < t.order:
        raise ShapeError(f"mode {mode} out of range for order-{t.order} tensor")
    expect = set(range(t.order)) - {mode}
    if set(fixed) != expect:
        raise ShapeError(
            f"fiber requires fixed indices for modes {sorted(expect)}, "
            f"got {sorted(fixed)}"
        )
    # A fiber is a degenerate matrix view with a single column.
    offset = _base_offset(t.strides, t.shape, fixed)
    mat = _strided_2d(t.data, offset, t.shape[mode], 1, t.strides[mode], 1)
    return mat[:, 0]


def mode_slice(
    tensor: DenseTensor,
    free_modes: Sequence[int],
    fixed: Mapping[int, int],
) -> np.ndarray:
    """A 2-D slice: fix all but exactly two modes (figure 2a).

    The two *free_modes* need not be adjacent — a slice never merges modes,
    so each free mode keeps its own stride and any pair is view-able.
    """
    t = _as_dense(tensor)
    free_t = tuple(int(m) for m in free_modes)
    if len(free_t) != 2:
        raise ShapeError(f"a slice has exactly 2 free modes, got {free_t}")
    expect = set(range(t.order)) - set(free_t)
    if set(fixed) != expect:
        raise ShapeError(
            f"slice requires fixed indices for modes {sorted(expect)}, "
            f"got {sorted(fixed)}"
        )
    r, c = free_t
    offset = _base_offset(t.strides, t.shape, fixed)
    return _strided_2d(
        t.data, offset, t.shape[r], t.shape[c], t.strides[r], t.strides[c]
    )


def subtensor_matrix(
    tensor: DenseTensor,
    split_after: int,
) -> np.ndarray:
    """View the whole tensor as a matrix by splitting modes at *split_after*.

    Modes ``0..split_after-1`` merge into rows and ``split_after..N-1``
    into columns; both runs must be storage-contiguous (always true for a
    contiguous tensor of either layout).
    """
    t = _as_dense(tensor)
    if not 1 <= split_after <= t.order - 1:
        raise ShapeError(
            f"split_after must be in [1, {t.order - 1}], got {split_after}"
        )
    rows = tuple(range(0, split_after))
    cols = tuple(range(split_after, t.order))
    return merged_matrix_view(t, rows, cols, {})
