"""Copy-free sub-tensor extraction (the paper's ``inplace-mat``).

Algorithm 2 computes the mode-n product by iterating over *loop modes* and,
at each loop iteration, running a GEMM on a 2-D **view** of the original
storage whose row and column dimensions are (possibly merged) runs of
tensor modes.  This module constructs those views.

The central invariant (Lemma 4.1): a run of modes can appear merged as one
matrix dimension *only if* its element strides nest — i.e. the run is
consecutive in index order and contiguous in storage.  ``merged_stride``
checks that nesting property directly on the strides, so it works for both
row-major and column-major tensors and fails loudly if a caller requests a
merge that would require a copy.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from repro.tensor.dense import DenseTensor
from repro.util.errors import LayoutError, ShapeError


def _as_dense(tensor) -> DenseTensor:
    if isinstance(tensor, DenseTensor):
        return tensor
    raise TypeError(
        f"expected DenseTensor, got {type(tensor).__name__}; wrap ndarrays "
        "with DenseTensor so the storage layout is explicit"
    )


def merged_stride(
    strides: Sequence[int], shape: Sequence[int], run: Sequence[int]
) -> int:
    """Element stride of the dimension formed by merging the mode *run*.

    Raises :class:`LayoutError` if the strides over *run* do not nest, i.e.
    the merge would require physical reorganization.  Size-1 modes are
    stride-agnostic and never block a merge.
    """
    run_t = [int(m) for m in run]
    if not run_t:
        raise ShapeError("cannot merge an empty mode run")
    if run_t != list(range(run_t[0], run_t[0] + len(run_t))):
        raise LayoutError(
            f"modes {run_t} are not consecutive; merging them without a "
            "copy is impossible (Lemma 4.1)"
        )
    if any(shape[m] == 0 for m in run_t):
        # The merged dimension has zero extent: the view addresses no
        # memory, so any stride is valid (zero-extent modes also report
        # stride 0, which would spuriously fail the nesting check).
        return 1
    effective = [m for m in run_t if shape[m] != 1]
    if not effective:
        return 1
    # The merged dimension enumerates the run in odometer order; its stride
    # is the smallest stride in the run, and every coarser stride must equal
    # the next-finer stride times that mode's extent ("nesting").
    order = sorted(effective, key=lambda m: strides[m])
    expected = strides[order[0]]
    for m in order:
        if strides[m] != expected:
            raise LayoutError(
                f"modes {run_t} have non-nesting strides "
                f"{[strides[m] for m in run_t]} for shape "
                f"{[shape[m] for m in run_t]}; merge requires a copy"
            )
        expected *= shape[m]
    return strides[order[0]]


def _base_offset(
    strides: Sequence[int],
    shape: Sequence[int],
    fixed: Mapping[int, int],
) -> int:
    offset = 0
    for mode, index in fixed.items():
        dim = shape[mode]
        if not 0 <= index < dim:
            raise IndexError(
                f"fixed index {index} out of bounds for mode {mode} (size {dim})"
            )
        offset += index * strides[mode]
    return offset


def _strided_2d(
    data: np.ndarray,
    offset: int,
    rows: int,
    cols: int,
    row_stride: int,
    col_stride: int,
) -> np.ndarray:
    """A writable (rows x cols) view at *offset* elements into *data*'s base.

    Geometry is validated against the buffer size before constructing the
    view so ``as_strided`` can never expose out-of-bounds memory.
    """
    itemsize = data.itemsize
    if rows == 0 or cols == 0:
        # An empty view touches no memory: any geometry is in bounds
        # (zero-extent tensors must still produce correctly shaped,
        # correctly typed empty views instead of raising).
        if offset < 0:
            raise ShapeError(f"view offset {offset} is negative")
        return np.empty((rows, cols), dtype=data.dtype)
    span = offset + (rows - 1) * row_stride + (cols - 1) * col_stride
    if offset < 0 or span >= data.size:
        raise ShapeError(
            f"view geometry out of bounds: offset={offset}, rows={rows}, "
            f"cols={cols}, strides=({row_stride},{col_stride}), "
            f"buffer={data.size}"
        )
    flat = data.reshape(-1, order="A")
    if flat.base is None and flat is not data:  # pragma: no cover
        raise LayoutError("tensor storage is unexpectedly non-contiguous")
    return np.lib.stride_tricks.as_strided(
        flat[offset:],
        shape=(rows, cols),
        strides=(row_stride * itemsize, col_stride * itemsize),
        writeable=True,
    )


def merged_matrix_view(
    tensor: DenseTensor,
    row_modes: Sequence[int],
    col_modes: Sequence[int],
    fixed: Mapping[int, int] | None = None,
) -> np.ndarray:
    """In-place 2-D matrix view of *tensor* (the paper's ``inplace-mat``).

    *row_modes* and *col_modes* are each a consecutive run of modes merged
    into the row and column dimension respectively; every other mode must
    appear in *fixed* with a concrete index.

    Returns a writable ndarray view sharing storage with ``tensor.data``.
    """
    t = _as_dense(tensor)
    fixed = dict(fixed or {})
    rows_t = tuple(int(m) for m in row_modes)
    cols_t = tuple(int(m) for m in col_modes)
    claimed = set(rows_t) | set(cols_t) | set(fixed)
    if set(rows_t) & set(cols_t):
        raise ShapeError(f"row modes {rows_t} and col modes {cols_t} overlap")
    if (set(rows_t) | set(cols_t)) & set(fixed):
        raise ShapeError("fixed modes overlap row/col modes")
    if claimed != set(range(t.order)):
        raise ShapeError(
            f"modes {sorted(claimed)} do not cover all modes of an "
            f"order-{t.order} tensor"
        )
    shape, strides = t.shape, t.strides
    n_rows = math.prod(shape[m] for m in rows_t)
    n_cols = math.prod(shape[m] for m in cols_t)
    row_stride = merged_stride(strides, shape, rows_t)
    col_stride = merged_stride(strides, shape, cols_t)
    offset = _base_offset(strides, shape, fixed)
    return _strided_2d(t.data, offset, n_rows, n_cols, row_stride, col_stride)


# The paper's name for the same operation (Algorithm 2, lines 3-4, 7-8).
inplace_mat = merged_matrix_view


def _run_geometry(
    strides: Sequence[int], shape: Sequence[int], run: Sequence[int]
) -> tuple[int, int]:
    """(extent, element stride) of a merged mode run; ``(1, 1)`` when empty."""
    run_t = tuple(int(m) for m in run)
    if not run_t:
        return 1, 1
    extent = math.prod(shape[m] for m in run_t)
    return extent, merged_stride(strides, shape, run_t)


def _strided_3d(
    data: np.ndarray,
    offset: int,
    extents: tuple[int, int, int],
    strides: tuple[int, int, int],
) -> np.ndarray:
    """A writable 3-D view at *offset* elements into *data*'s base."""
    itemsize = data.itemsize
    if any(e == 0 for e in extents):
        # Empty batch/matrix dimension: no memory is addressed, so the
        # bounds check is vacuous (zero-extent executor support).
        if offset < 0:
            raise ShapeError(f"view offset {offset} is negative")
        return np.empty(extents, dtype=data.dtype)
    span = offset + sum((e - 1) * s for e, s in zip(extents, strides))
    if offset < 0 or span >= data.size:
        raise ShapeError(
            f"view geometry out of bounds: offset={offset}, "
            f"extents={extents}, strides={strides}, buffer={data.size}"
        )
    flat = data.reshape(-1, order="A")
    return np.lib.stride_tricks.as_strided(
        flat[offset:],
        shape=extents,
        strides=tuple(s * itemsize for s in strides),
        writeable=True,
    )


def merged_batch_view(
    tensor: DenseTensor,
    batch_modes: Sequence[int],
    row_modes: Sequence[int],
    col_modes: Sequence[int],
    fixed: Mapping[int, int] | None = None,
) -> np.ndarray:
    """A 3-D ``(B, rows, cols)`` view stacking matrix views across a mode run.

    This is the batched generalization of :func:`merged_matrix_view`: the
    *batch_modes* run is merged into a leading batch dimension, so one
    strided rank-3 view replaces ``B`` separate 2-D views — the operand
    shape batched-GEMM primitives (``np.matmul`` over a 3-D array) want.
    The same Lemma 4.1 nesting condition applies independently to the
    batch, row, and column runs; the view is still pure ``as_strided``
    arithmetic on the original storage, never a copy.

    *row_modes*/*col_modes* may be empty, in which case that matrix
    dimension is a degenerate extent-1 axis (the batched-fiber case).
    """
    t = _as_dense(tensor)
    fixed = dict(fixed or {})
    batch_t = tuple(int(m) for m in batch_modes)
    rows_t = tuple(int(m) for m in row_modes)
    cols_t = tuple(int(m) for m in col_modes)
    if not batch_t:
        raise ShapeError("merged_batch_view requires at least one batch mode")
    groups = (set(batch_t), set(rows_t), set(cols_t), set(fixed))
    claimed: set[int] = set()
    for group in groups:
        if claimed & group:
            raise ShapeError(
                f"batch {batch_t}, row {rows_t}, col {cols_t}, and fixed "
                f"{sorted(fixed)} modes must be disjoint"
            )
        claimed |= group
    if claimed != set(range(t.order)):
        raise ShapeError(
            f"modes {sorted(claimed)} do not cover all modes of an "
            f"order-{t.order} tensor"
        )
    shape, strides = t.shape, t.strides
    n_batch, batch_stride = _run_geometry(strides, shape, batch_t)
    n_rows, row_stride = _run_geometry(strides, shape, rows_t)
    n_cols, col_stride = _run_geometry(strides, shape, cols_t)
    offset = _base_offset(strides, shape, fixed)
    return _strided_3d(
        t.data,
        offset,
        (n_batch, n_rows, n_cols),
        (batch_stride, row_stride, col_stride),
    )


class MatrixViewFactory:
    """Precomputed geometry for repeated :func:`merged_matrix_view` calls.

    The in-place executor builds the same (row run, col run) view once per
    loop iteration, with only the fixed indices changing.  All stride
    arithmetic and legality checks are invariant across iterations, so
    this factory hoists them: construction validates once, and
    :meth:`view` reduces each iteration to an offset dot-product plus one
    ``as_strided`` call.
    """

    __slots__ = ("_data", "_rows", "_cols", "_row_stride", "_col_stride",
                 "_iter_strides")

    def __init__(
        self,
        tensor: DenseTensor,
        row_modes: Sequence[int],
        col_modes: Sequence[int],
        iter_modes: Sequence[int],
    ) -> None:
        t = _as_dense(tensor)
        shape, strides = t.shape, t.strides
        rows_t = tuple(int(m) for m in row_modes)
        cols_t = tuple(int(m) for m in col_modes)
        iter_t = tuple(int(m) for m in iter_modes)
        claimed = set(rows_t) | set(cols_t) | set(iter_t)
        if len(rows_t) + len(cols_t) + len(iter_t) != len(claimed):
            raise ShapeError(
                f"row {rows_t}, col {cols_t}, and iterated {iter_t} modes "
                "must be disjoint"
            )
        if claimed != set(range(t.order)):
            raise ShapeError(
                f"modes {sorted(claimed)} do not cover all modes of an "
                f"order-{t.order} tensor"
            )
        self._data = t.data
        self._rows, self._row_stride = _run_geometry(strides, shape, rows_t)
        self._cols, self._col_stride = _run_geometry(strides, shape, cols_t)
        self._iter_strides = tuple(strides[m] for m in iter_t)

    def view(self, index: Sequence[int]) -> np.ndarray:
        """The 2-D view at one iteration *index* (aligned with iter_modes)."""
        offset = 0
        for i, s in zip(index, self._iter_strides):
            offset += i * s
        return _strided_2d(
            self._data, offset, self._rows, self._cols,
            self._row_stride, self._col_stride,
        )


class BatchViewFactory:
    """Precomputed geometry for repeated :func:`merged_batch_view` calls.

    The batched executor builds one ``(B, rows, cols)`` view per *outer*
    loop iteration; as with :class:`MatrixViewFactory`, everything but the
    base offset is loop-invariant and hoisted into construction.
    """

    __slots__ = ("_data", "_extents", "_strides", "_iter_strides")

    def __init__(
        self,
        tensor: DenseTensor,
        batch_modes: Sequence[int],
        row_modes: Sequence[int],
        col_modes: Sequence[int],
        iter_modes: Sequence[int],
    ) -> None:
        t = _as_dense(tensor)
        shape, strides = t.shape, t.strides
        batch_t = tuple(int(m) for m in batch_modes)
        rows_t = tuple(int(m) for m in row_modes)
        cols_t = tuple(int(m) for m in col_modes)
        iter_t = tuple(int(m) for m in iter_modes)
        if not batch_t:
            raise ShapeError("BatchViewFactory requires at least one batch mode")
        claimed = set(batch_t) | set(rows_t) | set(cols_t) | set(iter_t)
        n_claimed = len(batch_t) + len(rows_t) + len(cols_t) + len(iter_t)
        if n_claimed != len(claimed) or claimed != set(range(t.order)):
            raise ShapeError(
                f"batch {batch_t}, row {rows_t}, col {cols_t}, and iterated "
                f"{iter_t} modes must be disjoint and cover all "
                f"{t.order} modes"
            )
        n_batch, batch_stride = _run_geometry(strides, shape, batch_t)
        n_rows, row_stride = _run_geometry(strides, shape, rows_t)
        n_cols, col_stride = _run_geometry(strides, shape, cols_t)
        self._data = t.data
        self._extents = (n_batch, n_rows, n_cols)
        self._strides = (batch_stride, row_stride, col_stride)
        self._iter_strides = tuple(strides[m] for m in iter_t)

    @property
    def batch_extent(self) -> int:
        return self._extents[0]

    def view(self, index: Sequence[int]) -> np.ndarray:
        """The 3-D view at one outer index (aligned with iter_modes)."""
        offset = 0
        for i, s in zip(index, self._iter_strides):
            offset += i * s
        return _strided_3d(self._data, offset, self._extents, self._strides)


def fiber(
    tensor: DenseTensor, mode: int, fixed: Mapping[int, int]
) -> np.ndarray:
    """A mode-*mode* fiber: fix every mode but one (figure 2b).

    Returns a 1-D writable view of length ``shape[mode]``.
    """
    t = _as_dense(tensor)
    mode = int(mode)
    if not 0 <= mode < t.order:
        raise ShapeError(f"mode {mode} out of range for order-{t.order} tensor")
    expect = set(range(t.order)) - {mode}
    if set(fixed) != expect:
        raise ShapeError(
            f"fiber requires fixed indices for modes {sorted(expect)}, "
            f"got {sorted(fixed)}"
        )
    # A fiber is a degenerate matrix view with a single column.
    offset = _base_offset(t.strides, t.shape, fixed)
    mat = _strided_2d(t.data, offset, t.shape[mode], 1, t.strides[mode], 1)
    return mat[:, 0]


def mode_slice(
    tensor: DenseTensor,
    free_modes: Sequence[int],
    fixed: Mapping[int, int],
) -> np.ndarray:
    """A 2-D slice: fix all but exactly two modes (figure 2a).

    The two *free_modes* need not be adjacent — a slice never merges modes,
    so each free mode keeps its own stride and any pair is view-able.
    """
    t = _as_dense(tensor)
    free_t = tuple(int(m) for m in free_modes)
    if len(free_t) != 2:
        raise ShapeError(f"a slice has exactly 2 free modes, got {free_t}")
    expect = set(range(t.order)) - set(free_t)
    if set(fixed) != expect:
        raise ShapeError(
            f"slice requires fixed indices for modes {sorted(expect)}, "
            f"got {sorted(fixed)}"
        )
    r, c = free_t
    offset = _base_offset(t.strides, t.shape, fixed)
    return _strided_2d(
        t.data, offset, t.shape[r], t.shape[c], t.strides[r], t.strides[c]
    )


def subtensor_matrix(
    tensor: DenseTensor,
    split_after: int,
) -> np.ndarray:
    """View the whole tensor as a matrix by splitting modes at *split_after*.

    Modes ``0..split_after-1`` merge into rows and ``split_after..N-1``
    into columns; both runs must be storage-contiguous (always true for a
    contiguous tensor of either layout).
    """
    t = _as_dense(tensor)
    if not 1 <= split_after <= t.order - 1:
        raise ShapeError(
            f"split_after must be in [1, {t.order - 1}], got {split_after}"
        )
    rows = tuple(range(0, split_after))
    cols = tuple(range(split_after, t.order))
    return merged_matrix_view(t, rows, cols, {})
