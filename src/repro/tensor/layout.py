"""Storage layouts and stride arithmetic for dense tensors.

The paper's core argument (Lemma 4.1) is about which mode ranges may be
merged into a matrix dimension *without data movement*.  That property is a
pure function of the storage layout and the element strides, so we make
both explicit here instead of inferring them from NumPy flags deep inside
kernels.

Strides throughout this module are measured in **elements**, not bytes;
kernels convert to byte strides only at the NumPy boundary.
"""

from __future__ import annotations

import enum
import math
from typing import Sequence

from repro.util.errors import LayoutError


class Layout(enum.Enum):
    """Dense storage layout of a tensor.

    ``ROW_MAJOR`` (C order) stores the *last* mode with unit stride —
    the paper's default, leading to the *forward* strategy.
    ``COL_MAJOR`` (Fortran order) stores the *first* mode with unit
    stride — the Tensor Toolbox/MATLAB convention, leading to the
    *backward* strategy.
    """

    ROW_MAJOR = "C"
    COL_MAJOR = "F"

    @property
    def numpy_order(self) -> str:
        """The NumPy ``order=`` character for this layout."""
        return self.value

    @classmethod
    def parse(cls, value: "Layout | str") -> "Layout":
        """Accept a Layout or one of 'C'/'F'/'row'/'col' (case-insensitive)."""
        if isinstance(value, Layout):
            return value
        if isinstance(value, str):
            key = value.strip().upper()
            if key in ("C", "ROW", "ROW_MAJOR", "ROW-MAJOR"):
                return cls.ROW_MAJOR
            if key in ("F", "COL", "COL_MAJOR", "COL-MAJOR", "COLUMN_MAJOR"):
                return cls.COL_MAJOR
        raise LayoutError(f"unrecognized layout: {value!r}")


ROW_MAJOR = Layout.ROW_MAJOR
COL_MAJOR = Layout.COL_MAJOR


def element_strides(shape: Sequence[int], layout: Layout) -> tuple[int, ...]:
    """Element strides of a dense tensor with *shape* stored in *layout*.

    For row-major, ``stride[k] = prod(shape[k+1:])``; for column-major,
    ``stride[k] = prod(shape[:k])``.  A zero-dimensional shape yields ``()``.
    """
    ndim = len(shape)
    strides = [0] * ndim
    if layout is Layout.ROW_MAJOR:
        acc = 1
        for k in range(ndim - 1, -1, -1):
            strides[k] = acc
            acc *= int(shape[k])
    elif layout is Layout.COL_MAJOR:
        acc = 1
        for k in range(ndim):
            strides[k] = acc
            acc *= int(shape[k])
    else:  # pragma: no cover - enum exhausted
        raise LayoutError(f"unknown layout {layout!r}")
    return tuple(strides)


def storage_order(ndim: int, layout: Layout) -> tuple[int, ...]:
    """Mode indices from slowest-varying to fastest-varying in memory.

    Row-major order-(N) tensors vary mode N-1 fastest, so the storage order
    is ``(0, 1, ..., N-1)``; column-major is the reverse.
    """
    if layout is Layout.ROW_MAJOR:
        return tuple(range(ndim))
    return tuple(range(ndim - 1, -1, -1))


def leading_mode(ndim: int, layout: Layout) -> int:
    """The mode with unit stride (the paper's *leading dimension*)."""
    if ndim == 0:
        raise LayoutError("a 0-dimensional tensor has no leading mode")
    return ndim - 1 if layout is Layout.ROW_MAJOR else 0


def linear_index(index: Sequence[int], shape: Sequence[int], layout: Layout) -> int:
    """Flat storage offset of a multi-index under the given layout.

    Used by the cache simulator's trace generators and by tests as an
    independent oracle for view-based addressing.
    """
    if len(index) != len(shape):
        raise LayoutError(
            f"index rank {len(index)} does not match shape rank {len(shape)}"
        )
    strides = element_strides(shape, layout)
    offset = 0
    for i, (ix, dim) in enumerate(zip(index, shape)):
        if not 0 <= ix < dim:
            raise IndexError(f"index {ix} out of bounds for mode {i} (size {dim})")
        offset += ix * strides[i]
    return offset


def is_contiguous_run(modes: Sequence[int], ndim: int) -> bool:
    """True if *modes* is a non-empty run of consecutive mode indices.

    Lemma 4.1: only consecutive modes (in tensor-index order) can be merged
    into one matrix dimension without physical reorganization.
    """
    ms = list(modes)
    if not ms:
        return False
    if any(not 0 <= m < ndim for m in ms):
        return False
    return ms == list(range(ms[0], ms[0] + len(ms)))


def merged_extent(shape: Sequence[int], modes: Sequence[int]) -> int:
    """Product of extents over *modes* (the merged dimension's length)."""
    return math.prod(int(shape[m]) for m in modes)


def contiguous_mode_runs(modes: Sequence[int]) -> list[tuple[int, ...]]:
    """Split a sorted mode collection into maximal consecutive runs.

    Example: ``[0, 1, 3, 5, 6] -> [(0, 1), (3,), (5, 6)]``.
    """
    ms = sorted(int(m) for m in modes)
    runs: list[tuple[int, ...]] = []
    start = 0
    for i in range(1, len(ms) + 1):
        if i == len(ms) or ms[i] != ms[i - 1] + 1:
            runs.append(tuple(ms[start:i]))
            start = i
    return runs
