"""Synthetic tensor generators for tests, examples, and benchmarks.

The paper's experiments use dense random tensors whose mode-n products
produce low-rank (small-J) outputs, matching what tensor decompositions
feed TTM.  The MD-trajectory generator backs the molecular-dynamics
time-series example the paper cites as a dense application (§7).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.tensor.dense import DenseTensor
from repro.tensor.layout import Layout
from repro.util.rng import default_rng
from repro.util.validation import check_positive_int


def random_tensor(
    shape: Sequence[int],
    layout: Layout | str = Layout.ROW_MAJOR,
    seed=None,
) -> DenseTensor:
    """A dense tensor with iid standard-normal entries."""
    rng = default_rng(seed)
    data = rng.standard_normal(tuple(int(s) for s in shape))
    return DenseTensor(data, layout)


def arange_tensor(
    shape: Sequence[int],
    layout: Layout | str = Layout.ROW_MAJOR,
    start: int = 1,
) -> DenseTensor:
    """A tensor filled 1..size in *storage* order.

    With column-major layout and ``start=1`` this reproduces the paper's
    running example (§2, equation 3): the 3x4x2 tensor whose unfoldings are
    written out explicitly.  Useful as a fixture whose unfolded values are
    known by construction.
    """
    layout = Layout.parse(layout)
    size = math.prod(int(s) for s in shape)
    flat = np.arange(start, start + size, dtype=np.float64)
    data = flat.reshape(tuple(shape), order=layout.numpy_order)
    return DenseTensor(data, layout)


def low_rank_tensor(
    shape: Sequence[int],
    ranks: Sequence[int] | int,
    layout: Layout | str = Layout.ROW_MAJOR,
    noise: float = 0.0,
    seed=None,
) -> DenseTensor:
    """A tensor with an exact (or noisy) Tucker structure of given ranks.

    Constructed as a random core of size *ranks* expanded by random factor
    matrices — the workload class for which TTM outputs are much smaller
    than inputs (the paper's Observation 1 regime).  With ``noise > 0`` an
    iid Gaussian perturbation of that relative magnitude is added.
    """
    rng = default_rng(seed)
    shape_t = tuple(int(s) for s in shape)
    if isinstance(ranks, int):
        ranks_t = tuple(min(ranks, s) for s in shape_t)
    else:
        ranks_t = tuple(min(int(r), s) for r, s in zip(ranks, shape_t))
    if len(ranks_t) != len(shape_t):
        raise ValueError(f"ranks {ranks_t} do not match shape {shape_t}")
    core = rng.standard_normal(ranks_t)
    data = core
    for mode, (dim, rank) in enumerate(zip(shape_t, ranks_t)):
        factor = rng.standard_normal((dim, rank)) / math.sqrt(rank)
        data = np.moveaxis(
            np.tensordot(factor, data, axes=(1, mode)), 0, mode
        )
    if noise > 0.0:
        scale = noise * float(np.linalg.norm(data)) / math.sqrt(data.size)
        data = data + rng.standard_normal(shape_t) * scale
    return DenseTensor(data, layout)


def md_trajectory_tensor(
    n_frames: int,
    n_atoms: int,
    n_coords: int = 3,
    n_modes: int = 4,
    layout: Layout | str = Layout.ROW_MAJOR,
    seed=None,
) -> DenseTensor:
    """A synthetic molecular-dynamics trajectory tensor (frames x atoms x xyz).

    Atoms oscillate around reference positions as a superposition of
    *n_modes* collective motions with distinct frequencies plus thermal
    noise — the structure collective-motion analyses extract with tensor
    decompositions.  This substitutes for the proprietary MD traces the
    paper's future-work application uses; the TTM code path exercised is
    identical for any dense order-3 tensor of this shape.
    """
    check_positive_int(n_frames, "n_frames")
    check_positive_int(n_atoms, "n_atoms")
    check_positive_int(n_coords, "n_coords")
    check_positive_int(n_modes, "n_modes")
    rng = default_rng(seed)
    reference = rng.standard_normal((n_atoms, n_coords)) * 5.0
    times = np.linspace(0.0, 2.0 * math.pi, n_frames, endpoint=False)
    trajectory = np.broadcast_to(
        reference, (n_frames, n_atoms, n_coords)
    ).copy()
    for k in range(n_modes):
        frequency = 1.0 + k
        phase = rng.uniform(0.0, 2.0 * math.pi)
        direction = rng.standard_normal((n_atoms, n_coords))
        direction /= np.linalg.norm(direction)
        amplitude = 1.0 / (k + 1)
        wave = amplitude * np.sin(frequency * times + phase)
        trajectory += wave[:, None, None] * direction[None, :, :]
    trajectory += 0.02 * rng.standard_normal(trajectory.shape)
    return DenseTensor(trajectory, layout)
