"""Memory-efficient sparse Tucker (METTM-style HOSVD/HOOI).

The Tensor Toolbox's TTM baseline uses Kolda & Sun's memory-efficient
Tucker algorithm (the paper's [22]) to keep intermediates inside working
memory.  This module reproduces that computation on COO inputs: the
projection chain starts with a sparse TTM (semi-sparse result) and
continues with semi-sparse TTMs, so the full dense tensor is never
materialized — only the final projected tensor, whose extents are the
small Tucker ranks (times one original mode during factor updates).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.decomp.tucker import TuckerResult
from repro.sparse.coo import SparseTensor
from repro.sparse.ops import ttm_semisparse, ttm_sparse
from repro.tensor.dense import DenseTensor
from repro.tensor.unfold import unfold
from repro.util.errors import ShapeError


def _check_ranks(shape, ranks) -> tuple[int, ...]:
    shape_t = tuple(int(s) for s in shape)
    if isinstance(ranks, int):
        return tuple(min(ranks, s) for s in shape_t)
    ranks_t = tuple(int(r) for r in ranks)
    if len(ranks_t) != len(shape_t):
        raise ShapeError(f"ranks {ranks_t} do not match shape {shape_t}")
    if any(r < 1 or r > s for r, s in zip(ranks_t, shape_t)):
        raise ShapeError(f"ranks {ranks_t} out of range for {shape_t}")
    return ranks_t


def project_all_but(
    x: SparseTensor, factors: Sequence[np.ndarray], skip: int | None
) -> DenseTensor:
    """``X x_m A_m^T`` over all modes (skipping *skip*) without densifying X.

    The first product runs the sparse kernel; the rest run the
    semi-sparse kernel.  Returns the (small) dense result.
    """
    modes = [m for m in range(x.order) if m != skip]
    if not modes:
        return x.to_dense()
    first, rest = modes[0], modes[1:]
    semi = ttm_sparse(x, np.ascontiguousarray(factors[first].T), first)
    for mode in rest:
        semi = ttm_semisparse(
            semi, np.ascontiguousarray(factors[mode].T), mode
        )
    return semi.to_dense()


def _leading_basis(mat: np.ndarray, rank: int) -> np.ndarray:
    gram = mat @ mat.T
    eigvals, eigvecs = np.linalg.eigh(gram)
    order = np.argsort(eigvals)[::-1][: min(rank, mat.shape[0])]
    return np.ascontiguousarray(eigvecs[:, order])


def hosvd_sparse(x: SparseTensor, ranks) -> TuckerResult:
    """Truncated HOSVD of a sparse tensor via sparse mode-n Gram matrices.

    Factor *m* comes from the eigenbasis of ``X_(m) X_(m)^T``, assembled
    directly from the coordinates (never unfolding a dense tensor);
    the core is the memory-efficient projection chain.
    """
    if not isinstance(x, SparseTensor):
        raise TypeError(f"x must be a SparseTensor, got {type(x).__name__}")
    ranks_t = _check_ranks(x.shape, ranks)
    factors = []
    for mode, rank in enumerate(ranks_t):
        gram = _sparse_mode_gram(x, mode)
        eigvals, eigvecs = np.linalg.eigh(gram)
        order = np.argsort(eigvals)[::-1][:rank]
        factors.append(np.ascontiguousarray(eigvecs[:, order]))
    core = project_all_but(x, factors, skip=None)
    x_norm = float(np.linalg.norm(x.values))
    fit = _fit_from_norms(x_norm, core)
    return TuckerResult(core=core, factors=factors, fit=fit,
                        fit_history=[fit], iterations=0)


def hooi_sparse(
    x: SparseTensor,
    ranks,
    max_iterations: int = 50,
    tolerance: float = 1e-8,
) -> TuckerResult:
    """Sparse Tucker-HOOI: identical sweeps to the dense HOOI, with every
    projection running through the sparse/semi-sparse TTM kernels."""
    if not isinstance(x, SparseTensor):
        raise TypeError(f"x must be a SparseTensor, got {type(x).__name__}")
    ranks_t = _check_ranks(x.shape, ranks)
    if max_iterations < 1:
        raise ShapeError(f"max_iterations must be >= 1, got {max_iterations}")
    state = hosvd_sparse(x, ranks_t)
    factors = [f.copy() for f in state.factors]
    x_norm = float(np.linalg.norm(x.values))
    history: list[float] = []
    previous = -np.inf
    core = state.core
    iterations = 0
    for sweep in range(max_iterations):
        iterations = sweep + 1
        for mode, rank in enumerate(ranks_t):
            projected = project_all_but(x, factors, skip=mode)
            factors[mode] = _leading_basis(unfold(projected, mode), rank)
        core = project_all_but(x, factors, skip=None)
        fit = _fit_from_norms(x_norm, core)
        history.append(fit)
        if fit - previous < tolerance:
            break
        previous = fit
    return TuckerResult(core=core, factors=factors, fit=history[-1],
                        fit_history=history, iterations=iterations)


def _sparse_mode_gram(x: SparseTensor, mode: int) -> np.ndarray:
    """``X_(mode) @ X_(mode)^T`` assembled from COO coordinates.

    Nonzeros sharing the same non-*mode* coordinates (the same column of
    the unfolding) contribute ``v_a v_b`` to gram[i_a, i_b].
    """
    n = x.shape[mode]
    gram = np.zeros((n, n))
    if not x.nnz:
        return gram
    other = [m for m in range(x.order) if m != mode]
    keys = x.indices[:, other]
    if keys.shape[1] == 0:
        col = x.values
        rows = x.indices[:, mode]
        gram[np.ix_(rows, rows)] += np.outer(col, col)
        return gram
    _unique, inverse, counts = np.unique(
        keys, axis=0, return_inverse=True, return_counts=True
    )
    inverse = inverse.ravel()
    order = np.argsort(inverse, kind="stable")
    sorted_rows = x.indices[order, mode]
    sorted_vals = x.values[order]
    start = 0
    for count in counts:
        rows = sorted_rows[start : start + count]
        vals = sorted_vals[start : start + count]
        gram[np.ix_(rows, rows)] += np.outer(vals, vals)
        start += count
    return gram


def cp_als_sparse(
    x: SparseTensor,
    rank: int,
    max_iterations: int = 100,
    tolerance: float = 1e-8,
    seed=0,
):
    """CP-ALS on a sparse tensor via the SPLATT-style MTTKRP kernel.

    Runs the same ALS sweeps as :func:`repro.decomp.cp.cp_als` but with
    every MTTKRP computed from the COO coordinates — the dense tensor is
    materialized only conceptually (for the fit norm, the sparse
    Frobenius norm suffices, so never at all).
    """
    from repro.decomp.cp import cp_als
    from repro.sparse.ops import mttkrp_sparse

    if not isinstance(x, SparseTensor):
        raise TypeError(f"x must be a SparseTensor, got {type(x).__name__}")

    def backend(_x, factors, mode):
        return mttkrp_sparse(x, factors, mode)

    # cp_als needs the input only for its shape/order and Frobenius norm;
    # the proxy supplies those from the COO data, so the dense tensor is
    # never materialized.
    proxy = _SparseNormProxy(x)
    return cp_als(
        proxy,
        rank,
        max_iterations=max_iterations,
        tolerance=tolerance,
        mttkrp_backend=backend,
        seed=seed,
    )


class _SparseNormProxy:
    """Quacks like a DenseTensor for cp_als: shape, order, and a `data`
    object whose Frobenius norm equals the sparse tensor's."""

    def __init__(self, sp: SparseTensor):
        self.shape = sp.shape
        self.order = sp.order
        # A 1-D stand-in with the same Frobenius norm.
        self.data = sp.values

    @property
    def size(self) -> int:
        import math as _math

        return _math.prod(self.shape)


def _fit_from_norms(x_norm: float, core: DenseTensor) -> float:
    import math

    if x_norm == 0.0:
        return 1.0
    core_norm = float(np.linalg.norm(core.data))
    residual_sq = max(0.0, x_norm**2 - core_norm**2)
    return 1.0 - math.sqrt(residual_sq) / x_norm
