"""Compressed Sparse Fiber (CSF) tensors — SPLATT's format (paper [38]).

CSF stores a sparse tensor as a forest: level 0 holds the distinct root-
mode indices, each deeper level the distinct next-mode indices under one
parent, and the leaves the values.  Shared index prefixes are stored
once, which both compresses the coordinates and makes fiber-local
operations (SPLATT's cache-blocked MTTKRP) natural.

Layout per level ``l``:

* ``fids[l]``  — the index values at that level (one per node);
* ``fptr[l]``  — for each node at level ``l``, the start of its children
  in level ``l+1`` (CSR-style, ``len = n_nodes + 1``).

The MTTKRP over the *root* mode is a single bottom-up sweep: leaf values
scale the leaf factor rows, ``np.add.reduceat`` folds each level into
its parents, and each fold is Hadamard-scaled by the parent's factor
row — fully vectorized, no per-nonzero Python.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.sparse.coo import SparseTensor
from repro.util.errors import ShapeError
from repro.util.validation import check_mode


class CsfTensor:
    """A sparse tensor in compressed-sparse-fiber form.

    Build with :meth:`from_coo`; *mode_order* selects which tensor mode
    sits at each tree level (root first).  SPLATT's heuristic — shortest
    mode at the root — is the default.
    """

    __slots__ = ("shape", "mode_order", "fids", "fptr", "values")

    def __init__(
        self,
        shape: tuple[int, ...],
        mode_order: tuple[int, ...],
        fids: list[np.ndarray],
        fptr: list[np.ndarray],
        values: np.ndarray,
    ) -> None:
        self.shape = shape
        self.mode_order = mode_order
        self.fids = fids
        self.fptr = fptr
        self.values = values

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_coo(
        cls,
        x: SparseTensor,
        mode_order: Sequence[int] | None = None,
    ) -> "CsfTensor":
        """Compress a canonical COO tensor into CSF."""
        if not isinstance(x, SparseTensor):
            raise TypeError(
                f"x must be a SparseTensor, got {type(x).__name__}"
            )
        order = x.order
        if mode_order is None:
            # SPLATT heuristic: shortest mode at the root maximizes prefix
            # sharing; ties broken by mode index.
            mode_order = tuple(
                sorted(range(order), key=lambda m: (x.shape[m], m))
            )
        else:
            mode_order = tuple(int(m) for m in mode_order)
            if sorted(mode_order) != list(range(order)):
                raise ShapeError(
                    f"mode_order {mode_order} is not a permutation of "
                    f"range({order})"
                )
        idx = x.indices[:, mode_order]
        values = x.values
        if idx.shape[0]:
            sort = np.lexsort(
                tuple(idx[:, c] for c in range(order - 1, -1, -1))
            )
            idx = idx[sort]
            values = values[sort]
        fids: list[np.ndarray] = []
        fptr: list[np.ndarray] = []
        # Level l nodes = distinct prefixes of length l+1.
        nnz = idx.shape[0]
        for level in range(order):
            prefix = idx[:, : level + 1]
            if nnz:
                new_node = np.concatenate(
                    [[True], np.any(prefix[1:] != prefix[:-1], axis=1)]
                )
            else:
                new_node = np.zeros(0, dtype=bool)
            starts = np.flatnonzero(new_node)
            fids.append(
                np.ascontiguousarray(prefix[starts, level])
                if nnz
                else np.empty(0, dtype=np.int64)
            )
            if level > 0:
                # Parent pointers: positions of this level's starts within
                # the previous level's segmentation.
                prev_starts = fptr_starts
                ptr = np.searchsorted(starts, prev_starts, side="left")
                fptr.append(
                    np.concatenate([ptr, [len(starts)]]).astype(np.int64)
                )
            fptr_starts = starts
        # Leaf pointers into the value array.
        fptr.append(
            np.concatenate([fptr_starts, [nnz]]).astype(np.int64)
            if nnz
            else np.zeros(1, dtype=np.int64)
        )
        return cls(
            shape=x.shape,
            mode_order=mode_order,
            fids=fids,
            fptr=fptr,
            values=np.ascontiguousarray(values),
        )

    # -- properties -----------------------------------------------------------

    @property
    def order(self) -> int:
        return len(self.shape)

    @property
    def nnz(self) -> int:
        return self.values.shape[0]

    @property
    def root_mode(self) -> int:
        return self.mode_order[0]

    @property
    def storage_words(self) -> int:
        """Index + pointer + value storage, in 8-byte words."""
        total = self.values.size
        total += sum(f.size for f in self.fids)
        total += sum(p.size for p in self.fptr)
        return total

    def compression_vs_coo(self) -> float:
        """COO storage words over CSF storage words (> 1 = CSF smaller)."""
        coo_words = self.nnz * (self.order + 1)
        return coo_words / self.storage_words if self.storage_words else 1.0

    # -- conversion -------------------------------------------------------------

    def to_coo(self) -> SparseTensor:
        """Expand back to canonical COO."""
        nnz = self.nnz
        order = self.order
        idx = np.empty((nnz, order), dtype=np.int64)
        if nnz:
            # Walk levels top-down, repeating each node's fid over its span.
            for level in range(order):
                spans = self._leaf_spans(level)
                idx[:, level] = np.repeat(self.fids[level], spans)
        # Undo the mode permutation.
        out = np.empty_like(idx)
        for pos, mode in enumerate(self.mode_order):
            out[:, mode] = idx[:, pos]
        return SparseTensor(out, self.values.copy(), self.shape)

    def _leaf_spans(self, level: int) -> np.ndarray:
        """Number of leaves (nonzeros) under each node at *level*.

        ``fptr[l]`` maps a level-``l`` node position to the start of its
        children (level ``l+1`` for interior levels, the value array for
        the last); composing them walks any node down to its leaf range.
        """
        starts = np.arange(self.fids[level].size + 1, dtype=np.int64)
        for l in range(level, self.order):
            starts = self.fptr[l][starts]
        return np.diff(starts)

    def __repr__(self) -> str:
        dims = "x".join(str(s) for s in self.shape)
        return (
            f"CsfTensor(shape={dims}, nnz={self.nnz}, "
            f"mode_order={self.mode_order})"
        )


def csf_mttkrp(
    csf: CsfTensor, factors: Sequence[np.ndarray], mode: int
) -> np.ndarray:
    """SPLATT-style MTTKRP from a CSF tree.

    When *mode* is the CSF's root mode the computation is one bottom-up
    ``reduceat`` sweep.  For other modes the tensor is re-compressed with
    *mode* at the root (SPLATT keeps one CSF per mode for exactly this
    reason) — correctness-preserving, with the one-time compression cost
    made explicit.
    """
    if not isinstance(csf, CsfTensor):
        raise TypeError(f"csf must be a CsfTensor, got {type(csf).__name__}")
    mode = check_mode(mode, csf.order)
    if len(factors) != csf.order:
        raise ShapeError(
            f"need one factor per mode ({csf.order}), got {len(factors)}"
        )
    mats = [np.asarray(f, dtype=np.float64) for f in factors]
    rank = mats[0].shape[1]
    for m, f in enumerate(mats):
        if f.ndim != 2 or f.shape != (csf.shape[m], rank):
            raise ShapeError(
                f"factor {m} must be ({csf.shape[m]} x {rank}), got {f.shape}"
            )
    if mode != csf.root_mode:
        csf = CsfTensor.from_coo(
            csf.to_coo(),
            mode_order=(mode,)
            + tuple(m for m in csf.mode_order if m != mode),
        )
    out = np.zeros((csf.shape[mode], rank))
    if not csf.nnz:
        return out
    order = csf.order
    if order == 1:
        # No other modes: the MTTKRP is the value vector broadcast over R.
        np.add.at(out, csf.fids[0], csf.values[:, None] * np.ones((1, rank)))
        return out
    # Leaf level: scale values by the leaf mode's factor rows.
    leaf_mode = csf.mode_order[-1]
    current = csf.values[:, None] * mats[leaf_mode][csf.fids[-1]]
    # Fold levels bottom-up: fptr[level] segments level-(level+1) rows by
    # their level-`level` parents; Hadamard by each parent's factor row.
    for level in range(order - 2, 0, -1):
        current = np.add.reduceat(current, csf.fptr[level][:-1], axis=0)
        current *= mats[csf.mode_order[level]][csf.fids[level]]
    current = np.add.reduceat(current, csf.fptr[0][:-1], axis=0)
    np.add.at(out, csf.fids[0], current)
    return out
