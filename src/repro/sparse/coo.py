"""Coordinate (COO) sparse tensors.

Storage: an ``nnz x order`` integer index array plus an ``nnz`` value
vector, kept in canonical (lexicographically sorted, duplicate-free)
form.  Canonicalization makes equality, slicing, and the grouped
reductions in :mod:`repro.sparse.ops` straightforward and deterministic.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.tensor.dense import DenseTensor
from repro.util.errors import ShapeError
from repro.util.rng import default_rng
from repro.util.validation import check_probability


class SparseTensor:
    """An order-N sparse tensor in canonical COO form.

    Parameters
    ----------
    indices:
        ``(nnz, order)`` integer coordinates.
    values:
        ``(nnz,)`` float values.
    shape:
        Tensor extents; every coordinate must be within bounds.

    Duplicated coordinates are summed; explicit zeros are dropped.
    """

    __slots__ = ("_indices", "_values", "_shape")

    def __init__(
        self,
        indices: np.ndarray,
        values: np.ndarray,
        shape: Sequence[int],
    ) -> None:
        shape_t = tuple(int(s) for s in shape)
        if any(s < 1 for s in shape_t):
            raise ShapeError(f"shape must be positive, got {shape_t}")
        idx = np.asarray(indices, dtype=np.int64)
        val = np.asarray(values, dtype=np.float64)
        if idx.ndim != 2 or idx.shape[1] != len(shape_t):
            raise ShapeError(
                f"indices must be (nnz, {len(shape_t)}), got {idx.shape}"
            )
        if val.ndim != 1 or val.shape[0] != idx.shape[0]:
            raise ShapeError(
                f"values must be ({idx.shape[0]},), got {val.shape}"
            )
        if idx.size:
            if idx.min() < 0 or np.any(idx >= np.asarray(shape_t)):
                raise ShapeError("coordinates out of bounds")
        idx, val = _canonicalize(idx, val, shape_t)
        self._indices = idx
        self._values = val
        self._shape = shape_t

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_dense(
        cls, tensor: DenseTensor | np.ndarray, tolerance: float = 0.0
    ) -> "SparseTensor":
        """Sparsify a dense tensor, dropping |value| <= tolerance."""
        arr = np.asarray(
            tensor.data if isinstance(tensor, DenseTensor) else tensor,
            dtype=np.float64,
        )
        mask = np.abs(arr) > tolerance
        indices = np.argwhere(mask)
        return cls(indices, arr[mask], arr.shape)

    @classmethod
    def empty(cls, shape: Sequence[int]) -> "SparseTensor":
        order = len(tuple(shape))
        return cls(np.empty((0, order), dtype=np.int64), np.empty(0), shape)

    # -- properties ----------------------------------------------------------

    @property
    def indices(self) -> np.ndarray:
        """Canonical (sorted, unique) coordinates; do not mutate."""
        return self._indices

    @property
    def values(self) -> np.ndarray:
        return self._values

    @property
    def shape(self) -> tuple[int, ...]:
        return self._shape

    @property
    def order(self) -> int:
        return len(self._shape)

    @property
    def nnz(self) -> int:
        return self._values.shape[0]

    @property
    def density(self) -> float:
        total = math.prod(self._shape)
        return self.nnz / total if total else 0.0

    # -- conversions -----------------------------------------------------------

    def to_dense(self) -> DenseTensor:
        """Materialize as a dense tensor (row-major)."""
        out = np.zeros(self._shape)
        if self.nnz:
            out[tuple(self._indices.T)] = self._values
        return DenseTensor(out)

    def norm(self) -> float:
        """Frobenius norm."""
        return float(np.linalg.norm(self._values))

    def __repr__(self) -> str:
        dims = "x".join(str(s) for s in self._shape)
        return (
            f"SparseTensor(shape={dims}, nnz={self.nnz}, "
            f"density={self.density:.4f})"
        )


def _canonicalize(indices: np.ndarray, values: np.ndarray, shape):
    """Sort lexicographically, merge duplicates, drop zeros."""
    if indices.shape[0] == 0:
        return indices, values
    # lexsort keys: last key is primary -> feed reversed columns.
    order = np.lexsort(tuple(indices[:, c] for c in range(indices.shape[1] - 1, -1, -1)))
    idx = indices[order]
    val = values[order]
    if idx.shape[0] > 1:
        new_group = np.any(idx[1:] != idx[:-1], axis=1)
        boundaries = np.concatenate([[True], new_group])
        group_ids = np.cumsum(boundaries) - 1
        merged = np.zeros(group_ids[-1] + 1)
        np.add.at(merged, group_ids, val)
        idx = idx[boundaries]
        val = merged
    keep = val != 0.0
    return np.ascontiguousarray(idx[keep]), val[keep]


def random_sparse(
    shape: Sequence[int],
    density: float,
    seed=None,
) -> SparseTensor:
    """A random sparse tensor with ~``density`` fraction of nonzeros.

    Coordinates are sampled without replacement; values are standard
    normal.
    """
    shape_t = tuple(int(s) for s in shape)
    check_probability(density, "density")
    rng = default_rng(seed)
    total = math.prod(shape_t)
    nnz = int(round(density * total))
    if nnz == 0:
        return SparseTensor.empty(shape_t)
    flat = rng.choice(total, size=nnz, replace=False)
    indices = np.stack(np.unravel_index(flat, shape_t), axis=1)
    values = rng.standard_normal(nnz)
    return SparseTensor(indices, values, shape_t)
