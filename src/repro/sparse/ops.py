"""Sparse kernels: TTM and MTTKRP on COO tensors.

Both kernels follow the paper's in-place philosophy translated to the
sparse setting: no intermediate matricization of the tensor, grouped
accumulation directly from the coordinate list.

* :func:`ttm_sparse` — ``Y = X x_n U`` with X sparse and U dense; the
  result is a :class:`~repro.sparse.semisparse.SemiSparseTensor` (dense
  along mode n).  Each distinct non-n coordinate (a mode-n fiber of X)
  contributes ``value * U[:, i_n]`` to its output fiber, accumulated
  with a vectorized scatter-add.
* :func:`mttkrp_sparse` — the SPLATT-style sparse MTTKRP: for each
  nonzero, the Hadamard product of the other factors' rows is scaled by
  the value and scattered into row ``i_n`` of the output.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import SparseTensor
from repro.sparse.semisparse import SemiSparseTensor
from repro.util.errors import ShapeError
from repro.util.validation import check_mode


def _group_fibers(x: SparseTensor, mode: int):
    """Group nonzeros by their non-*mode* coordinates.

    Returns ``(fiber_indices, group_of_nnz)``: the distinct non-mode
    coordinate rows (sorted) and, per nonzero, the index of its group.
    """
    other_cols = [m for m in range(x.order) if m != mode]
    keys = x.indices[:, other_cols]
    if keys.shape[0] == 0:
        return keys, np.empty(0, dtype=np.int64)
    fibers, groups = np.unique(keys, axis=0, return_inverse=True)
    return fibers, groups.ravel()


def ttm_sparse(x: SparseTensor, u: np.ndarray, mode: int) -> SemiSparseTensor:
    """Sparse-tensor-times-dense-matrix: semi-sparse output, no unfolding."""
    if not isinstance(x, SparseTensor):
        raise TypeError(f"x must be a SparseTensor, got {type(x).__name__}")
    u = np.asarray(u, dtype=np.float64)
    mode = check_mode(mode, x.order)
    if u.ndim != 2 or u.shape[1] != x.shape[mode]:
        raise ShapeError(
            f"U shape {u.shape} does not match (J, I_n={x.shape[mode]})"
        )
    j = u.shape[0]
    out_shape = x.shape[:mode] + (j,) + x.shape[mode + 1 :]
    fibers, groups = _group_fibers(x, mode)
    block = np.zeros((fibers.shape[0], j))
    if x.nnz:
        # Contribution of nonzero t: value_t * U[:, i_n(t)] into its fiber.
        contributions = x.values[:, None] * u.T[x.indices[:, mode]]
        np.add.at(block, groups, contributions)
    return SemiSparseTensor(fibers, block, out_shape, mode)


def ttm_semisparse(
    x: SemiSparseTensor, u: np.ndarray, mode: int
) -> SemiSparseTensor:
    """Mode-n product of a semi-sparse tensor with a dense matrix.

    This is the inner step of memory-efficient sparse Tucker (Kolda &
    Sun's METTM, the paper's [22]): after the first sparse TTM the
    operand is dense along one mode, and subsequent products along
    *other* modes transform each fiber block without ever materializing
    the dense tensor.

    * ``mode == x.dense_mode``: every fiber block is hit by U on the
      right (``block @ U^T``) — fibers unchanged.
    * otherwise: fibers are regrouped by their coordinates excluding
      *mode*, and each group's blocks combine into J new fibers with
      weights ``U[j, i_mode]``.
    """
    if not isinstance(x, SemiSparseTensor):
        raise TypeError(
            f"x must be a SemiSparseTensor, got {type(x).__name__}"
        )
    u = np.asarray(u, dtype=np.float64)
    mode = check_mode(mode, x.order)
    if u.ndim != 2 or u.shape[1] != x.shape[mode]:
        raise ShapeError(
            f"U shape {u.shape} does not match (J, I_n={x.shape[mode]})"
        )
    j = u.shape[0]
    out_shape = x.shape[:mode] + (j,) + x.shape[mode + 1 :]
    if mode == x.dense_mode:
        return SemiSparseTensor(
            x.fiber_indices, x.block @ u.T, out_shape, mode
        )
    # Column of *mode* within the fiber-coordinate array.
    other_modes = [m for m in range(x.order) if m != x.dense_mode]
    col = other_modes.index(mode)
    rest_cols = [c for c in range(len(other_modes)) if c != col]
    rest = x.fiber_indices[:, rest_cols]
    if rest.shape[1] == 0:
        groups = np.zeros(x.n_fibers, dtype=np.int64)
        unique_rest = np.empty((1 if x.n_fibers else 0, 0), dtype=np.int64)
    else:
        unique_rest, inverse = np.unique(rest, axis=0, return_inverse=True)
        groups = inverse.ravel()
    n_groups = unique_rest.shape[0]
    k = x.shape[x.dense_mode]
    accum = np.zeros((n_groups, j, k))
    if x.n_fibers:
        # outer(U[:, i_mode], block_row) per fiber, scattered to its group.
        contributions = (
            u.T[x.fiber_indices[:, col]][:, :, None] * x.block[:, None, :]
        )
        np.add.at(accum, groups, contributions)
    # New fiber coordinates: every (rest, j) pair, j fastest.
    new_indices = np.empty((n_groups * j, len(other_modes)), dtype=np.int64)
    if n_groups:
        repeated = np.repeat(unique_rest, j, axis=0)
        for pos, c in enumerate(rest_cols):
            new_indices[:, c] = repeated[:, pos]
        new_indices[:, col] = np.tile(np.arange(j), n_groups)
    block = accum.reshape(n_groups * j, k)
    return SemiSparseTensor(new_indices, block, out_shape, x.dense_mode)


def mttkrp_sparse(
    x: SparseTensor, factors, mode: int
) -> np.ndarray:
    """SPLATT-style sparse MTTKRP: ``(I_n x R)`` from COO nonzeros."""
    if not isinstance(x, SparseTensor):
        raise TypeError(f"x must be a SparseTensor, got {type(x).__name__}")
    mode = check_mode(mode, x.order)
    if len(factors) != x.order:
        raise ShapeError(
            f"need one factor per mode ({x.order}), got {len(factors)}"
        )
    mats = [np.asarray(f, dtype=np.float64) for f in factors]
    rank = mats[0].shape[1]
    for m, f in enumerate(mats):
        if f.ndim != 2 or f.shape != (x.shape[m], rank):
            raise ShapeError(
                f"factor {m} must be ({x.shape[m]} x {rank}), got {f.shape}"
            )
    out = np.zeros((x.shape[mode], rank))
    if not x.nnz:
        return out
    # Hadamard of the other factors' rows, one row per nonzero.
    weights = np.full((x.nnz, rank), 1.0)
    for m in range(x.order):
        if m == mode:
            continue
        weights *= mats[m][x.indices[:, m]]
    weights *= x.values[:, None]
    np.add.at(out, x.indices[:, mode], weights)
    return out
