"""Sparse tensor primitives (the paper's §7 future-work direction).

The paper closes by naming sparse tensors as the next challenge:
"efficient data structure design and iteration".  This subpackage
provides the coordinate (COO) format, the sparse-tensor-times-dense-
matrix product whose output is *semi-sparse* (dense along the product
mode — the structure Kolda & Sun's METTM is built around), and the
SPLATT-style sparse MTTKRP, so the CP/Tucker algorithms above can run on
sparse inputs with the same APIs.
"""

from repro.sparse.coo import SparseTensor, random_sparse
from repro.sparse.csf import CsfTensor, csf_mttkrp
from repro.sparse.semisparse import SemiSparseTensor
from repro.sparse.ops import mttkrp_sparse, ttm_semisparse, ttm_sparse
from repro.sparse.tucker import cp_als_sparse, hooi_sparse, hosvd_sparse

__all__ = [
    "SparseTensor",
    "random_sparse",
    "CsfTensor",
    "csf_mttkrp",
    "SemiSparseTensor",
    "mttkrp_sparse",
    "ttm_semisparse",
    "ttm_sparse",
    "cp_als_sparse",
    "hooi_sparse",
    "hosvd_sparse",
]
