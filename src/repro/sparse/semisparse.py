"""Semi-sparse tensors: dense along one mode, sparse elsewhere.

A sparse TTM output is structurally dense along the product mode (every
surviving fiber gets all J entries) but keeps the input's sparsity over
the remaining modes.  Kolda & Sun's memory-efficient Tucker (METTM, the
paper's [22]) is organized around exactly this structure.  We store it
as the list of distinct *fiber coordinates* (indices over the non-dense
modes) plus a ``(n_fibers x J)`` dense value block.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.tensor.dense import DenseTensor
from repro.util.errors import ShapeError


class SemiSparseTensor:
    """A tensor dense along ``dense_mode`` and sparse over the rest."""

    __slots__ = ("_fiber_indices", "_block", "_shape", "_dense_mode")

    def __init__(
        self,
        fiber_indices: np.ndarray,
        block: np.ndarray,
        shape: Sequence[int],
        dense_mode: int,
    ) -> None:
        shape_t = tuple(int(s) for s in shape)
        order = len(shape_t)
        if not 0 <= dense_mode < order:
            raise ShapeError(
                f"dense_mode {dense_mode} out of range for order {order}"
            )
        idx = np.asarray(fiber_indices, dtype=np.int64)
        blk = np.asarray(block, dtype=np.float64)
        if idx.ndim != 2 or idx.shape[1] != order - 1:
            raise ShapeError(
                f"fiber_indices must be (n_fibers, {order - 1}), got "
                f"{idx.shape}"
            )
        if blk.shape != (idx.shape[0], shape_t[dense_mode]):
            raise ShapeError(
                f"block must be ({idx.shape[0]}, {shape_t[dense_mode]}), "
                f"got {blk.shape}"
            )
        other_extents = [s for m, s in enumerate(shape_t) if m != dense_mode]
        if idx.size and (idx.min() < 0 or np.any(idx >= np.asarray(other_extents))):
            raise ShapeError("fiber coordinates out of bounds")
        self._fiber_indices = idx
        self._block = blk
        self._shape = shape_t
        self._dense_mode = dense_mode

    @property
    def fiber_indices(self) -> np.ndarray:
        """(n_fibers, order-1) coordinates over the non-dense modes."""
        return self._fiber_indices

    @property
    def block(self) -> np.ndarray:
        """(n_fibers, J) dense values along the dense mode."""
        return self._block

    @property
    def shape(self) -> tuple[int, ...]:
        return self._shape

    @property
    def order(self) -> int:
        return len(self._shape)

    @property
    def dense_mode(self) -> int:
        return self._dense_mode

    @property
    def n_fibers(self) -> int:
        return self._fiber_indices.shape[0]

    @property
    def nnz(self) -> int:
        """Stored values (fibers x dense extent)."""
        return self._block.size

    @property
    def storage_words(self) -> int:
        """Words of storage: values + coordinates (as 8-byte words)."""
        return self._block.size + self._fiber_indices.size

    def to_dense(self) -> DenseTensor:
        out = np.zeros(self._shape)
        if self.n_fibers:
            moved = np.moveaxis(out, self._dense_mode, -1)
            moved[tuple(self._fiber_indices.T)] = self._block
        return DenseTensor(out)

    def norm(self) -> float:
        return float(np.linalg.norm(self._block))

    @property
    def densification(self) -> float:
        """Fraction of all fibers that are present (1.0 = fully dense)."""
        total = math.prod(self._shape) // self._shape[self._dense_mode]
        return self.n_fibers / total if total else 0.0

    def __repr__(self) -> str:
        dims = "x".join(str(s) for s in self._shape)
        return (
            f"SemiSparseTensor(shape={dims}, dense_mode={self._dense_mode}, "
            f"fibers={self.n_fibers})"
        )
