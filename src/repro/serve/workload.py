"""Trace-driven multi-tenant load generation and replay.

The harness follows the memory-simulator trace-generator pattern
(ramulator2's ``gen_trace.py``): a *trace* is a deterministic,
serializable list of request descriptors — tenant, shape, mode, J,
arrival offset, per-entry operand seed — produced once from a seeded RNG
and replayable anywhere, so a CI smoke run and a local debug run issue
byte-identical workloads.  Two arrival patterns:

``random``
    Tenants drawn by weight, exponential inter-arrival gaps — the bursty
    mixed traffic a shared service actually sees.
``stream``
    Evenly spaced arrivals with a deterministic weighted round-robin
    over tenants — the steady-state pattern for measuring sustained
    throughput without burst noise.

:func:`replay` drives a running :class:`~repro.serve.TtmServer` either
closed-loop (a semaphore caps the number of in-flight submissions — the
CI smoke mode, where zero sheds are an invariant) or open-loop (entries
fire at their trace timestamps regardless of completions — the overload
mode, where shedding is the point).  Every completed result can be
checked against the Algorithm-1 oracle, and the run distills into a
:class:`LoadReport`: p50/p95/p99 latency, shed and failure breakdowns,
plan-cache hit rate, batching behaviour, and sustained GFLOP/s.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.baselines.tensor_toolbox import ttm_copy
from repro.tensor.dense import DenseTensor
from repro.tensor.layout import Layout
from repro.util.errors import OverloadError, ReproError, ShapeError

TRACE_VERSION = 1


@dataclass(frozen=True)
class TenantProfile:
    """One tenant's traffic character: weight and the shapes it sends.

    ``shapes`` is a sequence of ``(shape, mode, j)`` triples the tenant
    cycles through; ``weight`` is its relative share of the request
    stream.  ``layout``/``dtype`` apply to all of the tenant's requests.
    """

    name: str
    weight: float = 1.0
    shapes: tuple = (((16, 16, 16), 0, 8),)
    layout: str = "row"
    dtype: str = "float32"

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ShapeError(
                f"tenant {self.name!r} weight must be > 0, got {self.weight}"
            )
        if not self.shapes:
            raise ShapeError(f"tenant {self.name!r} has no shapes")


@dataclass(frozen=True)
class TraceEntry:
    """One request descriptor: everything needed to re-issue it exactly.

    ``issue_s`` is the arrival offset from the start of the replay;
    ``seed`` derives the operand contents, so two replays of the same
    trace submit bit-identical tensors.
    """

    index: int
    tenant: str
    shape: tuple[int, ...]
    mode: int
    j: int
    layout: str
    dtype: str
    issue_s: float
    seed: int

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "tenant": self.tenant,
            "shape": list(self.shape),
            "mode": self.mode,
            "j": self.j,
            "layout": self.layout,
            "dtype": self.dtype,
            "issue_s": self.issue_s,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, row: dict) -> "TraceEntry":
        return cls(
            index=int(row["index"]),
            tenant=str(row["tenant"]),
            shape=tuple(int(s) for s in row["shape"]),
            mode=int(row["mode"]),
            j=int(row["j"]),
            layout=str(row["layout"]),
            dtype=str(row["dtype"]),
            issue_s=float(row["issue_s"]),
            seed=int(row["seed"]),
        )


_DEFAULT_SHAPE_SETS = (
    # Small cubes at two ranks: the bread-and-butter coalescible traffic.
    (((16, 16, 16), 0, 8), ((16, 16, 16), 1, 8)),
    # Mid-size cubes, last mode: distinct signature, still cheap.
    (((24, 24, 24), 2, 12), ((24, 24, 24), 0, 12)),
    # Rectangular order-4: exercises the general unfolding path.
    (((8, 12, 10, 6), 1, 10), ((8, 12, 10, 6), 3, 6)),
    # A slightly larger cube to spread the flops distribution.
    (((32, 32, 32), 0, 16),),
)


def default_tenants(count: int = 4) -> list[TenantProfile]:
    """*count* synthetic tenants with distinct weights and shape mixes.

    Weights follow a 4:3:2:1-style taper so per-tenant accounting in
    reports is visibly differentiated; shape sets cycle through
    :data:`_DEFAULT_SHAPE_SETS` so at least two tenants share coalescible
    signatures once ``count > len(_DEFAULT_SHAPE_SETS)``.
    """
    if count < 1:
        raise ShapeError(f"tenant count must be >= 1, got {count}")
    tenants = []
    for i in range(count):
        tenants.append(
            TenantProfile(
                name=f"tenant-{i}",
                weight=float(count - i),
                shapes=_DEFAULT_SHAPE_SETS[i % len(_DEFAULT_SHAPE_SETS)],
            )
        )
    return tenants


def generate_trace(
    tenants: Sequence[TenantProfile],
    requests: int,
    *,
    seed: int = 0,
    pattern: str = "random",
    rate_hz: float = 2000.0,
) -> list[TraceEntry]:
    """A deterministic multi-tenant trace of *requests* entries.

    ``pattern="random"`` draws tenants by weight with exponential
    inter-arrival gaps at mean rate *rate_hz*; ``pattern="stream"``
    spaces arrivals evenly and interleaves tenants with a deterministic
    weighted round-robin (largest-remainder style), so the stream is
    reproducible without sampling.  Each tenant cycles its own shape
    list independently in both patterns.
    """
    if requests < 1:
        raise ShapeError(f"requests must be >= 1, got {requests}")
    if pattern not in ("random", "stream"):
        raise ShapeError(
            f"pattern must be 'random' or 'stream', got {pattern!r}"
        )
    if rate_hz <= 0:
        raise ShapeError(f"rate_hz must be > 0, got {rate_hz}")
    tenants = list(tenants)
    rng = np.random.default_rng(seed)
    weights = np.array([t.weight for t in tenants], dtype=np.float64)
    weights /= weights.sum()
    shape_cursor = {t.name: 0 for t in tenants}
    credits = {t.name: 0.0 for t in tenants}
    entries: list[TraceEntry] = []
    clock = 0.0
    for index in range(requests):
        if pattern == "random":
            tenant = tenants[int(rng.choice(len(tenants), p=weights))]
            clock += float(rng.exponential(1.0 / rate_hz))
        else:
            # Weighted round-robin: accrue credit by weight, serve the
            # richest tenant, charge it one full unit.
            for t, w in zip(tenants, weights):
                credits[t.name] += float(w)
            tenant = max(tenants, key=lambda t: (credits[t.name], t.name))
            credits[tenant.name] -= 1.0
            clock = index / rate_hz
        cursor = shape_cursor[tenant.name]
        shape, mode, j = tenant.shapes[cursor % len(tenant.shapes)]
        shape_cursor[tenant.name] = cursor + 1
        entries.append(
            TraceEntry(
                index=index,
                tenant=tenant.name,
                shape=tuple(int(s) for s in shape),
                mode=int(mode),
                j=int(j),
                layout=tenant.layout,
                dtype=tenant.dtype,
                issue_s=clock,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
        )
    return entries


def save_trace(trace: Sequence[TraceEntry], path: str) -> None:
    """Write a trace as versioned JSON (the loadgen CLI's output)."""
    payload = {
        "version": TRACE_VERSION,
        "requests": len(trace),
        "entries": [entry.to_dict() for entry in trace],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")


def load_trace(path: str) -> list[TraceEntry]:
    """Read a trace written by :func:`save_trace`."""
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("version") != TRACE_VERSION:
        raise ShapeError(
            f"trace {path!r} has version {payload.get('version')!r}, "
            f"expected {TRACE_VERSION}"
        )
    return [TraceEntry.from_dict(row) for row in payload["entries"]]


def materialize(entry: TraceEntry) -> tuple[DenseTensor, np.ndarray]:
    """The ``(x, u)`` operands for one trace entry, from its own seed."""
    rng = np.random.default_rng(entry.seed)
    dtype = np.dtype(entry.dtype)
    layout = Layout.parse(entry.layout)
    order = "C" if layout is Layout.ROW_MAJOR else "F"
    data = np.asarray(
        rng.standard_normal(entry.shape, dtype=np.float64).astype(dtype),
        order=order,
    )
    x = DenseTensor(data, layout)
    u = rng.standard_normal(
        (entry.j, entry.shape[entry.mode]), dtype=np.float64
    ).astype(dtype)
    return x, u


@dataclass
class LoadReport:
    """The distilled outcome of one trace replay."""

    requests: int
    completed: int
    wrong: int
    failed: int
    shed: dict
    latencies_ms: dict
    wall_s: float
    sustained_gflops: float
    cache: dict
    batching: dict
    per_tenant: dict
    config: dict = field(default_factory=dict)

    @property
    def shed_rate(self) -> float:
        return self.shed["total"] / self.requests if self.requests else 0.0

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "completed": self.completed,
            "wrong": self.wrong,
            "failed": self.failed,
            "shed": dict(self.shed),
            "shed_rate": self.shed_rate,
            "latencies_ms": dict(self.latencies_ms),
            "wall_s": self.wall_s,
            "sustained_gflops": self.sustained_gflops,
            "cache": dict(self.cache),
            "batching": dict(self.batching),
            "per_tenant": {k: dict(v) for k, v in self.per_tenant.items()},
            "config": dict(self.config),
        }

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=1)
            fh.write("\n")

    def describe(self) -> str:
        lat = self.latencies_ms
        lines = [
            f"requests        {self.requests}",
            f"completed       {self.completed}"
            f"  (wrong: {self.wrong}, failed: {self.failed})",
            f"shed            {self.shed['total']}"
            f"  (rate {self.shed_rate:.2%}: {self.shed})",
            f"latency ms      p50 {lat['p50']:.3f}  p95 {lat['p95']:.3f}"
            f"  p99 {lat['p99']:.3f}  max {lat['max']:.3f}",
            f"wall            {self.wall_s:.3f} s"
            f"  ({self.sustained_gflops:.2f} sustained GFLOP/s)",
            f"plan cache      {self.cache['hit_rate']:.2%} hit rate"
            f" over {self.cache['lookups']} lookups",
            f"batching        {self.batching['batched_requests']} batched /"
            f" {self.batching['unbatched_requests']} unbatched"
            f" in {self.batching['batches']} dispatches"
            f" (max batch {self.batching['max_batch']})",
        ]
        for tenant in sorted(self.per_tenant):
            row = self.per_tenant[tenant]
            lines.append(
                f"  {tenant:<12} completed {row['completed']:>6}"
                f"  shed {row['shed']:>4}  p99 {row['p99_ms']:.3f} ms"
            )
        return "\n".join(lines)


def _percentiles(samples_ms: list[float]) -> dict:
    if not samples_ms:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0, "mean": 0.0}
    arr = np.asarray(samples_ms, dtype=np.float64)
    return {
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "p99": float(np.percentile(arr, 99)),
        "max": float(arr.max()),
        "mean": float(arr.mean()),
    }


def _check_result(entry: TraceEntry, y: DenseTensor) -> bool:
    """True when *y* matches the Algorithm-1 oracle for *entry*."""
    x, u = materialize(entry)
    expected = ttm_copy(x, u, entry.mode)
    tol = 1e-5 if np.dtype(entry.dtype) == np.float32 else 1e-10
    return bool(
        np.allclose(y.data, expected.data, rtol=tol, atol=tol)
        and y.data.shape == expected.data.shape
    )


async def replay(
    server,
    trace: Sequence[TraceEntry],
    *,
    concurrency: int = 64,
    open_loop: bool = False,
    verify: bool = False,
    deadline_s: float | None = None,
    time_scale: float = 1.0,
) -> LoadReport:
    """Drive *server* with *trace* and distill a :class:`LoadReport`.

    Closed-loop (default): a semaphore keeps at most *concurrency*
    submissions in flight, so arrival timestamps are ignored and the
    server sees steady pressure — the deterministic CI mode.  Open-loop:
    entries fire at ``issue_s * time_scale`` regardless of completions,
    which can outrun the server and exercise shedding.  *verify* checks
    every completed result against the Algorithm-1 oracle (expensive:
    one extra TTM per request).
    """
    if concurrency < 1:
        raise ShapeError(f"concurrency must be >= 1, got {concurrency}")
    trace = list(trace)
    gate = asyncio.Semaphore(concurrency)
    shed = {
        "total": 0,
        "admission": 0,
        "tenant-quota": 0,
        "deadline": 0,
        "watchdog": 0,
    }
    tenant_rows: dict[str, dict] = {}
    tenant_lat: dict[str, list[float]] = {}
    latencies_ms: list[float] = []
    tally = {"completed": 0, "wrong": 0, "failed": 0, "flops": 0}

    def _tenant_row(tenant: str) -> dict:
        tenant_lat.setdefault(tenant, [])
        return tenant_rows.setdefault(
            tenant, {"requests": 0, "completed": 0, "shed": 0, "failed": 0}
        )

    async def _issue(entry: TraceEntry) -> None:
        row = _tenant_row(entry.tenant)
        row["requests"] += 1
        x, u = materialize(entry)
        try:
            result = await server.submit(
                x, u, entry.mode, tenant=entry.tenant, deadline_s=deadline_s
            )
        except OverloadError as exc:
            reason = exc.reason if exc.reason in shed else "admission"
            shed["total"] += 1
            shed[reason] += 1
            row["shed"] += 1
            return
        except ReproError:
            tally["failed"] += 1
            row["failed"] += 1
            return
        tally["completed"] += 1
        tally["flops"] += result.flops
        row["completed"] += 1
        ms = result.latency_s * 1e3
        latencies_ms.append(ms)
        tenant_lat[entry.tenant].append(ms)
        if verify and not _check_result(entry, result.y):
            tally["wrong"] += 1

    async def _closed(entry: TraceEntry) -> None:
        async with gate:
            await _issue(entry)

    async def _open(entry: TraceEntry, start: float) -> None:
        delay = entry.issue_s * time_scale - (time.perf_counter() - start)
        if delay > 0:
            await asyncio.sleep(delay)
        await _issue(entry)

    start = time.perf_counter()
    if open_loop:
        await asyncio.gather(*(_open(e, start) for e in trace))
    else:
        await asyncio.gather(*(_closed(e) for e in trace))
    wall_s = time.perf_counter() - start

    snapshot = server.snapshot()
    cache = snapshot["plan_cache"]["stats"]
    lookups = cache.get("hits", 0) + cache.get("misses", 0)
    per_tenant = {}
    for tenant, row in tenant_rows.items():
        pct = _percentiles(tenant_lat[tenant])
        per_tenant[tenant] = {**row, "p99_ms": pct["p99"]}
    return LoadReport(
        requests=len(trace),
        completed=tally["completed"],
        wrong=tally["wrong"],
        failed=tally["failed"],
        shed=shed,
        latencies_ms=_percentiles(latencies_ms),
        wall_s=wall_s,
        sustained_gflops=(
            tally["flops"] / wall_s / 1e9 if wall_s > 0 else math.inf
        ),
        cache={
            "hit_rate": snapshot["plan_cache"]["hit_rate"],
            "lookups": lookups,
            "entries": snapshot["plan_cache"]["entries"],
            "per_tenant": snapshot["plan_cache"]["per_tenant"],
        },
        batching={
            "batches": snapshot["stats"]["batches"],
            "batched_requests": snapshot["stats"]["batched_requests"],
            "unbatched_requests": snapshot["stats"]["unbatched_requests"],
            "max_batch": snapshot["stats"]["max_batch"],
            "batch_fallbacks": snapshot["stats"]["batch_fallbacks"],
        },
        per_tenant=per_tenant,
        config={
            "concurrency": concurrency,
            "open_loop": open_loop,
            "verify": verify,
            "deadline_s": deadline_s,
        },
    )
