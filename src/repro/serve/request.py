"""Request and response records for the TTM serving layer.

A :class:`TtmRequest` is one tenant's TTM call frozen at admission time:
operands, product mode, and the absolute deadline its latency budget
implies.  Requests that agree on geometry, layout, and dtype share a
:class:`~repro.serve.batcher.FleetSignature` and can be coalesced into
one batched dispatch; everything the batcher needs to group them is
derivable from this record alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.perf.flops import ttm_flops
from repro.tensor.dense import DenseTensor


@dataclass
class TtmRequest:
    """One admitted TTM request: ``y = x ×_mode u`` for *tenant*.

    ``arrival_s``/``deadline_s`` are ``time.perf_counter()`` seconds;
    ``deadline_s`` is absolute (arrival plus the caller's budget) and
    None when the request has no deadline.  ``future`` is the asyncio
    future the submitting coroutine awaits; the dispatcher resolves it
    with a :class:`RequestResult` or a typed error.
    """

    tenant: str
    x: DenseTensor
    u: np.ndarray
    mode: int
    request_id: int = -1
    arrival_s: float = 0.0
    deadline_s: float | None = None
    future: Any = field(default=None, repr=False, compare=False)

    @property
    def j(self) -> int:
        """The output rank of this request (rows of U)."""
        return int(self.u.shape[0])

    @property
    def flops(self) -> int:
        """The request's useful work, for sustained-GFLOP/s accounting."""
        return ttm_flops(self.x.shape, self.j)

    def expired(self, now: float) -> bool:
        """True when the deadline passed before *now* (False without one)."""
        return self.deadline_s is not None and now > self.deadline_s


@dataclass
class RequestResult:
    """A completed request's product plus its serving telemetry."""

    request_id: int
    tenant: str
    y: DenseTensor
    latency_s: float
    queue_s: float
    batch_size: int
    batched: bool
    flops: int

    def to_dict(self) -> dict:
        """JSON-safe telemetry (the tensor itself is not serialized)."""
        return {
            "request_id": self.request_id,
            "tenant": self.tenant,
            "latency_s": self.latency_s,
            "queue_s": self.queue_s,
            "batch_size": self.batch_size,
            "batched": self.batched,
            "flops": self.flops,
        }
