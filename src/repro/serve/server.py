"""The asyncio TTM serving engine: admit, coalesce, execute, degrade.

:class:`TtmServer` is the front-end the ROADMAP's "heavy traffic" north
star asks for.  One dispatcher coroutine drains an internal queue in
micro-batches (a bounded *batch window*), groups compatible requests
into ``gemm_batched`` fleets, and runs each group on a small thread
pool; NumPy kernels release the GIL, so groups genuinely overlap.

The degradation ladder, in order of preference (DESIGN.md §12):

1. **Coalesced fleet** — one batched dispatch for the whole group.
2. **Guarded per-request execution** — when the fleet's staging buffers
   do not fit the memory the PR-5 guard sees available, or any fleet
   error occurs, the group re-runs request by request through
   ``InTensLi.execute(..., allow_replan=True)``, where the memory guard
   may further degrade each call to a lower-degree plan.
3. **Load shedding** — admission control refuses work at the door, and
   queued requests whose deadline lapses before dispatch (or whose
   batch trips the serving watchdog) resolve with a typed
   :class:`~repro.util.errors.OverloadError` instead of waiting
   forever.  A shed request never returns a wrong tensor.

Planning is shared: one :class:`repro.autotune.PlanCache` serves every
tenant, with per-tenant hit/miss accounting and entry quotas, so one
tenant's warm signatures speed up every other tenant that sends the
same shapes while no tenant can monopolize the cache.

Memory-budget policy: plans are cached per signature but memory
*verdicts* are not — each group execution snapshots the budget once via
:func:`repro.resilience.memory.pinned_budget` and makes every decision
for that group (staging admission, per-request guard probes) against
that one number.  Flipping ``$REPRO_MEM_LIMIT`` therefore takes effect
at the next group boundary, never mid-group.
"""

from __future__ import annotations

import asyncio
import logging
import os
import tempfile
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.autotune.cache import PlanCache, PlanKey
from repro.autotune.store import PlanStore
from repro.core.intensli import InTensLi, _match_u_dtype
from repro.obs.tracer import ROOT, active_tracer
from repro.resilience.memory import pinned_budget
from repro.serve.admission import AdmissionController
from repro.serve.batcher import (
    FleetSignature,
    coalesce,
    execute_fleet,
    fleet_staging_bytes,
)
from repro.serve.request import RequestResult, TtmRequest
from repro.tensor.dense import DenseTensor
from repro.util.errors import OverloadError, ReproError, ShapeError
from repro.util.validation import check_mode

log = logging.getLogger("repro.serve")

_STOP = object()


@dataclass
class ServeConfig:
    """Tunable serving policy (all knobs have safe defaults).

    ``max_batch``/``batch_window_s`` bound the micro-batching: the
    dispatcher collects at most *max_batch* requests or waits at most
    *batch_window_s* after the first arrival, whichever comes first.
    ``coalesce=False`` disables fleet formation entirely (the
    per-request baseline the serving benchmark compares against).
    ``watchdog_s`` bounds how long the dispatcher waits on one group's
    execution before shedding its requests; None disables the watchdog.
    """

    max_inflight: int = 256
    tenant_inflight: int | None = None
    max_batch: int = 64
    batch_window_s: float = 0.002
    workers: int = 2
    coalesce: bool = True
    default_deadline_s: float | None = None
    watchdog_s: float | None = None
    tenant_cache_quota: int | None = None
    allow_replan: bool = True
    max_threads: int = 1
    executor: str = "generated"


@dataclass
class ServerStats:
    """Lifetime serving tallies (thread-safe; mirrored into reports)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    shed_admission: int = 0
    shed_tenant_quota: int = 0
    shed_deadline: int = 0
    shed_watchdog: int = 0
    batches: int = 0
    batched_requests: int = 0
    unbatched_requests: int = 0
    max_batch: int = 0
    batch_fallbacks: int = 0
    completed_flops: int = 0
    busy_s: float = 0.0
    per_tenant: dict = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    @property
    def shed_total(self) -> int:
        return (
            self.shed_admission
            + self.shed_tenant_quota
            + self.shed_deadline
            + self.shed_watchdog
        )

    def _tenant(self, tenant: str) -> dict:
        return self.per_tenant.setdefault(
            tenant, {"completed": 0, "shed": 0, "failed": 0}
        )

    def count_shed(self, reason: str, tenant: str) -> None:
        field_name = {
            "admission": "shed_admission",
            "tenant-quota": "shed_tenant_quota",
            "deadline": "shed_deadline",
            "watchdog": "shed_watchdog",
        }[reason]
        with self._lock:
            setattr(self, field_name, getattr(self, field_name) + 1)
            self._tenant(tenant)["shed"] += 1

    def count_completed(self, tenant: str, flops: int) -> None:
        with self._lock:
            self.completed += 1
            self.completed_flops += flops
            self._tenant(tenant)["completed"] += 1

    def count_failed(self, tenant: str) -> None:
        with self._lock:
            self.failed += 1
            self._tenant(tenant)["failed"] += 1

    def count_group(self, size: int, batched: bool) -> None:
        with self._lock:
            self.batches += 1
            if batched:
                self.batched_requests += size
                if size > self.max_batch:
                    self.max_batch = size
            else:
                self.unbatched_requests += size

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "shed": {
                    "total": self.shed_total,
                    "admission": self.shed_admission,
                    "tenant-quota": self.shed_tenant_quota,
                    "deadline": self.shed_deadline,
                    "watchdog": self.shed_watchdog,
                },
                "batches": self.batches,
                "batched_requests": self.batched_requests,
                "unbatched_requests": self.unbatched_requests,
                "max_batch": self.max_batch,
                "batch_fallbacks": self.batch_fallbacks,
                "completed_flops": self.completed_flops,
                "busy_s": self.busy_s,
                "per_tenant": {
                    tenant: dict(row)
                    for tenant, row in sorted(self.per_tenant.items())
                },
            }


def _private_plan_cache(quota: int | None) -> PlanCache:
    """A process-private, non-persisting plan cache for one server.

    The store path is fresh and never written (``autosave=False``), so
    serving accumulates tenant-shared plans in memory without touching
    the user's on-disk autotune cache; pass an explicit
    :class:`PlanCache` to the server to share the persistent store.
    """
    path = os.path.join(
        tempfile.gettempdir(), f"repro-serve-{uuid.uuid4().hex}.json"
    )
    return PlanCache(
        store=PlanStore(path), autosave=False, tenant_quota=quota
    )


class TtmServer:
    """Concurrent multi-tenant TTM serving on top of :class:`InTensLi`.

    Parameters
    ----------
    lib:
        The planning/execution facade requests run through; a private
        single-thread instance by default.
    config:
        Serving policy; see :class:`ServeConfig`.
    plan_cache:
        The tenant-shared :class:`~repro.autotune.PlanCache`.  Defaults
        to a process-private, non-persisting cache (per-tenant quotas
        from ``config.tenant_cache_quota``).
    """

    def __init__(
        self,
        lib: InTensLi | None = None,
        config: ServeConfig | None = None,
        plan_cache: PlanCache | None = None,
    ) -> None:
        self.config = config or ServeConfig()
        self._lib = lib or InTensLi(
            max_threads=self.config.max_threads,
            executor=self.config.executor,
        )
        self.plan_cache = (
            plan_cache
            if plan_cache is not None
            else _private_plan_cache(self.config.tenant_cache_quota)
        )
        self.admission = AdmissionController(
            max_inflight=self.config.max_inflight,
            tenant_inflight=self.config.tenant_inflight,
        )
        self.stats = ServerStats()
        self._queue: asyncio.Queue | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._dispatcher: asyncio.Task | None = None
        self._group_tasks: set[asyncio.Task] = set()
        self._next_id = 0
        self._running = False

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        """Start the dispatcher; must run inside the serving event loop."""
        if self._running:
            raise OverloadError("server already started", reason="lifecycle")
        self._queue = asyncio.Queue()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="repro-serve"
        )
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        self._running = True

    async def stop(self) -> None:
        """Drain in-flight work, then shut the dispatcher and pool down."""
        if not self._running:
            return
        self._running = False
        assert self._queue is not None
        await self._queue.put(_STOP)
        if self._dispatcher is not None:
            await self._dispatcher
        if self._group_tasks:
            await asyncio.gather(*self._group_tasks, return_exceptions=True)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        self._queue = None
        self._pool = None
        self._dispatcher = None

    # -- submission -----------------------------------------------------------

    async def submit(
        self,
        x,
        u,
        mode: int,
        *,
        tenant: str = "default",
        deadline_s: float | None = None,
        transpose_u: bool = False,
    ) -> RequestResult:
        """Serve one TTM request; resolves when the product is computed.

        Raises :class:`OverloadError` when the request is shed
        (admission, tenant quota, deadline, watchdog) and the usual
        typed validation errors for malformed operands.  *deadline_s*
        is a relative latency budget in seconds (None: the config
        default, which may also be None for no deadline).
        """
        if not self._running or self._queue is None:
            raise OverloadError("server is not running", reason="lifecycle")
        if not isinstance(x, DenseTensor):
            x = DenseTensor(np.asarray(x))
        u = _match_u_dtype(u, x.data.dtype)
        if u.ndim != 2:
            raise ShapeError(f"U must be 2-D, got {u.ndim}-D")
        if transpose_u:
            u = u.T
        mode = check_mode(mode, x.order)
        if u.shape[1] != x.shape[mode]:
            raise ShapeError(
                f"U columns {u.shape[1]} != tensor extent {x.shape[mode]} "
                f"at mode {mode}"
            )
        budget = (
            deadline_s
            if deadline_s is not None
            else self.config.default_deadline_s
        )
        try:
            self.admission.admit(tenant)
        except OverloadError as exc:
            self.stats.count_shed(exc.reason, tenant)
            raise
        now = time.perf_counter()
        self._next_id += 1
        request = TtmRequest(
            tenant=tenant,
            x=x,
            u=u,
            mode=mode,
            request_id=self._next_id,
            arrival_s=now,
            deadline_s=None if budget is None else now + budget,
            future=asyncio.get_running_loop().create_future(),
        )
        with self.stats._lock:
            self.stats.submitted += 1
        try:
            await self._queue.put(request)
            return await request.future
        finally:
            self.admission.release(tenant)

    # -- dispatch -------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._queue is not None
        stopping = False
        while not stopping:
            first = await self._queue.get()
            if first is _STOP:
                break
            batch = [first]
            stopping = self._drain_into(batch)
            if (
                not stopping
                and len(batch) < self.config.max_batch
                and self.config.batch_window_s > 0
            ):
                await asyncio.sleep(self.config.batch_window_s)
                stopping = self._drain_into(batch)
            for sig, group in coalesce(batch):
                task = asyncio.create_task(self._run_group(sig, group))
                self._group_tasks.add(task)
                task.add_done_callback(self._group_tasks.discard)

    def _drain_into(self, batch: list) -> bool:
        """Move queued requests into *batch* (no await); True on _STOP."""
        assert self._queue is not None
        while len(batch) < self.config.max_batch:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return False
            if item is _STOP:
                return True
            batch.append(item)
        return False

    async def _run_group(self, sig: FleetSignature, group: list) -> None:
        now = time.perf_counter()
        live: list[TtmRequest] = []
        for request in group:
            if request.expired(now):
                self._shed(request, "deadline")
            else:
                live.append(request)
        if not live:
            return
        plan = self._plan_for(sig, live)
        loop = asyncio.get_running_loop()
        work = loop.run_in_executor(
            self._pool, self._execute_group, sig, live, plan, now
        )
        try:
            if self.config.watchdog_s is not None:
                results = await asyncio.wait_for(
                    work, timeout=self.config.watchdog_s
                )
            else:
                results = await work
        except asyncio.TimeoutError:
            # The worker thread cannot be killed, but its waiters can be
            # released: every request in the group sheds now, and the
            # eventual result (if any) is discarded.
            log.warning(
                "serving watchdog (%.3gs) tripped on batch %s x%d; "
                "shedding its requests",
                self.config.watchdog_s,
                sig.describe(),
                len(live),
            )
            for request in live:
                self._shed(request, "watchdog")
            return
        end = time.perf_counter()
        batched = len(live) > 1 and self.config.coalesce
        for request, outcome in zip(live, results):
            if isinstance(outcome, OverloadError):
                # Worker-side deadline shed: the request expired while
                # queued behind slow work in the thread pool.
                self.stats.count_shed(outcome.reason, request.tenant)
                if not request.future.done():
                    request.future.set_exception(outcome)
                continue
            if isinstance(outcome, BaseException):
                self.stats.count_failed(request.tenant)
                if not request.future.done():
                    request.future.set_exception(outcome)
                continue
            result = RequestResult(
                request_id=request.request_id,
                tenant=request.tenant,
                y=outcome,
                latency_s=end - request.arrival_s,
                queue_s=now - request.arrival_s,
                batch_size=len(live),
                batched=batched,
                flops=request.flops,
            )
            self.stats.count_completed(request.tenant, request.flops)
            if not request.future.done():
                request.future.set_result(result)

    def _shed(self, request: TtmRequest, reason: str) -> None:
        self.stats.count_shed(reason, request.tenant)
        if not request.future.done():
            request.future.set_exception(
                OverloadError(
                    f"request {request.request_id} shed ({reason})",
                    reason=reason,
                    tenant=request.tenant,
                )
            )

    # -- planning -------------------------------------------------------------

    def _plan_for(self, sig: FleetSignature, requests: list):
        """The shared plan for a signature, counted per requesting tenant.

        Each request in the group performs its own (cheap) cache lookup
        so per-tenant hit rates stay exact; the first miss pays the
        estimator once and publishes the plan for every later tenant.
        """
        key = PlanKey.make(
            sig.shape,
            sig.mode,
            sig.j,
            sig.layout,
            self._lib.max_threads,
            sig.dtype,
        )
        plan = None
        misses: list[str] = []
        for request in requests:
            entry = self.plan_cache.get(key, tenant=request.tenant)
            if entry is not None:
                plan = entry.plan
            else:
                misses.append(request.tenant)
        if plan is None:
            plan = self._lib.estimator.estimate(
                sig.shape,
                sig.mode,
                sig.j,
                sig.layout,
                dtype=np.dtype(sig.dtype),
            )
        for tenant in misses:
            self.plan_cache.put(key, plan, source="estimator", tenant=tenant)
        return plan

    # -- execution (worker threads) -------------------------------------------

    def _execute_group(self, sig, requests, plan, dispatched_s):
        start = time.perf_counter()
        tracer = active_tracer()
        try:
            if not tracer.enabled:
                return self._execute_group_impl(sig, requests, plan)
            with tracer.span(
                "serve-batch",
                parent=ROOT,
                batch=len(requests),
                signature=sig.describe(),
                tenants=sorted({r.tenant for r in requests}),
            ) as span:
                results = self._execute_group_impl(sig, requests, plan)
                span.set(
                    failed=sum(
                        1 for r in results if isinstance(r, BaseException)
                    )
                )
                for request in requests:
                    # Zero-duration leaves carrying each request's
                    # telemetry, so one batch renders as a tree with one
                    # node per tenant request.
                    with tracer.span(
                        "request",
                        tenant=request.tenant,
                        request_id=request.request_id,
                        queue_s=dispatched_s - request.arrival_s,
                    ):
                        pass
                return results
        finally:
            with self.stats._lock:
                self.stats.busy_s += time.perf_counter() - start

    def _execute_group_impl(self, sig, requests, plan):
        """Fleet dispatch with the degradation ladder; one outcome each."""
        # Deadlines are re-checked here, on the worker thread: a request
        # passes the dispatch-time check, but the pool itself can back
        # up behind slow batches, and work that has already missed its
        # budget must be dropped, not computed.
        now = time.perf_counter()
        expired = [r for r in requests if r.expired(now)]
        if expired:
            outcomes = {
                id(r): OverloadError(
                    f"request {r.request_id} shed (deadline)",
                    reason="deadline",
                    tenant=r.tenant,
                )
                for r in expired
            }
            live = [r for r in requests if id(r) not in outcomes]
            if live:
                for r, out in zip(live, self._execute_group_impl(sig, live, plan)):
                    outcomes[id(r)] = out
            return [outcomes[id(r)] for r in requests]
        # One budget snapshot per group: the staging-admission verdict
        # and every guard probe inside the per-request fallbacks read the
        # same number (thread-local, so concurrent workers don't share
        # pins).  The default call-time re-read policy resumes when the
        # group finishes — see the policy note in
        # ``repro.resilience.memory``.
        with pinned_budget() as budget:
            batched = len(requests) > 1 and self.config.coalesce
            if batched:
                staging = fleet_staging_bytes(sig, len(requests))
                if budget is not None and staging > budget:
                    log.warning(
                        "fleet staging for %s x%d needs %d bytes, %d "
                        "available; degrading to guarded per-request "
                        "execution",
                        sig.describe(),
                        len(requests),
                        staging,
                        budget,
                    )
                    with self.stats._lock:
                        self.stats.batch_fallbacks += 1
                    batched = False
            if batched:
                try:
                    results = execute_fleet(sig, requests)
                    self.stats.count_group(len(requests), batched=True)
                    return results
                except ReproError as exc:
                    # Any typed fleet failure degrades the whole group to
                    # the per-request path, which has its own fallback
                    # chains.
                    log.warning(
                        "fleet dispatch failed (%s: %s); degrading to "
                        "per-request execution",
                        type(exc).__name__,
                        exc,
                    )
                    with self.stats._lock:
                        self.stats.batch_fallbacks += 1
            self.stats.count_group(len(requests), batched=False)
            outcomes = []
            for request in requests:
                try:
                    outcomes.append(
                        self._lib.execute(
                            plan,
                            request.x,
                            request.u,
                            allow_replan=self.config.allow_replan,
                        )
                    )
                except ReproError as exc:
                    outcomes.append(exc)
            return outcomes

    # -- reporting ------------------------------------------------------------

    def snapshot(self) -> dict:
        """Everything observable about this server, JSON-safe."""
        return {
            "stats": self.stats.as_dict(),
            "admission": self.admission.snapshot(),
            "plan_cache": {
                "entries": len(self.plan_cache),
                "stats": self.plan_cache.stats.as_dict(),
                "hit_rate": self.plan_cache.stats.hit_rate,
                "per_tenant": {
                    tenant: self.plan_cache.tenant_stats(tenant).as_dict()
                    for tenant in self.plan_cache.tenants()
                },
            },
        }
