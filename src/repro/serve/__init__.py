"""``repro.serve`` — concurrent multi-tenant TTM serving.

The library below this package is single-caller: one thread plans and
executes one TTM at a time.  This package turns it into a serving
engine: an asyncio front-end (:class:`TtmServer`) that admits requests
from many tenants, coalesces compatible small requests into
``gemm_batched`` fleets (the PR-1 batching win applied *across*
callers), shares one :class:`repro.autotune.PlanCache` across tenants
with per-tenant quotas and hit-rate accounting, and degrades gracefully
under overload using the resilience primitives — memory pressure
degrades a fleet to guarded per-request execution (with lower-degree
replans), deadlines and the serving watchdog shed load with a typed
:class:`~repro.util.errors.OverloadError` instead of queueing forever.

Paired with it, :mod:`repro.serve.workload` generates and replays
deterministic multi-tenant request traces (the ramulator2
``gen_trace.py`` pattern: weighted tenants, random vs. streaming
arrivals, seeded RNG) and reports p50/p95/p99 latency, shed rate, cache
hit rate, and sustained GFLOP/s.

Quick use::

    import asyncio
    from repro.serve import ServeConfig, TtmServer
    from repro.serve.workload import default_tenants, generate_trace, replay

    async def main():
        server = TtmServer(config=ServeConfig(max_batch=32))
        await server.start()
        try:
            trace = generate_trace(default_tenants(4), 2000, seed=7)
            report = await replay(server, trace, concurrency=64)
        finally:
            await server.stop()
        print(report.describe())

    asyncio.run(main())

Or from the shell: ``python -m repro serve --requests 2000 --tenants 4``.
"""

from repro.serve.admission import AdmissionController
from repro.serve.batcher import (
    FleetSignature,
    coalesce,
    execute_fleet,
    fleet_staging_bytes,
    signature_of,
)
from repro.serve.request import RequestResult, TtmRequest
from repro.serve.server import ServeConfig, ServerStats, TtmServer
from repro.serve.workload import (
    LoadReport,
    TenantProfile,
    TraceEntry,
    default_tenants,
    generate_trace,
    load_trace,
    materialize,
    replay,
    save_trace,
)
from repro.util.errors import OverloadError

__all__ = [
    "AdmissionController",
    "FleetSignature",
    "LoadReport",
    "OverloadError",
    "RequestResult",
    "ServeConfig",
    "ServerStats",
    "TenantProfile",
    "TraceEntry",
    "TtmRequest",
    "TtmServer",
    "coalesce",
    "default_tenants",
    "execute_fleet",
    "fleet_staging_bytes",
    "generate_trace",
    "load_trace",
    "materialize",
    "replay",
    "save_trace",
    "signature_of",
]
