"""Admission control: bound what the serving engine ever takes on.

Load shedding happens *at the door*, not after resources are committed:
a request is admitted only when the server-wide in-flight count and the
submitting tenant's share both have room, and a refused request costs
one counter increment and a typed
:class:`~repro.util.errors.OverloadError` — no queue entry, no operand
staging, no plan lookup.  This is the first rung of the degradation
ladder (DESIGN.md §12): under overload the system stays correct and
bounded by doing strictly less work.
"""

from __future__ import annotations

import threading

from repro.util.errors import OverloadError


class AdmissionController:
    """Server-wide and per-tenant in-flight caps with shed accounting.

    Parameters
    ----------
    max_inflight:
        Most requests admitted but not yet resolved, across all tenants.
    tenant_inflight:
        Most in-flight requests any single tenant may hold; None means a
        tenant is bounded only by the server-wide cap.  This is what
        keeps one chatty tenant from starving the rest: a full tenant
        share sheds with reason ``"tenant-quota"`` while other tenants'
        requests still clear admission.

    Thread-safe; the asyncio front-end and test drivers on other threads
    may admit/release concurrently.
    """

    def __init__(
        self,
        max_inflight: int = 256,
        tenant_inflight: int | None = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if tenant_inflight is not None and tenant_inflight < 1:
            raise ValueError(
                f"tenant_inflight must be >= 1, got {tenant_inflight}"
            )
        self.max_inflight = max_inflight
        self.tenant_inflight = tenant_inflight
        self._lock = threading.Lock()
        self._inflight = 0
        self._tenant_inflight: dict[str, int] = {}
        self.admitted = 0
        self.rejected: dict[str, int] = {"admission": 0, "tenant-quota": 0}

    @property
    def inflight(self) -> int:
        """Requests currently admitted and unresolved (all tenants)."""
        with self._lock:
            return self._inflight

    def tenant_load(self, tenant: str) -> int:
        """*tenant*'s currently admitted, unresolved requests."""
        with self._lock:
            return self._tenant_inflight.get(tenant, 0)

    def admit(self, tenant: str) -> None:
        """Take one in-flight slot for *tenant* or shed the request.

        Raises :class:`OverloadError` with ``reason="admission"`` when
        the server is at capacity and ``reason="tenant-quota"`` when
        only the tenant's share is exhausted.  On success the slot is
        held until :meth:`release`.
        """
        with self._lock:
            if self._inflight >= self.max_inflight:
                self.rejected["admission"] += 1
                raise OverloadError(
                    f"server at capacity ({self.max_inflight} in flight); "
                    f"request from tenant {tenant!r} shed",
                    reason="admission",
                    tenant=tenant,
                )
            held = self._tenant_inflight.get(tenant, 0)
            if self.tenant_inflight is not None and held >= self.tenant_inflight:
                self.rejected["tenant-quota"] += 1
                raise OverloadError(
                    f"tenant {tenant!r} at its in-flight quota "
                    f"({self.tenant_inflight}); request shed",
                    reason="tenant-quota",
                    tenant=tenant,
                )
            self._inflight += 1
            self._tenant_inflight[tenant] = held + 1
            self.admitted += 1

    def release(self, tenant: str) -> None:
        """Return *tenant*'s slot (called exactly once per admitted request)."""
        with self._lock:
            if self._inflight <= 0:
                raise OverloadError(
                    "release without a matching admit", reason="accounting"
                )
            self._inflight -= 1
            held = self._tenant_inflight.get(tenant, 0)
            if held <= 1:
                self._tenant_inflight.pop(tenant, None)
            else:
                self._tenant_inflight[tenant] = held - 1

    def snapshot(self) -> dict:
        """JSON-safe admission telemetry for reports."""
        with self._lock:
            return {
                "max_inflight": self.max_inflight,
                "tenant_inflight": self.tenant_inflight,
                "inflight": self._inflight,
                "admitted": self.admitted,
                "rejected": dict(self.rejected),
                "per_tenant_inflight": dict(self._tenant_inflight),
            }
