"""Coalescing: many tenants' small TTMs become one ``gemm_batched`` fleet.

Every request whose input signature — shape, mode, J, layout, dtype —
matches can share a dispatch: ``Y ×_m U`` is ``Y_(m) = U @ X_(m)`` per
request, so a group of B requests is one rank-3 batched multiply
``out[i] = U[i] @ X_(m)[i]``.  The operands live in B separate caller
buffers, so (unlike the intra-tensor batching of PR 1) coalescing *must*
stage them into contiguous batch buffers; for the small requests serving
traffic is made of, that C-speed copy costs far less than the B
interpreter round-trips it replaces, which is the same trade every
batching inference server makes.

Staging is layout-aware: row-major requests are unfolded straight into
their staging slice (one strided copy, no intermediate), column-major
requests go through the generic :func:`repro.tensor.unfold` path.  The
fleet's memory story is explicit — :func:`fleet_staging_bytes` prices
the three staging buffers so the server can degrade a fleet to guarded
per-request execution *before* allocating, the serving analogue of the
PR-5 memory pre-flight.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.gemm.batched import gemm_batched
from repro.tensor.dense import DenseTensor
from repro.tensor.layout import Layout
from repro.tensor.unfold import fold, unfold, unfold_permutation
from repro.util.errors import ShapeError


@dataclass(frozen=True)
class FleetSignature:
    """The dispatch signature a coalesced batch is valid for.

    Two requests coalesce exactly when their signatures are equal: the
    batched multiply requires identical slice geometry, and mixing
    layouts or dtypes in one fleet would silently change semantics.
    """

    shape: tuple[int, ...]
    mode: int
    j: int
    layout: Layout
    dtype: str

    @property
    def out_shape(self) -> tuple[int, ...]:
        return tuple(
            self.j if i == self.mode else s for i, s in enumerate(self.shape)
        )

    @property
    def rest(self) -> int:
        """Columns of the mode unfolding (product of the other extents)."""
        return math.prod(
            s for i, s in enumerate(self.shape) if i != self.mode
        )

    def describe(self) -> str:
        dims = "x".join(str(s) for s in self.shape)
        return f"{dims}|m{self.mode}|J{self.j}|{self.layout.name}|{self.dtype}"


def signature_of(request) -> FleetSignature:
    """The :class:`FleetSignature` of one admitted request."""
    return FleetSignature(
        shape=tuple(request.x.shape),
        mode=int(request.mode),
        j=int(request.u.shape[0]),
        layout=request.x.layout,
        dtype=request.x.data.dtype.name,
    )


def coalesce(requests: Sequence) -> list[tuple[FleetSignature, list]]:
    """Group requests by signature, preserving arrival order.

    Returns ``(signature, requests)`` pairs ordered by each group's
    first arrival, so a burst of heterogeneous traffic dispatches its
    oldest work first.
    """
    groups: dict[FleetSignature, list] = {}
    for request in requests:
        groups.setdefault(signature_of(request), []).append(request)
    return list(groups.items())


def fleet_staging_bytes(sig: FleetSignature, batch: int) -> int:
    """Bytes the batched path allocates to serve *batch* requests.

    Three dense buffers: the stacked U operands ``(B, J, I_m)``, the
    staged unfoldings ``(B, I_m, rest)``, and the batched product
    ``(B, J, rest)`` — plus each request's output tensor, which the
    per-request path would allocate too and is therefore not charged
    here.
    """
    itemsize = np.dtype(sig.dtype).itemsize
    i_m = sig.shape[sig.mode]
    rest = sig.rest
    return batch * itemsize * (sig.j * i_m + i_m * rest + sig.j * rest)


def _stage_unfolding(dst: np.ndarray, x: DenseTensor, mode: int) -> None:
    """Write x's mode unfolding into the C-contiguous staging slice *dst*."""
    if x.layout is Layout.ROW_MAJOR:
        # The permuted tensor copies straight into the slice: reshaping a
        # C-contiguous slice is a view, so this is one strided copy with
        # no intermediate allocation.
        perm = unfold_permutation(x.order, mode)
        permuted_shape = tuple(x.shape[p] for p in perm)
        dst.reshape(permuted_shape)[...] = np.transpose(x.data, perm)
    else:
        # Column-major unfoldings enumerate columns in F order; reuse the
        # generic (copying) unfold so fleet and per-request results agree
        # element for element.
        dst[...] = unfold(x, mode)


def _deliver_result(out_slice: np.ndarray, sig: FleetSignature) -> DenseTensor:
    """Fold one batched product slice back into a result tensor."""
    if sig.layout is Layout.ROW_MAJOR:
        out_shape = sig.out_shape
        if sig.mode == 0:
            # The mode-0 unfolding of a row-major tensor IS its memory
            # image: the C-contiguous slice reshapes to the result with
            # no copy at all (the slice's batch buffer stays alive
            # exactly as long as some result still references it).
            return DenseTensor._wrap(
                out_slice.reshape(out_shape), sig.layout
            )
        perm = unfold_permutation(len(out_shape), sig.mode)
        permuted_shape = tuple(out_shape[p] for p in perm)
        data = np.empty(out_shape, dtype=out_slice.dtype)
        np.transpose(data, perm)[...] = out_slice.reshape(permuted_shape)
        return DenseTensor._wrap(data, sig.layout)
    return fold(out_slice, sig.mode, sig.out_shape, sig.layout)


def execute_fleet(
    sig: FleetSignature, requests: Sequence, *, kernel: str = "auto"
) -> list[DenseTensor]:
    """Execute a coalesced group as one batched GEMM dispatch.

    Returns one result tensor per request, in request order.  The caller
    (the server, or a benchmark harness) is responsible for deciding the
    batched path is worth it — singleton groups and memory-pressured
    fleets belong on the per-request path.
    """
    batch = len(requests)
    if batch == 0:
        return []
    for request in requests:
        # Field-wise check, not signature_of(): constructing a dataclass
        # per request is measurable at serving batch rates.
        if (
            tuple(request.x.shape) != sig.shape
            or request.mode != sig.mode
            or request.u.shape[0] != sig.j
            or request.x.layout is not sig.layout
            or request.x.data.dtype.name != sig.dtype
        ):
            raise ShapeError(
                f"request {request.request_id} does not match fleet "
                f"signature {sig.describe()}"
            )
    dtype = np.dtype(sig.dtype)
    i_m = sig.shape[sig.mode]
    rest = sig.rest
    stacked_u = np.empty((batch, sig.j, i_m), dtype=dtype)
    staged_x = np.empty((batch, i_m, rest), dtype=dtype)
    for i, request in enumerate(requests):
        stacked_u[i] = request.u
        _stage_unfolding(staged_x[i], request.x, sig.mode)
    out = np.empty((batch, sig.j, rest), dtype=dtype)
    gemm_batched(stacked_u, staged_x, out=out, kernel=kernel)
    return [_deliver_result(out[i], sig) for i in range(batch)]
