"""Two-level memory-hierarchy simulator.

The paper's §3 argument is about *word traffic* between a slow memory and
a fast memory of Z words: explicit matricization moves an extra ``2 m^d``
words and costs a factor ``1 + A/m`` of arithmetic intensity.  Wall-clock
timings of a Python reproduction cannot isolate that effect cleanly, so
this substrate measures it directly: we generate the memory access traces
of the copy-based and in-place TTM algorithms and replay them through an
LRU cache model, counting words moved.  The resulting traffic ratios are
machine-independent and deterministic — the form in which the paper's
equations (4)-(6) are validated in ``benchmarks/bench_intensity_model.py``.
"""

from repro.cachesim.cache import CacheModel, TrafficCounters
from repro.cachesim.hierarchy import CacheHierarchy, typical_hierarchy
from repro.cachesim.trace import (
    Region,
    blocked_gemm_trace,
    copy_trace,
    gemm_trace,
    region_layout,
    ttm_copy_trace,
    ttm_inplace_trace,
)
from repro.cachesim.traffic import (
    TrafficReport,
    run_trace,
    simulate_ttm_traffic,
)

__all__ = [
    "CacheModel",
    "TrafficCounters",
    "CacheHierarchy",
    "typical_hierarchy",
    "Region",
    "blocked_gemm_trace",
    "copy_trace",
    "gemm_trace",
    "region_layout",
    "ttm_copy_trace",
    "ttm_inplace_trace",
    "TrafficReport",
    "run_trace",
    "simulate_ttm_traffic",
]
