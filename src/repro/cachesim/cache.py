"""A set-associative, write-back, write-allocate LRU cache model.

Granularity is *words* (8-byte elements), matching the paper's analysis
units: capacity ``Z`` words, lines of ``line_words`` words.  The model
counts words moved between slow and fast memory — line fills on misses
plus write-backs of dirty lines — which is the ``W`` of equation (4).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.util.validation import check_positive_int


@dataclass
class TrafficCounters:
    """Counters accumulated while replaying a trace."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    line_words: int = 1

    @property
    def words_moved(self) -> int:
        """Slow<->fast traffic in words: fills plus write-backs."""
        return (self.misses + self.writebacks) * self.line_words

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class CacheModel:
    """LRU cache of ``size_words`` capacity with ``line_words`` lines.

    ``associativity=None`` (default) models a fully associative cache —
    the assumption behind the theoretical bounds; a power-of-two set
    count gives a realistic set-associative model.
    """

    def __init__(
        self,
        size_words: int,
        line_words: int = 8,
        associativity: int | None = None,
    ) -> None:
        check_positive_int(size_words, "size_words")
        check_positive_int(line_words, "line_words")
        if size_words % line_words:
            raise ValueError(
                f"size_words ({size_words}) must be a multiple of "
                f"line_words ({line_words})"
            )
        n_lines = size_words // line_words
        if associativity is None:
            n_sets = 1
            ways = n_lines
        else:
            check_positive_int(associativity, "associativity")
            if n_lines % associativity:
                raise ValueError(
                    f"{n_lines} lines not divisible by associativity "
                    f"{associativity}"
                )
            n_sets = n_lines // associativity
            ways = associativity
        self.size_words = size_words
        self.line_words = line_words
        self.n_sets = n_sets
        self.ways = ways
        # Per-set OrderedDict: line_tag -> dirty flag; LRU at the front.
        self._sets: list[OrderedDict] = [OrderedDict() for _ in range(n_sets)]
        self.counters = TrafficCounters(line_words=line_words)

    def reset(self) -> None:
        """Empty the cache and zero the counters."""
        for s in self._sets:
            s.clear()
        self.counters = TrafficCounters(line_words=self.line_words)

    def access(self, addr: int, write: bool = False) -> bool:
        """Touch word address *addr*; returns True on a hit."""
        line = addr // self.line_words
        s = self._sets[line % self.n_sets]
        c = self.counters
        c.accesses += 1
        dirty = s.pop(line, None)
        if dirty is not None:
            c.hits += 1
            s[line] = dirty or write
            return True
        c.misses += 1
        if len(s) >= self.ways:
            _victim, victim_dirty = s.popitem(last=False)
            if victim_dirty:
                c.writebacks += 1
        s[line] = write
        return False

    def flush(self) -> None:
        """Write back all dirty lines (end-of-computation accounting)."""
        c = self.counters
        for s in self._sets:
            for _line, dirty in s.items():
                if dirty:
                    c.writebacks += 1
            for line in list(s):
                s[line] = False

    def run(self, trace) -> TrafficCounters:
        """Replay an iterable of ``(addr, write)`` pairs; returns counters."""
        access = self.access
        for addr, write in trace:
            access(addr, write)
        return self.counters
