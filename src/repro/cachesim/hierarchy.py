"""Multi-level cache hierarchies (L1/L2/LLC) for the traffic simulator.

The paper's two-level model (equations 4-6) captures the leading-order
effect; real machines filter accesses through several levels.  A
:class:`CacheHierarchy` chains cache models: an access that misses level
``i`` is forwarded to level ``i+1``, and a dirty eviction at level ``i``
is written to level ``i+1`` (a simple non-inclusive write-back model).
The per-boundary word counts let benchmarks report where each
algorithm's traffic lands — e.g. how much of Algorithm 1's copy traffic
reaches DRAM versus being absorbed by the LLC.
"""

from __future__ import annotations

from typing import Sequence

from repro.cachesim.cache import CacheModel
from repro.util.errors import ShapeError


class CacheHierarchy:
    """A chain of cache levels, smallest/fastest first.

    Levels must have non-decreasing capacities and identical line sizes
    (the usual hardware arrangement, and it keeps the forwarding model
    honest).
    """

    def __init__(self, levels: Sequence[CacheModel]) -> None:
        if not levels:
            raise ShapeError("a hierarchy needs at least one level")
        line = levels[0].line_words
        previous = 0
        for i, level in enumerate(levels):
            if level.line_words != line:
                raise ShapeError(
                    "all levels must share a line size; level 0 has "
                    f"{line} words, level {i} has {level.line_words}"
                )
            if level.size_words < previous:
                raise ShapeError(
                    f"level {i} ({level.size_words} words) is smaller than "
                    f"the level above it ({previous})"
                )
            previous = level.size_words
        self.levels = list(levels)

    @property
    def depth(self) -> int:
        return len(self.levels)

    def reset(self) -> None:
        for level in self.levels:
            level.reset()

    def access(self, addr: int, write: bool = False) -> int:
        """Touch a word; returns the level index that hit (depth = memory).

        A miss at level *i* forwards the access to level *i+1*; the line
        is filled into every missed level on the way back (inclusive-ish
        fill).  A dirty eviction at level *i* becomes a write access at
        level *i+1*.
        """
        for i, level in enumerate(self.levels):
            before = level.counters.writebacks
            hit = level.access(addr, write)
            evicted_dirty = level.counters.writebacks - before
            if evicted_dirty and i + 1 < self.depth:
                # Forward the write-back a level down (address unknown in
                # this simple model; charge a same-set write at the same
                # address class — the traffic count is what matters).
                self.levels[i + 1].access(addr, True)
            if hit:
                return i
        return self.depth

    def run(self, trace) -> None:
        """Replay an iterable of ``(addr, write)`` pairs."""
        access = self.access
        for addr, write in trace:
            access(addr, write)

    def flush(self) -> None:
        for level in self.levels:
            level.flush()

    def words_to_memory(self) -> int:
        """Traffic crossing the last-level boundary (to DRAM), in words."""
        return self.levels[-1].counters.words_moved

    def words_per_boundary(self) -> list[int]:
        """Words moved below each level: index i = level-i <-> level-i+1."""
        return [level.counters.words_moved for level in self.levels]

    def hit_rates(self) -> list[float]:
        """Per-level hit rate (of the accesses that reached that level)."""
        out = []
        for level in self.levels:
            c = level.counters
            out.append(c.hits / c.accesses if c.accesses else 0.0)
        return out


def typical_hierarchy(line_words: int = 8) -> CacheHierarchy:
    """A laptop-class three-level hierarchy (32 KiB / 256 KiB / 8 MiB)."""
    return CacheHierarchy(
        [
            CacheModel(4 * 1024, line_words=line_words, associativity=8),
            CacheModel(32 * 1024, line_words=line_words, associativity=8),
            CacheModel(1024 * 1024, line_words=line_words),
        ]
    )
