"""Traffic accounting: replay TTM traces and compare with theory.

``simulate_ttm_traffic`` is the workhorse behind the intensity benchmark:
it replays copy-based and in-place TTM traces through identical cache
models and reports words moved, achieved intensity ``Q/W``, and the
measured copy penalty to compare against equation (5)'s ``1 + A/m``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.intensity import ttm_flops
from repro.cachesim.cache import CacheModel
from repro.cachesim.trace import Trace, ttm_copy_trace, ttm_inplace_trace
from repro.tensor.layout import Layout
from repro.util.errors import ShapeError


@dataclass(frozen=True)
class TrafficReport:
    """Result of replaying one algorithm's trace through a cache model."""

    method: str
    shape: tuple[int, ...]
    j: int
    mode: int
    flops: int
    accesses: int
    misses: int
    writebacks: int
    words_moved: int

    @property
    def intensity(self) -> float:
        """Achieved arithmetic intensity Q/W (flops per word moved)."""
        return self.flops / self.words_moved if self.words_moved else float("inf")

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


def run_trace(cache: CacheModel, trace: Trace, flush: bool = True):
    """Replay *trace* through *cache* (resetting it first); return counters."""
    cache.reset()
    cache.run(trace)
    if flush:
        cache.flush()
    return cache.counters


def simulate_ttm_traffic(
    shape: Sequence[int],
    j: int,
    mode: int,
    cache: CacheModel,
    method: str = "inplace",
    layout: Layout | str = Layout.ROW_MAJOR,
    degree: int | None = None,
    kc: int = 64,
) -> TrafficReport:
    """Words moved by one TTM execution under the given cache model.

    *method* is ``"copy"`` (Algorithm 1: unfold + GEMM + fold) or
    ``"inplace"`` (Algorithm 2).
    """
    shape_t = tuple(int(s) for s in shape)
    if method == "copy":
        trace = ttm_copy_trace(shape_t, j, mode, layout, kc=kc)
    elif method == "inplace":
        trace = ttm_inplace_trace(shape_t, j, mode, layout, degree=degree, kc=kc)
    else:
        raise ShapeError(f"unknown method {method!r}; use 'copy' or 'inplace'")
    counters = run_trace(cache, trace)
    return TrafficReport(
        method=method,
        shape=shape_t,
        j=j,
        mode=mode,
        flops=ttm_flops(shape_t, j),
        accesses=counters.accesses,
        misses=counters.misses,
        writebacks=counters.writebacks,
        words_moved=counters.words_moved,
    )


def copy_vs_inplace_penalty(
    shape: Sequence[int],
    j: int,
    mode: int,
    cache: CacheModel,
    layout: Layout | str = Layout.ROW_MAJOR,
    kc: int = 64,
) -> dict:
    """Measured traffic ratio of copy-based over in-place TTM.

    Returns both reports and the ratio — the simulated counterpart of the
    ``1 + A/m`` analysis (equation 5), where the analytical A uses the
    *achieved* in-place intensity rather than the upper bound.
    """
    inplace = simulate_ttm_traffic(shape, j, mode, cache, "inplace", layout,
                                   kc=kc)
    copy = simulate_ttm_traffic(shape, j, mode, cache, "copy", layout, kc=kc)
    m_side = min(shape)
    predicted = 1.0 + inplace.intensity / m_side
    measured = copy.words_moved / inplace.words_moved
    return {
        "inplace": inplace,
        "copy": copy,
        "measured_ratio": measured,
        "predicted_ratio": predicted,
    }


def tensor_storage_words(shape: Sequence[int], j: int, mode: int,
                         method: str) -> int:
    """Total words of memory each method allocates (figure 4's space bars).

    Copy-based: X, X_mat, U, Y_mat, Y.  In-place: X, U, Y only.
    """
    shape_t = tuple(int(s) for s in shape)
    x = math.prod(shape_t)
    n_dim = shape_t[mode]
    y = x // n_dim * j
    u = j * n_dim
    if method == "copy":
        return x + x + u + y + y
    if method == "inplace":
        return x + u + y
    raise ShapeError(f"unknown method {method!r}")
