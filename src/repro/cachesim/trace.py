"""Memory access trace generators for copy-based and in-place TTM.

Traces are iterables of ``(word_address, is_write)`` pairs replayed
through :class:`repro.cachesim.cache.CacheModel`.  Tensors and matrices
live in disjoint address *regions* of a flat word-addressed memory, laid
out exactly as the real implementations lay them out, so the simulated
traffic reflects the true stride/locality behaviour of each algorithm.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.tensor.layout import Layout, element_strides
from repro.tensor.unfold import unfold_permutation
from repro.tensor.views import merged_stride
from repro.util.errors import ShapeError
from repro.util.validation import check_mode, check_positive_int

Trace = Iterator[tuple[int, bool]]


def region_layout(layout: Layout | str) -> Layout:
    """Parse a layout argument (re-exported convenience)."""
    return Layout.parse(layout)


@dataclass(frozen=True)
class Mat:
    """A 2-D address window: ``addr(i, j) = base + i*rstride + j*cstride``."""

    base: int
    rows: int
    cols: int
    rstride: int
    cstride: int

    def addr(self, i: int, j: int) -> int:
        return self.base + i * self.rstride + j * self.cstride


@dataclass(frozen=True)
class Region:
    """A tensor placed at word offset *base* in simulated memory."""

    base: int
    shape: tuple[int, ...]
    layout: Layout = Layout.ROW_MAJOR

    @property
    def strides(self) -> tuple[int, ...]:
        return element_strides(self.shape, self.layout)

    @property
    def size(self) -> int:
        return math.prod(self.shape)

    @property
    def end(self) -> int:
        """One past the last word of this region."""
        return self.base + self.size

    def addr(self, index: Sequence[int]) -> int:
        strides = self.strides
        if len(index) != len(self.shape):
            raise ShapeError(
                f"index rank {len(index)} != region rank {len(self.shape)}"
            )
        return self.base + sum(i * s for i, s in zip(index, strides))

    def matrix(
        self,
        row_modes: Sequence[int],
        col_modes: Sequence[int],
        fixed: Mapping[int, int] | None = None,
    ) -> Mat:
        """The in-place merged matrix view of this region (Lemma 4.1)."""
        fixed = dict(fixed or {})
        strides = self.strides
        rows = math.prod(self.shape[m] for m in row_modes)
        cols = math.prod(self.shape[m] for m in col_modes)
        rstride = merged_stride(strides, self.shape, row_modes)
        cstride = merged_stride(strides, self.shape, col_modes)
        offset = sum(fixed[m] * strides[m] for m in fixed)
        return Mat(self.base + offset, rows, cols, rstride, cstride)


def gemm_trace(a: Mat, b: Mat, c: Mat, kc: int = 64) -> Trace:
    """Accesses of a register-accumulating GEMM ``C = A B`` with K slabs.

    For each K slab the kernel streams A and B and touches each C element
    once (read-modify-write), matching the access volume of a packed
    macrokernel without modelling the packing buffers themselves (they
    are cache-resident by construction).
    """
    check_positive_int(kc, "kc")
    if a.cols != b.rows or a.rows != c.rows or b.cols != c.cols:
        raise ShapeError(
            f"gemm trace shape mismatch: A {a.rows}x{a.cols}, "
            f"B {b.rows}x{b.cols}, C {c.rows}x{c.cols}"
        )
    for pc in range(0, a.cols, kc):
        p_hi = min(pc + kc, a.cols)
        for i in range(a.rows):
            for j in range(b.cols):
                for p in range(pc, p_hi):
                    yield a.addr(i, p), False
                    yield b.addr(p, j), False
                yield c.addr(i, j), True


def blocked_gemm_trace(
    a: Mat,
    b: Mat,
    c: Mat,
    mc: int = 32,
    kc: int = 32,
    nc: int = 64,
    pack_base: int | None = None,
) -> Trace:
    """Accesses of a Goto-blocked GEMM **including packing traffic**.

    Mirrors :func:`repro.gemm.blocked.gemm_blocked`: the ``KC x NC``
    panel of B and the ``MC x KC`` block of A are copied into contiguous
    buffers (placed at *pack_base*; default just past C), and the
    macrokernel reads only those buffers.  Replaying this against
    :func:`gemm_trace` (no blocking) quantifies what the packing buys:
    the extra pack reads/writes versus the removed capacity misses.
    """
    check_positive_int(mc, "mc")
    check_positive_int(kc, "kc")
    check_positive_int(nc, "nc")
    if a.cols != b.rows or a.rows != c.rows or b.cols != c.cols:
        raise ShapeError(
            f"gemm trace shape mismatch: A {a.rows}x{a.cols}, "
            f"B {b.rows}x{b.cols}, C {c.rows}x{c.cols}"
        )
    if pack_base is None:
        pack_base = (
            max(
                a.addr(max(a.rows - 1, 0), max(a.cols - 1, 0)),
                b.addr(max(b.rows - 1, 0), max(b.cols - 1, 0)),
                c.addr(max(c.rows - 1, 0), max(c.cols - 1, 0)),
            )
            + 1
        )
    pack_b_base = pack_base
    pack_a_base = pack_base + kc * nc
    for jc in range(0, b.cols, nc):
        j_hi = min(jc + nc, b.cols)
        for pc in range(0, a.cols, kc):
            p_hi = min(pc + kc, a.cols)
            width = j_hi - jc
            # Pack the B panel contiguously (row-major in the buffer).
            for p in range(pc, p_hi):
                for j in range(jc, j_hi):
                    yield b.addr(p, j), False
                    yield pack_b_base + (p - pc) * width + (j - jc), True
            for ic in range(0, a.rows, mc):
                i_hi = min(ic + mc, a.rows)
                depth = p_hi - pc
                for i in range(ic, i_hi):
                    for p in range(pc, p_hi):
                        yield a.addr(i, p), False
                        yield pack_a_base + (i - ic) * depth + (p - pc), True
                # Macrokernel on the packed buffers.
                for i in range(ic, i_hi):
                    for j in range(jc, j_hi):
                        for p in range(pc, p_hi):
                            yield (
                                pack_a_base + (i - ic) * depth + (p - pc),
                                False,
                            )
                            yield (
                                pack_b_base + (p - pc) * width + (j - jc),
                                False,
                            )
                        yield c.addr(i, j), True


def copy_trace(
    src: Region, dst: Region, perm: Sequence[int] | None = None
) -> Trace:
    """Accesses of ``dst = permute(src, perm)`` written in dst storage order.

    This is the physical permutation of Algorithm 1: the destination is
    streamed sequentially while the source is gathered with (generally)
    large strides — the locality pathology in-place TTM avoids.
    """
    ndim = len(src.shape)
    if perm is None:
        perm = tuple(range(ndim))
    if len(dst.shape) != ndim or any(
        dst.shape[pos] != src.shape[axis] for pos, axis in enumerate(perm)
    ):
        raise ShapeError(
            f"dst shape {dst.shape} is not src {src.shape} permuted by {perm}"
        )
    # Enumerate destination indices in destination *storage* order so the
    # writes stream; read the matching source element.
    dims = range(ndim)
    if dst.layout is Layout.ROW_MAJOR:
        loop_axes = list(dims)
    else:
        loop_axes = list(reversed(dims))
    ranges = [range(dst.shape[ax]) for ax in loop_axes]
    for combo in itertools.product(*ranges):
        dst_index = [0] * ndim
        for ax, value in zip(loop_axes, combo):
            dst_index[ax] = value
        src_index = [0] * ndim
        for pos, axis in enumerate(perm):
            src_index[axis] = dst_index[pos]
        yield src.addr(src_index), False
        yield dst.addr(dst_index), True


def ttm_copy_trace(
    shape: Sequence[int],
    j: int,
    mode: int,
    layout: Layout | str = Layout.ROW_MAJOR,
    kc: int = 64,
) -> Trace:
    """The full Algorithm-1 trace: unfold copy, GEMM, fold copy.

    Memory map (word offsets): ``X | X_mat | U | Y_mat | Y`` — the same
    five allocations the Tensor Toolbox path uses (input, matricized
    input, matrix, matricized output, output).
    """
    layout = Layout.parse(layout)
    shape_t = tuple(int(s) for s in shape)
    mode = check_mode(mode, len(shape_t))
    check_positive_int(j, "j")
    n_dim = shape_t[mode]
    rest = math.prod(shape_t) // n_dim
    perm = unfold_permutation(len(shape_t), mode)

    x = Region(0, shape_t, layout)
    x_mat_shape = tuple(shape_t[p] for p in perm)
    x_mat = Region(x.end, x_mat_shape, layout)
    u = Region(x_mat.end, (j, n_dim), layout)
    y_mat_shape = (j,) + x_mat_shape[1:]
    y_mat = Region(u.end, y_mat_shape, layout)
    out_shape = shape_t[:mode] + (j,) + shape_t[mode + 1 :]
    y = Region(y_mat.end, out_shape, layout)

    # 1. Matricize: physically permute X into X_mat (mode first).
    yield from copy_trace(x, x_mat, perm)
    # 2. Multiply: Y_mat = U @ X_mat viewed as (I_n x rest) etc.
    rest_modes = tuple(range(1, len(shape_t)))
    a = u.matrix((0,), (1,))
    b = x_mat.matrix((0,), rest_modes) if len(shape_t) > 1 else Mat(
        x_mat.base, n_dim, 1, 1, 1
    )
    c = y_mat.matrix((0,), rest_modes) if len(shape_t) > 1 else Mat(
        y_mat.base, j, 1, 1, 1
    )
    yield from gemm_trace(a, Mat(b.base, n_dim, rest, b.rstride, b.cstride),
                          Mat(c.base, j, rest, c.rstride, c.cstride), kc=kc)
    # 3. Tensorize: fold Y_mat back into Y's natural mode order.
    inv = [0] * len(perm)
    for pos, axis in enumerate(perm):
        inv[axis] = pos
    yield from copy_trace(y_mat, y, tuple(inv))


def ttm_inplace_trace(
    shape: Sequence[int],
    j: int,
    mode: int,
    layout: Layout | str = Layout.ROW_MAJOR,
    degree: int | None = None,
    kc: int = 64,
) -> Trace:
    """The Algorithm-2 trace: nested loops over loop modes, in-place GEMMs.

    Memory map: ``X | U | Y`` only — no matricization buffers, the space
    saving the paper reports (~50%).  *degree* selects how many contiguous
    modes join the component set ``M_C`` (default: all of them — maximal
    merge, the forward strategy for row-major / backward for col-major).
    """
    layout = Layout.parse(layout)
    shape_t = tuple(int(s) for s in shape)
    order = len(shape_t)
    mode = check_mode(mode, order)
    check_positive_int(j, "j")

    x = Region(0, shape_t, layout)
    u = Region(x.end, (j, shape_t[mode]), layout)
    out_shape = shape_t[:mode] + (j,) + shape_t[mode + 1 :]
    y = Region(u.end, out_shape, layout)

    if layout is Layout.ROW_MAJOR:
        available = tuple(range(mode + 1, order))  # forward strategy
        take_from_end = False
    else:
        available = tuple(range(0, mode))  # backward strategy
        take_from_end = True
    if degree is None:
        degree = len(available)
    if degree > len(available):
        raise ShapeError(
            f"degree {degree} exceeds the {len(available)} contiguous "
            f"modes available for mode-{mode} under {layout.name}"
        )
    if degree == 0:
        component: tuple[int, ...] = ()  # fiber representation (Level 2)
    elif take_from_end:
        component = available[:degree]
    else:
        component = available[-degree:]
    loop_modes = tuple(
        m for m in range(order) if m != mode and m not in component
    )

    u_mat = u.matrix((0,), (1,))
    ranges = [range(shape_t[m]) for m in loop_modes]
    for combo in itertools.product(*ranges):
        fixed = dict(zip(loop_modes, combo))
        if component:
            x_sub = x.matrix((mode,), component, fixed)
            y_sub = y.matrix((mode,), component, fixed)
        else:
            x_sub = Mat(x.addr(_full_index(fixed, mode, 0, order)),
                        shape_t[mode], 1, x.strides[mode], 1)
            y_sub = Mat(y.addr(_full_index(fixed, mode, 0, order)),
                        j, 1, y.strides[mode], 1)
        # Y_sub (J x P) = U (J x I_n) @ X_sub (I_n x P).
        yield from gemm_trace(u_mat, x_sub, y_sub, kc=kc)


def _full_index(fixed: Mapping[int, int], mode: int, at: int, order: int):
    return tuple(fixed.get(m, at if m == mode else 0) for m in range(order))
