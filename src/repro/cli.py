"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Print the host configuration (the table-2 analogue).
``calibrate [probe|run|show]``
    ``probe`` measures this host's roofline (peak GEMM + STREAM triad);
    ``run`` sweeps the (kernel, degree, thread-split, dtype) space and
    persists fitted MSTH/MLTH/PTH thresholds in the plan store
    (:mod:`repro.perf.dse`); ``show`` prints the persisted record.
    Bare ``calibrate`` keeps its original meaning (= ``probe``).
``plan SHAPE MODE J``
    Print the input-adaptive plan and the generated source for one TTM
    input, e.g. ``python -m repro plan 100x100x100 1 16``.
``profile OUT.json``
    Measure the GEMM shape benchmark on this host and save it for reuse
    (the paper's offline-autotuning artifact).
``predict SHAPE MODE J``
    Rank all candidate configurations by model-predicted throughput.
``bench NAME``
    Run one paper experiment's harness (e.g. ``fig10``); ``bench list``
    enumerates them.
``cache show | clear | warm SHAPE MODE J``
    Inspect, delete, or pre-populate the persistent autotune plan cache
    (``$REPRO_PLAN_CACHE`` or ``~/.cache/repro/plans.json``).
``explain chain SHAPE STEPS``
    Show how the chain planner orders and buffers a multi-TTM chain,
    e.g. ``python -m repro explain chain 40x40x40x40 0:8,1:8,2:8,3:8``.
``trace [WORKLOAD]``
    Run a demo workload under the :mod:`repro.obs` tracer, print the
    span tree, and optionally export Chrome-trace / JSON-lines files
    (``--chrome trace.json`` loads in ``chrome://tracing``/Perfetto).
``serve``
    Run the multi-tenant serving engine against a deterministic trace
    and print a load report (``--verify`` checks every result against
    the Algorithm-1 oracle; ``--fail-on-shed`` makes any shed or wrong
    result a non-zero exit — the CI smoke gate).
``loadgen OUT.json``
    Generate a deterministic multi-tenant request trace for ``serve
    --trace`` (the ramulator2 ``gen_trace.py`` pattern).
"""

from __future__ import annotations

import argparse
import importlib
import sys

from repro.util.errors import ReproError

_BENCHES = {
    "fig04": "bench_fig04_copy_overhead",
    "fig05": "bench_fig05_gemm_shapes",
    "fig08": "bench_fig08_thresholds",
    "fig09": "bench_fig09_inttm_sweep",
    "fig10": "bench_fig10_comparison",
    "fig11": "bench_fig11_mode_variability",
    "fig12": "bench_fig12_heuristic_vs_exhaustive",
    "table1": "bench_table1_representations",
    "table2": "bench_table2_platforms",
    "intensity": "bench_intensity_model",
    "mttkrp": "bench_mttkrp",
    "tucker": "bench_tucker_e2e",
    "sparse": "bench_sparse_ttm",
    "distributed": "bench_distributed_ttm",
    "batched": "bench_batched_inttm",
    "autotune": "bench_autotune_cache",
    "chain": "bench_ttm_chain",
    "ablation-chain": "bench_ablation_chain",
    "ablation-estimator": "bench_ablation_estimator",
    "ablation-degree": "bench_ablation_degree",
    "ablation-kernels": "bench_ablation_kernels",
    "ablation-threads": "bench_ablation_threads",
    "dtype": "bench_dtype",
    "serving": "bench_serving",
    "ooc": "bench_ooc_ttm",
}


def _parse_shape(text: str) -> tuple[int, ...]:
    try:
        shape = tuple(int(part) for part in text.lower().split("x"))
    except ValueError:
        raise SystemExit(f"error: cannot parse shape {text!r}; use e.g. 100x100x100")
    if not shape or any(s < 1 for s in shape):
        raise SystemExit(f"error: invalid shape {shape}")
    return shape


def cmd_info(_args) -> int:
    from repro.perf.machine import machine_info

    for label, value in machine_info().table_rows():
        print(f"{label:24s} {value}")
    return 0


def cmd_calibrate_probe(_args) -> int:
    from repro.perf.calibrate import host_platform

    platform = host_platform()
    print(platform.name)
    print(f"peak (all cores)   {platform.peak_gflops:.1f} GFLOP/s")
    print(f"memory bandwidth   {platform.bandwidth_gbs:.1f} GB/s")
    print(f"last-level cache   {platform.llc_bytes / 2**20:.0f} MiB")
    print(f"cores / threads    {platform.cores} / {platform.threads_with_smt}")
    return 0


def _calibration_store(path: str | None):
    from repro.autotune import PlanStore, default_cache_path
    from repro.perf.machine import machine_fingerprint

    return PlanStore(path or default_cache_path(), machine_fingerprint())


def cmd_calibrate_run(args) -> int:
    from repro.perf.dse import DseConfig, run_calibration

    store = _calibration_store(args.store)
    config = DseConfig(
        max_threads=args.threads,
        max_seconds=args.budget,
        min_seconds=args.min_seconds,
    )
    record = run_calibration(store, config)
    print(f"store  {store.path}")
    for label, value in record.summary_rows():
        print(f"{label:28s} {value}")
    return 0


def cmd_calibrate_show(args) -> int:
    from repro.perf.dse import load_calibration_record

    store = _calibration_store(args.store)
    record, observations = load_calibration_record(store)
    print(f"store  {store.path}")
    if record is None:
        print("no calibration recorded; run `python -m repro calibrate run`")
        return 0
    for label, value in record.summary_rows():
        print(f"{label:28s} {value}")
    print(f"{'stored observations':28s} {len(observations)}")
    print(f"{'digest':28s} {record.digest()}")
    return 0


def cmd_plan(args) -> int:
    from repro.core import InTensLi, generate_source
    from repro.core.explain import explain_plan

    shape = _parse_shape(args.shape)
    lib = InTensLi(max_threads=args.threads)
    plan = lib.plan(shape, args.mode, args.j, args.layout)
    if args.explain:
        thresholds = lib.estimator.thresholds_for(args.j)
        print(explain_plan(plan, thresholds, lib.estimator.pth_bytes))
    else:
        print(plan.describe())
    print()
    print(generate_source(plan))
    return 0


def cmd_profile(args) -> int:
    from repro.gemm.bench import default_shape_grid, measure_profile

    grid = default_shape_grid(m_values=(args.j,))
    threads = (1,) if args.threads == 1 else (1, args.threads)
    print(
        f"measuring {len(grid) * len(threads)} GEMM shapes "
        f"(m={args.j}, threads={threads}) ..."
    )
    profile = measure_profile(grid, threads=threads)
    profile.save(args.output)
    print(f"saved {profile!r} to {args.output}")
    return 0


def cmd_predict(args) -> int:
    from repro.core import InTensLi, enumerate_plans, rank_plans

    shape = _parse_shape(args.shape)
    lib = InTensLi(max_threads=args.threads)
    plans = enumerate_plans(
        shape, args.mode, args.j, args.layout, max_threads=args.threads
    )
    chosen = lib.plan(shape, args.mode, args.j, args.layout)
    for plan, gflops in rank_plans(plans, lib.profile):
        marker = "  <- estimator" if plan == chosen else ""
        print(f"{gflops:8.2f} GFLOP/s (predicted)  {plan.describe()}{marker}")
    return 0


def cmd_verify(_args) -> int:
    """Check every TTM entry point against the equation-(1) oracle."""
    from repro.baselines import ttm_copy, ttm_ctf_like
    from repro.core import InTensLi
    from repro.core.inttm import ttm_inplace
    from repro.testing import assert_ttm_consistent

    lib_generated = InTensLi(executor="generated")
    lib_interpreted = InTensLi(executor="interpreted")
    entry_points = {
        "inttm (generated)": lib_generated.ttm,
        "inttm (interpreted)": lib_interpreted.ttm,
        "ttm_inplace (default plan)": ttm_inplace,
        "ttm_copy (Algorithm 1)": ttm_copy,
        "ttm_ctf_like": ttm_ctf_like,
    }
    failures = 0
    for name, fn in entry_points.items():
        try:
            checked = assert_ttm_consistent(fn)
        except AssertionError as exc:
            print(f"FAIL  {name}: {exc}")
            failures += 1
        else:
            print(f"ok    {name}: {checked} cases")
    if failures:
        print(f"{failures} entry point(s) failed verification",
              file=sys.stderr)
        return 1
    print("all TTM entry points agree with the equation-(1) oracle")
    return 0


def cmd_cache_show(args) -> int:
    from repro.autotune import PlanCache, default_cache_path
    from repro.perf.machine import machine_fingerprint

    path = args.path or default_cache_path()
    cache = PlanCache(path=path, autosave=False)
    print(f"store        {path}")
    print(f"fingerprint  {machine_fingerprint()}")
    print(f"entries      {len(cache)}")
    if cache.stats.invalidations:
        print("status       INVALIDATED (corrupt/stale/foreign store file)")
    for key, entry in cache.items():
        timed = "-" if entry.seconds is None else f"{entry.seconds:.3g}s"
        print(
            f"  {key.encode():40s} {entry.source:9s} {timed:>9s} "
            f"trials={len(entry.trials)}"
        )
        if args.verbose:
            print(f"    {entry.plan.describe()}")
    return 0


def cmd_cache_clear(args) -> int:
    from repro.autotune import PlanStore, default_cache_path

    path = args.path or default_cache_path()
    if PlanStore(path).clear():
        print(f"removed {path}")
    else:
        print(f"no cache at {path}")
    return 0


def cmd_cache_warm(args) -> int:
    from repro.autotune import AutotuneSession, default_cache_path
    from repro.core import InTensLi

    path = args.path or default_cache_path()
    shape = _parse_shape(args.shape)
    session = AutotuneSession(
        InTensLi(max_threads=args.threads), path=path
    )
    fresh = session.warm(
        [(shape, args.mode, j, args.layout) for j in args.j]
    )
    total = len(session.cache)
    noun = "entry" if total == 1 else "entries"
    print(f"warmed {total} {noun} ({fresh} new) in {path}")
    for key, entry in session.cache.items():
        print(f"  {key.encode():40s} {entry.plan.describe()}")
    return 0


def _parse_chain_steps(text: str) -> list[tuple[int, int]]:
    """Parse a chain signature like ``0:8,1:8,2:16`` into (mode, J) pairs."""
    pairs: list[tuple[int, int]] = []
    try:
        for part in text.split(","):
            mode_text, j_text = part.split(":")
            pairs.append((int(mode_text), int(j_text)))
    except ValueError:
        raise SystemExit(
            f"error: cannot parse chain steps {text!r}; "
            "use comma-separated MODE:J pairs, e.g. 0:8,1:8,2:16"
        )
    if not pairs or any(j < 1 for _m, j in pairs):
        raise SystemExit(f"error: invalid chain steps {text!r}")
    return pairs


def cmd_explain(args) -> int:
    from repro.core import InTensLi
    from repro.core.explain import explain_chain

    shape = _parse_shape(args.shape)
    steps = _parse_chain_steps(args.steps)
    lib = InTensLi(max_threads=args.threads)
    plan = lib.plan_chain(
        shape, steps, args.layout, dtype=args.dtype, order=args.order
    )
    print(explain_chain(plan, flops_per_byte=lib.machine_balance))
    return 0


_BYTE_SUFFIXES = {
    "k": 1 << 10, "kib": 1 << 10, "kb": 1000,
    "m": 1 << 20, "mib": 1 << 20, "mb": 1000**2,
    "g": 1 << 30, "gib": 1 << 30, "gb": 1000**3,
}


def _parse_bytes(text: str) -> int:
    """Parse a byte budget like ``8MiB``, ``64k``, or ``1048576``."""
    t = text.strip().lower()
    for suffix in sorted(_BYTE_SUFFIXES, key=len, reverse=True):
        if t.endswith(suffix):
            return int(float(t[: -len(suffix)]) * _BYTE_SUFFIXES[suffix])
    return int(t)


def cmd_tile_explain(args) -> int:
    from repro.core import InTensLi
    from repro.core.tiling import explain_tiling
    from repro.resilience.memory import available_bytes
    from repro.util.errors import ResourceError

    shape = _parse_shape(args.shape)
    budget = _parse_bytes(args.budget) if args.budget else available_bytes()
    lib = InTensLi(max_threads=args.threads)

    def planner(s, mode, j, layout, dtype=None):
        return lib.plan(s, mode, j, layout, dtype=dtype)

    try:
        info = explain_tiling(
            shape, args.mode, args.j, args.layout, dtype=args.dtype,
            budget=budget, planner=planner,
        )
    except ResourceError as exc:
        print(f"untileable: {exc}")
        return 1
    print(f"input       {args.shape} mode={args.mode} J={args.j} "
          f"{info['layout']}/{info['dtype']}")
    print(f"budget      {info['budget']} bytes"
          + ("" if args.budget else " (probed)"))
    print(f"untiled     {info['base_footprint_bytes']} bytes "
          "(output + kernel working sets)")
    print(f"decision    {info['reason']}")
    print(f"parts       {'x'.join(str(p) for p in info['parts'])} "
          f"-> {info['n_tiles']} tile(s)")
    print(f"tile shape  {'x'.join(str(s) for s in info['max_tile_shape'])} "
          f"(~{info['tile_footprint_bytes']} bytes each, "
          f"{'packed' if info['packed'] else 'pure views'})")
    print(f"base plan   {info['base_plan']}")
    if info["n_tiles"] > 1:
        # The tile-level plan shows what the estimator chose for the tile
        # geometry — often a different degree/batching than the full tensor.
        tile_plan = planner(
            tuple(info["max_tile_shape"]), args.mode, args.j, args.layout,
            dtype=args.dtype,
        )
        print(f"tile plan   {tile_plan.describe()}")
    return 0


#: Demo workloads the ``trace`` subcommand can run under the tracer.
TRACE_WORKLOADS = ("ttm", "chain")


def _run_trace_workload(args) -> None:
    import numpy as np

    from repro.core import InTensLi
    from repro.tensor.dense import DenseTensor

    rng = np.random.default_rng(0)
    shape = _parse_shape(args.shape)
    lib = InTensLi(max_threads=args.threads, executor=args.executor)
    x = DenseTensor(rng.standard_normal(shape), args.layout)
    if args.workload == "ttm":
        # Two identical calls: the first trace shows the full
        # plan -> partition path, the second a pure cache hit.
        u = rng.standard_normal((args.j, shape[args.mode]))
        lib.ttm(x, u, args.mode)
        lib.ttm(x, u, args.mode)
    else:  # chain: project every mode, fused (the Tucker access pattern)
        # Two identical calls: the first shows chain planning plus cold
        # scratch allocations, the second a chain-plan cache hit with
        # every buffer reused.
        steps = [
            (mode, rng.standard_normal((args.j, shape[mode])))
            for mode in range(len(shape))
        ]
        lib.ttm_chain(x, steps, order="auto")
        lib.ttm_chain(x, steps, order="auto")


def cmd_trace(args) -> int:
    from repro.obs import (
        Tracer,
        render_span_tree,
        tracing,
        write_chrome_trace,
        write_jsonl,
    )

    tracer = Tracer()
    with tracing(tracer):
        _run_trace_workload(args)
    spans = tracer.collector.spans()
    print(render_span_tree(spans))
    counters = tracer.counters.as_dict()
    interesting = {k: v for k, v in counters.items() if v}
    if interesting:
        print()
        print("counters:")
        for name in sorted(interesting):
            value = interesting[name]
            if isinstance(value, float):
                print(f"  {name:26s} {value:.3g}")
            else:
                print(f"  {name:26s} {value}")
    if args.chrome:
        write_chrome_trace(spans, args.chrome)
        print(f"\nwrote Chrome trace ({len(spans)} spans) to {args.chrome}")
    if args.jsonl:
        write_jsonl(spans, args.jsonl)
        print(f"wrote JSON-lines spans to {args.jsonl}")
    return 0


def _load_or_generate_trace(args):
    from repro.serve.workload import default_tenants, generate_trace, load_trace

    if getattr(args, "trace", None):
        return load_trace(args.trace)
    return generate_trace(
        default_tenants(args.tenants),
        args.requests,
        seed=args.seed,
        pattern=args.pattern,
    )


def cmd_serve(args) -> int:
    import asyncio

    from repro.obs import Tracer, tracing, write_chrome_trace
    from repro.serve import ServeConfig, TtmServer
    from repro.serve.workload import replay

    trace = _load_or_generate_trace(args)
    config = ServeConfig(
        max_inflight=max(args.concurrency * 4, 64),
        max_batch=args.max_batch,
        batch_window_s=args.window,
        workers=args.workers,
        coalesce=not args.no_coalesce,
        default_deadline_s=args.deadline,
        watchdog_s=args.watchdog,
        max_threads=args.threads,
    )
    tracer = Tracer() if args.chrome else None

    async def _run():
        server = TtmServer(config=config)
        await server.start()
        try:
            return await replay(
                server,
                trace,
                concurrency=args.concurrency,
                open_loop=args.open_loop,
                verify=args.verify,
            )
        finally:
            await server.stop()

    if tracer is not None:
        with tracing(tracer):
            report = asyncio.run(_run())
    else:
        report = asyncio.run(_run())
    print(report.describe())
    if args.report:
        report.save(args.report)
        print(f"\nwrote load report to {args.report}")
    if args.chrome:
        spans = tracer.collector.spans()
        write_chrome_trace(spans, args.chrome)
        print(f"wrote Chrome trace ({len(spans)} spans) to {args.chrome}")
    if args.fail_on_shed and (report.shed["total"] or report.wrong):
        print(
            f"error: {report.shed['total']} shed, {report.wrong} wrong "
            "results with --fail-on-shed",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_loadgen(args) -> int:
    from collections import Counter

    from repro.serve.workload import default_tenants, generate_trace, save_trace

    trace = generate_trace(
        default_tenants(args.tenants),
        args.requests,
        seed=args.seed,
        pattern=args.pattern,
        rate_hz=args.rate,
    )
    save_trace(trace, args.output)
    mix = Counter(entry.tenant for entry in trace)
    span = trace[-1].issue_s - trace[0].issue_s if len(trace) > 1 else 0.0
    print(
        f"wrote {len(trace)} requests ({args.pattern}, seed {args.seed}, "
        f"{span:.3f}s span) to {args.output}"
    )
    for tenant in sorted(mix):
        print(f"  {tenant:<12} {mix[tenant]:>6} requests")
    return 0


def cmd_bench(args) -> int:
    if args.name == "list":
        for name in sorted(_BENCHES):
            print(name)
        return 0
    module_name = _BENCHES.get(args.name)
    if module_name is None:
        print(
            f"error: unknown experiment {args.name!r}; "
            f"try: {', '.join(sorted(_BENCHES))}",
            file=sys.stderr,
        )
        return 2
    import os

    root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    if root not in sys.path:
        sys.path.insert(0, root)
    module = importlib.import_module(f"benchmarks.{module_name}")
    module.main()
    return 0


def cmd_recover_show(args) -> int:
    from repro.resilience.recovery import describe_journal

    for label, value in describe_journal(args.journal):
        print(f"{label:<18} {value}")
    return 0


def cmd_recover_resume(args) -> int:
    from repro.resilience.recovery import resume_job

    summary = resume_job(args.journal)
    kind = summary.pop("kind", "?")
    detail = ", ".join(f"{k}={v}" for k, v in summary.items())
    print(f"resumed {kind}: {detail}")
    return 0


def cmd_recover_verify(args) -> int:
    from repro.resilience.recovery import verify_journal

    report = verify_journal(args.journal, out_path=args.out)
    print(report.describe())
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="INTENSLI reproduction: in-place, input-adaptive TTM",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="print host configuration").set_defaults(
        fn=cmd_info
    )

    calibrate = sub.add_parser(
        "calibrate",
        help="measure this host and fit the cost model "
             "(probe | run | show)",
    )
    calibrate.set_defaults(fn=cmd_calibrate_probe)
    calibrate_sub = calibrate.add_subparsers(dest="calibrate_command")
    calibrate_sub.add_parser(
        "probe", help="one-off roofline probe (peak GEMM + STREAM triad)"
    ).set_defaults(fn=cmd_calibrate_probe)
    cal_run = calibrate_sub.add_parser(
        "run",
        help="sweep the configuration space and persist fitted "
             "thresholds in the plan store",
    )
    cal_run.add_argument(
        "--store", default=None,
        help="plan store path (default: the autotune cache location)",
    )
    cal_run.add_argument(
        "--budget", type=float, default=30.0,
        help="wall-clock budget for the sweep, seconds",
    )
    cal_run.add_argument("--threads", type=int, default=1)
    cal_run.add_argument(
        "--min-seconds", type=float, default=0.005,
        help="timing floor per measured candidate",
    )
    cal_run.set_defaults(fn=cmd_calibrate_run)
    cal_show = calibrate_sub.add_parser(
        "show", help="print the persisted calibration record"
    )
    cal_show.add_argument("--store", default=None)
    cal_show.set_defaults(fn=cmd_calibrate_show)

    sub.add_parser(
        "verify", help="self-test every TTM entry point against the oracle"
    ).set_defaults(fn=cmd_verify)

    plan = sub.add_parser("plan", help="show the plan for one TTM input")
    plan.add_argument("shape", help="tensor shape, e.g. 100x100x100")
    plan.add_argument("mode", type=int, help="0-based product mode")
    plan.add_argument("j", type=int, help="output rank J")
    plan.add_argument("--layout", default="C", choices=["C", "F"])
    plan.add_argument("--threads", type=int, default=1)
    plan.add_argument(
        "--explain", action="store_true",
        help="print the decision rationale (strategy, degree, PTH, kernel)",
    )
    plan.set_defaults(fn=cmd_plan)

    profile = sub.add_parser("profile", help="measure + save a GEMM profile")
    profile.add_argument("output", help="output JSON path")
    profile.add_argument("--j", type=int, default=16)
    profile.add_argument("--threads", type=int, default=1)
    profile.set_defaults(fn=cmd_profile)

    predict = sub.add_parser(
        "predict", help="rank candidate plans by predicted GFLOP/s"
    )
    predict.add_argument("shape")
    predict.add_argument("mode", type=int)
    predict.add_argument("j", type=int)
    predict.add_argument("--layout", default="C", choices=["C", "F"])
    predict.add_argument("--threads", type=int, default=1)
    predict.set_defaults(fn=cmd_predict)

    trace = sub.add_parser(
        "trace", help="run a demo workload under the repro.obs tracer"
    )
    trace.add_argument(
        "workload",
        nargs="?",
        default="ttm",
        choices=TRACE_WORKLOADS,
        help="demo workload: 'ttm' (plan+execute twice, showing the "
        "cache hit) or 'chain' (fused multi-TTM chain twice, showing "
        "the chain-plan cache hit and scratch reuse)",
    )
    trace.add_argument("--shape", default="24x24x24")
    trace.add_argument("--mode", type=int, default=1)
    trace.add_argument("--j", type=int, default=8)
    trace.add_argument("--layout", default="C", choices=["C", "F"])
    trace.add_argument("--threads", type=int, default=1)
    trace.add_argument(
        "--executor", default="interpreted",
        choices=["interpreted", "generated"],
        help="execution engine to trace (interpreted shows the full "
        "view-build/parfor/kernel hierarchy)",
    )
    trace.add_argument(
        "--chrome", default=None, metavar="PATH",
        help="export a chrome://tracing / Perfetto trace_event JSON file",
    )
    trace.add_argument(
        "--jsonl", default=None, metavar="PATH",
        help="export spans as JSON-lines",
    )
    trace.set_defaults(fn=cmd_trace)

    explain = sub.add_parser(
        "explain", help="explain a planner decision"
    )
    explain_sub = explain.add_subparsers(dest="what", required=True)
    chain = explain_sub.add_parser(
        "chain", help="show a fused TTM chain's order and buffer schedule"
    )
    chain.add_argument("shape", help="tensor shape, e.g. 40x40x40x40")
    chain.add_argument(
        "steps",
        help="chain signature as comma-separated MODE:J pairs, "
        "e.g. 0:8,1:8,2:16",
    )
    chain.add_argument("--layout", default="C", choices=["C", "F"])
    chain.add_argument("--threads", type=int, default=1)
    chain.add_argument("--dtype", default="float64")
    chain.add_argument(
        "--order", default="auto",
        choices=["auto", "greedy", "optimal", "given"],
        help="ordering policy: auto (roofline DP), greedy (flop "
        "exchange rule), optimal (flop DP), given (as written)",
    )
    chain.set_defaults(fn=cmd_explain)

    tile = sub.add_parser(
        "tile", help="out-of-core tiling planner tools"
    )
    tile_sub = tile.add_subparsers(dest="what", required=True)
    tile_explain = tile_sub.add_parser(
        "explain",
        help="show how a TTM would be tiled under a memory budget",
    )
    tile_explain.add_argument("shape", help="tensor shape, e.g. 512x512x512")
    tile_explain.add_argument("mode", type=int, help="0-based product mode")
    tile_explain.add_argument("j", type=int, help="output rank J")
    tile_explain.add_argument("--layout", default="C", choices=["C", "F"])
    tile_explain.add_argument("--dtype", default="float64")
    tile_explain.add_argument("--threads", type=int, default=1)
    tile_explain.add_argument(
        "--budget", default=None, metavar="BYTES",
        help="memory budget (accepts suffixes: 64k, 8MiB, 2g); "
        "defaults to the live probe / $REPRO_MEM_LIMIT",
    )
    tile_explain.set_defaults(fn=cmd_tile_explain)

    serve = sub.add_parser(
        "serve", help="replay a request trace through the serving engine"
    )
    serve.add_argument(
        "--requests", type=int, default=2000,
        help="requests to generate when --trace is not given",
    )
    serve.add_argument("--tenants", type=int, default=4)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--pattern", default="random", choices=["random", "stream"]
    )
    serve.add_argument(
        "--trace", default=None, metavar="PATH",
        help="replay a trace written by 'loadgen' instead of generating one",
    )
    serve.add_argument(
        "--concurrency", type=int, default=64,
        help="closed-loop in-flight submission cap",
    )
    serve.add_argument(
        "--open-loop", action="store_true",
        help="fire requests at trace timestamps (can overload the server)",
    )
    serve.add_argument(
        "--verify", action="store_true",
        help="check every result against the Algorithm-1 oracle",
    )
    serve.add_argument(
        "--fail-on-shed", action="store_true",
        help="exit 1 on any shed or wrong result (the CI smoke gate)",
    )
    serve.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-request latency budget (default: none)",
    )
    serve.add_argument(
        "--watchdog", type=float, default=None, metavar="SECONDS",
        help="batch execution watchdog (default: none)",
    )
    serve.add_argument(
        "--window", type=float, default=0.002, metavar="SECONDS",
        help="micro-batch collection window",
    )
    serve.add_argument("--max-batch", type=int, default=64)
    serve.add_argument(
        "--no-coalesce", action="store_true",
        help="serve every request individually (the unbatched baseline)",
    )
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument("--threads", type=int, default=1)
    serve.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the load report as JSON",
    )
    serve.add_argument(
        "--chrome", default=None, metavar="PATH",
        help="export per-request span trees as a Chrome trace",
    )
    serve.set_defaults(fn=cmd_serve)

    loadgen = sub.add_parser(
        "loadgen", help="generate a deterministic multi-tenant request trace"
    )
    loadgen.add_argument("output", help="output trace JSON path")
    loadgen.add_argument("--requests", type=int, default=2000)
    loadgen.add_argument("--tenants", type=int, default=4)
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument(
        "--pattern", default="random", choices=["random", "stream"]
    )
    loadgen.add_argument(
        "--rate", type=float, default=2000.0, metavar="HZ",
        help="mean arrival rate encoded in the trace timestamps",
    )
    loadgen.set_defaults(fn=cmd_loadgen)

    bench = sub.add_parser("bench", help="run one paper experiment")
    bench.add_argument("name", help="experiment id (or 'list')")
    bench.set_defaults(fn=cmd_bench)

    cache = sub.add_parser(
        "cache", help="inspect or manage the autotune plan cache"
    )
    cache_sub = cache.add_subparsers(dest="action", required=True)

    show = cache_sub.add_parser("show", help="list cached plan decisions")
    show.add_argument("--path", default=None, help="store file override")
    show.add_argument(
        "--verbose", action="store_true", help="also print each full plan"
    )
    show.set_defaults(fn=cmd_cache_show)

    clear = cache_sub.add_parser("clear", help="delete the cache store file")
    clear.add_argument("--path", default=None, help="store file override")
    clear.set_defaults(fn=cmd_cache_clear)

    warm = cache_sub.add_parser(
        "warm", help="pre-plan signatures so first requests skip the estimator"
    )
    warm.add_argument("shape", help="tensor shape, e.g. 100x100x100")
    warm.add_argument("mode", type=int, help="0-based product mode")
    warm.add_argument(
        "j", type=int, nargs="+", help="output rank(s) J to warm"
    )
    warm.add_argument("--layout", default="C", choices=["C", "F"])
    warm.add_argument("--threads", type=int, default=1)
    warm.add_argument("--path", default=None, help="store file override")
    warm.set_defaults(fn=cmd_cache_warm)

    recover = sub.add_parser(
        "recover",
        help="inspect, resume, or verify a journaled out-of-core job",
    )
    recover_sub = recover.add_subparsers(dest="action", required=True)

    rshow = recover_sub.add_parser(
        "show", help="summarize a journal: kind, progress, status"
    )
    rshow.add_argument("journal", help="journal manifest path")
    rshow.set_defaults(fn=cmd_recover_show)

    rresume = recover_sub.add_parser(
        "resume",
        help="finish an interrupted job from its manifest "
        "(requires recorded input paths)",
    )
    rresume.add_argument("journal", help="journal manifest path")
    rresume.set_defaults(fn=cmd_recover_resume)

    rverify = recover_sub.add_parser(
        "verify",
        help="re-checksum the landed result against the journal's "
        "commit records (exit 1 on any mismatch)",
    )
    rverify.add_argument("journal", help="journal manifest path")
    rverify.add_argument(
        "--out", default=None,
        help="output file override (defaults to the journal's recorded "
        "out_path)",
    )
    rverify.set_defaults(fn=cmd_recover_verify)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
