"""Naive reference GEMM: the correctness oracle.

Deliberately written as the scalar triple loop so that it is obviously
equivalent to the mathematical definition.  It is used by tests to validate
the optimized kernels and by the cache simulator's trace generator as the
canonical access order.  Do not use it for real work: it is O(MNK) Python
bytecode.
"""

from __future__ import annotations

import numpy as np

from repro.resilience.faults import active_faults
from repro.util.dtypes import result_dtype
from repro.util.errors import ShapeError


def gemm_reference(
    a: np.ndarray,
    b: np.ndarray,
    out: np.ndarray | None = None,
    accumulate: bool = False,
) -> np.ndarray:
    """Compute ``out = a @ b`` (or ``out += a @ b``) by the scalar definition.

    Accepts arbitrary strides.  Returns *out* (allocating it when None).
    """
    faults = active_faults()
    if faults is not None:
        # Before any write to out: an injected failure must look like a
        # kernel that never started.
        faults.check("kernel-raise", kernel="reference")
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or b.ndim != 2:
        raise ShapeError(f"gemm operands must be 2-D, got {a.ndim}-D and {b.ndim}-D")
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ShapeError(f"inner dimensions differ: {a.shape} @ {b.shape}")
    if out is None:
        out = np.zeros((m, n), dtype=result_dtype(a, b))
        accumulate = True  # freshly zeroed, accumulation is safe and simple
    if out.shape != (m, n):
        raise ShapeError(f"out shape {out.shape} != {(m, n)}")
    if not accumulate:
        out[...] = 0.0
    for i in range(m):
        for j in range(n):
            acc = 0.0
            for p in range(k):
                acc += a[i, p] * b[p, j]
            out[i, j] += acc
    return out
