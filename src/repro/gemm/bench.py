"""The offline GEMM shape benchmark (the "MM Benchmark" of figure 7).

The input-adaptive framework needs to know how GEMM throughput varies
with operand shape — the empirical fact behind figures 5 and 8.  This
module produces a :class:`GemmProfile`, a queryable table of
``(m, k, n, threads) -> GFLOP/s`` points, in either of two ways:

* :func:`measure_profile` times real kernels on this host;
* :func:`synthetic_profile` evaluates the deterministic roofline model of
  :mod:`repro.analysis.roofline` for a chosen platform preset — used in
  tests (reproducible decisions) and to instantiate the paper's testbeds.

Profiles serialize to JSON so an expensive measurement can be reused
across runs, mirroring the paper's offline-autotuning workflow.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.analysis.roofline import RooflinePlatform, gemm_model_gflops
from repro.perf.flops import gemm_flops, gflops_rate
from repro.perf.timing import time_callable
from repro.util.errors import BenchmarkError
from repro.util.rng import default_rng
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class ShapePoint:
    """One benchmark observation: GEMM shape, thread count, throughput."""

    m: int
    k: int
    n: int
    threads: int
    gflops: float

    @property
    def working_set_bytes(self) -> int:
        """Total bytes of the three operands (the threshold unit, §4.3.1)."""
        return 8 * (self.m * self.k + self.k * self.n + self.m * self.n)


class GemmProfile:
    """A queryable set of :class:`ShapePoint` observations."""

    def __init__(self, points: Iterable[ShapePoint], meta: dict | None = None):
        self._points = list(points)
        if not self._points:
            raise BenchmarkError("a GemmProfile needs at least one point")
        self.meta = dict(meta or {})
        self._index = {
            (p.m, p.k, p.n, p.threads): p.gflops for p in self._points
        }

    @property
    def points(self) -> list[ShapePoint]:
        return list(self._points)

    def thread_counts(self) -> tuple[int, ...]:
        return tuple(sorted({p.threads for p in self._points}))

    def gflops(self, m: int, k: int, n: int, threads: int) -> float:
        """Throughput at a shape: exact point if present, else the
        nearest profiled shape in log-space (same thread count)."""
        exact = self._index.get((m, k, n, threads))
        if exact is not None:
            return exact
        candidates = [p for p in self._points if p.threads == threads]
        if not candidates:
            raise BenchmarkError(
                f"profile has no points for threads={threads}; "
                f"available: {self.thread_counts()}"
            )

        def log_distance(p: ShapePoint) -> float:
            return (
                (math.log(p.m) - math.log(m)) ** 2
                + (math.log(p.k) - math.log(k)) ** 2
                + (math.log(p.n) - math.log(n)) ** 2
            )

        return min(candidates, key=log_distance).gflops

    def series(
        self, *, m: int | None = None, k: int | None = None,
        n: int | None = None, threads: int | None = None,
    ) -> list[ShapePoint]:
        """All points matching the fixed coordinates, sorted by (m, k, n)."""
        out = [
            p
            for p in self._points
            if (m is None or p.m == m)
            and (k is None or p.k == k)
            and (n is None or p.n == n)
            and (threads is None or p.threads == threads)
        ]
        return sorted(out, key=lambda p: (p.m, p.k, p.n))

    def peak_gflops(self, threads: int | None = None) -> float:
        """Best observed throughput (optionally restricted to a thread count)."""
        pts = self._points if threads is None else self.series(threads=threads)
        if not pts:
            raise BenchmarkError(f"no points for threads={threads}")
        return max(p.gflops for p in pts)

    # -- serialization ------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {"meta": self.meta, "points": [asdict(p) for p in self._points]},
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "GemmProfile":
        payload = json.loads(text)
        points = [ShapePoint(**p) for p in payload["points"]]
        return cls(points, payload.get("meta"))

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "GemmProfile":
        with open(path) as fh:
            return cls.from_json(fh.read())

    def __len__(self) -> int:
        return len(self._points)

    def __repr__(self) -> str:
        return (
            f"GemmProfile({len(self._points)} points, "
            f"threads={self.thread_counts()})"
        )


def default_shape_grid(
    m_values: Sequence[int] = (16,),
    k_exponents: Sequence[int] = tuple(range(4, 13)),
    n_exponents: Sequence[int] = tuple(range(4, 13)),
) -> list[tuple[int, int, int]]:
    """The figure-5 style (m, k, n) grid: fixed small m, powers of two k/n."""
    return [
        (m, 2**ke, 2**ne)
        for m in m_values
        for ke in k_exponents
        for ne in n_exponents
    ]


def measure_profile(
    shapes: Sequence[tuple[int, int, int]],
    threads: Sequence[int] = (1,),
    kernel: str = "auto",
    min_seconds: float = 0.02,
    seed=0,
) -> GemmProfile:
    """Time real GEMMs over *shapes* x *threads* on this host.

    The operation measured is ``C = A @ B`` with contiguous operands —
    the paper's figure-5 measurement (their ``C = B A^T`` is the same
    flop count and access pattern after transposition).
    """
    from repro.gemm.interface import gemm

    rng = default_rng(seed)
    points: list[ShapePoint] = []
    for m, k, n in shapes:
        check_positive_int(m, "m")
        check_positive_int(k, "k")
        check_positive_int(n, "n")
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        out = np.empty((m, n))
        for t in threads:
            if t == 1 or kernel == "threaded":
                fn: Callable[[], object] = lambda: gemm(
                    a, b, out=out, kernel=kernel
                )
            else:
                fn = lambda: gemm(a, b, out=out, kernel="threaded", threads=t)
            seconds = time_callable(fn, min_repeats=2, min_seconds=min_seconds)
            points.append(
                ShapePoint(
                    m=m,
                    k=k,
                    n=n,
                    threads=t,
                    gflops=gflops_rate(gemm_flops(m, k, n), seconds),
                )
            )
    return GemmProfile(points, meta={"source": "measured", "kernel": kernel})


def synthetic_profile(
    shapes: Sequence[tuple[int, int, int]],
    platform: RooflinePlatform,
    threads: Sequence[int] = (1,),
) -> GemmProfile:
    """Evaluate the roofline model over *shapes* x *threads* (deterministic)."""
    points = [
        ShapePoint(
            m=m,
            k=k,
            n=n,
            threads=t,
            gflops=gemm_model_gflops(m, k, n, platform, threads=t),
        )
        for (m, k, n) in shapes
        for t in threads
    ]
    return GemmProfile(
        points, meta={"source": "synthetic", "platform": platform.name}
    )
