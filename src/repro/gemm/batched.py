"""Batched GEMM: one dispatch for a whole stack of matrix multiplies.

The in-place TTM's loop nest dispatches one small GEMM per loop-mode
index; when a run of those indices can be stacked into a rank-3 strided
view (:func:`repro.tensor.views.merged_batch_view`), the entire run is a
single *batched* multiply.  NumPy's ``matmul`` executes the batch loop in
C — one BLAS call per slice without re-entering the interpreter — which
is the closest Python analogue of the compiled loop nests of GETT-style
contraction engines, and the reason batching removes the interpreter
overhead the per-iteration executor pays.

``gemm_batched`` mirrors :func:`repro.gemm.interface.gemm`'s contract at
rank 3: the fast path requires every 2-D slice to be BLAS-legal (the
batch stride itself may be anything); other operands, explicit kernels,
and ``accumulate=True`` fall back to a per-slice loop through the normal
2-D dispatch, so results are always available and memory stays bounded
by one kernel-sized temporary.
"""

from __future__ import annotations

import numpy as np

from repro.gemm.interface import blas_legal, gemm
from repro.obs.tracer import active_tracer
from repro.resilience.faults import active_faults
from repro.util.dtypes import result_dtype
from repro.util.errors import ShapeError, StrideError


def batched_slices_blas_legal(array: np.ndarray) -> bool:
    """True when every 2-D slice of a rank-3 operand is BLAS-expressible.

    Slice legality is a pure function of the two inner strides, so one
    check covers the whole batch; the batch stride never matters (it only
    offsets successive calls).  2-D operands (broadcast across the batch)
    are judged directly.
    """
    if array.ndim == 2:
        return blas_legal(array)
    if array.ndim != 3:
        return False
    if array.shape[0] == 0:
        return True  # empty batch: no slice is ever dispatched
    return blas_legal(array[0])


def _normalize(name: str, array: np.ndarray) -> np.ndarray:
    arr = np.asarray(array)
    if arr.ndim not in (2, 3):
        raise ShapeError(f"{name} must be 2-D or 3-D, got {arr.ndim}-D")
    return arr


def _batch_of(a: np.ndarray, b: np.ndarray) -> int:
    batches = {arr.shape[0] for arr in (a, b) if arr.ndim == 3}
    if len(batches) > 1:
        raise ShapeError(
            f"batch extents differ: {a.shape} vs {b.shape}"
        )
    if not batches:
        raise ShapeError(
            "gemm_batched needs at least one 3-D operand; use gemm() for "
            "plain 2-D multiplies"
        )
    return batches.pop()


def _slice(arr: np.ndarray, i: int) -> np.ndarray:
    return arr[i] if arr.ndim == 3 else arr


def gemm_batched(
    a: np.ndarray,
    b: np.ndarray,
    out: np.ndarray | None = None,
    *,
    accumulate: bool = False,
    kernel: str = "auto",
    **kwargs,
) -> np.ndarray:
    """Compute ``out[i] = a[i] @ b[i]`` for every batch slice ``i``.

    Parameters
    ----------
    a, b:
        Operands; each is either 3-D ``(B, ., .)`` or 2-D (shared across
        the batch).  At least one must be 3-D.
    out:
        Optional preallocated 3-D destination ``(B, m, n)``, written in
        place (possibly through arbitrary strides — this is what lets the
        TTM write straight into the output tensor's storage).
    accumulate:
        Add into *out* instead of overwriting; always executes per slice
        so the temporary stays one kernel in size, never batch-sized.
    kernel:
        ``auto`` uses the ``np.matmul`` fast path when every slice is
        BLAS-legal and loops through the 2-D dispatch otherwise; ``blas``
        demands legality (raising :class:`StrideError` like the 2-D
        kernel); any other registered kernel name loops per slice.
    kwargs:
        Forwarded to the per-slice 2-D dispatch (e.g. ``threads``).
    """
    a = _normalize("a", a)
    b = _normalize("b", b)
    batch = _batch_of(a, b)
    # Slice geometry from the shapes, not from slice 0: a batch of zero
    # slices is legal (zero-extent TTM inputs) and has nothing to index.
    m, k = a.shape[-2:]
    k2, n = b.shape[-2:]
    if k != k2:
        raise ShapeError(f"inner dimensions differ: {a.shape} @ {b.shape}")
    if out is not None:
        out = np.asarray(out)
        if out.shape != (batch, m, n):
            raise ShapeError(f"out shape {out.shape} != {(batch, m, n)}")
    if accumulate and out is None:
        raise ShapeError("accumulate=True requires an out array")

    tracer = active_tracer()
    if tracer.enabled:
        current = tracer.current_span()
        # The interpreter wraps its dispatches in a gemm-kernel span
        # already; only direct callers (generated code, library users)
        # need one opened here.
        if current is None or current.name != "gemm-kernel":
            with tracer.span(
                "gemm-kernel",
                batch=batch,
                m=m,
                k=k,
                n=n,
                kernel=kernel,
                dtype=np.result_type(a, b).name,
                accumulate=accumulate,
            ):
                return _gemm_batched_run(
                    a, b, out, batch, m, n, accumulate, kernel, kwargs
                )
    return _gemm_batched_run(a, b, out, batch, m, n, accumulate, kernel, kwargs)


def _gemm_batched_run(a, b, out, batch, m, n, accumulate, kernel, kwargs):
    from repro.gemm.interface import blas_dtype_legal

    strides_legal = (
        batched_slices_blas_legal(a)
        and batched_slices_blas_legal(b)
        and (out is None or batched_slices_blas_legal(out))
    )
    if kernel == "blas" and not strides_legal:
        raise StrideError(
            "batched operands have slices not expressible in the BLAS "
            "interface; use kernel='auto' or 'blocked' for general strides"
        )
    # Non-BLAS dtypes (float16) skip the matmul fast path and loop per
    # slice, where the 2-D dispatch applies its dtype capability fallback.
    legal = strides_legal and blas_dtype_legal(result_dtype(a, b))
    if kernel in ("blas", "auto") and legal and not accumulate and not kwargs:
        faults = active_faults()
        if faults is not None:
            # The matmul fast path bypasses the 2-D kernels (and their
            # checkpoints); cover it here so batched dispatches are as
            # injectable as per-slice ones.  Before any write to out.
            faults.check("kernel-raise", kernel=kernel, batched=True)
        if out is None:
            return np.matmul(a, b)
        np.matmul(a, b, out=out)
        return out

    # Per-slice fallback: same numerics as the per-iteration executor.
    slice_kernel = "auto" if kernel == "blas" else kernel
    if out is None:
        out = np.empty((batch, m, n), dtype=result_dtype(a, b))
    for i in range(batch):
        gemm(
            _slice(a, i),
            _slice(b, i),
            out=out[i],
            accumulate=accumulate,
            kernel=slice_kernel,
            **kwargs,
        )
    return out
