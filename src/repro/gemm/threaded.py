"""Kernel-level (fine-grained) parallel GEMM: the paper's ``P_C`` threads.

The in-place TTM allocates threads either to its outer loop nest (``P_L``)
or to the inner matrix multiply (``P_C``).  This module supplies the
latter: the M dimension is split into row panels, one per worker, and each
worker runs an independent GEMM into its disjoint slice of the output.
NumPy's BLAS kernels release the GIL, so Python threads genuinely overlap.

Row-panel parallelism is what MKL/BLIS themselves do at the outermost
level for tall outputs, and it requires no reduction (each worker owns its
output rows).
"""

from __future__ import annotations

import math
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.util.dtypes import result_dtype
from repro.util.errors import ShapeError
from repro.util.validation import check_positive_int


def _row_panels(m: int, parts: int) -> list[tuple[int, int]]:
    """Split range(m) into <= parts near-equal contiguous panels."""
    parts = max(1, min(parts, m)) if m else 1
    panel = math.ceil(m / parts) if m else 0
    spans = []
    start = 0
    while start < m:
        stop = min(start + panel, m)
        spans.append((start, stop))
        start = stop
    return spans or [(0, 0)]


def gemm_threaded(
    a: np.ndarray,
    b: np.ndarray,
    out: np.ndarray | None = None,
    accumulate: bool = False,
    threads: int = 2,
    kernel: str = "auto",
) -> np.ndarray:
    """``out = a @ b`` with *threads*-way row-panel parallelism.

    Each panel is dispatched through :func:`repro.gemm.interface.gemm`
    with the given inner *kernel* (``auto`` routes per-panel by stride
    legality, so a strided operand still works).
    """
    from repro.gemm.interface import gemm

    check_positive_int(threads, "threads")
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or b.ndim != 2:
        raise ShapeError(f"gemm operands must be 2-D, got {a.ndim}-D and {b.ndim}-D")
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ShapeError(f"inner dimensions differ: {a.shape} @ {b.shape}")
    if out is None:
        if accumulate:
            raise ShapeError("accumulate=True requires an out array")
        out = np.empty((m, n), dtype=result_dtype(a, b))
    elif out.shape != (m, n):
        raise ShapeError(f"out shape {out.shape} != {(m, n)}")

    panels = _row_panels(m, threads)
    if len(panels) == 1:
        lo, hi = panels[0]
        if hi > lo:
            gemm(a[lo:hi], b, out=out[lo:hi], accumulate=accumulate, kernel=kernel)
        return out

    def run(span: tuple[int, int]) -> None:
        lo, hi = span
        gemm(a[lo:hi], b, out=out[lo:hi], accumulate=accumulate, kernel=kernel)

    with ThreadPoolExecutor(max_workers=len(panels)) as pool:
        # list() propagates the first worker exception, if any.
        list(pool.map(run, panels))
    return out
