"""GEMM dispatch and stride legality predicates.

This module owns the kernel registry and the ``auto`` routing rule the
in-place TTM relies on: BLAS-legal operands go to the fast unit-stride
kernel (the MKL role), anything else to the general-stride blocked kernel
(the BLIS role) — mirroring the paper's forward/backward strategy
consequences (§4.3.1).
"""

from __future__ import annotations

import warnings
from typing import Callable

import numpy as np

from repro.obs.tracer import active_tracer
from repro.util.dtypes import SUPPORTED_DTYPES, canonical_dtype, result_dtype
from repro.util.errors import ShapeError, StrideError


def unit_stride_dims(array: np.ndarray) -> tuple[bool, bool]:
    """(rows_unit, cols_unit): which dimensions of a 2-D array have unit stride.

    A dimension of extent <= 1 is vacuously unit stride (BLAS accepts any
    ld for it).
    """
    if array.ndim != 2:
        raise ShapeError(f"expected a 2-D array, got {array.ndim}-D")
    itemsize = array.itemsize
    rows_unit = array.shape[0] <= 1 or array.strides[0] == itemsize
    cols_unit = array.shape[1] <= 1 or array.strides[1] == itemsize
    return rows_unit, cols_unit


def blas_legal(array: np.ndarray) -> bool:
    """True if a 2-D operand is expressible in the BLAS interface.

    BLAS matrices have unit stride in one dimension and a non-negative
    leading dimension in the other; general-stride operands (both strides
    non-unit) are *not* expressible — the limitation motivating BLIS and
    this paper's strategy choice.
    """
    if array.ndim != 2:
        return False
    if any(s < 0 for s in array.strides):
        return False
    return any(unit_stride_dims(array))


def _gemm_auto(a, b, out=None, accumulate=False):
    from repro.gemm.blas_like import gemm_blas
    from repro.gemm.blocked import gemm_blocked

    if (
        blas_dtype_legal(result_dtype(a, b))
        and blas_legal(a)
        and blas_legal(b)
        and (out is None or blas_legal(out))
    ):
        return gemm_blas(a, b, out=out, accumulate=accumulate)
    return gemm_blocked(a, b, out=out, accumulate=accumulate)


_REGISTRY: dict[str, Callable] | None = None


def _registry() -> dict[str, Callable]:
    # Built lazily (the kernel modules import this one) and cached: the
    # registry is immutable after first use, and rebuilding it per GEMM
    # call is measurable interpreter overhead on the TTM hot path.
    global _REGISTRY
    if _REGISTRY is None:
        from repro.gemm.blas_like import gemm_blas
        from repro.gemm.blocked import gemm_blocked
        from repro.gemm.reference import gemm_reference
        from repro.gemm.threaded import gemm_threaded

        _REGISTRY = {
            "auto": _gemm_auto,
            "blas": gemm_blas,
            "blocked": gemm_blocked,
            "reference": gemm_reference,
            "threaded": gemm_threaded,
        }
    return _REGISTRY


#: Element types each kernel executes natively.  ``blas`` is restricted to
#: the types real BLAS libraries expose (SGEMM/DGEMM); the pure-strided
#: kernels work elementwise and take every supported dtype.  ``auto`` and
#: ``threaded`` route per operand, so they inherit the full set.
KERNEL_DTYPES: dict[str, frozenset[str]] = {
    "auto": frozenset(SUPPORTED_DTYPES),
    "blas": frozenset(("float32", "float64")),
    "blocked": frozenset(SUPPORTED_DTYPES),
    "reference": frozenset(SUPPORTED_DTYPES),
    "threaded": frozenset(SUPPORTED_DTYPES),
}

#: Where a kernel that cannot execute a dtype is re-routed.  The blocked
#: kernel accepts arbitrary strides and every supported dtype, so it is
#: the universal (if slower) landing spot.
FALLBACK_KERNEL = "blocked"

_FALLBACKS_WARNED: set[tuple[str, str]] = set()


def blas_dtype_legal(dtype) -> bool:
    """True when *dtype* is a type real BLAS GEMM interfaces expose."""
    return np.dtype(dtype).name in KERNEL_DTYPES["blas"]


def kernel_supports(kernel: str, dtype) -> bool:
    """True when *kernel* executes *dtype* natively (no fallback needed)."""
    try:
        supported = KERNEL_DTYPES[kernel]
    except KeyError:
        raise StrideError(
            f"unknown gemm kernel {kernel!r}; choose from {KERNELS}"
        ) from None
    return canonical_dtype(dtype).name in supported


def resolve_kernel(kernel: str, dtype=None) -> Callable:
    """The callable behind a kernel name (for hoisting dispatch out of loops).

    ``gemm(..., kernel=k)`` performs a registry lookup per call; loop
    bodies that dispatch thousands of small GEMMs resolve the kernel once
    with this function instead and call the result directly.

    When *dtype* is given, the resolution is **capability-checked**: a
    kernel that cannot execute that element type (e.g. ``blas`` asked for
    float16, which no BLAS GEMM exposes) resolves to the
    :data:`FALLBACK_KERNEL` instead, with a one-time warning per
    ``(kernel, dtype)`` pair — never a silent upcast-and-copy of the
    operands.
    """
    registry = _registry()
    try:
        impl = registry[kernel]
    except KeyError:
        raise StrideError(
            f"unknown gemm kernel {kernel!r}; choose from {KERNELS}"
        ) from None
    if dtype is None:
        return impl
    dt = canonical_dtype(dtype)
    if dt.name in KERNEL_DTYPES[kernel]:
        return impl
    key = (kernel, dt.name)
    if key not in _FALLBACKS_WARNED:
        _FALLBACKS_WARNED.add(key)
        warnings.warn(
            f"gemm kernel {kernel!r} does not support dtype {dt.name}; "
            f"falling back to {FALLBACK_KERNEL!r} (strided, "
            "dtype-preserving). Pick a supported dtype to silence this.",
            RuntimeWarning,
            stacklevel=2,
        )
    return registry[FALLBACK_KERNEL]


KERNELS = "auto", "blas", "blocked", "reference", "threaded"


def kernel_names() -> tuple[str, ...]:
    """Names accepted by :func:`gemm`'s *kernel* argument."""
    return KERNELS


def gemm(
    a: np.ndarray,
    b: np.ndarray,
    out: np.ndarray | None = None,
    *,
    accumulate: bool = False,
    kernel: str = "auto",
    **kwargs,
) -> np.ndarray:
    """Compute ``out = a @ b`` (``out += a @ b`` when *accumulate*).

    Parameters
    ----------
    a, b:
        2-D operands of any strides (kernel-dependent legality applies).
    out:
        Optional preallocated destination, written in place.  When given,
        the result is stored through *out*'s strides — this is what makes
        the TTM in-place.
    accumulate:
        Add into *out* instead of overwriting (GEMM's beta=1).
    kernel:
        One of ``auto | blas | blocked | reference | threaded``.
    kwargs:
        Kernel-specific options (e.g. ``block_sizes`` for ``blocked``,
        ``threads`` for ``threaded``).
    """
    impl = resolve_kernel(kernel)
    tracer = active_tracer()
    if tracer.enabled:
        current = tracer.current_span()
        # The interpreter wraps its dispatches in a gemm-kernel span
        # already; only direct callers (generated code, library users)
        # need one opened here.
        if current is None or current.name != "gemm-kernel":
            with tracer.span(
                "gemm-kernel",
                m=a.shape[0],
                k=a.shape[1],
                n=b.shape[1],
                kernel=kernel,
                dtype=np.result_type(a, b).name,
                accumulate=accumulate,
            ):
                return impl(a, b, out=out, accumulate=accumulate, **kwargs)
    return impl(a, b, out=out, accumulate=accumulate, **kwargs)
