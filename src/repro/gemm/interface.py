"""GEMM dispatch and stride legality predicates.

This module owns the kernel registry and the ``auto`` routing rule the
in-place TTM relies on: BLAS-legal operands go to the fast unit-stride
kernel (the MKL role), anything else to the general-stride blocked kernel
(the BLIS role) — mirroring the paper's forward/backward strategy
consequences (§4.3.1).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.obs.tracer import active_tracer
from repro.util.errors import ShapeError, StrideError


def unit_stride_dims(array: np.ndarray) -> tuple[bool, bool]:
    """(rows_unit, cols_unit): which dimensions of a 2-D array have unit stride.

    A dimension of extent <= 1 is vacuously unit stride (BLAS accepts any
    ld for it).
    """
    if array.ndim != 2:
        raise ShapeError(f"expected a 2-D array, got {array.ndim}-D")
    itemsize = array.itemsize
    rows_unit = array.shape[0] <= 1 or array.strides[0] == itemsize
    cols_unit = array.shape[1] <= 1 or array.strides[1] == itemsize
    return rows_unit, cols_unit


def blas_legal(array: np.ndarray) -> bool:
    """True if a 2-D operand is expressible in the BLAS interface.

    BLAS matrices have unit stride in one dimension and a non-negative
    leading dimension in the other; general-stride operands (both strides
    non-unit) are *not* expressible — the limitation motivating BLIS and
    this paper's strategy choice.
    """
    if array.ndim != 2:
        return False
    if any(s < 0 for s in array.strides):
        return False
    return any(unit_stride_dims(array))


def _gemm_auto(a, b, out=None, accumulate=False):
    from repro.gemm.blas_like import gemm_blas
    from repro.gemm.blocked import gemm_blocked

    if blas_legal(a) and blas_legal(b) and (out is None or blas_legal(out)):
        return gemm_blas(a, b, out=out, accumulate=accumulate)
    return gemm_blocked(a, b, out=out, accumulate=accumulate)


_REGISTRY: dict[str, Callable] | None = None


def _registry() -> dict[str, Callable]:
    # Built lazily (the kernel modules import this one) and cached: the
    # registry is immutable after first use, and rebuilding it per GEMM
    # call is measurable interpreter overhead on the TTM hot path.
    global _REGISTRY
    if _REGISTRY is None:
        from repro.gemm.blas_like import gemm_blas
        from repro.gemm.blocked import gemm_blocked
        from repro.gemm.reference import gemm_reference
        from repro.gemm.threaded import gemm_threaded

        _REGISTRY = {
            "auto": _gemm_auto,
            "blas": gemm_blas,
            "blocked": gemm_blocked,
            "reference": gemm_reference,
            "threaded": gemm_threaded,
        }
    return _REGISTRY


def resolve_kernel(kernel: str) -> Callable:
    """The callable behind a kernel name (for hoisting dispatch out of loops).

    ``gemm(..., kernel=k)`` performs a registry lookup per call; loop
    bodies that dispatch thousands of small GEMMs resolve the kernel once
    with this function instead and call the result directly.
    """
    registry = _registry()
    try:
        return registry[kernel]
    except KeyError:
        raise StrideError(
            f"unknown gemm kernel {kernel!r}; choose from {KERNELS}"
        ) from None


KERNELS = "auto", "blas", "blocked", "reference", "threaded"


def kernel_names() -> tuple[str, ...]:
    """Names accepted by :func:`gemm`'s *kernel* argument."""
    return KERNELS


def gemm(
    a: np.ndarray,
    b: np.ndarray,
    out: np.ndarray | None = None,
    *,
    accumulate: bool = False,
    kernel: str = "auto",
    **kwargs,
) -> np.ndarray:
    """Compute ``out = a @ b`` (``out += a @ b`` when *accumulate*).

    Parameters
    ----------
    a, b:
        2-D operands of any strides (kernel-dependent legality applies).
    out:
        Optional preallocated destination, written in place.  When given,
        the result is stored through *out*'s strides — this is what makes
        the TTM in-place.
    accumulate:
        Add into *out* instead of overwriting (GEMM's beta=1).
    kernel:
        One of ``auto | blas | blocked | reference | threaded``.
    kwargs:
        Kernel-specific options (e.g. ``block_sizes`` for ``blocked``,
        ``threads`` for ``threaded``).
    """
    impl = resolve_kernel(kernel)
    tracer = active_tracer()
    if tracer.enabled:
        current = tracer.current_span()
        # The interpreter wraps its dispatches in a gemm-kernel span
        # already; only direct callers (generated code, library users)
        # need one opened here.
        if current is None or current.name != "gemm-kernel":
            with tracer.span(
                "gemm-kernel",
                m=a.shape[0],
                k=a.shape[1],
                n=b.shape[1],
                kernel=kernel,
                accumulate=accumulate,
            ):
                return impl(a, b, out=out, accumulate=accumulate, **kwargs)
    return impl(a, b, out=out, accumulate=accumulate, **kwargs)
