"""GEMM substrate: the BLAS/BLIS layer of this reproduction.

The paper's in-place TTM bottoms out in matrix-matrix multiplies on
*views* of tensor storage, and its strategy choice depends on kernel
capabilities: MKL's GEMM demands unit stride in one dimension, while
BLIS accepts general strides at lower performance.  We reproduce that
split with three interchangeable kernels:

``reference``
    A naive triple loop; the correctness oracle for small problems.
``blas``
    The "MKL role": NumPy's BLAS-backed ``matmul`` restricted to
    BLAS-legal (unit-stride-in-one-dimension) operands; raises
    :class:`~repro.util.errors.StrideError` otherwise.
``blocked``
    The "BLIS role": a from-scratch Goto-style blocked GEMM with
    explicit packing; accepts arbitrary strides.

:func:`repro.gemm.interface.gemm` dispatches among them, and
:mod:`repro.gemm.bench` measures shape-dependent throughput to feed the
input-adaptive estimator (figures 5 and 8 of the paper).
"""

from repro.gemm.interface import (
    KERNELS,
    blas_legal,
    gemm,
    kernel_names,
    resolve_kernel,
    unit_stride_dims,
)
from repro.gemm.batched import batched_slices_blas_legal, gemm_batched
from repro.gemm.reference import gemm_reference
from repro.gemm.blas_like import gemm_blas
from repro.gemm.blocked import BlockSizes, gemm_blocked
from repro.gemm.threaded import gemm_threaded
from repro.gemm.bench import (
    GemmProfile,
    ShapePoint,
    measure_profile,
    synthetic_profile,
)

__all__ = [
    "KERNELS",
    "batched_slices_blas_legal",
    "blas_legal",
    "gemm",
    "gemm_batched",
    "kernel_names",
    "resolve_kernel",
    "unit_stride_dims",
    "gemm_reference",
    "gemm_blas",
    "BlockSizes",
    "gemm_blocked",
    "gemm_threaded",
    "GemmProfile",
    "ShapePoint",
    "measure_profile",
    "synthetic_profile",
]
