"""The "BLIS role": a Goto-style blocked GEMM with explicit packing.

Supports **arbitrary strides** on all three operands — including the
general-stride (both dimensions non-unit) matrices that arise when the
backward strategy slices a row-major tensor — the case classical BLAS
cannot express (§4.1).

Structure follows Goto & van de Geijn [11] / BLIS [43]:

* loop 5 partitions columns of B/C into ``NC`` panels,
* loop 4 partitions the K dimension into ``KC`` slabs and **packs** the
  ``KC x NC`` panel of B into a contiguous buffer,
* loop 3 partitions rows of A/C into ``MC`` blocks and **packs** the
  ``MC x KC`` block of A,
* the macrokernel multiplies the two packed (hence unit-stride) buffers.

Packing copies only cache-block-sized panels — the point of the paper's
distinction: strided kernels pay a *bounded, streaming* packing cost,
whereas matricization copies the whole tensor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.tracer import active_tracer
from repro.resilience.faults import active_faults
from repro.util.dtypes import result_dtype
from repro.util.errors import ShapeError


@dataclass(frozen=True)
class BlockSizes:
    """Panel blocking parameters (elements, not bytes).

    Defaults target a ~1 MiB working set for the packed panels, in line
    with L2-resident A blocks and L3-resident B panels in the Goto
    analysis; tune via :func:`repro.gemm.bench.measure_profile` if needed.
    """

    mc: int = 128
    kc: int = 256
    nc: int = 512

    def __post_init__(self) -> None:
        for name in ("mc", "kc", "nc"):
            if getattr(self, name) < 1:
                raise ShapeError(f"block size {name} must be >= 1")

    @property
    def packed_bytes(self) -> int:
        """Bytes of float64 packing buffers (A block + B panel)."""
        return self.packed_bytes_for(8)

    def packed_bytes_for(self, itemsize: int) -> int:
        """Bytes of packing buffers for elements of *itemsize* bytes."""
        return itemsize * (self.mc * self.kc + self.kc * self.nc)


DEFAULT_BLOCKS = BlockSizes()


def gemm_blocked(
    a: np.ndarray,
    b: np.ndarray,
    out: np.ndarray | None = None,
    accumulate: bool = False,
    block_sizes: BlockSizes | None = None,
) -> np.ndarray:
    """``out = a @ b`` (or ``+=``) for operands of arbitrary strides.

    Returns *out* (allocated C-contiguous when None).
    """
    faults = active_faults()
    if faults is not None:
        # Before any write to out: an injected failure must look like a
        # kernel that never started.
        faults.check("kernel-raise", kernel="blocked")
    a = np.asarray(a)
    b = np.asarray(b)
    dt = result_dtype(a, b)
    if a.dtype != dt:
        a = np.asarray(a, dtype=dt)
    if b.dtype != dt:
        b = np.asarray(b, dtype=dt)
    if a.ndim != 2 or b.ndim != 2:
        raise ShapeError(f"gemm operands must be 2-D, got {a.ndim}-D and {b.ndim}-D")
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ShapeError(f"inner dimensions differ: {a.shape} @ {b.shape}")
    if out is None:
        out = np.empty((m, n), dtype=dt)
        accumulate = False
    elif out.shape != (m, n):
        raise ShapeError(f"out shape {out.shape} != {(m, n)}")
    blocks = block_sizes or DEFAULT_BLOCKS

    tracer = active_tracer()
    if tracer.enabled:
        current = tracer.current_span()
        # Callers routed through gemm()/gemm_batched() already opened a
        # gemm-kernel span; direct callers (generated code) get one here.
        if current is None or current.name != "gemm-kernel":
            with tracer.span(
                "gemm-kernel",
                m=m,
                k=k,
                n=n,
                kernel="blocked",
                accumulate=accumulate,
            ):
                return _gemm_blocked_run(a, b, out, accumulate, blocks)
    return _gemm_blocked_run(a, b, out, accumulate, blocks)


def _gemm_blocked_run(
    a: np.ndarray,
    b: np.ndarray,
    out: np.ndarray,
    accumulate: bool,
    blocks: BlockSizes,
) -> np.ndarray:
    m, k = a.shape
    n = b.shape[1]
    mc, kc, nc = blocks.mc, blocks.kc, blocks.nc

    # Pre-allocated packing buffers, reused across all panels.  Packed in
    # the operand dtype: packing exists to fix strides, not element size.
    pack_a = np.empty((min(mc, m), min(kc, k)), dtype=a.dtype)
    pack_b = np.empty((min(kc, k), min(nc, n)), dtype=b.dtype)

    if k == 0:
        if not accumulate:
            out[...] = 0.0
        return out

    for jc in range(0, n, nc):
        j_hi = min(jc + nc, n)
        for pc in range(0, k, kc):
            p_hi = min(pc + kc, k)
            bp = pack_b[: p_hi - pc, : j_hi - jc]
            np.copyto(bp, b[pc:p_hi, jc:j_hi])
            first_slab = pc == 0
            for ic in range(0, m, mc):
                i_hi = min(ic + mc, m)
                ap = pack_a[: i_hi - ic, : p_hi - pc]
                np.copyto(ap, a[ic:i_hi, pc:p_hi])
                c_block = out[ic:i_hi, jc:j_hi]
                # Macrokernel: contiguous packed buffers hit the fast path.
                if first_slab and not accumulate:
                    c_block[...] = ap @ bp
                else:
                    c_block += ap @ bp
    return out
