"""The "MKL role": BLAS-backed GEMM restricted to BLAS-legal operands.

NumPy's ``matmul`` reaches an optimized BLAS for unit-stride operands,
which is the interface contract of the classical BLAS (§1, [1]): exactly
one dimension of each matrix may be strided (the leading dimension).  To
keep the reproduction honest, this kernel *refuses* general-stride
operands instead of silently copying them, mirroring how a real MKL call
site would have to materialize a contiguous operand first.  The dispatch
layer routes such operands to the blocked (BLIS-role) kernel instead.
"""

from __future__ import annotations

import numpy as np

from repro.gemm.interface import blas_legal
from repro.resilience.faults import active_faults
from repro.util.errors import ShapeError, StrideError


def _check_legal(name: str, array: np.ndarray) -> None:
    if array.ndim != 2:
        raise ShapeError(f"{name} must be 2-D, got {array.ndim}-D")
    if not blas_legal(array):
        raise StrideError(
            f"{name} with strides {array.strides} (shape {array.shape}) is "
            "not expressible in the BLAS interface; use the 'blocked' "
            "kernel for general strides"
        )


def gemm_blas(
    a: np.ndarray,
    b: np.ndarray,
    out: np.ndarray | None = None,
    accumulate: bool = False,
) -> np.ndarray:
    """``out = a @ b`` via the platform BLAS; operands must be BLAS-legal.

    When *out* is given it is written through in place (no reallocation of
    the destination), which the in-place TTM depends on.
    """
    faults = active_faults()
    if faults is not None:
        # Before validation and before any write: an injected failure
        # must look like a kernel that never started.
        faults.check("kernel-raise", kernel="blas")
    _check_legal("a", a)
    _check_legal("b", b)
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ShapeError(f"inner dimensions differ: {a.shape} @ {b.shape}")
    if out is None:
        if accumulate:
            raise ShapeError("accumulate=True requires an out array")
        return np.matmul(a, b)
    _check_legal("out", out)
    if out.shape != (m, n):
        raise ShapeError(f"out shape {out.shape} != {(m, n)}")
    if accumulate:
        # BLAS beta=1: NumPy has no fused AXPY-GEMM, so accumulate via a
        # product temporary of the *kernel* size (bounded by the block the
        # caller chose, never the whole tensor).
        out += a @ b
        return out
    np.matmul(a, b, out=out)
    return out
