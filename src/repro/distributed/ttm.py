"""Block-distributed mode-n product, simulated rank by rank.

Algorithm (the standard 1.5D TTM):

1. **Scatter U**: each rank needs only the panel of U's columns matching
   its local slab of mode *n* (``J x I_n^{local}`` words per rank).
2. **Local compute**: every rank runs the in-place TTM on its block with
   its panel — this is the paper's intra-node "drop-in" component.
3. **All-reduce**: ranks sharing the same non-*n* coordinates hold
   partial sums of the same output block; a ring all-reduce combines
   them (``2 (P_n - 1)/P_n x block`` words per rank).

The simulation executes those steps with real buffers (so the result is
bit-checked against the single-node product) and returns a
:class:`CommReport` of the words each step moved, enabling the grid
comparison in ``benchmarks/bench_distributed_ttm.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.inttm import ttm_inplace
from repro.distributed.grid import ProcessGrid, block_ranges
from repro.tensor.dense import DenseTensor
from repro.util.errors import ShapeError
from repro.util.validation import check_mode


@dataclass
class CommReport:
    """Words moved and work done by one distributed TTM."""

    grid: tuple[int, ...]
    scatter_u_words: int = 0
    allreduce_words: int = 0
    local_flops: list = field(default_factory=list)

    @property
    def total_comm_words(self) -> int:
        return self.scatter_u_words + self.allreduce_words

    @property
    def max_local_flops(self) -> int:
        return max(self.local_flops) if self.local_flops else 0

    @property
    def load_imbalance(self) -> float:
        """max/mean local flops (1.0 = perfectly balanced)."""
        if not self.local_flops:
            return 1.0
        mean = sum(self.local_flops) / len(self.local_flops)
        return self.max_local_flops / mean if mean else 1.0


def communication_words(
    shape: Sequence[int], j: int, mode: int, grid: ProcessGrid
) -> int:
    """Closed-form communication model for a grid choice.

    Scatter: every rank receives its U panel (total = P_other * J * I_n,
    since each of the ``P_n`` panels goes to ``P / P_n`` ranks).
    All-reduce: ring cost ``2 (P_n - 1)/P_n * |block|`` words per rank,
    zero when the contracted mode is not partitioned.
    """
    shape_t = tuple(int(s) for s in shape)
    mode = check_mode(mode, len(shape_t))
    grid.validate_for(shape_t)
    p_n = grid.dims[mode]
    p_total = grid.size
    scatter = (p_total // p_n) * j * shape_t[mode]
    out_block = j * math.prod(
        math.ceil(s / g)
        for m, (s, g) in enumerate(zip(shape_t, grid.dims))
        if m != mode
    )
    if p_n > 1:
        allreduce = p_total * 2 * (p_n - 1) * out_block // p_n
    else:
        allreduce = 0
    return scatter + allreduce


def best_grid(
    shape: Sequence[int], j: int, mode: int, nproc: int
) -> ProcessGrid:
    """The feasible grid minimizing modelled communication words."""
    from repro.distributed.grid import enumerate_grids

    shape_t = tuple(int(s) for s in shape)
    candidates = []
    for grid in enumerate_grids(len(shape_t), nproc):
        try:
            grid.validate_for(shape_t)
        except ShapeError:
            continue
        candidates.append((communication_words(shape_t, j, mode, grid), grid))
    if not candidates:
        raise ShapeError(
            f"no feasible grid of {nproc} ranks for shape {shape_t}"
        )
    candidates.sort(key=lambda c: (c[0], c[1].dims))
    return candidates[0][1]


def distributed_ttm(
    x: DenseTensor,
    u: np.ndarray,
    mode: int,
    grid: ProcessGrid,
    local_backend: Callable[[DenseTensor, np.ndarray, int], DenseTensor]
    | None = None,
) -> tuple[DenseTensor, CommReport]:
    """Execute ``Y = X x_mode U`` block-distributed over *grid*.

    Returns the assembled output tensor and the communication report.
    The result is numerically identical to the single-node product.
    """
    if not isinstance(x, DenseTensor):
        raise TypeError(f"x must be a DenseTensor, got {type(x).__name__}")
    u = np.asarray(u, dtype=np.float64)
    mode = check_mode(mode, x.order)
    if u.ndim != 2 or u.shape[1] != x.shape[mode]:
        raise ShapeError(
            f"U shape {u.shape} does not match (J, I_n={x.shape[mode]})"
        )
    grid.validate_for(x.shape)
    backend = local_backend or ttm_inplace
    j = u.shape[0]
    out_shape = x.shape[:mode] + (j,) + x.shape[mode + 1 :]
    y = DenseTensor.zeros(out_shape, x.layout)
    report = CommReport(grid=grid.dims)
    mode_ranges = block_ranges(x.shape[mode], grid.dims[mode])

    # Partial output blocks keyed by the non-mode grid coordinates; the
    # accumulation below *is* the all-reduce (performed centrally here).
    partial: dict[tuple[int, ...], np.ndarray] = {}
    for coord in grid.ranks():
        slices = grid.local_slices(x.shape, coord)
        local = DenseTensor(np.ascontiguousarray(x.data[slices]), x.layout)
        lo, hi = mode_ranges[coord[mode]]
        u_panel = np.ascontiguousarray(u[:, lo:hi])
        report.scatter_u_words += u_panel.size
        y_local = backend(local, u_panel, mode)
        report.local_flops.append(2 * j * local.size)
        key = coord[:mode] + coord[mode + 1 :]
        if key in partial:
            partial[key] += y_local.data
        else:
            partial[key] = y_local.data.copy()

    p_n = grid.dims[mode]
    for key, block in partial.items():
        if p_n > 1:
            # Ring all-reduce volume per participating rank.
            report.allreduce_words += p_n * 2 * (p_n - 1) * block.size // p_n
        # Place the reduced block into the global output.
        coord_full = key[:mode] + (0,) + key[mode:]
        slices = list(grid.local_slices(x.shape, coord_full))
        slices[mode] = slice(0, j)
        y.data[tuple(slices)] = block
    return y, report
