"""Simulated distributed-memory TTM (the paper's conclusion, §7).

The paper positions its single-node InTTM as a "drop-in replacement for
the intra-node compute component of distributed memory implementations".
This subpackage demonstrates exactly that without MPI hardware: a
block-distributed mode-n product is executed rank by rank — every local
compute step running through the in-place TTM — while the communication
a real cluster would perform (factor-matrix panel scatter, partial-result
all-reduce) is carried out by explicit buffer movement and *accounted*
in words, so distribution strategies can be compared quantitatively.
"""

from repro.distributed.grid import (
    ProcessGrid,
    block_ranges,
    enumerate_grids,
    tile_grid,
    tile_ranges,
)
from repro.distributed.ttm import (
    CommReport,
    best_grid,
    communication_words,
    distributed_ttm,
)

__all__ = [
    "ProcessGrid",
    "block_ranges",
    "enumerate_grids",
    "tile_grid",
    "tile_ranges",
    "CommReport",
    "best_grid",
    "communication_words",
    "distributed_ttm",
]
