"""Process grids and block partitions for the distributed simulation."""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.util.errors import ShapeError
from repro.util.validation import check_positive_int


def block_ranges(extent: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(extent)`` into *parts* contiguous near-equal blocks.

    The first ``extent % parts`` blocks get the extra element — the
    standard balanced block distribution.  Requires ``parts <= extent``
    so no rank is empty.
    """
    check_positive_int(extent, "extent")
    check_positive_int(parts, "parts")
    if parts > extent:
        raise ShapeError(
            f"cannot split extent {extent} into {parts} non-empty blocks"
        )
    base, extra = divmod(extent, parts)
    ranges = []
    start = 0
    for p in range(parts):
        stop = start + base + (1 if p < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


def tile_ranges(extent: int, parts: int) -> list[tuple[int, int]]:
    """Block ranges for tiling: tolerant variant of :func:`block_ranges`.

    Single-node tiling reuses the distributed block distribution but has
    different edge semantics: a request for more tiles than elements
    just caps at one element per tile (the planner over-asks when it
    shrinks tiles to fit a budget), and a zero extent yields the single
    empty range ``[(0, 0)]`` so degenerate tensors tile into one empty
    tile instead of erroring.
    """
    check_positive_int(parts, "parts")
    if extent < 0:
        raise ShapeError(f"negative extent {extent}")
    if extent == 0:
        return [(0, 0)]
    return block_ranges(extent, min(parts, extent))


def tile_grid(
    shape: Sequence[int], parts: Sequence[int]
) -> Iterator[tuple[tuple[int, int], ...]]:
    """All tiles of *shape* cut into ``parts[i]`` blocks per mode.

    Yields, in odometer order (last mode fastest), one tuple of per-mode
    ``(lo, hi)`` ranges per tile — the single-node analogue of
    :meth:`ProcessGrid.local_slices` enumerated over every coordinate.
    The union of the yielded tiles partitions the index space exactly.
    """
    if len(parts) != len(shape):
        raise ShapeError(
            f"parts {tuple(parts)} does not match order-{len(shape)} shape"
        )
    per_mode = [tile_ranges(int(e), int(p)) for e, p in zip(shape, parts)]
    return itertools.product(*per_mode)


@dataclass(frozen=True)
class ProcessGrid:
    """A cartesian process grid aligned with tensor modes."""

    dims: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.dims or any(d < 1 for d in self.dims):
            raise ShapeError(f"invalid grid dims {self.dims}")

    @property
    def size(self) -> int:
        return math.prod(self.dims)

    @property
    def order(self) -> int:
        return len(self.dims)

    def ranks(self) -> Iterator[tuple[int, ...]]:
        """All grid coordinates in odometer order."""
        return itertools.product(*(range(d) for d in self.dims))

    def local_slices(
        self, shape: Sequence[int], coord: Sequence[int]
    ) -> tuple[slice, ...]:
        """The block of the tensor owned by grid coordinate *coord*."""
        if len(shape) != self.order or len(coord) != self.order:
            raise ShapeError(
                f"grid order {self.order} does not match shape/coord"
            )
        out = []
        for extent, parts, c in zip(shape, self.dims, coord):
            lo, hi = block_ranges(int(extent), parts)[c]
            out.append(slice(lo, hi))
        return tuple(out)

    def validate_for(self, shape: Sequence[int]) -> None:
        if len(shape) != self.order:
            raise ShapeError(
                f"grid {self.dims} does not match order-{len(shape)} tensor"
            )
        for extent, parts in zip(shape, self.dims):
            if parts > extent:
                raise ShapeError(
                    f"grid dimension {parts} exceeds tensor extent {extent}"
                )


def enumerate_grids(order: int, nproc: int) -> list[ProcessGrid]:
    """All ways to factor *nproc* over *order* grid dimensions."""
    check_positive_int(order, "order")
    check_positive_int(nproc, "nproc")

    grids: set[tuple[int, ...]] = set()

    def recurse(remaining: int, dims: list[int]) -> None:
        if len(dims) == order - 1:
            grids.add(tuple(dims + [remaining]))
            return
        for d in range(1, remaining + 1):
            if remaining % d == 0:
                recurse(remaining // d, dims + [d])

    recurse(nproc, [])
    return [ProcessGrid(g) for g in sorted(grids)]
