"""Tensor-train decomposition (TT-SVD) — the paper's future-work case.

The TT format factors an order-N tensor into a chain of order-3 cores
``G_k`` of shape ``(r_{k-1}, I_k, r_k)`` with ``r_0 = r_N = 1``
(Oseledets [30]).  TT-SVD builds the chain by sequential truncated SVDs
of reshaped remainders; like Tucker, the heavy lifting is dense linear
algebra over logically reshaped views, the same substrate this library
provides.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.tensor.dense import DenseTensor
from repro.util.errors import ShapeError


@dataclass
class TensorTrain:
    """A TT decomposition: cores ``G_k`` with linking ranks."""

    cores: list[np.ndarray]
    shape: tuple[int, ...]

    @property
    def ranks(self) -> tuple[int, ...]:
        """The N+1 linking ranks (r_0 = r_N = 1)."""
        return tuple([1] + [c.shape[2] for c in self.cores])

    @property
    def n_parameters(self) -> int:
        return sum(c.size for c in self.cores)

    @property
    def compression(self) -> float:
        """Full elements over TT parameters."""
        return math.prod(self.shape) / self.n_parameters


def tt_svd(
    x: DenseTensor,
    max_rank: int | Sequence[int] = 2**62,
    tolerance: float = 0.0,
) -> TensorTrain:
    """TT-SVD with rank caps and/or a relative Frobenius error budget.

    *tolerance* is split evenly across the N-1 truncations (the standard
    ``eps / sqrt(N-1)`` rule), guaranteeing
    ``||X - TT|| <= tolerance * ||X||``.
    """
    if not isinstance(x, DenseTensor):
        raise TypeError(f"x must be a DenseTensor, got {type(x).__name__}")
    if tolerance < 0.0:
        raise ShapeError(f"tolerance must be >= 0, got {tolerance}")
    shape = x.shape
    order = len(shape)
    if isinstance(max_rank, int):
        caps = [max_rank] * (order - 1)
    else:
        caps = [int(r) for r in max_rank]
        if len(caps) != order - 1:
            raise ShapeError(
                f"max_rank needs {order - 1} entries for order {order}, "
                f"got {len(caps)}"
            )
    if any(c < 1 for c in caps):
        raise ShapeError(f"ranks must be >= 1, got {caps}")

    x_norm = float(np.linalg.norm(x.data))
    per_step = (
        tolerance * x_norm / math.sqrt(max(1, order - 1))
        if tolerance > 0.0
        else 0.0
    )

    cores: list[np.ndarray] = []
    remainder = np.ascontiguousarray(x.data, dtype=np.float64)
    rank = 1
    for k in range(order - 1):
        rows = rank * shape[k]
        mat = remainder.reshape(rows, -1)
        u, s, vt = np.linalg.svd(mat, full_matrices=False)
        keep = min(caps[k], len(s))
        if per_step > 0.0:
            # Smallest rank whose discarded tail stays within the budget:
            # tail[r] = sum(s[r:]**2); keep the first r with tail <= eps^2.
            tail = np.concatenate(
                [np.cumsum((s**2)[::-1])[::-1], [0.0]]
            )
            within = int(np.argmax(tail <= per_step**2))
            keep = min(keep, max(1, within))
        keep = max(1, min(keep, len(s)))
        cores.append(u[:, :keep].reshape(rank, shape[k], keep).copy())
        remainder = (s[:keep, None] * vt[:keep]).copy()
        rank = keep
    cores.append(remainder.reshape(rank, shape[-1], 1).copy())
    return TensorTrain(cores=cores, shape=shape)


def tt_svd_tucker(
    x: DenseTensor,
    max_rank: int | Sequence[int] = 2**62,
    tolerance: float = 0.0,
    tucker_ranks: Sequence[int] | int | None = None,
    ttm_backend=None,
) -> TensorTrain:
    """TT-SVD on a HOSVD-compressed core (the Tucker-then-TT two-step).

    Project X onto its per-mode singular bases first — one fused TTM
    chain over all N modes — run TT-SVD on the (much smaller) Tucker
    core, then expand every order-3 core's physical mode back by the
    corresponding factor with a single mode-1 TTM.  With
    *tucker_ranks* left at the full shape the result matches plain
    :func:`tt_svd` up to floating-point noise; with truncated ranks the
    SVD sweeps run over the compressed core instead of the full tensor.
    """
    from repro.core.chain import ChainStep, ttm_chain
    from repro.decomp.tucker import hosvd

    if ttm_backend is None:
        from repro.core.intensli import default_intensli

        ttm_backend = default_intensli()
    ranks = tucker_ranks if tucker_ranks is not None else x.shape
    tucker = hosvd(x, ranks, ttm_backend=ttm_backend)
    tt = tt_svd(tucker.core, max_rank=max_rank, tolerance=tolerance)
    cores: list[np.ndarray] = []
    for core, factor in zip(tt.cores, tucker.factors):
        g = DenseTensor(np.ascontiguousarray(core))
        # Mode 1 of (r_{k-1}, R_k, r_k) is the physical mode: one TTM
        # with U_k (I_k x R_k) restores the original extent.
        expanded = ttm_chain(g, [ChainStep(1, factor)], backend=ttm_backend)
        cores.append(np.ascontiguousarray(expanded.data))
    return TensorTrain(cores=cores, shape=x.shape)


def tt_reconstruct(tt: TensorTrain) -> DenseTensor:
    """Contract a tensor train back into a full dense tensor."""
    result = tt.cores[0]  # (1, I_0, r_1)
    for core in tt.cores[1:]:
        left = result.reshape(-1, result.shape[-1])
        right = core.reshape(core.shape[0], -1)
        result = (left @ right).reshape(1, -1, core.shape[2])
    full = result.reshape(tt.shape)
    return DenseTensor(full)


def tt_error(x: DenseTensor, tt: TensorTrain) -> float:
    """Relative Frobenius reconstruction error."""
    x_norm = float(np.linalg.norm(x.data))
    if x_norm == 0.0:
        return 0.0
    diff = x.data - tt_reconstruct(tt).data
    return float(np.linalg.norm(diff)) / x_norm
