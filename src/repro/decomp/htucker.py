"""Hierarchical Tucker decomposition (the paper's [12], named in §5/§7).

The HT format organizes the modes of an order-N tensor into a binary
*dimension tree*: each leaf holds a frame ``U_m (I_m x k_m)``, each
interior node a transfer tensor ``B_t (k_left x k_right x k_t)``, and
the root a matrix ``B_root (k_left x k_right)``.  Storage is linear in N
(vs Tucker's ``k^N`` core), which is why the paper recommends it for
high-dimensional tensors.

We build the standard *root-to-leaves* HT-SVD over the balanced
contiguous dimension tree: the frame of a node spanning contiguous modes
``S`` is the top-``k`` left singular basis of the matricization
``X_(S)`` — contiguity is exactly the condition (Lemma 4.1) under which
that matricization is a logical reshape of the tensor, the same
structural fact the in-place TTM exploits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
import numpy as np

from repro.tensor.dense import DenseTensor
from repro.util.errors import ShapeError


@dataclass
class HTNode:
    """A dimension-tree node spanning contiguous modes [lo, hi)."""

    lo: int
    hi: int
    rank: int
    leaf_frame: np.ndarray | None = None  # (I_m x k) at leaves
    transfer: np.ndarray | None = None    # (k_l x k_r x k) or (k_l x k_r) at root
    left: "HTNode | None" = None
    right: "HTNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    @property
    def modes(self) -> tuple[int, ...]:
        return tuple(range(self.lo, self.hi))


@dataclass
class HTucker:
    """A complete hierarchical Tucker decomposition."""

    root: HTNode
    shape: tuple[int, ...]

    @property
    def n_parameters(self) -> int:
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                total += node.leaf_frame.size
            else:
                total += node.transfer.size
                stack.extend([node.left, node.right])
        return total

    @property
    def compression(self) -> float:
        return math.prod(self.shape) / self.n_parameters

    def ranks(self) -> dict[tuple[int, ...], int]:
        """Node span -> rank, for every node in the tree."""
        out: dict[tuple[int, ...], int] = {}
        stack = [self.root]
        while stack:
            node = stack.pop()
            out[node.modes] = node.rank
            if not node.is_leaf:
                stack.extend([node.left, node.right])
        return out


def _matricization_basis(
    data: np.ndarray, lo: int, hi: int, max_rank: int
) -> np.ndarray:
    """Top-``max_rank`` left singular vectors of X_([lo, hi))."""
    rows = math.prod(data.shape[lo:hi])
    mat = np.moveaxis(
        data, range(lo, hi), range(0, hi - lo)
    ).reshape(rows, -1)
    if rows <= mat.shape[1]:
        u, s, _vt = np.linalg.svd(mat, full_matrices=False)
    else:
        # Gram trick for tall matricizations.
        gram = mat @ mat.T
        eigvals, eigvecs = np.linalg.eigh(gram)
        order = np.argsort(eigvals)[::-1]
        u = eigvecs[:, order]
        s = np.sqrt(np.maximum(eigvals[order], 0.0))
    keep = min(max_rank, u.shape[1], int(np.sum(s > 1e-13 * (s[0] if len(s) else 1.0))) or 1)
    return np.ascontiguousarray(u[:, :keep])


def _build(
    data: np.ndarray,
    lo: int,
    hi: int,
    max_rank: int,
    is_root: bool,
) -> HTNode:
    if hi - lo == 1:
        frame = _matricization_basis(data, lo, hi, max_rank)
        return HTNode(lo=lo, hi=hi, rank=frame.shape[1], leaf_frame=frame)
    mid = (lo + hi) // 2
    left = _build(data, lo, mid, max_rank, is_root=False)
    right = _build(data, mid, hi, max_rank, is_root=False)
    u_left = _subtree_basis(data, left)
    u_right = _subtree_basis(data, right)
    if is_root:
        rows = math.prod(data.shape[lo:hi])
        vec = np.moveaxis(
            data, range(lo, hi), range(0, hi - lo)
        ).reshape(rows)
        cube = vec.reshape(u_left.shape[0], u_right.shape[0])
        transfer = u_left.T @ cube @ u_right  # (k_l x k_r)
        return HTNode(lo=lo, hi=hi, rank=1, transfer=transfer,
                      left=left, right=right)
    basis = _matricization_basis(data, lo, hi, max_rank)
    cube = basis.reshape(u_left.shape[0], u_right.shape[0], basis.shape[1])
    transfer = np.einsum("ia,jb,ijc->abc", u_left, u_right, cube,
                         optimize=True)
    return HTNode(lo=lo, hi=hi, rank=basis.shape[1], transfer=transfer,
                  left=left, right=right)


def _subtree_basis(data: np.ndarray, node: HTNode) -> np.ndarray:
    """The explicit (prod I_S x k) basis a subtree represents."""
    if node.is_leaf:
        return node.leaf_frame
    u_left = _subtree_basis(data, node.left)
    u_right = _subtree_basis(data, node.right)
    combined = np.einsum(
        "ia,jb,abc->ijc", u_left, u_right, node.transfer, optimize=True
    )
    return combined.reshape(-1, node.rank)


def ht_svd(x: DenseTensor, max_rank: int) -> HTucker:
    """Hierarchical Tucker decomposition with all node ranks <= max_rank."""
    if not isinstance(x, DenseTensor):
        raise TypeError(f"x must be a DenseTensor, got {type(x).__name__}")
    if max_rank < 1:
        raise ShapeError(f"max_rank must be >= 1, got {max_rank}")
    if x.order < 2:
        raise ShapeError("hierarchical Tucker needs an order >= 2 tensor")
    root = _build(np.asarray(x.data), 0, x.order, max_rank, is_root=True)
    return HTucker(root=root, shape=x.shape)


def _leaf_frames(ht: HTucker) -> list[np.ndarray]:
    """The leaf frames ``U_m (I_m x k_m)`` in mode order."""
    frames: list[np.ndarray | None] = [None] * len(ht.shape)
    stack = [ht.root]
    while stack:
        node = stack.pop()
        if node.is_leaf:
            frames[node.lo] = node.leaf_frame
        else:
            stack.extend([node.left, node.right])
    return frames  # type: ignore[return-value]


def _node_core(node: HTNode) -> np.ndarray:
    """A subtree's mixing matrix in *leaf-rank* coordinates.

    Same recursion as the explicit basis, but with every leaf frame
    replaced by the identity: the result maps the node rank to the
    product of leaf ranks instead of the product of full extents, so it
    stays tiny regardless of tensor size.
    """
    if node.is_leaf:
        return np.eye(node.rank)
    c_left = _node_core(node.left)
    c_right = _node_core(node.right)
    combined = np.einsum(
        "ia,jb,abc->ijc", c_left, c_right, node.transfer, optimize=True
    )
    return combined.reshape(-1, node.rank)


def ht_core(ht: HTucker) -> DenseTensor:
    """The order-N core in leaf-rank space (shape = per-mode leaf ranks).

    Contracting all transfer tensors — but *not* the leaf frames — turns
    the dimension tree into an ordinary Tucker core ``G`` with
    ``X = G x_0 U_0 ... x_{N-1} U_{N-1}``; the expansion is then exactly
    the TTM chain this library optimizes.
    """
    root = ht.root
    c_left = _node_core(root.left)
    c_right = _node_core(root.right)
    mat = c_left @ root.transfer @ c_right.T
    ranks = tuple(frame.shape[1] for frame in _leaf_frames(ht))
    return DenseTensor(np.ascontiguousarray(mat.reshape(ranks)))


def ht_reconstruct(ht: HTucker, ttm_backend=None) -> DenseTensor:
    """Expand a hierarchical Tucker decomposition to the full tensor.

    Runs as a fused TTM chain over the leaf-rank core: the chain planner
    orders the N mode products and ping-pongs two scratch buffers, so
    the expansion costs at most two intermediate allocations.
    """
    from repro.core.chain import ChainStep, ttm_chain

    if ttm_backend is None:
        from repro.core.intensli import default_intensli

        ttm_backend = default_intensli()
    core = ht_core(ht)
    steps = [
        ChainStep(mode, frame)
        for mode, frame in enumerate(_leaf_frames(ht))
    ]
    chain = getattr(ttm_backend, "ttm_chain", None)
    if chain is not None:
        return chain(core, steps, order="auto")
    return ttm_chain(core, steps, backend=ttm_backend)


def ht_error(x: DenseTensor, ht: HTucker) -> float:
    """Relative Frobenius reconstruction error."""
    x_norm = float(np.linalg.norm(x.data))
    if x_norm == 0.0:
        return 0.0
    diff = x.data - ht_reconstruct(ht).data
    return float(np.linalg.norm(diff)) / x_norm
