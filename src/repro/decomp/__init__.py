"""Tensor decompositions built on the TTM primitive.

The paper motivates fast TTM through the Tucker decomposition, whose
HOOI iteration performs a chain of mode-n products per mode per sweep
(§2).  Both algorithms here are parameterized over the TTM backend so
the end-to-end benefit of the in-place implementation can be measured
(``benchmarks/bench_tucker_e2e.py``), and the tensor-train decomposition
covers the paper's named future-work direction.
"""

from repro.decomp.tucker import (
    TuckerResult,
    hooi,
    hosvd,
    tucker_reconstruct,
)
from repro.decomp.tensor_train import (
    TensorTrain,
    tt_reconstruct,
    tt_svd,
    tt_svd_tucker,
)
from repro.decomp.cp import (
    CpResult,
    cp_als,
    cp_reconstruct,
    khatri_rao,
    mttkrp,
    mttkrp_inplace,
)
from repro.decomp.htucker import (
    HTucker,
    ht_core,
    ht_error,
    ht_reconstruct,
    ht_svd,
)

__all__ = [
    "TuckerResult",
    "hooi",
    "hosvd",
    "tucker_reconstruct",
    "TensorTrain",
    "tt_reconstruct",
    "tt_svd",
    "tt_svd_tucker",
    "CpResult",
    "cp_als",
    "cp_reconstruct",
    "khatri_rao",
    "mttkrp",
    "mttkrp_inplace",
    "HTucker",
    "ht_core",
    "ht_error",
    "ht_reconstruct",
    "ht_svd",
]
