"""MTTKRP and the CP (CANDECOMP/PARAFAC) decomposition.

The paper's related work (§6) centres on the *matricized tensor times
Khatri-Rao product* (MTTKRP), the kernel of CP-ALS, and cites Ravindran
et al.'s in-place, slice-based formulation as the closest prior to its
own merged-sub-tensor idea.  This module implements both:

* :func:`mttkrp` — the conventional form: physically unfold, materialize
  the full Khatri-Rao product, one GEMM (memory: ``(|X|/I_n) * R`` extra);
* :func:`mttkrp_inplace` — the merged-trailing-modes form: only the
  Khatri-Rao product of the *trailing* factors is materialized, and the
  tensor is read through copy-free views (the same Lemma-4.1 machinery
  the in-place TTM uses), accumulating over the leading modes.

Conventions match the rest of the library: factors are ``I_m x R``; the
unfolding column order follows the tensor's layout.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.tensor.dense import DenseTensor
from repro.tensor.layout import Layout
from repro.tensor.unfold import unfold
from repro.tensor.views import merged_matrix_view
from repro.util.errors import ShapeError
from repro.util.rng import default_rng
from repro.util.validation import check_mode


def khatri_rao(matrices: Sequence[np.ndarray]) -> np.ndarray:
    """Column-wise Khatri-Rao product; the *last* matrix varies fastest.

    ``kr(A, B)[i*J + j, r] = A[i, r] * B[j, r]`` — matching the column
    enumeration of a row-major unfolding (trailing mode fastest).
    """
    mats = [np.asarray(m, dtype=np.float64) for m in matrices]
    if not mats:
        raise ShapeError("khatri_rao of zero matrices is undefined")
    rank = mats[0].shape[1]
    for m in mats:
        if m.ndim != 2 or m.shape[1] != rank:
            raise ShapeError(
                f"all factors must share the column count {rank}, got "
                f"{[tuple(x.shape) for x in mats]}"
            )
    out = mats[0]
    for m in mats[1:]:
        out = (out[:, None, :] * m[None, :, :]).reshape(-1, rank)
    return out


def _check_factors(
    x: DenseTensor, factors: Sequence[np.ndarray], mode: int
) -> list[np.ndarray]:
    if not isinstance(x, DenseTensor):
        raise TypeError(f"x must be a DenseTensor, got {type(x).__name__}")
    mode = check_mode(mode, x.order)
    if len(factors) != x.order:
        raise ShapeError(
            f"need one factor per mode ({x.order}), got {len(factors)}"
        )
    mats = [np.asarray(f, dtype=np.float64) for f in factors]
    rank = mats[0].shape[1]
    for m, f in enumerate(mats):
        if f.ndim != 2 or f.shape[1] != rank:
            raise ShapeError(f"factor {m} must be (I_{m} x R)")
        if f.shape[0] != x.shape[m]:
            raise ShapeError(
                f"factor {m} has {f.shape[0]} rows, tensor mode has "
                f"{x.shape[m]}"
            )
    return mats


def _remaining_order(order: int, mode: int, layout: Layout) -> list[int]:
    """Non-*mode* modes in the unfolding's column-major-to-minor order."""
    rest = [m for m in range(order) if m != mode]
    if layout is Layout.COL_MAJOR:
        # Column-major unfolding columns vary the *first* remaining mode
        # fastest, i.e. the Khatri-Rao factor order is reversed.
        rest.reverse()
    return rest


def mttkrp(
    x: DenseTensor, factors: Sequence[np.ndarray], mode: int
) -> np.ndarray:
    """Conventional MTTKRP: ``X_(n) @ kr(factors except n)`` (copies).

    Returns the ``I_n x R`` result.  The factor at *mode* is ignored (it
    may be ``None``-shaped garbage of the right size or the real factor).
    """
    mats = _check_factors(x, factors, mode)
    rest = _remaining_order(x.order, mode, x.layout)
    krp = khatri_rao([mats[m] for m in rest])
    return unfold(x, mode) @ krp


def mttkrp_inplace(
    x: DenseTensor, factors: Sequence[np.ndarray], mode: int
) -> np.ndarray:
    """Merged-contiguous-modes MTTKRP: no unfolding copy of the tensor.

    One contiguous run of non-*mode* modes (the side of *mode* with the
    larger extent product, so the Python loop over the other side stays
    short) merges into a copy-free matrix view per Lemma 4.1; only the
    Khatri-Rao product of the *merged* factors is materialized, and the
    loop modes contribute per-iteration Hadamard weights — the
    Ravindran-style slice formulation [33] generalized to any order and
    either side.  For the extreme modes this degenerates to a single
    GEMM with no loops at all.
    """
    mats = _check_factors(x, factors, mode)
    mode = check_mode(mode, x.order)
    order = x.order
    rank = mats[0].shape[1]
    row_major = x.layout is Layout.ROW_MAJOR

    if order == 1:
        return x.data[:, None] * np.ones((1, rank))

    trailing = tuple(range(mode + 1, order))
    leading = tuple(range(0, mode))
    trailing_extent = math.prod(x.shape[m] for m in trailing) if trailing else 1
    leading_extent = math.prod(x.shape[m] for m in leading) if leading else 1
    # Merge the bigger side: fewer Python loop iterations, same math.
    if trailing_extent >= leading_extent:
        merged, loops, mode_first = trailing, leading, True
    else:
        merged, loops, mode_first = leading, trailing, False

    if merged:
        merged_factors = [mats[m] for m in merged]
        if not row_major:
            merged_factors.reverse()  # F enumeration: first mode fastest
        krp = khatri_rao(merged_factors)
    else:
        krp = np.ones((1, rank))

    out = np.zeros((x.shape[mode], rank))

    def accumulate(fixed, weight):
        if merged:
            if mode_first:
                view = merged_matrix_view(x, (mode,), merged, fixed)
                partial = view @ krp
            else:
                view = merged_matrix_view(x, merged, (mode,), fixed)
                partial = view.T @ krp
        else:
            from repro.tensor.views import fiber

            partial = fiber(x, mode, fixed)[:, None] * np.ones((1, rank))
        if weight is None:
            out[...] += partial
        else:
            out[...] += partial * weight

    if not loops:
        accumulate({}, None)
        return out

    ranges = [range(x.shape[m]) for m in loops]
    for combo in itertools.product(*ranges):
        fixed = dict(zip(loops, combo))
        weight = np.ones(rank)
        for m, idx in fixed.items():
            weight = weight * mats[m][idx]
        accumulate(fixed, weight)
    return out


@dataclass
class CpResult:
    """A rank-R CP decomposition: weights and normalized factors."""

    weights: np.ndarray
    factors: list[np.ndarray]
    fit: float
    fit_history: list[float] = field(default_factory=list)
    iterations: int = 0

    @property
    def rank(self) -> int:
        return len(self.weights)


def cp_reconstruct(result: CpResult, layout=Layout.ROW_MAJOR) -> DenseTensor:
    """Expand a CP result into the full dense tensor."""
    shape = tuple(f.shape[0] for f in result.factors)
    rank = result.rank
    full = np.zeros(shape)
    for r in range(rank):
        component = result.weights[r]
        outer = result.factors[0][:, r]
        for f in result.factors[1:]:
            outer = np.multiply.outer(outer, f[:, r])
        full += component * outer
    return DenseTensor(full, layout)


def cp_als(
    x: DenseTensor,
    rank: int,
    max_iterations: int = 100,
    tolerance: float = 1e-8,
    mttkrp_backend=None,
    seed=0,
) -> CpResult:
    """CP-ALS: alternating least squares with MTTKRP updates.

    Each sweep updates every factor as
    ``A^(n) <- MTTKRP(X, factors, n) @ pinv(V_n)`` with
    ``V_n = hadamard of (A^(m)^T A^(m)) over m != n``, then renormalizes
    columns into the weight vector.  *mttkrp_backend* defaults to the
    in-place implementation.
    """
    # Duck-typed input: cp_als itself touches only shape/order and the
    # Frobenius norm of `data`; sparse front ends pass a norm proxy.
    if not (hasattr(x, "shape") and hasattr(x, "order") and hasattr(x, "data")):
        raise TypeError(
            f"x must be a DenseTensor (or provide shape/order/data), got "
            f"{type(x).__name__}"
        )
    if rank < 1:
        raise ShapeError(f"rank must be >= 1, got {rank}")
    if max_iterations < 1:
        raise ShapeError(f"max_iterations must be >= 1, got {max_iterations}")
    backend = mttkrp_backend or mttkrp_inplace
    rng = default_rng(seed)
    factors = [rng.standard_normal((s, rank)) for s in x.shape]
    grams = [f.T @ f for f in factors]
    x_norm = float(np.linalg.norm(x.data))
    history: list[float] = []
    previous = -np.inf
    weights = np.ones(rank)
    iterations = 0
    for sweep in range(max_iterations):
        iterations = sweep + 1
        for mode in range(x.order):
            m_n = backend(x, factors, mode)
            v = np.ones((rank, rank))
            for m in range(x.order):
                if m != mode:
                    v = v * grams[m]
            updated = m_n @ np.linalg.pinv(v)
            norms = np.linalg.norm(updated, axis=0)
            norms[norms == 0.0] = 1.0
            factors[mode] = updated / norms
            weights = norms
            grams[mode] = factors[mode].T @ factors[mode]
        # Fit via the standard norm identity (no reconstruction).
        v = np.ones((rank, rank))
        for g in grams:
            v = v * g
        model_norm_sq = float(weights @ v @ weights)
        inner = float(weights @ (m_n * factors[x.order - 1]).sum(axis=0))
        residual_sq = max(0.0, x_norm**2 + model_norm_sq - 2.0 * inner)
        fit = 1.0 - math.sqrt(residual_sq) / x_norm if x_norm else 1.0
        history.append(fit)
        if fit - previous < tolerance:
            break
        previous = fit
    return CpResult(
        weights=weights,
        factors=factors,
        fit=history[-1],
        fit_history=history,
        iterations=iterations,
    )
