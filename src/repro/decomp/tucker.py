"""Tucker decomposition: truncated HOSVD and HOOI (Tucker-ALS).

Both algorithms reduce to chains of TTMs — the workload that motivates
the paper.  The TTM implementation is injected (`ttm_backend`), so the
identical decomposition can run over the in-place framework, the
copy-based baseline, or any other conforming callable, making end-to-end
comparisons honest: only the TTM differs.

A backend is any callable ``backend(x: DenseTensor, u: ndarray, mode:
int) -> DenseTensor`` computing the mode-n product with ``u`` of shape
``(J, I_n)``.  A backend may additionally expose a ``ttm_chain(x,
steps, out=None, order=..., transpose=...)`` method (the
:class:`repro.core.InTensLi` facade does); when it does, the Tucker hot
paths hand it the *whole* projection chain so it can plan the chain as
a unit and reuse scratch buffers across steps, instead of allocating a
fresh intermediate per mode product.  Plain callables keep the exact
step-at-a-time behavior, which is what the end-to-end benchmark's
baseline backends want.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.obs.tracer import active_tracer
from repro.perf.profiler import active_hot_counters
from repro.resilience import recovery
from repro.resilience.faults import active_faults
from repro.tensor.dense import DenseTensor
from repro.tensor.unfold import unfold
from repro.util.errors import ShapeError

TtmBackend = Callable[[DenseTensor, np.ndarray, int], DenseTensor]


def _default_backend() -> TtmBackend:
    # The module-wide InTensLi instance: callable like a plain backend,
    # and chain-capable, so default decompositions run the fused path.
    from repro.core.intensli import default_intensli

    return default_intensli()


def _check_ranks(shape: Sequence[int], ranks: Sequence[int] | int) -> tuple[int, ...]:
    shape_t = tuple(int(s) for s in shape)
    if isinstance(ranks, int):
        ranks_t = tuple(min(ranks, s) for s in shape_t)
    else:
        ranks_t = tuple(int(r) for r in ranks)
        if len(ranks_t) != len(shape_t):
            raise ShapeError(
                f"ranks {ranks_t} do not match tensor order {len(shape_t)}"
            )
        if any(r < 1 or r > s for r, s in zip(ranks_t, shape_t)):
            raise ShapeError(
                f"ranks {ranks_t} out of range for shape {shape_t}"
            )
    return ranks_t


@dataclass
class TuckerResult:
    """Core tensor, factor matrices, and convergence history."""

    core: DenseTensor
    factors: list[np.ndarray]
    fit: float
    fit_history: list[float] = field(default_factory=list)
    iterations: int = 0

    @property
    def ranks(self) -> tuple[int, ...]:
        return self.core.shape

    @property
    def compression(self) -> float:
        """Original elements over compressed elements (> 1 is smaller)."""
        original = math.prod(f.shape[0] for f in self.factors)
        compressed = self.core.size + sum(f.size for f in self.factors)
        return original / compressed


def _leading_left_singular_vectors(
    mat: np.ndarray,
    rank: int,
    method: str = "auto",
    oversample: int = 8,
    seed: int = 0,
) -> np.ndarray:
    """The top-*rank* left singular basis of *mat*.

    Methods:

    * ``"gram"`` — eigenbasis of ``A A^T``; cheap when the row count is
      modest (the usual Tucker factor update), ~sqrt(eps) accuracy;
    * ``"randomized"`` — Halko-Martinsson-Tropp range finder with one
      power iteration; touches A only twice, the right choice when both
      dimensions are large;
    * ``"auto"`` — gram for small row counts, randomized otherwise.
    """
    rows, cols = mat.shape
    keep = min(rank, rows)
    if method == "auto":
        method = "gram" if rows <= 512 or cols <= rank + oversample else "randomized"
    if method == "gram":
        gram = mat @ mat.T
        eigvals, eigvecs = np.linalg.eigh(gram)
        order = np.argsort(eigvals)[::-1][:keep]
        return np.ascontiguousarray(eigvecs[:, order])
    if method == "randomized":
        rng = np.random.default_rng(seed)
        sketch = min(cols, keep + oversample)
        omega = rng.standard_normal((cols, sketch))
        y = mat @ omega
        # One power iteration sharpens the spectrum for slow decay.
        y = mat @ (mat.T @ y)
        q, _ = np.linalg.qr(y)
        b = q.T @ mat
        u_small, _s, _vt = np.linalg.svd(b, full_matrices=False)
        return np.ascontiguousarray((q @ u_small)[:, :keep])
    raise ShapeError(f"unknown SVD method {method!r}; use gram|randomized|auto")


def _project_all_but(
    x: DenseTensor,
    factors: Sequence[np.ndarray],
    skip: int | None,
    backend: TtmBackend,
) -> DenseTensor:
    """``X x_0 A0^T ... x_{N-1} A{N-1}^T`` skipping mode *skip*.

    The products commute across distinct modes, so the chain planner
    orders them by reduction ratio (shrink the tensor fastest first).
    """
    from repro.core.chain import ChainStep, ttm_chain

    # factor.T is a view; every backend accepts BLAS-legal transposed
    # operands, so no contiguous copy of the factors is needed.
    steps = [
        ChainStep(mode, factor.T)
        for mode, factor in enumerate(factors)
        if mode != skip
    ]
    if not steps:
        return x
    chain = getattr(backend, "ttm_chain", None)
    if chain is not None:
        # Chain-capable backend: one fused plan, ping-pong scratch reuse.
        return chain(x, steps, order="auto")
    return ttm_chain(x, steps, backend=backend, order="greedy")


def hosvd(
    x: DenseTensor,
    ranks: Sequence[int] | int,
    ttm_backend: TtmBackend | None = None,
    svd_method: str = "auto",
) -> TuckerResult:
    """Truncated higher-order SVD (the standard HOOI initializer).

    Factor *n* is the top-``R_n`` left singular vectors of the mode-n
    unfolding; the core is the full projection of X onto those bases.
    *svd_method* selects the factor solver (``auto``/``gram``/
    ``randomized``; see :func:`_leading_left_singular_vectors`).
    """
    backend = ttm_backend or _default_backend()
    ranks_t = _check_ranks(x.shape, ranks)
    factors = [
        _leading_left_singular_vectors(unfold(x, mode), rank,
                                       method=svd_method)
        for mode, rank in enumerate(ranks_t)
    ]
    core = _project_all_but(x, factors, skip=None, backend=backend)
    fit = tucker_fit(x, core, factors)
    return TuckerResult(core=core, factors=factors, fit=fit,
                        fit_history=[fit], iterations=0)


def _hooi_converged(history: Sequence[float], tolerance: float) -> bool:
    """Whether the last sweep improved the fit by less than *tolerance*.

    A pure function of the fit history so a resumed run replays the
    exact stopping decision an uninterrupted run would have made.
    """
    return len(history) >= 2 and history[-1] - history[-2] < tolerance


def _save_hooi_state(state_path: str, factors, core: DenseTensor,
                     history: Sequence[float]) -> int:
    """Durably publish one sweep's full state; returns the file's CRC."""
    part = recovery.partial_path(state_path)
    payload = {
        f"factor_{m}": np.ascontiguousarray(f)
        for m, f in enumerate(factors)
    }
    payload["core"] = np.ascontiguousarray(core.data)
    payload["fit_history"] = np.asarray(history, dtype=np.float64)
    with open(part, "wb") as fh:
        np.savez(fh, **payload)
    crc = recovery.file_checksum(part)
    recovery.publish_file(part, state_path)
    return crc


def hooi(
    x: DenseTensor,
    ranks: Sequence[int] | int,
    ttm_backend: TtmBackend | None = None,
    max_iterations: int = 50,
    tolerance: float = 1e-8,
    init: TuckerResult | None = None,
    svd_method: str = "auto",
    checkpoint_path=None,
) -> TuckerResult:
    """Higher-order orthogonal iteration (TUCKER-HOOI, §2).

    Each sweep recomputes every factor from the projection of X onto all
    *other* factors — ``N * (N-1)`` mode-n products per sweep, exactly the
    TTM chain the paper's motivation describes.  Stops when the fit
    improves by less than *tolerance* or after *max_iterations* sweeps.

    *checkpoint_path* makes the iteration crash-resumable
    (:mod:`repro.resilience.recovery`): after every sweep the full state
    (factors, core, fit history) is durably published to
    ``<checkpoint_path>.state.npz`` and a checksummed sweep record
    appended to the journal.  A rerun with the same journal verifies the
    sidecar against its last commit, reloads it, and continues from the
    next sweep — bit-identically, since sweeps are deterministic and the
    stopping rule is a pure function of the replayed history.  A
    checkpoint for a different job (ranks, tolerance, tensor) raises
    :class:`~repro.util.errors.RecoveryError`.
    """
    backend = ttm_backend or _default_backend()
    ranks_t = _check_ranks(x.shape, ranks)
    if max_iterations < 1:
        raise ShapeError(f"max_iterations must be >= 1, got {max_iterations}")
    journal = None
    state_path = None
    factors = None
    core = None
    history: list[float] = []
    if checkpoint_path is not None:
        state_path = f"{checkpoint_path}.state.npz"
        decision = {
            "ranks": list(ranks_t),
            "max_iterations": int(max_iterations),
            "tolerance": float(tolerance),
            "svd_method": str(svd_method),
            "shape": list(x.shape),
            "dtype": x.data.dtype.name,
        }
        header = {
            "kind": "hooi",
            "digest": recovery.digest_payload(decision),
            "decision": decision,
            "inputs": {"x": recovery.fingerprint_tensor(x)},
            "state_path": state_path,
            "x_path": recovery.memmap_path(x),
            "ranks": list(ranks_t),
            "max_iterations": int(max_iterations),
            "tolerance": float(tolerance),
            "svd_method": str(svd_method),
        }
        journal, records = recovery.open_or_resume(checkpoint_path, header)
        committed = recovery.committed_units(records, "sweep", key="sweep")
        if committed and os.path.exists(state_path):
            last = max(committed)
            # The sidecar is trusted only if it matches its last commit
            # record byte-for-byte; anything else restarts from scratch.
            if (recovery.file_checksum(state_path)
                    == committed[last].get("crc")):
                with np.load(state_path) as state:
                    factors = [
                        np.ascontiguousarray(state[f"factor_{m}"])
                        for m in range(len(ranks_t))
                    ]
                    core = DenseTensor(
                        np.ascontiguousarray(state["core"]), x.layout
                    )
                    history = [float(f) for f in state["fit_history"]]
                counters = active_hot_counters()
                if counters is not None:
                    counters.count_recovery(resumed=len(history),
                                            reverified=1)
                tracer = active_tracer()
                if tracer.enabled:
                    with tracer.span("recover-resume", kind="hooi",
                                     sweeps=len(history),
                                     fit=history[-1] if history else None):
                        pass
    try:
        if factors is None:
            history = []
            state = init or hosvd(x, ranks_t, ttm_backend=backend,
                                  svd_method=svd_method)
            factors = [f.copy() for f in state.factors]
            core = state.core
        for sweep in range(len(history), max_iterations):
            if _hooi_converged(history, tolerance):
                break
            for mode, rank in enumerate(ranks_t):
                y = _project_all_but(x, factors, skip=mode, backend=backend)
                factors[mode] = _leading_left_singular_vectors(
                    unfold(y, mode), rank, method=svd_method
                )
            core = _project_all_but(x, factors, skip=None, backend=backend)
            fit = tucker_fit(x, core, factors)
            history.append(fit)
            if journal is not None:
                faults = active_faults()
                if faults is not None:
                    # Sweep computed, nothing checkpointed: the crash
                    # window that must cost exactly one recomputed sweep.
                    faults.check("crash", site="sweep-end", sweep=sweep)
                crc = _save_hooi_state(state_path, factors, core, history)
                journal.append({"type": "sweep", "sweep": sweep,
                                "fit": fit, "crc": crc})
    except BaseException:
        if journal is not None:
            journal.close()
        raise
    if journal is not None:
        journal.close({"type": "done", "sweeps": len(history)})
    return TuckerResult(
        core=core,
        factors=factors,
        fit=history[-1],
        fit_history=history,
        iterations=len(history),
    )


def tucker_reconstruct(
    core: DenseTensor,
    factors: Sequence[np.ndarray],
    ttm_backend: TtmBackend | None = None,
) -> DenseTensor:
    """Expand a Tucker (core, factors) pair back to the full tensor."""
    backend = ttm_backend or _default_backend()
    chain = getattr(backend, "ttm_chain", None)
    if chain is not None:
        steps = list(enumerate(factors))
        if not steps:
            return core
        return chain(core, steps, order="auto")
    y = core
    for mode, factor in enumerate(factors):
        # Factors are usually already contiguous (the SVD helpers return
        # them that way); copy only when a backend actually needs it.
        if not factor.flags["C_CONTIGUOUS"] and not factor.flags["F_CONTIGUOUS"]:
            factor = np.ascontiguousarray(factor)
        y = backend(y, factor, mode)
    return y


def tucker_fit(
    x: DenseTensor, core: DenseTensor, factors: Sequence[np.ndarray]
) -> float:
    """Relative fit ``1 - ||X - X_hat|| / ||X||``.

    With orthonormal factors ``||X_hat|| = ||core||``, so the residual
    norm follows from norms alone — no reconstruction needed.
    """
    x_norm = float(np.linalg.norm(x.data))
    if x_norm == 0.0:
        return 1.0
    core_norm = float(np.linalg.norm(core.data))
    residual_sq = max(0.0, x_norm**2 - core_norm**2)
    return 1.0 - math.sqrt(residual_sq) / x_norm
