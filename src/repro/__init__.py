"""INTENSLI reproduction: input-adaptive, in-place dense TTM (SC '15).

Public API quick reference::

    import repro

    x = repro.random_tensor((200, 200, 200), seed=0)
    u = np.random.default_rng(1).standard_normal((16, 200))

    y = repro.ttm(x, u, mode=1)            # input-adaptive, in-place
    y2 = repro.ttm_copy(x, u, mode=1)      # Algorithm-1 baseline

    lib = repro.InTensLi(max_threads=4)    # explicit framework instance
    plan = lib.plan(x.shape, mode=1, j=16)
    y3 = lib.execute(plan, x, u)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced table and figure.
"""

from repro.tensor import (
    DenseTensor,
    Layout,
    arange_tensor,
    fold,
    low_rank_tensor,
    md_trajectory_tensor,
    open_memmap_tensor,
    random_tensor,
    unfold,
)
from repro.core import (
    ChainPlan,
    InTensLi,
    TilingPlan,
    TilingPlanner,
    TtmPlan,
    ttm_chain,
    ttm_inplace,
    ttm_stream,
    ttm_stream_collect,
    ttm_tiled,
)
from repro.core.intensli import ttm
from repro.baselines import ttm_copy, ttm_ctf_like
from repro.autotune import AutotuneSession, PlanCache
# NOTE: the GEMM entry point lives at repro.gemm.gemm; importing the
# function here would shadow the subpackage attribute on this package.

__version__ = "1.0.0"

__all__ = [
    "DenseTensor",
    "Layout",
    "arange_tensor",
    "fold",
    "low_rank_tensor",
    "md_trajectory_tensor",
    "open_memmap_tensor",
    "random_tensor",
    "unfold",
    "AutotuneSession",
    "ChainPlan",
    "InTensLi",
    "PlanCache",
    "TilingPlan",
    "TilingPlanner",
    "TtmPlan",
    "ttm_chain",
    "ttm_inplace",
    "ttm_stream",
    "ttm_stream_collect",
    "ttm_tiled",
    "ttm",
    "ttm_copy",
    "ttm_ctf_like",
    "__version__",
]
