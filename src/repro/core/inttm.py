"""The in-place TTM executor: Algorithm 2, interpreted from a plan.

``ttm_inplace`` walks the loop-mode iteration space (in parallel when the
plan says so), builds 2-D *views* of the input and output tensors with
:func:`repro.tensor.views.merged_matrix_view` — never copying — and runs
the planned GEMM kernel on each pair of views, writing straight through
the output tensor's storage.

Total extra memory: one J x I_n transpose of U for the backward strategy
(a view, not a copy) and nothing else.  This is what "in-place" means in
the paper: the conventional implementation's tensor-sized matricization
buffers simply do not exist.
"""

from __future__ import annotations

import numpy as np

from repro.core.plan import Strategy, TtmPlan
from repro.gemm.interface import gemm
from repro.gemm.threaded import gemm_threaded
from repro.parallel.parfor import parfor
from repro.tensor.dense import DenseTensor
from repro.tensor.views import merged_matrix_view
from repro.util.errors import PlanError, ShapeError
from repro.util.validation import check_mode, check_positive_int


def default_plan(
    shape,
    mode: int,
    j: int,
    layout,
    loop_threads: int = 1,
    kernel_threads: int = 1,
    kernel: str = "auto",
    degree: int | None = None,
) -> TtmPlan:
    """A maximal-merge plan (all available contiguous modes in ``M_C``).

    This is the un-tuned but always-correct choice; the estimator
    (:mod:`repro.core.estimator`) refines the degree and thread split.
    """
    shape_t = tuple(int(s) for s in shape)
    order = len(shape_t)
    mode = check_mode(mode, order)
    check_positive_int(j, "j")
    from repro.core.partition import (
        available_modes_for_strategy,
        component_modes_for_strategy,
        strategy_for,
    )

    strategy = strategy_for(order, mode, layout)
    available = available_modes_for_strategy(order, mode, strategy)
    if degree is None:
        degree = len(available)
    comp = component_modes_for_strategy(order, mode, strategy, degree)
    loops = tuple(m for m in range(order) if m != mode and m not in comp)
    return TtmPlan(
        shape=shape_t,
        mode=mode,
        j=j,
        layout=layout,
        strategy=strategy,
        component_modes=comp,
        loop_modes=loops,
        loop_threads=loop_threads,
        kernel_threads=kernel_threads,
        kernel=kernel,
    )


def _check_inputs(x: DenseTensor, u: np.ndarray, plan: TtmPlan) -> np.ndarray:
    if not isinstance(x, DenseTensor):
        raise TypeError(
            f"x must be a DenseTensor, got {type(x).__name__}; wrap ndarrays "
            "so the storage layout is explicit"
        )
    u = np.asarray(u, dtype=np.float64)
    if u.ndim != 2:
        raise ShapeError(f"U must be 2-D (J x I_n), got {u.ndim}-D")
    if x.shape != plan.shape or x.layout is not plan.layout:
        raise PlanError(
            f"plan was built for shape {plan.shape} / {plan.layout.name}, "
            f"got {x.shape} / {x.layout.name}"
        )
    if u.shape != (plan.j, plan.i_n):
        raise ShapeError(
            f"U shape {u.shape} does not match (J={plan.j}, I_n={plan.i_n})"
        )
    return u


def _prepare_out(plan: TtmPlan, out: DenseTensor | None) -> DenseTensor:
    if out is None:
        return DenseTensor.empty(plan.out_shape, plan.layout)
    if not isinstance(out, DenseTensor):
        raise TypeError(f"out must be a DenseTensor, got {type(out).__name__}")
    if out.shape != plan.out_shape or out.layout is not plan.layout:
        raise PlanError(
            f"out has shape {out.shape} / {out.layout.name}, plan needs "
            f"{plan.out_shape} / {plan.layout.name}"
        )
    return out


def _kernel_runner(plan: TtmPlan, accumulate: bool = False):
    """A closure dispatching the inner GEMM per the plan's kernel/threads."""
    if plan.kernel_threads > 1:
        inner = "auto" if plan.kernel == "threaded" else plan.kernel
        threads = plan.kernel_threads

        def run(a, b, out):
            gemm_threaded(a, b, out=out, threads=threads, kernel=inner,
                          accumulate=accumulate)

        return run
    kernel = plan.kernel

    def run(a, b, out):
        gemm(a, b, out=out, kernel=kernel, accumulate=accumulate)

    return run


def ttm_inplace(
    x: DenseTensor,
    u: np.ndarray,
    mode: int | None = None,
    plan: TtmPlan | None = None,
    out: DenseTensor | None = None,
    transpose_u: bool = False,
    accumulate: bool = False,
) -> DenseTensor:
    """Compute ``Y = X x_mode U`` in place of a preallocated output.

    Either *plan* or *mode* must be given; with only *mode*, the maximal
    default plan is used.  With ``transpose_u=True`` the product is
    ``X x_mode U^T`` for *u* of shape ``(I_n, J)`` — the Tensor Toolbox's
    ``ttm(X, A, n, 't')`` convention, served by a transpose *view* (no
    copy), which is what Tucker's factor projections want.  With
    ``accumulate=True`` (requires *out*) the product is *added* into the
    output — GEMM's beta=1, useful for summing partial contractions.
    Returns the output tensor (newly allocated when *out* is None).
    """
    if accumulate and out is None:
        raise PlanError("accumulate=True requires a preallocated out")
    if not isinstance(x, DenseTensor):
        raise TypeError(
            f"x must be a DenseTensor, got {type(x).__name__}; wrap ndarrays "
            "so the storage layout is explicit"
        )
    if transpose_u:
        u_arr = np.asarray(u, dtype=np.float64)
        if u_arr.ndim != 2:
            raise ShapeError(f"U must be 2-D (I_n x J), got {u_arr.ndim}-D")
        u = u_arr.T  # a view; BLAS-legal (unit stride in one dimension)
    if plan is None:
        if mode is None:
            raise PlanError("ttm_inplace needs a plan or a mode")
        u_arr = np.asarray(u, dtype=np.float64)
        if u_arr.ndim != 2:
            raise ShapeError(f"U must be 2-D (J x I_n), got {u_arr.ndim}-D")
        plan = default_plan(x.shape, mode, u_arr.shape[0], x.layout)
    u = _check_inputs(x, u, plan)
    y = _prepare_out(plan, out)
    run_kernel = _kernel_runner(plan, accumulate=accumulate)

    comp = plan.component_modes
    mode_t = plan.mode
    loops = plan.loop_modes
    forward = plan.strategy is Strategy.FORWARD
    ut = u.T  # view; used by the backward kernel form

    if comp:
        if forward:

            def body(index):
                fixed = dict(zip(loops, index))
                x_sub = merged_matrix_view(x, (mode_t,), comp, fixed)
                y_sub = merged_matrix_view(y, (mode_t,), comp, fixed)
                # Algorithm 2, line 9: Y_sub = U @ X_sub.
                run_kernel(u, x_sub, y_sub)

        else:

            def body(index):
                fixed = dict(zip(loops, index))
                x_sub = merged_matrix_view(x, comp, (mode_t,), fixed)
                y_sub = merged_matrix_view(y, comp, (mode_t,), fixed)
                # Algorithm 2, line 5: Y_sub = X_sub @ U'.
                run_kernel(x_sub, ut, y_sub)

    else:
        # Degree 0: fiber representation; each kernel is a GEMV-shaped GEMM.
        from repro.tensor.views import fiber

        def body(index):
            fixed = dict(zip(loops, index))
            x_fib = fiber(x, mode_t, fixed)[:, np.newaxis]
            y_fib = fiber(y, mode_t, fixed)[:, np.newaxis]
            run_kernel(u, x_fib, y_fib)

    parfor(plan.loop_extents, body, threads=plan.loop_threads)
    return y
