"""The in-place TTM executor: Algorithm 2, interpreted from a plan.

``ttm_inplace`` walks the loop-mode iteration space and runs the planned
GEMM kernel on copy-free *views* of the input and output tensors, writing
straight through the output tensor's storage.

The executor has two code shapes, chosen by the plan:

* **Batched** (``plan.batch_modes`` non-empty): the innermost run of
  loop modes is fused into the batch dimension of a rank-3 strided view
  (:class:`repro.tensor.views.BatchViewFactory`), and one batched GEMM
  (:func:`repro.gemm.batched.gemm_batched`) replaces that whole run of
  per-index dispatches.  Only the *outer* residue of ``M_L`` remains an
  interpreted loop, which cuts interpreter crossings by the batch factor
  — the GETT-style move of mapping the loop nest onto batched matrix
  multiply primitives instead of interpreted outer loops.
* **Per-iteration** (``batch_modes`` empty): the original Algorithm 2
  loop, one GEMM per loop index, kept as the fallback for plans whose
  strides do not permit stacking and for explicitly unbatched plans.

Both paths hoist every loop-invariant out of the body: view geometry is
precomputed once per call (the factories), the kernel callable is
resolved once (no per-iteration registry lookups), and ``U^T`` for the
backward strategy is derived once.

Total extra memory: one J x I_n transpose of U for the backward strategy
(a view, not a copy) and nothing else.  This is what "in-place" means in
the paper: the conventional implementation's tensor-sized matricization
buffers simply do not exist.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.core.plan import Strategy, TtmPlan
from repro.obs.tracer import active_tracer
from repro.parallel.parfor import parfor
from repro.perf.profiler import active_hot_counters
from repro.resilience.fallback import (
    KernelChain,
    build_batched_tiers,
    build_gemm_tiers,
)
from repro.resilience.memory import guard_memory
from repro.tensor.dense import DenseTensor
from repro.tensor.layout import Layout
from repro.tensor.views import BatchViewFactory, MatrixViewFactory
from repro.util.dtypes import DEFAULT_DTYPE, canonical_dtype, is_supported_dtype
from repro.util.errors import DtypeError, PlanError, ShapeError
from repro.util.validation import (
    check_finite_result,
    check_mode,
    check_positive_int,
)


def default_plan(
    shape,
    mode: int,
    j: int,
    layout,
    loop_threads: int = 1,
    kernel_threads: int = 1,
    kernel: str = "auto",
    degree: int | None = None,
    batched: bool = True,
    dtype=None,
) -> TtmPlan:
    """A maximal-merge plan (all available contiguous modes in ``M_C``).

    This is the un-tuned but always-correct choice; the estimator
    (:mod:`repro.core.estimator`) refines the degree and thread split.
    With ``batched=True`` (the default) the maximal stackable run of loop
    modes is marked for batched execution; ``batched=False`` pins the
    classic per-iteration loop.
    """
    shape_t = tuple(int(s) for s in shape)
    order = len(shape_t)
    mode = check_mode(mode, order)
    check_positive_int(j, "j")
    layout = Layout.parse(layout)
    dt = DEFAULT_DTYPE if dtype is None else canonical_dtype(dtype)
    from repro.core.partition import (
        available_modes_for_strategy,
        choose_batch_modes,
        component_modes_for_strategy,
        strategy_for,
    )

    strategy = strategy_for(order, mode, layout)
    available = available_modes_for_strategy(order, mode, strategy)
    if degree is None:
        degree = len(available)
    comp = component_modes_for_strategy(order, mode, strategy, degree)
    loops = tuple(m for m in range(order) if m != mode and m not in comp)
    batch = (
        choose_batch_modes(shape_t, layout, mode, j, loops) if batched else ()
    )
    return TtmPlan(
        shape=shape_t,
        mode=mode,
        j=j,
        layout=layout,
        strategy=strategy,
        component_modes=comp,
        loop_modes=loops,
        loop_threads=loop_threads,
        kernel_threads=kernel_threads,
        kernel=kernel,
        batch_modes=batch,
        dtype=dt.name,
    )


def _check_inputs(x: DenseTensor, u: np.ndarray, plan: TtmPlan) -> np.ndarray:
    if not isinstance(x, DenseTensor):
        raise TypeError(
            f"x must be a DenseTensor, got {type(x).__name__}; wrap ndarrays "
            "so the storage layout is explicit"
        )
    # Dtype policy: reject or preserve, never copy.  A silent
    # ``asarray(u, dtype=float64)`` here used to upcast-and-copy float32
    # operands — the exact allocation cost this library exists to avoid.
    u = np.asarray(u)
    if x.data.dtype != plan.np_dtype:
        raise DtypeError(
            f"plan was built for dtype {plan.dtype}, but x is "
            f"{x.data.dtype.name}; re-plan for the tensor's dtype"
        )
    if u.dtype != plan.np_dtype:
        if u.dtype.kind == "f" and is_supported_dtype(u.dtype):
            raise DtypeError(
                f"U has dtype {u.dtype.name} but the plan (and x) are "
                f"{plan.dtype}; cast U explicitly — mixing float widths "
                "would silently change the result's precision"
            )
        # Non-float input (ints, bools, Python lists): materialize in the
        # plan dtype.  This is a J x I_n matrix, negligible next to X.
        u = np.asarray(u, dtype=plan.np_dtype)
    if u.ndim != 2:
        raise ShapeError(f"U must be 2-D (J x I_n), got {u.ndim}-D")
    if x.shape != plan.shape or x.layout is not plan.layout:
        raise PlanError(
            f"plan was built for shape {plan.shape} / {plan.layout.name}, "
            f"got {x.shape} / {x.layout.name}"
        )
    if u.shape != (plan.j, plan.i_n):
        raise ShapeError(
            f"U shape {u.shape} does not match (J={plan.j}, I_n={plan.i_n})"
        )
    return u


def _prepare_out(plan: TtmPlan, out: DenseTensor | None) -> DenseTensor:
    if out is None:
        return DenseTensor.empty(plan.out_shape, plan.layout, dtype=plan.dtype)
    if not isinstance(out, DenseTensor):
        raise TypeError(f"out must be a DenseTensor, got {type(out).__name__}")
    if out.shape != plan.out_shape or out.layout is not plan.layout:
        raise PlanError(
            f"out has shape {out.shape} / {out.layout.name}, plan needs "
            f"{plan.out_shape} / {plan.layout.name}"
        )
    if out.data.dtype != plan.np_dtype:
        raise DtypeError(
            f"out has dtype {out.data.dtype.name}, plan needs {plan.dtype}; "
            "writing through a mismatched out would silently round every "
            "element"
        )
    return out


def _kernel_runner(plan: TtmPlan, accumulate: bool = False) -> KernelChain:
    """A degrading dispatcher for the inner GEMM per the plan's kernel.

    The tier list is resolved from the registry *once* here; loop bodies
    call the chain directly without any per-iteration registry lookups.
    When the planned kernel raises a recoverable error the chain retries
    the multiply one tier down (``blas -> blocked -> reference``) and
    stays degraded for the rest of this call — see
    :mod:`repro.resilience.fallback`.
    """
    return KernelChain(build_gemm_tiers(plan), accumulate=accumulate)


def _batched_runner(plan: TtmPlan, accumulate: bool = False) -> KernelChain:
    """Like :func:`_kernel_runner`, but dispatching whole batches."""
    return KernelChain(build_batched_tiers(plan), accumulate=accumulate)


def _execute_batched(x, u, ut, y, plan: TtmPlan, accumulate: bool) -> None:
    """The batched engine: one batched GEMM per *outer* loop index."""
    comp = plan.component_modes
    mode_t = plan.mode
    batch = plan.batch_modes
    outer = plan.outer_loop_modes
    forward = plan.strategy is Strategy.FORWARD or plan.degree == 0
    counters = active_hot_counters()
    tracer = active_tracer()
    run_batched = _batched_runner(plan, accumulate=accumulate)

    # Degree 0 batches fibers as (B, I_n, 1) single-column matrices.
    rows_x = (mode_t,)
    with tracer.span("view-build", engine="batched", batch_modes=list(batch)):
        if forward:
            x_views = BatchViewFactory(x, batch, rows_x, comp, outer)
            y_views = BatchViewFactory(y, batch, rows_x, comp, outer)
        else:
            x_views = BatchViewFactory(x, batch, comp, rows_x, outer)
            y_views = BatchViewFactory(y, batch, comp, rows_x, outer)

    def dispatch(x3, y3):
        # Algorithm 2's kernel, lifted to rank 3 over the batch run:
        # forward Y3[b] = U @ X3[b]; backward Y3[b] = X3[b] @ U^T.
        if forward:
            run_batched(u, x3, y3)
        else:
            run_batched(x3, ut, y3)
        if counters is not None:
            counters.count_batched(x3.shape[0])

    if tracer.enabled:
        # Parent kernel spans to the span current *here*, so bodies run
        # by parfor worker threads stay attached to this dispatch.
        dispatch_parent = tracer.current_span()
        m_k, k_k, n_k = plan.kernel_shape
        plain_dispatch = dispatch

        def dispatch(x3, y3):
            with tracer.span(
                "gemm-kernel",
                # Worker threads have an empty span stack: fall back to
                # the span that was current at dispatch-construction time
                # so their kernels stay attached to this call's tree.
                parent=tracer.current_span() or dispatch_parent,
                batch=int(x3.shape[0]),
                m=m_k,
                k=k_k,
                n=n_k,
                kernel=plan.kernel,
                dtype=plan.dtype,
            ):
                plain_dispatch(x3, y3)

    b_extent = x_views.batch_extent
    if plan.loop_threads > 1 and not outer and b_extent > 1:
        # No outer loop to parallelize: split the batch itself across the
        # P_L workers (each chunk is still one batched dispatch).
        x3 = x_views.view(())
        y3 = y_views.view(())
        n_chunks = min(plan.loop_threads, b_extent)
        chunk = math.ceil(b_extent / n_chunks)

        def chunk_body(index):
            lo = index[0] * chunk
            hi = min(lo + chunk, b_extent)
            dispatch(x3[lo:hi], y3[lo:hi])

        parfor((n_chunks,), chunk_body, threads=plan.loop_threads)
        return

    if counters is None:

        def body(index):
            dispatch(x_views.view(index), y_views.view(index))

    else:

        def body(index):
            start = time.perf_counter()
            x3 = x_views.view(index)
            y3 = y_views.view(index)
            counters.add_view_time(time.perf_counter() - start)
            dispatch(x3, y3)

    parfor(plan.outer_loop_extents, body, threads=plan.loop_threads)


def _execute_looped(x, u, ut, y, plan: TtmPlan, accumulate: bool) -> None:
    """The per-iteration fallback: one GEMM dispatch per loop index."""
    comp = plan.component_modes
    mode_t = plan.mode
    loops = plan.loop_modes
    forward = plan.strategy is Strategy.FORWARD or plan.degree == 0
    counters = active_hot_counters()
    tracer = active_tracer()
    run_kernel = _kernel_runner(plan, accumulate=accumulate)

    # Degree 0 falls into the forward shape with an empty column run:
    # each kernel is a GEMV-shaped GEMM on an (I_n, 1) fiber view.
    rows = (mode_t,)
    with tracer.span("view-build", engine="looped", loop_modes=list(loops)):
        if forward:
            x_views = MatrixViewFactory(x, rows, comp, loops)
            y_views = MatrixViewFactory(y, rows, comp, loops)
        else:
            x_views = MatrixViewFactory(x, comp, rows, loops)
            y_views = MatrixViewFactory(y, comp, rows, loops)

    if tracer.enabled:
        dispatch_parent = tracer.current_span()
        m_k, k_k, n_k = plan.kernel_shape

        def body(index):
            x_sub = x_views.view(index)
            y_sub = y_views.view(index)
            with tracer.span(
                "gemm-kernel",
                parent=tracer.current_span() or dispatch_parent,
                m=m_k,
                k=k_k,
                n=n_k,
                kernel=plan.kernel,
                dtype=plan.dtype,
            ):
                if forward:
                    run_kernel(u, x_sub, y_sub)
                else:
                    run_kernel(x_sub, ut, y_sub)
            if counters is not None:
                counters.count_gemm()

    elif counters is None:

        def body(index):
            x_sub = x_views.view(index)
            y_sub = y_views.view(index)
            if forward:
                run_kernel(u, x_sub, y_sub)
            else:
                run_kernel(x_sub, ut, y_sub)

    else:

        def body(index):
            start = time.perf_counter()
            x_sub = x_views.view(index)
            y_sub = y_views.view(index)
            counters.add_view_time(time.perf_counter() - start)
            if forward:
                run_kernel(u, x_sub, y_sub)
            else:
                run_kernel(x_sub, ut, y_sub)
            counters.count_gemm()

    parfor(plan.loop_extents, body, threads=plan.loop_threads)


def ttm_inplace(
    x: DenseTensor,
    u: np.ndarray,
    mode: int | None = None,
    plan: TtmPlan | None = None,
    out: DenseTensor | None = None,
    transpose_u: bool = False,
    accumulate: bool = False,
    check_finite: bool = False,
    allow_replan: bool = False,
) -> DenseTensor:
    """Compute ``Y = X x_mode U`` in place of a preallocated output.

    Either *plan* or *mode* must be given; with only *mode*, the maximal
    default plan is used.  With ``transpose_u=True`` the product is
    ``X x_mode U^T`` for *u* of shape ``(I_n, J)`` — the Tensor Toolbox's
    ``ttm(X, A, n, 't')`` convention, served by a transpose *view* (no
    copy), which is what Tucker's factor projections want.  With
    ``accumulate=True`` (requires *out*) the product is *added* into the
    output — GEMM's beta=1, useful for summing partial contractions.
    With ``check_finite=True`` the result is validated for NaN/Inf after
    execution (:class:`~repro.util.errors.NumericError` on failure).
    ``allow_replan=True`` lets the memory pre-flight guard substitute a
    lower-degree plan instead of raising
    :class:`~repro.util.errors.ResourceError` under memory pressure.
    Returns the output tensor (newly allocated when *out* is None).
    """
    if accumulate and out is None:
        raise PlanError("accumulate=True requires a preallocated out")
    if not isinstance(x, DenseTensor):
        raise TypeError(
            f"x must be a DenseTensor, got {type(x).__name__}; wrap ndarrays "
            "so the storage layout is explicit"
        )
    if transpose_u:
        u_arr = np.asarray(u)
        if u_arr.ndim != 2:
            raise ShapeError(f"U must be 2-D (I_n x J), got {u_arr.ndim}-D")
        u = u_arr.T  # a view; BLAS-legal (unit stride in one dimension)
    if plan is None:
        if mode is None:
            raise PlanError("ttm_inplace needs a plan or a mode")
        u_arr = np.asarray(u)
        if u_arr.ndim != 2:
            raise ShapeError(f"U must be 2-D (J x I_n), got {u_arr.ndim}-D")
        plan = default_plan(
            x.shape, mode, u_arr.shape[0], x.layout, dtype=x.data.dtype.name
        )
    u = _check_inputs(x, u, plan)
    # Pre-flight: size the allocation before making it, so memory
    # pressure surfaces as a typed error (or a lower-degree replan)
    # instead of an OOM kill mid-write.
    plan = guard_memory(
        plan, allocate_out=out is None, allow_replan=allow_replan
    )
    y = _prepare_out(plan, out)
    ut = u.T  # view; used by the backward kernel form

    tracer = active_tracer()
    if tracer.enabled:
        with tracer.span(
            "execute",
            executor="interpreted",
            shape=list(plan.shape),
            mode=plan.mode,
            j=plan.j,
            layout=plan.layout.name,
            degree=plan.degree,
            batch_modes=list(plan.batch_modes),
            kernel=plan.kernel,
            dtype=plan.dtype,
            flops=plan.total_flops,
        ):
            if plan.batch_modes:
                _execute_batched(x, u, ut, y, plan, accumulate)
            else:
                _execute_looped(x, u, ut, y, plan, accumulate)
    else:
        if plan.batch_modes:
            _execute_batched(x, u, ut, y, plan, accumulate)
        else:
            _execute_looped(x, u, ut, y, plan, accumulate)
    if check_finite:
        check_finite_result(y.data, kernel=plan.kernel, context="ttm")
    return y
