"""Multi-TTM chains: ordering the products of a Tucker projection.

The paper's motivating workload (§2) is the HOOI chain
``Y = X x_1 A^(1)T ... x_N A^(N)T`` (skipping one mode), i.e. a
*sequence* of mode-n products where each product changes the tensor's
shape and therefore the cost of every later product.  The execution
order is free — mode-n products along distinct modes commute — and the
cost spread between orders grows with the reduction ratios ``I_n / J_n``.

This module provides the cost model and a provably good ordering:
processing modes by decreasing reduction *rate* shrinks the tensor as
fast as possible, which for the common Tucker case (every J_n <= I_n)
greedily minimizes the dominant first terms of the chain cost.  An exact
brute-force optimizer over all permutations is included for small N and
used by tests to validate the greedy choice.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.tensor.dense import DenseTensor
from repro.util.errors import ShapeError


@dataclass(frozen=True)
class ChainStep:
    """One mode-n product in a chain: contract *mode* with *matrix* (J x I_n)."""

    mode: int
    matrix: np.ndarray

    @property
    def j(self) -> int:
        return self.matrix.shape[0]


def _check_chain(shape: Sequence[int], steps: Sequence[ChainStep]) -> None:
    seen = set()
    for step in steps:
        if step.mode in seen:
            raise ShapeError(
                f"mode {step.mode} appears twice in the chain; fold repeated "
                "products into one matrix first"
            )
        seen.add(step.mode)
        if not 0 <= step.mode < len(shape):
            raise ShapeError(
                f"mode {step.mode} out of range for order {len(shape)}"
            )
        if step.matrix.ndim != 2 or step.matrix.shape[1] != shape[step.mode]:
            raise ShapeError(
                f"chain step at mode {step.mode} has matrix shape "
                f"{step.matrix.shape}, expected (J, {shape[step.mode]})"
            )


def chain_flops(shape: Sequence[int], steps: Sequence[ChainStep],
                order: Sequence[int] | None = None) -> int:
    """Total flops of executing *steps* in the given order (indices into
    *steps*; default: as given).

    Each product costs ``2 * J_n * prod(current shape)`` and replaces
    ``I_n`` by ``J_n`` in the running shape.
    """
    _check_chain(shape, steps)
    current = list(int(s) for s in shape)
    if order is None:
        order = range(len(steps))
    total = 0
    for idx in order:
        step = steps[idx]
        total += 2 * step.j * math.prod(current)
        current[step.mode] = step.j
    return total


def greedy_order(shape: Sequence[int], steps: Sequence[ChainStep]) -> tuple[int, ...]:
    """The minimum-flop execution order, by the exchange criterion.

    For two adjacent steps a, b over current size S the costs are
    ``2 J_a S + 2 J_b S J_a/I_a`` vs the swapped form, and a-first wins
    exactly when ``1/J_a - 1/I_a > 1/J_b - 1/I_b``.  The criterion is a
    per-step constant, so sorting by it (descending) is globally optimal
    — an exchange-argument scheduling result, validated against the
    brute-force :func:`optimal_order` in tests.  Ties broken by mode
    index for determinism.
    """
    _check_chain(shape, steps)

    def criterion(idx: int) -> float:
        step = steps[idx]
        return 1.0 / step.j - 1.0 / shape[step.mode]

    return tuple(
        sorted(range(len(steps)), key=lambda i: (-criterion(i), steps[i].mode))
    )


def optimal_order(shape: Sequence[int], steps: Sequence[ChainStep]) -> tuple[int, ...]:
    """Brute-force minimum-flop order (O(N!); use for N <= ~8)."""
    _check_chain(shape, steps)
    best: tuple[int, ...] | None = None
    best_cost = None
    for perm in itertools.permutations(range(len(steps))):
        cost = chain_flops(shape, steps, perm)
        if best_cost is None or cost < best_cost:
            best, best_cost = perm, cost
    assert best is not None
    return best


def ttm_chain(
    x: DenseTensor,
    steps: Sequence[ChainStep | tuple[int, np.ndarray]],
    backend: Callable[[DenseTensor, np.ndarray, int], DenseTensor] | None = None,
    order: str | Sequence[int] = "greedy",
) -> DenseTensor:
    """Execute a chain of mode-n products.

    *steps* may be ``ChainStep`` objects or plain ``(mode, matrix)``
    pairs.  *order* is ``"greedy"`` (default), ``"given"``, ``"optimal"``,
    or an explicit index sequence.
    """
    steps_t = [
        s if isinstance(s, ChainStep) else ChainStep(int(s[0]), np.asarray(s[1], dtype=np.float64))
        for s in steps
    ]
    _check_chain(x.shape, steps_t)
    if backend is None:
        from repro.core.intensli import ttm as backend  # type: ignore[assignment]
    if order == "greedy":
        schedule: Sequence[int] = greedy_order(x.shape, steps_t)
    elif order == "optimal":
        schedule = optimal_order(x.shape, steps_t)
    elif order == "given":
        schedule = range(len(steps_t))
    else:
        schedule = [int(i) for i in order]
        if sorted(schedule) != list(range(len(steps_t))):
            raise ShapeError(
                f"order {schedule!r} is not a permutation of the chain"
            )
    y = x
    for idx in schedule:
        step = steps_t[idx]
        y = backend(y, step.matrix, step.mode)
    return y
