"""Multi-TTM chains: planning and fused execution of Tucker projections.

The paper's motivating workload (§2) is the HOOI chain
``Y = X x_1 A^(1)T ... x_N A^(N)T`` (skipping one mode), i.e. a
*sequence* of mode-n products where each product changes the tensor's
shape and therefore the cost of every later product.  The execution
order is free — mode-n products along distinct modes commute — and the
cost spread between orders grows with the reduction ratios ``I_n / J_n``.

This module plans the chain **as a unit**, the GETT/TBLIS view of a
contraction sequence (contraction without transposition, native-
dimension blocking):

* :func:`greedy_order` / :func:`optimal_order` choose the step order —
  greedy by reduction rate (provably flop-optimal for independent
  per-step multipliers), or exactly by a subset dynamic program whose
  cost model also prices the *intermediate bytes* each order
  materializes, not just its flops (:func:`chain_cost`);
* :class:`ChainPlan` pre-builds every per-step :class:`TtmPlan` once,
  against the evolving shapes of the chosen order, so no step re-plans
  from a cold start;
* :func:`execute_chain` runs the chain through a **ping-pong scratch
  pool** (:class:`ScratchPool`): two reusable buffers are threaded
  through ``ttm_inplace(..., out=)``, so an N-step chain performs at
  most two intermediate allocations instead of N, and the final product
  lands directly in a caller-supplied ``out`` when given.

:func:`ttm_chain` remains the single entry point: with an explicit
*backend* callable it executes step-at-a-time as before (the honest
path for baseline backends that cannot write into preallocated
outputs); with a :class:`ChainPlan` (or none of either) it runs fused.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.plan import TtmPlan
from repro.tensor.dense import DenseTensor
from repro.tensor.layout import Layout
from repro.util.dtypes import is_supported_dtype
from repro.util.errors import DtypeError, PlanError, ShapeError

#: Largest chain the exact order optimizer accepts.  The subset DP is
#: O(2^N * N); beyond this the greedy order is the supported path.
MAX_OPTIMAL_STEPS = 8

#: Default flops-per-byte machine balance used to weigh compute against
#: intermediate traffic when ordering a chain (a roofline ridge point;
#: overridden with the estimator's calibrated value when available).
DEFAULT_FLOPS_PER_BYTE = 16.0


@dataclass(frozen=True)
class ChainStep:
    """One mode-n product in a chain: contract *mode* with *matrix* (J x I_n)."""

    mode: int
    matrix: np.ndarray

    @property
    def j(self) -> int:
        return self.matrix.shape[0]


def _check_chain(shape: Sequence[int], steps: Sequence[ChainStep]) -> None:
    seen = set()
    for step in steps:
        if step.mode in seen:
            raise ShapeError(
                f"mode {step.mode} appears twice in the chain; fold repeated "
                "products into one matrix first"
            )
        seen.add(step.mode)
        if not 0 <= step.mode < len(shape):
            raise ShapeError(
                f"mode {step.mode} out of range for order {len(shape)}"
            )
        if step.matrix.ndim != 2 or step.matrix.shape[1] != shape[step.mode]:
            raise ShapeError(
                f"chain step at mode {step.mode} has matrix shape "
                f"{step.matrix.shape}, expected (J, {shape[step.mode]})"
            )


def _coerce_steps(
    steps: Sequence["ChainStep | tuple[int, np.ndarray]"],
    dtype: np.dtype,
) -> list[ChainStep]:
    """Normalize *steps* to :class:`ChainStep`, preserving the chain dtype.

    Same policy as the executor's ``_check_inputs``: a matrix already in
    the chain dtype passes through untouched; a *different* supported
    float dtype is rejected (silently changing a float32 chain to
    float64 is the upcast-and-copy bug this library exists to avoid);
    non-float input (ints, bools, Python lists) is materialized in the
    chain dtype — J x I_n matrices, negligible next to X.
    """
    out: list[ChainStep] = []
    for s in steps:
        if isinstance(s, ChainStep):
            mode, matrix = s.mode, np.asarray(s.matrix)
        else:
            mode, matrix = int(s[0]), np.asarray(s[1])
        if matrix.dtype != dtype:
            if matrix.dtype.kind == "f" and is_supported_dtype(matrix.dtype):
                raise DtypeError(
                    f"chain step at mode {mode} has dtype "
                    f"{matrix.dtype.name} but the tensor is {dtype.name}; "
                    "cast the matrix explicitly — mixing float widths "
                    "would silently change the result's precision"
                )
            matrix = np.asarray(matrix, dtype=dtype)
        if isinstance(s, ChainStep) and matrix is s.matrix:
            out.append(s)
        else:
            out.append(ChainStep(mode, matrix))
    return out


# -- cost models ---------------------------------------------------------------


def _chain_sizes(
    shape: Sequence[int], steps: Sequence[ChainStep]
) -> dict[int, int]:
    """Element count of the intermediate after each *subset* of steps.

    The running size depends only on *which* steps were applied, never
    on their order, so it is memoized per bitmask: ``sizes[mask]`` is
    the intermediate's element count after applying exactly the steps
    whose bits are set.  Both the flop and byte cost models below (and
    the exact order DP) read from this one table instead of re-deriving
    intermediate shapes per permutation.
    """
    n = len(steps)
    base = [int(s) for s in shape]
    sizes = {0: math.prod(base)}
    for mask in range(1, 1 << n):
        low = mask & -mask
        idx = low.bit_length() - 1
        prev = sizes[mask ^ low]
        step = steps[idx]
        old = base[step.mode]
        if old:
            sizes[mask] = prev // old * step.j
        else:
            extents = list(base)
            for k in range(n):
                if mask >> k & 1:
                    extents[steps[k].mode] = steps[k].j
            sizes[mask] = math.prod(extents)
    return sizes


def chain_flops(shape: Sequence[int], steps: Sequence[ChainStep],
                order: Sequence[int] | None = None) -> int:
    """Total flops of executing *steps* in the given order (indices into
    *steps*; default: as given).

    Each product costs ``2 * J_n * prod(current shape)`` and replaces
    ``I_n`` by ``J_n`` in the running shape.  The running element count
    is maintained multiplicatively (one divide/multiply per step)
    instead of re-deriving the intermediate shape at every step.
    """
    _check_chain(shape, steps)
    current = [int(s) for s in shape]
    if order is None:
        order = range(len(steps))
    total = 0
    size = math.prod(current)
    for idx in order:
        step = steps[idx]
        total += 2 * step.j * size
        old = current[step.mode]
        current[step.mode] = step.j
        size = size // old * step.j if old else math.prod(current)
    return total


def chain_intermediate_bytes(
    shape: Sequence[int],
    steps: Sequence[ChainStep],
    order: Sequence[int] | None = None,
    itemsize: int = 8,
) -> tuple[int, int]:
    """(total, peak) bytes of the intermediates an order materializes.

    *total* sums the output tensor of every step (the write traffic the
    chain generates beyond reading X itself); *peak* is the largest
    single intermediate — the quantity that sizes the scratch pool.
    """
    _check_chain(shape, steps)
    current = [int(s) for s in shape]
    if order is None:
        order = range(len(steps))
    size = math.prod(current)
    total = 0
    peak = 0
    for idx in order:
        step = steps[idx]
        old = current[step.mode]
        current[step.mode] = step.j
        size = size // old * step.j if old else math.prod(current)
        total += size * itemsize
        peak = max(peak, size * itemsize)
    return total, peak


def chain_cost(
    shape: Sequence[int],
    steps: Sequence[ChainStep],
    order: Sequence[int] | None = None,
    itemsize: int = 8,
    flops_per_byte: float = DEFAULT_FLOPS_PER_BYTE,
) -> float:
    """Memory-and-intensity-aware cost of an order, in byte-equivalents.

    Each step is charged its data movement — reading the current
    intermediate plus writing the next — and its flops converted at the
    machine-balance ratio *flops_per_byte*.  Minimizing this favors the
    flop-minimal order when the chain is compute-bound and the
    smallest-intermediates order when it is bandwidth-bound, which is
    what the fused executor's wall clock actually tracks.
    """
    _check_chain(shape, steps)
    current = [int(s) for s in shape]
    if order is None:
        order = range(len(steps))
    size = math.prod(current)
    cost = 0.0
    for idx in order:
        step = steps[idx]
        before = size
        old = current[step.mode]
        current[step.mode] = step.j
        size = size // old * step.j if old else math.prod(current)
        cost += (before + size) * itemsize
        cost += 2.0 * step.j * before / flops_per_byte
    return cost


def greedy_order(shape: Sequence[int], steps: Sequence[ChainStep]) -> tuple[int, ...]:
    """The minimum-flop execution order, by the exchange criterion.

    For two adjacent steps a, b over current size S the costs are
    ``2 J_a S + 2 J_b S J_a/I_a`` vs the swapped form, and a-first wins
    exactly when ``1/J_a - 1/I_a > 1/J_b - 1/I_b``.  The criterion is a
    per-step constant, so sorting by it (descending) is globally optimal
    — an exchange-argument scheduling result, validated against the
    brute-force :func:`optimal_order` in tests.  Ties broken by mode
    index for determinism.
    """
    _check_chain(shape, steps)

    def criterion(idx: int) -> float:
        step = steps[idx]
        return 1.0 / step.j - 1.0 / shape[step.mode]

    return tuple(
        sorted(range(len(steps)), key=lambda i: (-criterion(i), steps[i].mode))
    )


def optimal_order(
    shape: Sequence[int],
    steps: Sequence[ChainStep],
    cost: str = "flops",
    itemsize: int = 8,
    flops_per_byte: float = DEFAULT_FLOPS_PER_BYTE,
) -> tuple[int, ...]:
    """The exactly minimal execution order, by subset dynamic program.

    *cost* selects the objective: ``"flops"`` (the classic count) or
    ``"roofline"`` (:func:`chain_cost`'s byte-equivalents, pricing
    intermediate traffic against compute).  The DP memoizes intermediate
    sizes per applied-step subset (:func:`_chain_sizes`) and runs in
    O(2^N * N) instead of the old O(N!) permutation scan; chains longer
    than :data:`MAX_OPTIMAL_STEPS` raise :class:`ValueError` explicitly
    instead of silently burning exponential time — use the greedy order
    there.
    """
    _check_chain(shape, steps)
    n = len(steps)
    if n == 0:
        return ()
    if n > MAX_OPTIMAL_STEPS:
        raise ValueError(
            f"optimal_order is exponential in the chain length and is "
            f"capped at {MAX_OPTIMAL_STEPS} steps; got {n} — use "
            f"greedy_order for long chains"
        )
    if cost not in ("flops", "roofline"):
        raise ValueError(f"cost must be 'flops' or 'roofline', got {cost!r}")
    sizes = _chain_sizes(shape, steps)

    def step_cost(idx: int, mask_before: int) -> float:
        before = sizes[mask_before]
        flops = 2.0 * steps[idx].j * before
        if cost == "flops":
            return flops
        after = sizes[mask_before | (1 << idx)]
        return (before + after) * itemsize + flops / flops_per_byte

    full = (1 << n) - 1
    best: dict[int, float] = {0: 0.0}
    choice: dict[int, int] = {}
    for mask in range(1, full + 1):
        best_cost = None
        best_last = -1
        rest = mask
        while rest:
            low = rest & -rest
            rest ^= low
            idx = low.bit_length() - 1
            prev_mask = mask ^ low
            candidate = best[prev_mask] + step_cost(idx, prev_mask)
            # Ties prefer the largest index as the *last* step, which
            # unrolls to mode-ascending execution — the same convention
            # greedy_order's tie-break uses, and measurably the better
            # side of the tie in row-major storage (early steps keep the
            # unit-stride merge large).
            if best_cost is None or candidate < best_cost or (
                candidate == best_cost and idx > best_last
            ):
                best_cost, best_last = candidate, idx
        best[mask] = best_cost
        choice[mask] = best_last
    order: list[int] = []
    mask = full
    while mask:
        idx = choice[mask]
        order.append(idx)
        mask ^= 1 << idx
    return tuple(reversed(order))


# -- the chain plan ------------------------------------------------------------


@dataclass(frozen=True)
class ChainPlan:
    """A fully planned TTM chain: order, per-step plans, buffer schedule.

    *order* indexes into the caller's step sequence; ``step_plans[k]``
    is the :class:`TtmPlan` for the k-th *executed* product (i.e. for
    step ``order[k]``), built against the intermediate shape at that
    point.  The plan also fixes the scratch schedule: every intermediate
    (all but the final product) lands in one of two ping-pong slots, so
    the executor's allocation count is a property of the plan, not of
    the data.
    """

    shape: tuple[int, ...]
    layout: Layout
    dtype: str
    order: tuple[int, ...]
    step_plans: tuple[TtmPlan, ...]

    def __post_init__(self) -> None:
        if len(self.order) != len(self.step_plans):
            raise PlanError(
                f"chain order has {len(self.order)} entries but "
                f"{len(self.step_plans)} step plans"
            )
        if sorted(self.order) != list(range(len(self.order))):
            raise PlanError(
                f"chain order {self.order!r} is not a permutation"
            )
        current = self.shape
        for k, plan in enumerate(self.step_plans):
            if plan.shape != current:
                raise PlanError(
                    f"chain step {k} plans shape {plan.shape} but the "
                    f"running intermediate is {current}; step plans must "
                    "chain through the evolving shapes"
                )
            if plan.layout is not self.layout or plan.dtype != self.dtype:
                raise PlanError(
                    f"chain step {k} plan is {plan.layout.name}/{plan.dtype}, "
                    f"chain is {self.layout.name}/{self.dtype}"
                )
            current = plan.out_shape

    # -- derived geometry ---------------------------------------------------

    @property
    def n_steps(self) -> int:
        return len(self.step_plans)

    @property
    def out_shape(self) -> tuple[int, ...]:
        """Shape of the final product."""
        if not self.step_plans:
            return self.shape
        return self.step_plans[-1].out_shape

    @property
    def intermediate_shapes(self) -> tuple[tuple[int, ...], ...]:
        """Output shape of every step, in execution order."""
        return tuple(plan.out_shape for plan in self.step_plans)

    @property
    def total_flops(self) -> int:
        return sum(plan.total_flops for plan in self.step_plans)

    @property
    def itemsize(self) -> int:
        return np.dtype(self.dtype).itemsize

    @property
    def peak_intermediate_bytes(self) -> int:
        """The largest single intermediate the chain materializes."""
        if not self.step_plans:
            return 0
        return max(
            math.prod(s) * self.itemsize for s in self.intermediate_shapes
        )

    @property
    def scratch_elements(self) -> tuple[int, ...]:
        """Element capacity of each ping-pong slot the executor needs.

        Steps ``0, 2, 4, ...`` write slot 0 and steps ``1, 3, ...`` write
        slot 1 — except the final step, which writes the caller's output.
        Empty when the chain has a single step (nothing intermediate).
        """
        slots = [0, 0]
        for k, plan in enumerate(self.step_plans[:-1]):
            size = math.prod(plan.out_shape)
            slot = k % 2
            slots[slot] = max(slots[slot], size)
        return tuple(s for s in slots if s > 0)

    @property
    def scratch_bytes(self) -> int:
        """Total bytes of the (at most two) reusable scratch buffers."""
        return sum(self.scratch_elements) * self.itemsize

    def describe(self) -> str:
        dims = "x".join(str(s) for s in self.shape)
        out = "x".join(str(s) for s in self.out_shape)
        order = ",".join(str(i) for i in self.order) or "-"
        return (
            f"ChainPlan[{dims} -> {out} steps={self.n_steps} "
            f"order=({order}) {self.layout.name} dtype={self.dtype} "
            f"scratch={len(self.scratch_elements)}x"
            f"({'/'.join(str(e) for e in self.scratch_elements) or '0'}) "
            f"flops={self.total_flops}]"
        )

    def cache_key(self) -> tuple:
        """The chain-qualified signature this plan answers.

        The whole chain is the unit of planning, so the key carries the
        full (mode, J) sequence — two chains sharing a prefix still plan
        (and cache) independently, while their individual step plans
        share the per-step :class:`repro.autotune.PlanCache` entries.
        """
        signature = tuple(
            (plan.mode, plan.j)
            for plan in (self.step_plans[i] for i in _inverse(self.order))
        )
        return (self.shape, signature, self.layout, self.dtype)


def _inverse(order: Sequence[int]) -> list[int]:
    inv = [0] * len(order)
    for pos, idx in enumerate(order):
        inv[idx] = pos
    return inv


def plan_chain(
    shape: Sequence[int],
    steps: Sequence["ChainStep | tuple[int, int]"],
    layout: Layout | str = Layout.ROW_MAJOR,
    dtype=None,
    order: "str | Sequence[int]" = "auto",
    planner: Callable[..., TtmPlan] | None = None,
    itemsize: int | None = None,
    flops_per_byte: float = DEFAULT_FLOPS_PER_BYTE,
) -> ChainPlan:
    """Plan a whole chain: choose the order, pre-build every step plan.

    *steps* may be :class:`ChainStep` objects or plain ``(mode, J)``
    signature pairs — planning needs only the geometry.  *order* is
    ``"auto"`` (default: the exact subset DP under the roofline cost for
    chains up to :data:`MAX_OPTIMAL_STEPS`, greedy beyond), ``"greedy"``,
    ``"optimal"`` (exact, flops objective), ``"given"``, or an explicit
    permutation.  *planner* builds each per-step plan — signature
    ``planner(shape, mode, j, layout, dtype=...)`` — and defaults to
    :func:`repro.core.inttm.default_plan`; :class:`repro.core.intensli
    .InTensLi` passes its estimator-plus-cache planner here so chain
    steps hit the persistent autotune store.
    """
    from repro.core.inttm import default_plan

    shape_t = tuple(int(s) for s in shape)
    layout = Layout.parse(layout)
    sig: list[tuple[int, int]] = []
    for s in steps:
        if isinstance(s, ChainStep):
            sig.append((s.mode, s.j))
        else:
            mode, second = s
            j = second.shape[0] if hasattr(second, "shape") else int(second)
            sig.append((int(mode), int(j)))
    probe = [
        ChainStep(mode, np.broadcast_to(0.0, (j, shape_t[mode])))
        for mode, j in sig
    ]
    _check_chain(shape_t, probe)
    if dtype is None:
        dt = np.dtype("float64")
    else:
        dt = np.dtype(dtype)
    size = dt.itemsize if itemsize is None else itemsize

    if isinstance(order, str):
        if order == "auto":
            if len(sig) <= MAX_OPTIMAL_STEPS:
                schedule = optimal_order(
                    shape_t, probe, cost="roofline", itemsize=size,
                    flops_per_byte=flops_per_byte,
                )
            else:
                schedule = greedy_order(shape_t, probe)
        elif order == "greedy":
            schedule = greedy_order(shape_t, probe)
        elif order == "optimal":
            schedule = optimal_order(shape_t, probe)
        elif order == "given":
            schedule = tuple(range(len(sig)))
        else:
            raise ShapeError(
                f"order must be 'auto', 'greedy', 'optimal', 'given', or "
                f"a permutation, got {order!r}"
            )
    else:
        schedule = tuple(int(i) for i in order)
        if sorted(schedule) != list(range(len(sig))):
            raise ShapeError(
                f"order {schedule!r} is not a permutation of the chain"
            )

    if planner is None:
        planner = default_plan
    current = shape_t
    step_plans: list[TtmPlan] = []
    for idx in schedule:
        mode, j = sig[idx]
        plan = planner(current, mode, j, layout, dtype=dt.name)
        step_plans.append(plan)
        current = plan.out_shape
    return ChainPlan(
        shape=shape_t,
        layout=layout,
        dtype=dt.name,
        order=schedule,
        step_plans=tuple(step_plans),
    )


# -- the scratch pool ----------------------------------------------------------


class ScratchPool:
    """Reusable ping-pong buffers for chain intermediates.

    One flat backing array per (slot, layout, dtype); a request returns
    a :class:`DenseTensor` *view* of its prefix reshaped to the step's
    output shape — copy-free in both storage orders, since any prefix of
    a flat buffer reshapes contiguously.  Buffers grow monotonically and
    are reused across steps *and* across chains (HOOI's sweeps request
    the same shapes every iteration), so a long-lived pool converges to
    zero allocations.  ``allocations``/``reuses`` make buffer behavior
    observable: the allocation-count test and the ``chain-exec`` trace
    span read them directly.
    """

    def __init__(self) -> None:
        self._slots: dict[tuple, np.ndarray] = {}
        self.allocations = 0
        self.reuses = 0

    def request(
        self, slot: int, shape: tuple[int, ...], layout: Layout, dtype
    ) -> DenseTensor:
        """A tensor of *shape* backed by the slot's reusable buffer."""
        dt = np.dtype(dtype)
        key = (slot, layout, dt.name)
        n = math.prod(shape)
        buf = self._slots.get(key)
        if buf is None or buf.size < n:
            buf = np.empty(n, dtype=dt)
            self._slots[key] = buf
            self.allocations += 1
        else:
            self.reuses += 1
        view = buf[:n].reshape(shape, order=layout.numpy_order)
        return DenseTensor(view, layout)

    def reserve(self, plan: ChainPlan) -> None:
        """Pre-size the slots a plan needs (at most two allocations)."""
        for slot, elements in enumerate(plan.scratch_elements):
            key = (slot, plan.layout, plan.dtype)
            buf = self._slots.get(key)
            if buf is None or buf.size < elements:
                self._slots[key] = np.empty(elements, dtype=plan.dtype)
                self.allocations += 1

    @property
    def nbytes(self) -> int:
        return sum(buf.nbytes for buf in self._slots.values())

    def release(self) -> int:
        """Drop every buffer; returns the bytes freed."""
        freed = self.nbytes
        self._slots.clear()
        return freed


# -- fused execution -----------------------------------------------------------


def execute_chain(
    x: DenseTensor,
    steps: Sequence[ChainStep],
    plan: ChainPlan,
    out: DenseTensor | None = None,
    pool: ScratchPool | None = None,
    execute: Callable[..., DenseTensor] | None = None,
) -> DenseTensor:
    """Run a planned chain through the ping-pong scratch pool.

    *steps* is the caller's original sequence (the plan's ``order``
    indexes into it); *execute* runs one planned product — signature
    ``execute(plan, x, u, out) -> DenseTensor`` — and defaults to the
    interpreted :func:`repro.core.inttm.ttm_inplace`.  Intermediates
    alternate between the pool's two slots; the final product is written
    into *out* when given, else into a freshly allocated tensor (the
    return value — never scratch).
    """
    from repro.core.inttm import ttm_inplace
    from repro.obs.tracer import active_tracer

    if not isinstance(x, DenseTensor):
        raise TypeError(
            f"x must be a DenseTensor, got {type(x).__name__}; wrap ndarrays "
            "so the storage layout is explicit"
        )
    if len(steps) != plan.n_steps:
        raise PlanError(
            f"chain plan has {plan.n_steps} steps, got {len(steps)} matrices"
        )
    if x.shape != plan.shape or x.layout is not plan.layout:
        raise PlanError(
            f"chain plan was built for {plan.shape}/{plan.layout.name}, "
            f"got {x.shape}/{x.layout.name}"
        )
    if out is not None:
        if not isinstance(out, DenseTensor):
            raise TypeError(
                f"out must be a DenseTensor, got {type(out).__name__}"
            )
        if out.shape != plan.out_shape or out.layout is not plan.layout:
            raise PlanError(
                f"out has shape {out.shape}/{out.layout.name}, chain "
                f"produces {plan.out_shape}/{plan.layout.name}"
            )
        if out.data.dtype != np.dtype(plan.dtype):
            raise DtypeError(
                f"out has dtype {out.data.dtype.name}, chain produces "
                f"{plan.dtype}"
            )
    if plan.n_steps == 0:
        if out is not None:
            np.copyto(out.data, x.data)
            return out
        return x
    if execute is None:
        def execute(step_plan, x_cur, u, target):
            return ttm_inplace(x_cur, u, plan=step_plan, out=target)
    if pool is None:
        pool = ScratchPool()

    tracer = active_tracer()
    allocations_before = pool.allocations
    reuses_before = pool.reuses

    def run() -> DenseTensor:
        current = x
        result = current
        for k, idx in enumerate(plan.order):
            step_plan = plan.step_plans[k]
            step = steps[idx]
            last = k == plan.n_steps - 1
            if last:
                target = out
                if target is None:
                    target = DenseTensor.empty(
                        step_plan.out_shape, plan.layout, dtype=plan.dtype
                    )
                reused = False
            else:
                before = pool.reuses
                target = pool.request(
                    k % 2, step_plan.out_shape, plan.layout, plan.dtype
                )
                reused = pool.reuses > before
            if tracer.enabled:
                with tracer.span(
                    "chain-step",
                    step=k,
                    source_index=idx,
                    mode=step_plan.mode,
                    j=step_plan.j,
                    slot=None if last else k % 2,
                    buffer_reused=reused,
                    out_shape=list(step_plan.out_shape),
                ):
                    result = execute(step_plan, current, step.matrix, target)
            else:
                result = execute(step_plan, current, step.matrix, target)
            current = result
        return result

    if not tracer.enabled:
        return run()
    with tracer.span(
        "chain-exec",
        steps=plan.n_steps,
        order=list(plan.order),
        dtype=plan.dtype,
        flops=plan.total_flops,
        scratch_slots=len(plan.scratch_elements),
        caller_out=out is not None,
    ) as span:
        result = run()
        span.set(
            scratch_allocations=pool.allocations - allocations_before,
            scratch_reuses=pool.reuses - reuses_before,
        )
    return result


def ttm_chain(
    x: DenseTensor,
    steps: Sequence["ChainStep | tuple[int, np.ndarray]"],
    backend: Callable[[DenseTensor, np.ndarray, int], DenseTensor] | None = None,
    order: "str | Sequence[int]" = "greedy",
    plan: ChainPlan | None = None,
    out: DenseTensor | None = None,
    pool: ScratchPool | None = None,
) -> DenseTensor:
    """Execute a chain of mode-n products.

    *steps* may be ``ChainStep`` objects or plain ``(mode, matrix)``
    pairs; matrices must match the tensor's dtype (mixed supported float
    widths raise :class:`~repro.util.errors.DtypeError`; non-float input
    is materialized in the tensor's dtype).  *order* is ``"greedy"``
    (default), ``"auto"`` (roofline-aware exact order), ``"given"``,
    ``"optimal"``, or an explicit index sequence.

    Execution takes one of two paths:

    * **fused** (default): the chain is planned as a unit — a
      :class:`ChainPlan` built here, or passed via *plan* — and executed
      through the ping-pong scratch pool, writing the final product into
      *out* when given;
    * **step-at-a-time**: when an explicit *backend* callable is given
      (``backend(x, u, mode) -> DenseTensor``), each product runs through
      it in the chosen order, allocating per step.  This is the honest
      path for baseline backends and remains exactly the pre-fusion
      behavior.
    """
    if not isinstance(x, DenseTensor):
        raise TypeError(
            f"x must be a DenseTensor, got {type(x).__name__}; wrap ndarrays "
            "so the storage layout is explicit"
        )
    steps_t = _coerce_steps(steps, x.data.dtype)
    _check_chain(x.shape, steps_t)

    if backend is not None:
        if plan is not None:
            raise PlanError(
                "pass either a step-at-a-time backend or a fused ChainPlan, "
                "not both"
            )
        if out is not None:
            raise PlanError(
                "out= requires the fused executor; step-at-a-time backends "
                "allocate their own outputs"
            )
        if isinstance(order, str):
            if order == "greedy":
                schedule: Sequence[int] = greedy_order(x.shape, steps_t)
            elif order == "auto":
                schedule = (
                    optimal_order(x.shape, steps_t, cost="roofline",
                                  itemsize=x.data.dtype.itemsize)
                    if len(steps_t) <= MAX_OPTIMAL_STEPS
                    else greedy_order(x.shape, steps_t)
                )
            elif order == "optimal":
                schedule = optimal_order(x.shape, steps_t)
            elif order == "given":
                schedule = range(len(steps_t))
            else:
                raise ShapeError(
                    f"order must be 'auto', 'greedy', 'optimal', 'given', "
                    f"or a permutation, got {order!r}"
                )
        else:
            schedule = [int(i) for i in order]
            if sorted(schedule) != list(range(len(steps_t))):
                raise ShapeError(
                    f"order {schedule!r} is not a permutation of the chain"
                )
        y = x
        for idx in schedule:
            step = steps_t[idx]
            y = backend(y, step.matrix, step.mode)
        return y

    if plan is None:
        plan = plan_chain(
            x.shape, steps_t, x.layout, dtype=x.data.dtype, order=order
        )
    return execute_chain(x, steps_t, plan, out=out, pool=pool)
