"""Estimator-driven tiling: TTM for tensors larger than the memory budget.

The memory pre-flight guard (:mod:`repro.resilience.memory`) was, until
this module, a *bouncer*: a call whose footprint exceeded the budget was
refused (or degraded to a lower-degree plan, which shrinks only the
kernel working set, not the output).  Tiling turns it into a *planner*.
When a TTM's working set exceeds the budget — the normal state of
affairs for memmap-backed tensors, whose whole point is not fitting in
RAM — the :class:`TilingPlanner` partitions the non-contracted modes
into block ranges (the same balanced blocks the distributed simulation
uses, via :func:`repro.distributed.grid.tile_grid`) and the executor
runs the existing plan/kernel machinery tile by tile:

* Mode-``n`` TTM is **embarrassingly tileable** over every mode except
  ``n``: ``Y[b] = X[b] x_n U`` for any block ``b`` of the non-contracted
  index space, so tiles are independent and the union of their outputs
  is exactly ``Y``.  No partial sums, no numerical difference from the
  one-shot product.
* The planner prefers splitting the **outermost storage mode** (axis 0
  for row-major, axis N-1 for column-major): those tiles are contiguous
  *views* of both X and Y, so tiling costs zero staging copies — the
  paper's in-place discipline extended across the budget boundary.  Only
  when the outermost mode alone cannot shrink the footprint enough (or
  is the contracted mode) does it split inner modes, which makes tiles
  strided; those are *packed* through a bounded
  :class:`~repro.core.chain.ScratchPool` (GETT-style: copy a tile into a
  contiguous buffer sized to the budget, multiply, scatter the result).
* Each tile gets its own :class:`~repro.core.plan.TtmPlan` from the
  configured planner (the estimator adapts to the tile's geometry, not
  the full tensor's), cached per distinct tile shape — interior and
  boundary tiles reuse two plans total.

Failure atomicity: every per-tile decision — plan construction, scratch
sizing, the ``alloc-fail`` fault checkpoint — is pre-flighted for *all*
tiles before the first output byte is written, so an execution that
cannot complete leaves the output untouched rather than half-written.
Disk outputs extend this across *process* death: an ``out_path`` result
is staged in ``<out_path>.partial`` and atomically published only when
complete, and ``journal_path=`` adds checksummed per-tile commit records
so a killed job resumes from its last committed tile
(:mod:`repro.resilience.recovery`).

:func:`ttm_stream` is the orthogonal API for tensors that do not exist
yet: it consumes slices produced incrementally along one axis and emits
partial results (``axis != mode``) or accumulates partial contractions
(``axis == mode``, GEMM's k-split with ``beta=1``).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.core.chain import ScratchPool
from repro.core.inttm import default_plan, ttm_inplace
from repro.core.plan import TtmPlan
from repro.distributed.grid import tile_grid
from repro.obs.tracer import active_tracer
from repro.perf.profiler import active_hot_counters
from repro.resilience.faults import active_faults
from repro.resilience.memory import (
    MEM_LIMIT_ENV,
    PREFLIGHT_MIN_BYTES,
    available_bytes,
    pinned_budget,
    plan_footprint_bytes,
)
from repro.resilience.recovery import (
    Journal,
    atomic_save_array,
    committed_units,
    digest_payload,
    file_checksum,
    fingerprint_array,
    fingerprint_tensor,
    is_done,
    memmap_path,
    open_or_resume,
    partial_path,
    publish_file,
    region_checksum,
)
from repro.tensor.dense import DenseTensor, open_memmap_tensor
from repro.tensor.layout import Layout
from repro.util.dtypes import is_supported_dtype
from repro.util.errors import (
    DtypeError,
    RecoveryError,
    ResourceError,
    ShapeError,
)

#: ``planner(shape, mode, j, layout, dtype=...) -> TtmPlan`` — the seam
#: through which tiling reuses whatever planning the caller has (the
#: estimator via :meth:`repro.core.intensli.InTensLi.plan`, or the
#: maximal default below).
Planner = Callable[..., TtmPlan]


def _default_planner(shape, mode, j, layout, dtype=None) -> TtmPlan:
    return default_plan(shape, mode, j, layout, dtype=dtype)


def _tile_count(extent: int, parts: int) -> int:
    return 1 if extent == 0 else min(parts, extent)


def _max_block(extent: int, parts: int) -> int:
    if extent == 0:
        return 0
    return -(-extent // _tile_count(extent, parts))


@dataclass(frozen=True)
class TileSpec:
    """One tile of a tiled TTM: where it reads and where it writes."""

    index: int
    ranges: tuple[tuple[int, int], ...]
    mode: int
    j: int

    @property
    def tile_shape(self) -> tuple[int, ...]:
        return tuple(hi - lo for lo, hi in self.ranges)

    @property
    def out_tile_shape(self) -> tuple[int, ...]:
        shape = list(self.tile_shape)
        shape[self.mode] = self.j
        return tuple(shape)

    @property
    def in_slices(self) -> tuple[slice, ...]:
        return tuple(slice(lo, hi) for lo, hi in self.ranges)

    @property
    def out_slices(self) -> tuple[slice, ...]:
        return tuple(
            slice(0, self.j) if m == self.mode else slice(lo, hi)
            for m, (lo, hi) in enumerate(self.ranges)
        )

    @property
    def size(self) -> int:
        return math.prod(self.tile_shape)


@dataclass(frozen=True)
class TilingPlan:
    """How (and whether) one TTM input is cut into budget-sized tiles.

    ``parts[m]`` is the number of blocks mode *m* is cut into
    (``parts[mode] == 1`` always — the contracted mode is never split).
    ``packed`` records whether tiles need staging copies (inner-mode
    splits) or run as pure views (outermost-mode splits only).
    """

    shape: tuple[int, ...]
    mode: int
    j: int
    layout: Layout
    dtype: str
    parts: tuple[int, ...]
    budget: int | None
    base_footprint_bytes: int
    tile_footprint_bytes: int
    packed: bool
    reason: str

    @property
    def tiled(self) -> bool:
        return any(p > 1 for p in self.parts)

    @property
    def n_tiles(self) -> int:
        return math.prod(
            _tile_count(e, p) for e, p in zip(self.shape, self.parts)
        )

    @property
    def max_tile_shape(self) -> tuple[int, ...]:
        return tuple(_max_block(e, p) for e, p in zip(self.shape, self.parts))

    @property
    def out_shape(self) -> tuple[int, ...]:
        return (
            self.shape[: self.mode] + (self.j,) + self.shape[self.mode + 1 :]
        )

    def tiles(self) -> Iterator[TileSpec]:
        """Every tile in odometer order; their union partitions the input."""
        for index, ranges in enumerate(tile_grid(self.shape, self.parts)):
            yield TileSpec(index=index, ranges=ranges, mode=self.mode, j=self.j)

    @classmethod
    def from_dict(cls, info: dict) -> "TilingPlan":
        """Rebuild a tiling decision from its :meth:`to_dict` form.

        The recovery journal (:mod:`repro.resilience.recovery`) records
        the decision in its header so a resumed job executes the *same*
        geometry that wrote the committed tiles — replanning on resume
        could legally choose different tiles (a different live-memory
        probe) and orphan every committed record.
        """
        return cls(
            shape=tuple(int(s) for s in info["shape"]),
            mode=int(info["mode"]),
            j=int(info["j"]),
            layout=Layout.parse(info["layout"]),
            dtype=str(info["dtype"]),
            parts=tuple(int(p) for p in info["parts"]),
            budget=None if info.get("budget") is None else int(info["budget"]),
            base_footprint_bytes=int(info.get("base_footprint_bytes", 0)),
            tile_footprint_bytes=int(info.get("tile_footprint_bytes", 0)),
            packed=bool(info.get("packed", False)),
            reason=str(info.get("reason", "restored")),
        )

    def to_dict(self) -> dict:
        """JSON-safe form (golden fixtures, the ``tile explain`` CLI)."""
        return {
            "shape": list(self.shape),
            "mode": self.mode,
            "j": self.j,
            "layout": self.layout.name,
            "dtype": self.dtype,
            "parts": list(self.parts),
            "budget": self.budget,
            "base_footprint_bytes": self.base_footprint_bytes,
            "tile_footprint_bytes": self.tile_footprint_bytes,
            "n_tiles": self.n_tiles,
            "max_tile_shape": list(self.max_tile_shape),
            "packed": self.packed,
            "reason": self.reason,
        }

    def describe(self) -> str:
        dims = "x".join(str(s) for s in self.shape)
        cuts = "x".join(str(p) for p in self.parts)
        return (
            f"TilingPlan[{dims} mode={self.mode} J={self.j} parts={cuts} "
            f"tiles={self.n_tiles} {'packed' if self.packed else 'views'} "
            f"tile~{self.tile_footprint_bytes}B budget={self.budget} "
            f"({self.reason})]"
        )


class TilingPlanner:
    """Decide tile geometry so the per-tile footprint fits the budget.

    The planner splits greedily, outermost-storage-mode first: it doubles
    the cut count of the preferred axis until either the footprint fits
    or the axis is fully split, then moves inward.  The footprint of a
    candidate cut is priced with a *real* plan for the maximal tile shape
    (the configured planner — estimator or default — adapts degree,
    batching, and kernel to the tile), so the decision and the execution
    can never disagree about what a tile costs.
    """

    def __init__(self, planner: Planner | None = None) -> None:
        self._planner = planner or _default_planner

    def plan(
        self,
        base_plan: TtmPlan,
        budget: int | None = None,
        out_preallocated: bool = False,
    ) -> TilingPlan:
        """A :class:`TilingPlan` for *base_plan* under *budget* bytes.

        *budget* defaults to a fresh :func:`available_bytes` probe.  When
        the un-tiled footprint already fits (or the budget is unknowable)
        the result is the trivial single-tile plan; when even one-element
        tiles cannot fit, :class:`ResourceError` — the budget is smaller
        than any kernel working set, and tiling cannot help.
        """
        tracer = active_tracer()
        if not tracer.enabled:
            return self._plan_impl(base_plan, budget, out_preallocated)
        with tracer.span(
            "tile-plan",
            shape=list(base_plan.shape),
            mode=base_plan.mode,
            j=base_plan.j,
            layout=base_plan.layout.name,
            dtype=base_plan.dtype,
        ) as span:
            tiling = self._plan_impl(base_plan, budget, out_preallocated)
            span.set(
                parts=list(tiling.parts),
                n_tiles=tiling.n_tiles,
                max_tile_shape=list(tiling.max_tile_shape),
                packed=tiling.packed,
                budget=tiling.budget,
                tile_footprint_bytes=tiling.tile_footprint_bytes,
                reason=tiling.reason,
            )
        return tiling

    def _plan_impl(
        self, base_plan: TtmPlan, budget: int | None, out_preallocated: bool
    ) -> TilingPlan:
        shape = base_plan.shape
        order = len(shape)
        need = plan_footprint_bytes(
            base_plan, allocate_out=not out_preallocated
        )
        if budget is None:
            budget = available_bytes()
        parts = [1] * order

        def finished(reason: str, foot: int, packed: bool) -> TilingPlan:
            return TilingPlan(
                shape=shape,
                mode=base_plan.mode,
                j=base_plan.j,
                layout=base_plan.layout,
                dtype=base_plan.dtype,
                parts=tuple(parts),
                budget=budget,
                base_footprint_bytes=need,
                tile_footprint_bytes=foot,
                packed=packed,
                reason=reason,
            )

        if budget is None or need <= budget or 0 in shape:
            return finished("fits-in-budget", need, False)

        # Split preference: outermost storage mode first (contiguous
        # view tiles, zero staging), inward from there; never the
        # contracted mode.
        if base_plan.layout is Layout.ROW_MAJOR:
            axes = [a for a in range(order) if a != base_plan.mode]
        else:
            axes = [a for a in reversed(range(order)) if a != base_plan.mode]

        while True:
            foot, packed = self._tile_footprint(base_plan, parts)
            if foot <= budget:
                if not any(p > 1 for p in parts):
                    # Transients already fit; the overage was entirely
                    # the output allocation, which tiling cannot shrink —
                    # the executor routes it out of core (or refuses).
                    return finished("output-dominates", foot, packed)
                return finished("tiled-to-budget", foot, packed)
            advanced = False
            for axis in axes:
                if parts[axis] < shape[axis]:
                    parts[axis] = min(shape[axis], parts[axis] * 2)
                    advanced = True
                    break
            if not advanced:
                raise ResourceError(
                    f"TTM for shape {shape} mode {base_plan.mode} "
                    f"J={base_plan.j} cannot be tiled into a {budget}-byte "
                    f"budget: even one-element tiles need ~{foot} bytes "
                    f"(kernel working set + staging); raise ${MEM_LIMIT_ENV}"
                )

    def _tile_footprint(
        self, base_plan: TtmPlan, parts: Sequence[int]
    ) -> tuple[int, bool]:
        """Bytes one tile of the current cut allocates, and whether it packs."""
        shape = base_plan.shape
        tshape = tuple(
            _max_block(e, p) for e, p in zip(shape, parts)
        )
        tile_plan = self._planner(
            tshape, base_plan.mode, base_plan.j, base_plan.layout,
            dtype=base_plan.dtype,
        )
        foot = plan_footprint_bytes(tile_plan, allocate_out=False)
        packed = not view_tileable(
            parts, shape, base_plan.mode, base_plan.layout
        )
        if packed:
            itemsize = base_plan.itemsize
            x_tile = itemsize * math.prod(tshape)
            y_tile = itemsize * base_plan.j * math.prod(
                e for m, e in enumerate(tshape) if m != base_plan.mode
            )
            foot += x_tile + y_tile
        return foot, packed


def view_tileable(
    parts: Sequence[int], shape: Sequence[int], mode: int, layout: Layout
) -> bool:
    """True when this cut's tiles are contiguous views of X *and* Y.

    A slice along only the outermost storage mode (axis 0 row-major,
    axis N-1 column-major) of a contiguous array is itself contiguous,
    and the output — which differs from the input only at *mode* — is
    sliced the same way, so both sides stay views.  Any inner-mode split
    (or a split when the outermost mode is the contracted one) makes the
    tiles strided and forces packing.
    """
    outer = 0 if layout is Layout.ROW_MAJOR else len(shape) - 1
    split = {a for a, p in enumerate(parts) if p > 1}
    return split <= {outer} and (not split or outer != mode)


def tiling_opportunity(
    plan: TtmPlan, x_inmem: bool = True, out_given: bool = False
) -> int | None:
    """The budget this call would exceed, or None on the fast path.

    Mirrors the guard's engagement logic so the hot path pays the same
    (near-zero) cost it already paid: small in-memory calls with no env
    cap and no armed faults skip the probe entirely.  Out-of-core
    operands always probe — that is what the flag is for.
    """
    need = plan_footprint_bytes(plan, allocate_out=not out_given)
    forced = active_faults() is not None or MEM_LIMIT_ENV in os.environ
    if x_inmem and not forced and need < PREFLIGHT_MIN_BYTES:
        return None
    budget = available_bytes()
    if budget is None or need <= budget:
        return None
    return budget


def execute_tiled(
    x: DenseTensor,
    u: np.ndarray,
    tiling: TilingPlan,
    out: DenseTensor | None = None,
    out_path=None,
    planner: Planner | None = None,
    executor: Callable[..., DenseTensor] | None = None,
    check_finite: bool = False,
    journal_path=None,
) -> DenseTensor:
    """Run a TTM tile by tile per *tiling*, bounded by its budget.

    *executor* runs one tile: ``executor(tile_plan, x_tile, u, y_tile)``
    with ``y_tile`` preallocated (defaults to the interpreted
    :func:`~repro.core.inttm.ttm_inplace`; the facade passes its
    configured executor).  The output is, in order of preference, the
    caller's *out*, a fresh memmap at *out_path*, or an in-RAM
    allocation — refused with :class:`ResourceError` when the full
    output alone exceeds the budget and no disk destination was given.

    The budget is **pinned** (:func:`repro.resilience.memory
    .pinned_budget`) for the whole run so per-tile guard probes agree
    with the tiling decision, and every tile is pre-flighted — plans
    built, scratch sized, ``alloc-fail`` checkpoints visited — before
    the first write, so failures leave *out* untouched.

    An *out_path* result lands **complete-or-untouched**: tiles write to
    ``<out_path>.partial``, which is fsync'd and atomically renamed into
    place only after every tile (journal or not) — a file at *out_path*
    is never a torn result.  *journal_path* additionally makes the run
    **resumable across process death** (:mod:`repro.resilience
    .recovery`): each completed tile appends a checksummed commit record,
    and a rerun with the same journal re-verifies committed tiles
    against the landed bytes, skips the ones that match, and recomputes
    the rest.  A journal for a different job (decision digest or input
    fingerprints differ) raises
    :class:`~repro.util.errors.RecoveryError`.
    """
    if not isinstance(x, DenseTensor):
        raise TypeError(
            f"x must be a DenseTensor, got {type(x).__name__}"
        )
    if x.shape != tiling.shape or x.layout is not tiling.layout:
        raise ShapeError(
            f"tiling is for {tiling.shape}/{tiling.layout.name}, tensor is "
            f"{x.shape}/{x.layout.name}"
        )
    np_dtype = np.dtype(tiling.dtype)
    if x.data.dtype != np_dtype:
        raise DtypeError(
            f"tiling is for dtype {tiling.dtype}, tensor is "
            f"{x.data.dtype.name}"
        )
    u = np.asarray(u)
    if u.ndim != 2 or u.shape != (tiling.j, tiling.shape[tiling.mode]):
        raise ShapeError(
            f"U shape {u.shape} != (J={tiling.j}, "
            f"I_n={tiling.shape[tiling.mode]})"
        )
    if planner is None:
        planner = _default_planner
    if executor is None:
        def executor(tile_plan, x_tile, u_arr, y_tile):
            return ttm_inplace(x_tile, u_arr, plan=tile_plan, out=y_tile)

    layout = tiling.layout
    want_flag = "C_CONTIGUOUS" if layout is Layout.ROW_MAJOR else "F_CONTIGUOUS"
    final_path = None if out is not None or out_path is None else str(out_path)
    journal = None
    committed: dict[int, dict] = {}
    if journal_path is not None:
        header = {
            "kind": "ttm-tiled",
            "digest": digest_payload(tiling.to_dict()),
            "decision": tiling.to_dict(),
            "inputs": {"x": fingerprint_tensor(x),
                       "u": fingerprint_array(u)},
            "out_path": final_path,
            "x_path": memmap_path(x),
        }
        u_sidecar = None
        if header["x_path"] is not None and final_path is not None:
            # Both operands reloadable from disk: record a U sidecar so
            # `python -m repro recover resume` can finish the job from
            # the manifest alone, with no caller process.
            u_sidecar = f"{journal_path}.u.npy"
            header["u_path"] = u_sidecar
        journal, records = open_or_resume(journal_path, header)
        committed = committed_units(records, "tile")
        if u_sidecar is not None and not os.path.exists(u_sidecar):
            atomic_save_array(u_sidecar, u)
        if is_done(records) and final_path is not None \
                and os.path.exists(final_path):
            journal.close()
            return open_memmap_tensor(final_path, "r+")
    try:
        out = _execute_tiled_body(
            x, u, tiling, out, final_path, planner, executor,
            np_dtype, layout, want_flag, journal, committed,
        )
        if check_finite:
            from repro.util.validation import check_finite_result

            check_finite_result(out.data, kernel="tiled", context="ttm")
    except BaseException:
        # Leave the journal flushed-but-unfinished: the run is resumable
        # from exactly the committed tiles.
        if journal is not None:
            journal.close()
        raise
    if journal is not None:
        journal.close({"type": "done", "tiles": tiling.n_tiles})
    if final_path is not None:
        publish_file(partial_path(final_path), final_path)
    return out


def _execute_tiled_body(
    x, u, tiling, out, final_path, planner, executor,
    np_dtype, layout, want_flag, journal, committed,
) -> DenseTensor:
    with pinned_budget(tiling.budget) as budget:
        if out is None:
            out_bytes = np_dtype.itemsize * math.prod(tiling.out_shape)
            if final_path is not None:
                part = partial_path(final_path)
                if committed and os.path.exists(part):
                    # A resumed run reopens the partial in place so the
                    # committed tiles it holds can be verified and kept.
                    try:
                        candidate = open_memmap_tensor(part, "r+")
                    except Exception:
                        candidate = None
                    if (candidate is not None
                            and candidate.shape == tiling.out_shape
                            and candidate.layout is layout
                            and candidate.data.dtype == np_dtype):
                        out = candidate
                if out is None:
                    committed.clear()  # stale/missing partial: keep nothing
                    out = open_memmap_tensor(
                        part, "w+", shape=tiling.out_shape,
                        dtype=tiling.dtype, layout=layout,
                    )
            elif budget is not None and out_bytes > budget:
                raise ResourceError(
                    f"tiled TTM output needs {out_bytes} bytes in RAM but "
                    f"the budget is {budget}; pass a memmap-backed out= or "
                    "an out_path= to write the result out of core"
                )
            else:
                out = DenseTensor.empty(
                    tiling.out_shape, layout, dtype=tiling.dtype
                )
        else:
            if out.shape != tiling.out_shape or out.layout is not layout:
                raise ShapeError(
                    f"out is {out.shape}/{out.layout.name}, tiling needs "
                    f"{tiling.out_shape}/{layout.name}"
                )
            if out.data.dtype != np_dtype:
                raise DtypeError(
                    f"out has dtype {out.data.dtype.name}, tiling needs "
                    f"{tiling.dtype}"
                )

        faults = active_faults()
        specs = [spec for spec in tiling.tiles() if spec.size > 0]
        # Pre-flight every tile before writing anything: plan it, size
        # its scratch, and visit the alloc-fail checkpoint, so a failure
        # at tile k surfaces before tile 0 has written a byte.
        tile_plans: dict[tuple[int, ...], TtmPlan] = {}
        for spec in specs:
            tile_plan = tile_plans.get(spec.tile_shape)
            if tile_plan is None:
                tile_plan = planner(
                    spec.tile_shape, tiling.mode, tiling.j, layout,
                    dtype=tiling.dtype,
                )
                tile_plans[spec.tile_shape] = tile_plan
            if faults is not None:
                scratch = np_dtype.itemsize * (
                    spec.size + math.prod(spec.out_tile_shape)
                )
                faults.check(
                    "alloc-fail", site="tile-scratch", tile=spec.index,
                    bytes=scratch,
                )

        tracer = active_tracer()
        skip: set[int] = set()
        if committed:
            # Never trust a commit record: re-checksum what actually
            # landed, skip matches, recompute the rest (torn pages from
            # the crash, bit rot, a truncated partial).
            vspan = (
                tracer.span(
                    "recover-resume", kind="ttm-tiled",
                    committed=len(committed), tiles=len(specs),
                )
                if tracer.enabled
                else None
            )
            try:
                if vspan is not None:
                    vspan.__enter__()
                reverified = 0
                for spec in specs:
                    record = committed.get(spec.index)
                    if record is None:
                        continue
                    reverified += 1
                    crc = region_checksum(out.data[spec.out_slices])
                    if crc == record.get("crc"):
                        skip.add(spec.index)
                if vspan is not None:
                    vspan.set(verified=len(skip),
                              recomputed=reverified - len(skip))
            finally:
                if vspan is not None:
                    vspan.__exit__(None, None, None)
            counters = active_hot_counters()
            if counters is not None:
                counters.count_recovery(resumed=len(skip),
                                        reverified=reverified)

        pool = ScratchPool()
        pack_bytes = 0
        for spec in specs:
            if spec.index in skip:
                continue
            tile_plan = tile_plans[spec.tile_shape]
            x_sub = x.data[spec.in_slices]
            y_sub = out.data[spec.out_slices]
            view_ok = x_sub.flags[want_flag] and y_sub.flags[want_flag]
            span = (
                tracer.span(
                    "tile-exec",
                    tile=spec.index,
                    ranges=[list(r) for r in spec.ranges],
                    tile_shape=list(spec.tile_shape),
                    packed=not view_ok,
                )
                if tracer.enabled
                else None
            )
            try:
                if span is not None:
                    span.__enter__()
                if view_ok:
                    x_tile = DenseTensor._wrap(x_sub, layout)
                    y_tile = DenseTensor._wrap(y_sub, layout)
                    executor(tile_plan, x_tile, u, y_tile)
                    landed = y_sub
                else:
                    before = pool.nbytes
                    x_tile = pool.request(
                        0, spec.tile_shape, layout, np_dtype
                    )
                    y_tile = pool.request(
                        1, spec.out_tile_shape, layout, np_dtype
                    )
                    if faults is not None:
                        faults.observe(
                            "alloc", site="tile-scratch", tile=spec.index,
                            bytes=pool.nbytes - before,
                            pool_nbytes=pool.nbytes,
                            kernel_ws=plan_footprint_bytes(
                                tile_plan, allocate_out=False
                            ),
                        )
                    np.copyto(x_tile.data, x_sub)
                    executor(tile_plan, x_tile, u, y_tile)
                    np.copyto(y_sub, y_tile.data)
                    landed = y_tile.data
                    pack_bytes += x_tile.nbytes + y_tile.nbytes
                if journal is not None:
                    crc = region_checksum(landed)
                    if faults is not None:
                        # Output bytes written, commit record not yet
                        # journaled: the widest crash window a resumed
                        # run must recompute across.
                        faults.check("crash", site="tile-commit",
                                     tile=spec.index)
                    journal.append(
                        {"type": "tile", "index": spec.index, "crc": crc}
                    )
            finally:
                if span is not None:
                    span.__exit__(None, None, None)

        counters = active_hot_counters()
        if counters is not None:
            counters.count_tiled(len(specs) - len(skip), pack_bytes)
        out.flush()
    return out


def ttm_tiled(
    x: DenseTensor,
    u: np.ndarray,
    mode: int,
    budget: int | None = None,
    out: DenseTensor | None = None,
    out_path=None,
    planner: Planner | None = None,
    executor: Callable[..., DenseTensor] | None = None,
    check_finite: bool = False,
    journal_path=None,
) -> DenseTensor:
    """One-call tiled TTM: plan the tiles, then execute them.

    The convenience entry for out-of-core workloads: give it a
    memmap-backed *x*, a *budget* (defaulting to the live
    :func:`available_bytes` probe), and an *out_path*, and the product
    lands on disk without the working set ever exceeding the budget.
    Fits-in-budget inputs degenerate to a single full-tensor "tile" —
    the exact un-tiled execution, no overhead beyond the probe.

    With *journal_path* the run is crash-resumable (see
    :func:`execute_tiled`).  On resume the tiling decision is **adopted
    from the journal**, not replanned: the default budget is a live
    memory probe that legally varies run to run, and a different
    geometry would orphan every committed tile.
    """
    if not isinstance(x, DenseTensor):
        x = DenseTensor(np.asarray(x))
    u = _match_stream_dtype(u, x.data.dtype)
    if planner is None:
        planner = _default_planner
    tiling = None
    if journal_path is not None and os.path.exists(str(journal_path)):
        try:
            header, _ = Journal.read(journal_path)
        except RecoveryError:
            header = None  # garbage journal; plan fresh, executor rewrites
        if header is not None and header.get("kind") == "ttm-tiled":
            candidate = TilingPlan.from_dict(header["decision"])
            if (candidate.shape == x.shape
                    and candidate.mode == int(mode)
                    and candidate.j == int(u.shape[0])
                    and candidate.layout is x.layout
                    and candidate.dtype == x.data.dtype.name):
                tiling = candidate
    if tiling is None:
        base_plan = planner(
            x.shape, mode, int(np.asarray(u).shape[0]), x.layout,
            dtype=x.data.dtype.name,
        )
        tiling = TilingPlanner(planner).plan(
            base_plan, budget=budget, out_preallocated=out is not None
        )
    return execute_tiled(
        x, u, tiling, out=out, out_path=out_path, planner=planner,
        executor=executor, check_finite=check_finite,
        journal_path=journal_path,
    )


def explain_tiling(
    shape: Sequence[int],
    mode: int,
    j: int,
    layout: Layout | str = Layout.ROW_MAJOR,
    dtype=None,
    budget: int | None = None,
    planner: Planner | None = None,
) -> dict:
    """The tiling decision for an input signature, as a JSON-safe dict.

    Backs ``python -m repro tile explain``; raises the same
    :class:`ResourceError` real execution would when the budget is
    un-tileable, so the CLI reports the refusal instead of a geometry.
    """
    layout = Layout.parse(layout)
    if planner is None:
        planner = _default_planner
    dt = np.dtype("float64" if dtype is None else dtype)
    base_plan = planner(tuple(int(s) for s in shape), mode, j, layout,
                        dtype=dt.name)
    tiling = TilingPlanner(planner).plan(base_plan, budget=budget)
    info = tiling.to_dict()
    info["base_plan"] = base_plan.describe()
    info["view_tileable"] = not tiling.packed
    return info


# -- streaming ----------------------------------------------------------------


@dataclass(frozen=True)
class StreamChunk:
    """One emitted partial result: output rows ``lo:hi`` along the axis."""

    lo: int
    hi: int
    data: DenseTensor


def _match_stream_dtype(u, x_dtype: np.dtype) -> np.ndarray:
    """The executor's U dtype policy: preserve, reject floats, lift ints."""
    u = np.asarray(u)
    if u.dtype == x_dtype:
        return u
    if u.dtype.kind == "f" and is_supported_dtype(u.dtype):
        raise DtypeError(
            f"U has dtype {u.dtype.name} but x is {x_dtype.name}; cast U "
            "explicitly instead of relying on a silent conversion"
        )
    return np.asarray(u, dtype=x_dtype)


def ttm_stream(
    slices: Iterable,
    u: np.ndarray,
    mode: int,
    axis: int = 0,
    layout: Layout | str = Layout.ROW_MAJOR,
    planner: Planner | None = None,
    journal_path=None,
) -> Iterator[StreamChunk]:
    """TTM over tensor slices produced incrementally along *axis*.

    Each element of *slices* is a full-extent sub-tensor cut along
    *axis* (a DenseTensor or ndarray; chunk extents may vary).  Two
    regimes, decided by where the stream axis sits relative to the
    contracted mode:

    ``axis != mode``
        The product distributes over the stream axis:
        ``Y[.., lo:hi, ..] = chunk x_mode U``.  One :class:`StreamChunk`
        is yielded per input chunk, as soon as it is computed — the
        streaming-consumer case (results can be written out or reduced
        immediately; memory never holds more than one chunk).

    ``axis == mode``
        Chunks split the *contracted* index, so each contributes a
        partial sum: ``Y += chunk x_mode U[:, lo:hi]`` (a k-split GEMM
        accumulation, exact in float — addition order matches the
        blocked kernel's).  One final chunk carrying the complete result
        is yielded after the stream ends.

    The generator is lazy: nothing is consumed until iterated.  For the
    assembled tensor in one call use :func:`ttm_stream_collect`.

    *journal_path* gives the stream a **resumable cursor**
    (:mod:`repro.resilience.recovery`): each chunk appends a commit
    record once it is safely the consumer's — after the consumer pulls
    the *next* item (``axis != mode``), or after the accumulator sidecar
    ``<journal_path>.accum.npy`` is durably published (``axis ==
    mode``).  Re-invoking with the same journal and an equivalent stream
    skips the committed prefix: already-consumed chunks are *not*
    re-yielded, and accumulation restarts from the verified sidecar (or
    from scratch when the sidecar fails its checksum).  Skipped chunks
    are still validated against the journal's recorded extents —
    a diverging stream raises :class:`~repro.util.errors.RecoveryError`
    rather than splicing two different streams.
    """
    layout = Layout.parse(layout)
    if planner is None:
        planner = _default_planner
    u = np.asarray(u)
    if u.ndim != 2:
        raise ShapeError(f"U must be 2-D (J x I_n), got {u.ndim}-D")
    j = int(u.shape[0])
    counters = active_hot_counters()
    faults = active_faults()

    lo = 0
    accum: DenseTensor | None = None
    rest_shape: tuple[int, ...] | None = None
    saw_chunk = False
    journal = None
    committed: dict[int, dict] = {}
    accum_path = None
    resume_upto = 0
    if journal_path is not None:
        decision = {"mode": int(mode), "axis": int(axis), "j": j,
                    "layout": layout.name}
        header = {
            "kind": "ttm-stream",
            "digest": digest_payload(decision),
            "decision": decision,
            "inputs": {"u": fingerprint_array(u)},
        }
        if axis == mode:
            accum_path = f"{journal_path}.accum.npy"
            header["state_path"] = accum_path
        journal, records = open_or_resume(journal_path, header)
        committed = committed_units(records, "chunk", key="chunk")
        while resume_upto in committed:  # contiguous committed prefix
            resume_upto += 1
        if axis == mode and resume_upto:
            # The cursor is only as good as the accumulator it points
            # into: verify the sidecar against its last commit record,
            # else restart the accumulation from chunk 0.
            if (os.path.exists(accum_path)
                    and file_checksum(accum_path)
                    == committed[resume_upto - 1].get("crc")):
                accum = DenseTensor(np.load(accum_path), layout)
            else:
                resume_upto = 0
        if resume_upto and counters is not None:
            counters.count_recovery(
                resumed=resume_upto,
                reverified=1 if axis == mode else 0,
            )
    n_chunks = 0
    try:
        for i, chunk in enumerate(slices):
            if isinstance(chunk, DenseTensor):
                x_chunk = chunk
            else:
                x_chunk = DenseTensor(np.asarray(chunk), layout)
            if not 0 <= axis < x_chunk.order:
                raise ShapeError(
                    f"stream axis {axis} out of range for "
                    f"order-{x_chunk.order} chunks"
                )
            if not 0 <= mode < x_chunk.order:
                raise ShapeError(
                    f"mode {mode} out of range for order-{x_chunk.order} "
                    "chunks"
                )
            other = tuple(
                e for a, e in enumerate(x_chunk.shape) if a != axis
            )
            if rest_shape is None:
                rest_shape = other
            elif other != rest_shape:
                raise ShapeError(
                    f"stream chunk has non-axis extents {other}, previous "
                    f"chunks had {rest_shape}"
                )
            saw_chunk = True
            u_arr = _match_stream_dtype(u, x_chunk.data.dtype)
            hi = lo + x_chunk.shape[axis]
            n_chunks = i + 1
            if i < resume_upto:
                record = committed[i]
                if record.get("lo") != lo or record.get("hi") != hi:
                    raise RecoveryError(
                        f"journal {journal_path} committed chunk {i} as "
                        f"rows [{record.get('lo')}, {record.get('hi')}), "
                        f"this stream produced [{lo}, {hi}); the streams "
                        "differ — delete the journal to start over"
                    )
                lo = hi
                continue
            if counters is not None:
                counters.count_stream_chunk()
            if axis != mode:
                if u_arr.shape[1] != x_chunk.shape[mode]:
                    raise ShapeError(
                        f"U shape {u_arr.shape} != (J={j}, "
                        f"I_n={x_chunk.shape[mode]})"
                    )
                plan = planner(
                    x_chunk.shape, mode, j, x_chunk.layout,
                    dtype=x_chunk.data.dtype.name,
                )
                y = ttm_inplace(x_chunk, u_arr, plan=plan)
                yield StreamChunk(lo, hi, y)
                if journal is not None:
                    # Reaching here means the consumer pulled the next
                    # item: the chunk is durably theirs, commit it.
                    crc = region_checksum(y.data)
                    if faults is not None:
                        faults.check("crash", site="chunk-commit", chunk=i)
                    journal.append(
                        {"type": "chunk", "chunk": i, "lo": lo, "hi": hi,
                         "crc": crc}
                    )
            else:
                if hi > u_arr.shape[1]:
                    raise ShapeError(
                        f"stream chunks cover {hi} contracted indices, U "
                        f"has only I_n={u_arr.shape[1]} columns"
                    )
                if accum is None:
                    out_shape = (
                        x_chunk.shape[:mode] + (j,)
                        + x_chunk.shape[mode + 1 :]
                    )
                    accum = DenseTensor.zeros(
                        out_shape, x_chunk.layout, dtype=x_chunk.data.dtype
                    )
                # U's column block for this chunk's contracted indices —
                # a strided view, which every kernel tier accepts.
                plan = planner(
                    x_chunk.shape, mode, j, x_chunk.layout,
                    dtype=x_chunk.data.dtype.name,
                )
                ttm_inplace(
                    x_chunk, u_arr[:, lo:hi], plan=plan, out=accum,
                    accumulate=True,
                )
                if journal is not None:
                    # Crash-check *before* the sidecar publish: a kill
                    # here loses exactly this chunk, so resume lands on
                    # cursor i instead of restarting the accumulation.
                    if faults is not None:
                        faults.check("crash", site="chunk-commit", chunk=i)
                    crc = atomic_save_array(accum_path, accum.data)
                    journal.append(
                        {"type": "chunk", "chunk": i, "lo": lo, "hi": hi,
                         "crc": crc}
                    )
            lo = hi
        if not saw_chunk:
            raise ShapeError("ttm_stream received an empty stream of slices")
        if axis == mode:
            if lo != u.shape[1]:
                raise ShapeError(
                    f"stream covered {lo} contracted indices of "
                    f"I_n={u.shape[1]}; partial result withheld (it would "
                    "be silently wrong)"
                )
            if journal is not None:
                journal.close({"type": "done", "chunks": n_chunks})
            yield StreamChunk(0, int(u.shape[0]), accum)
        elif journal is not None:
            journal.close({"type": "done", "chunks": n_chunks})
    finally:
        # An abandoned or failed stream leaves the journal flushed but
        # unfinished — resumable; close() after close(done) is a no-op.
        if journal is not None:
            journal.close()


def ttm_stream_collect(
    slices: Iterable,
    u: np.ndarray,
    mode: int,
    axis: int = 0,
    layout: Layout | str = Layout.ROW_MAJOR,
    planner: Planner | None = None,
) -> DenseTensor:
    """Consume :func:`ttm_stream` and assemble the full product."""
    layout = Layout.parse(layout)
    chunks = list(
        ttm_stream(slices, u, mode, axis=axis, layout=layout, planner=planner)
    )
    if axis == mode:
        return chunks[-1].data
    joined = np.concatenate([c.data.data for c in chunks], axis=axis)
    return DenseTensor(joined, chunks[0].data.layout)
