"""Performance prediction for TTM plans.

Given a GEMM shape profile (measured or synthetic), predict the
throughput of a TTM plan without running it: the inner kernel's rate
comes from the profile at the plan's kernel shape and thread count, and
a per-iteration dispatch overhead models the loop nest.  This is how the
framework can *rank* candidate plans offline — and how figure 9 can be
projected onto the paper's two platforms from their roofline presets.
"""

from __future__ import annotations

from repro.core.plan import TtmPlan
from repro.gemm.bench import GemmProfile
from repro.util.errors import BenchmarkError

#: Python-level per-iteration dispatch cost (view construction + call),
#: measured once on CPython 3.11; only matters for tiny kernels.
LOOP_OVERHEAD_SECONDS = 4.0e-6


def predict_seconds(
    plan: TtmPlan,
    profile: GemmProfile,
    loop_overhead: float = LOOP_OVERHEAD_SECONDS,
) -> float:
    """Predicted wall seconds for one execution of *plan*."""
    m, k, n = plan.kernel_shape
    threads = plan.kernel_threads
    counts = profile.thread_counts()
    if threads not in counts:
        eligible = [t for t in counts if t <= threads]
        threads = max(eligible) if eligible else min(counts)
    gflops = profile.gflops(m, k, n, threads)
    if gflops <= 0.0:
        raise BenchmarkError(
            f"profile predicts non-positive rate for kernel {(m, k, n)}"
        )
    kernel_seconds = plan.kernel_flops / (gflops * 1e9)
    iterations = plan.loop_iterations
    # Loop-level parallelism divides both kernel time and dispatch cost.
    per_iter = kernel_seconds + loop_overhead
    return iterations * per_iter / plan.loop_threads


def predict_gflops(
    plan: TtmPlan,
    profile: GemmProfile,
    loop_overhead: float = LOOP_OVERHEAD_SECONDS,
) -> float:
    """Predicted end-to-end GFLOP/s of *plan*."""
    seconds = predict_seconds(plan, profile, loop_overhead)
    if seconds <= 0.0:
        # Degenerate (zero-flop) plans predict zero time; their rate is
        # meaningless, so report zero rather than dividing by it.
        return 0.0
    return plan.total_flops / seconds / 1e9


def rank_plans(
    plans,
    profile: GemmProfile,
    loop_overhead: float = LOOP_OVERHEAD_SECONDS,
) -> list[tuple[TtmPlan, float]]:
    """(plan, predicted GFLOP/s) sorted best-first."""
    scored = [
        (plan, predict_gflops(plan, profile, loop_overhead))
        for plan in plans
    ]
    return sorted(scored, key=lambda item: -item[1])
