"""Thread allocation: splitting the budget between ``P_L`` and ``P_C``.

The paper's rule (§4.3.1, *Thread allocation*): once ``M_C`` is fixed,
compare the inner kernel's working set against a threshold ``PTH``
(800 KB in their experiments, derived from InTTM runs rather than the
GEMM benchmark).  Small kernels parallelize poorly inside the GEMM, so
the threads go to the loop nest; large kernels amortize intra-GEMM
parallelism, so the threads go to the kernel.  Their experiments found
the best configurations always put *all* threads on one side, so only
those two allocations are considered.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_positive_int

#: The paper's measured PTH value (800 KB).
DEFAULT_PTH_BYTES = 800 * 1024


@dataclass(frozen=True)
class ThreadAllocation:
    """A (P_L, P_C) split of the thread budget."""

    loop_threads: int
    kernel_threads: int

    def __post_init__(self) -> None:
        check_positive_int(self.loop_threads, "loop_threads")
        check_positive_int(self.kernel_threads, "kernel_threads")

    @property
    def total(self) -> int:
        """Worst-case concurrent threads (the two levels multiply)."""
        return self.loop_threads * self.kernel_threads


def allocate_threads(
    kernel_bytes: int,
    max_threads: int,
    loop_iterations: int = 2**63,
    pth_bytes: int = DEFAULT_PTH_BYTES,
) -> ThreadAllocation:
    """Allocate *max_threads* to the loops or to the kernel (never split).

    *loop_iterations* caps ``P_L``: parallelizing a 3-iteration loop nest
    across 8 threads would idle five of them, in which case the surplus
    moves to the kernel side.
    """
    check_positive_int(max_threads, "max_threads")
    if kernel_bytes < 0:
        raise ValueError(f"kernel_bytes must be >= 0, got {kernel_bytes}")
    check_positive_int(pth_bytes, "pth_bytes")
    if loop_iterations < 1:
        raise ValueError(f"loop_iterations must be >= 1, got {loop_iterations}")
    if kernel_bytes < pth_bytes and loop_iterations > 1:
        loop = min(max_threads, loop_iterations)
        # Surplus threads beyond the loop count still help inside kernels.
        kernel = max(1, max_threads // loop) if loop < max_threads else 1
        return ThreadAllocation(loop_threads=loop, kernel_threads=kernel)
    return ThreadAllocation(loop_threads=1, kernel_threads=max_threads)
