"""The INTENSLI facade: benchmark management, plan caching, execution.

``InTensLi`` ties the whole framework together the way figure 7 draws it:

* it owns (or builds) the **MM benchmark** — measured on this host, or a
  deterministic synthetic profile for a platform preset;
* for each new input signature it runs the **parameter estimator** and
  caches the resulting plan;
* it executes plans either through the generic interpreter
  (:func:`repro.core.inttm.ttm_inplace`) or through **generated code**
  (:mod:`repro.core.codegen`).

The top-level :func:`repro.ttm` wraps a module-wide default instance.
"""

from __future__ import annotations

import logging
from typing import Sequence

import numpy as np

from repro.analysis.roofline import CORE_I7_4770K, RooflinePlatform
from repro.core.chain import (
    ChainPlan,
    ChainStep,
    ScratchPool,
    execute_chain,
    plan_chain,
)
from repro.core.codegen import compile_plan
from repro.core.estimator import ParameterEstimator
from repro.core.inttm import ttm_inplace
from repro.core.plan import TtmPlan
from repro.core.threads import DEFAULT_PTH_BYTES
from repro.core.tiling import (
    TilingPlanner,
    execute_tiled,
    tiling_opportunity,
    ttm_stream as _ttm_stream,
)
from repro.gemm.bench import (
    GemmProfile,
    default_shape_grid,
    measure_profile,
    synthetic_profile,
)
from repro.obs.tracer import active_tracer
from repro.resilience.fallback import recoverable
from repro.resilience.faults import active_faults, record_degradation
from repro.resilience.memory import guard_memory
from repro.tensor.dense import DenseTensor
from repro.tensor.layout import Layout
from repro.util.dtypes import DEFAULT_DTYPE, canonical_dtype
from repro.util.errors import DtypeError, ResourceError, ShapeError
from repro.util.validation import check_finite_result, check_positive_int

log = logging.getLogger("repro.core")


def _match_u_dtype(u, x_dtype: np.dtype) -> np.ndarray:
    """Normalize U against the tensor dtype: preserve, reject, or lift.

    Same policy as the executor's input check: a matching float dtype
    passes through untouched (no copy); a *different* supported float
    dtype is rejected (silently changing precision is the bug this PR
    removes); non-float input (ints, lists) is materialized in the
    tensor's dtype — a J x I_n matrix, negligible next to X.
    """
    u = np.asarray(u)
    if u.dtype == x_dtype:
        return u
    if u.dtype.kind == "f":
        from repro.util.dtypes import is_supported_dtype

        if is_supported_dtype(u.dtype):
            raise DtypeError(
                f"U has dtype {u.dtype.name} but x is {x_dtype.name}; cast "
                "U explicitly instead of relying on a silent conversion"
            )
    return np.asarray(u, dtype=x_dtype)


class InTensLi:
    """Input-adaptive, in-place TTM with plan caching.

    Parameters
    ----------
    profile:
        A pre-built GEMM benchmark.  When None, one is created according
        to *benchmark*: ``"synthetic"`` (default; the roofline model of
        *platform* — fast and deterministic) or ``"measure"`` (time real
        kernels on this host; slower, once per process).
    platform:
        Roofline preset used for synthetic profiles.
    max_threads:
        The thread budget for ``P_L``/``P_C``.
    executor:
        ``"generated"`` (default: compile specialized code per plan) or
        ``"interpreted"`` (the generic Algorithm-2 interpreter).
    """

    def __init__(
        self,
        profile: GemmProfile | None = None,
        platform: RooflinePlatform = CORE_I7_4770K,
        max_threads: int = 1,
        benchmark: str = "synthetic",
        benchmark_j: Sequence[int] = (16,),
        pth_bytes: int = DEFAULT_PTH_BYTES,
        kappa: float = 0.8,
        executor: str = "generated",
    ) -> None:
        check_positive_int(max_threads, "max_threads")
        if executor not in ("generated", "interpreted"):
            raise ShapeError(
                f"executor must be 'generated' or 'interpreted', got {executor!r}"
            )
        if profile is None:
            grid = default_shape_grid(m_values=tuple(benchmark_j))
            threads = (1, max_threads) if max_threads > 1 else (1,)
            if benchmark == "synthetic":
                profile = synthetic_profile(grid, platform, threads=threads)
            elif benchmark == "calibrate":
                # Measure this host's roofline once (a GEMM + a STREAM
                # triad), then evaluate the model — far cheaper than the
                # full shape benchmark, host-accurate unlike a preset.
                from repro.perf.calibrate import host_platform

                platform = host_platform()
                profile = synthetic_profile(grid, platform, threads=threads)
            elif benchmark == "measure":
                profile = measure_profile(grid, threads=threads)
            else:
                raise ShapeError(
                    f"benchmark must be 'synthetic', 'calibrate', or "
                    f"'measure', got {benchmark!r}"
                )
        self.profile = profile
        self.platform = platform
        self.max_threads = max_threads
        self.executor = executor
        self.estimator = ParameterEstimator(
            profile=profile,
            max_threads=max_threads,
            pth_bytes=pth_bytes,
            kappa=kappa,
        )
        self._plan_cache: dict[tuple, TtmPlan] = {}
        self._persistent_cache = None
        self._chain_cache: dict[tuple, ChainPlan] = {}
        self._chain_pool = ScratchPool()

    # -- planning -------------------------------------------------------------

    def attach_calibration(self, record, refresh_profile: bool = True) -> None:
        """Adopt a live-machine calibration for all future planning.

        *record* is duck-typed — anything with ``thresholds_for(j,
        max_threads)`` and ``digest()``, in practice a
        :class:`repro.perf.dse.CalibrationRecord` (this facade cannot
        import it directly without inverting the layering); ``None``
        detaches and returns to profile/paper thresholds.  The record's
        fitted PTH replaces the estimator's when present, and with
        *refresh_profile* a fitted roofline (peak + bandwidth) rebuilds
        the synthetic profile so the model-refinement stage predicts
        with calibrated rates too.  Per-process plan caches are cleared
        — stale decisions made under the old thresholds must not
        outlive them (the persistent cache keeps its entries: those are
        *measured* promotions, which calibration refines toward, not
        against).
        """
        self.estimator.calibration = record
        if record is not None:
            pth = getattr(record, "pth_bytes", None)
            if pth:
                self.estimator.pth_bytes = int(pth)
            if refresh_profile:
                platform = None
                platform_of = getattr(record, "platform", None)
                if callable(platform_of):
                    platform = platform_of()
                if platform is not None:
                    grid = sorted({(p.m, p.k, p.n) for p in self.profile.points})
                    threads = self.profile.thread_counts()
                    self.platform = platform
                    self.profile = synthetic_profile(
                        grid, platform, threads=threads
                    )
                    self.estimator.profile = self.profile
                    self.estimator.invalidate_thresholds()
        self._plan_cache.clear()
        self._chain_cache.clear()

    def attach_plan_cache(self, cache) -> None:
        """Route plan lookups through a persistent cache.

        *cache* is duck-typed — anything with ``get_plan(shape, mode, j,
        layout, threads)`` and ``put_plan(..., plan, source)``; in
        practice a :class:`repro.autotune.PlanCache` (this facade cannot
        import it directly without inverting the layering).  While
        attached, the cache replaces the private per-process dict as the
        single source of truth, so decisions survive the process and are
        shared with any :class:`repro.autotune.AutotuneSession` wrapping
        this instance.
        """
        self._persistent_cache = cache

    def plan(
        self,
        shape: Sequence[int],
        mode: int,
        j: int,
        layout: Layout | str = Layout.ROW_MAJOR,
        dtype=None,
    ) -> TtmPlan:
        """The (cached) plan for an input signature (geometry + dtype)."""
        layout = Layout.parse(layout)
        dt = DEFAULT_DTYPE if dtype is None else canonical_dtype(dtype)
        shape_t = tuple(int(s) for s in shape)
        tracer = active_tracer()
        if not tracer.enabled:
            return self._plan_impl(shape_t, mode, j, layout, dt)
        with tracer.span(
            "plan",
            shape=list(shape_t),
            mode=mode,
            j=j,
            layout=layout.name,
            dtype=dt.name,
            threads=self.max_threads,
        ) as span:
            plan = self._plan_impl(shape_t, mode, j, layout, dt)
            span.set(
                strategy=plan.strategy.value,
                degree=plan.degree,
                batch_modes=list(plan.batch_modes),
                loop_threads=plan.loop_threads,
                kernel_threads=plan.kernel_threads,
                kernel=plan.kernel,
            )
        return plan

    def _plan_impl(
        self,
        shape_t: tuple[int, ...],
        mode: int,
        j: int,
        layout: Layout,
        dt: np.dtype,
    ) -> TtmPlan:
        tracer = active_tracer()
        if self._persistent_cache is not None:
            if tracer.enabled:
                with tracer.span("cache-lookup", persistent=True) as span:
                    plan = self._persistent_cache.get_plan(
                        shape_t, mode, j, layout, self.max_threads,
                        dtype=dt.name,
                    )
                    span.set(hit=plan is not None)
            else:
                plan = self._persistent_cache.get_plan(
                    shape_t, mode, j, layout, self.max_threads, dtype=dt.name
                )
            if plan is None:
                plan = self.estimator.estimate(
                    shape_t, mode, j, layout, dtype=dt
                )
                self._persistent_cache.put_plan(
                    shape_t, mode, j, layout, self.max_threads, plan,
                    source="estimator", dtype=dt.name,
                )
            return plan
        key = (shape_t, mode, j, layout, dt.name)
        if tracer.enabled:
            with tracer.span("cache-lookup", persistent=False) as span:
                plan = self._plan_cache.get(key)
                span.set(hit=plan is not None)
        else:
            plan = self._plan_cache.get(key)
        if plan is None:
            plan = self.estimator.estimate(shape_t, mode, j, layout, dtype=dt)
            self._plan_cache[key] = plan
        return plan

    @property
    def cached_plans(self) -> int:
        return len(self._plan_cache)

    @property
    def cached_chain_plans(self) -> int:
        return len(self._chain_cache)

    @property
    def machine_balance(self) -> float:
        """Flops per byte at this platform's roofline ridge point.

        The chain planner weighs a candidate order's intermediate bytes
        against its flops at exactly this ratio, so an order that saves
        traffic wins whenever the chain is bandwidth-bound on this
        machine.
        """
        bandwidth = max(self.platform.bandwidth_gbs, 1e-9)
        return max(self.platform.peak_gflops / bandwidth, 1e-9)

    def plan_chain(
        self,
        shape: Sequence[int],
        steps: Sequence[tuple[int, int]],
        layout: Layout | str = Layout.ROW_MAJOR,
        dtype=None,
        order: "str | Sequence[int]" = "auto",
    ) -> ChainPlan:
        """The (cached) whole-chain plan for a chain signature.

        *steps* is the ``(mode, J)`` sequence.  The chain plan is cached
        under a chain-qualified key — the full step signature, not any
        single product — while each per-step :class:`TtmPlan` flows
        through :meth:`plan` and therefore through the persistent
        autotune cache under its own per-step signature, so chains that
        share steps share tuned decisions.
        """
        layout = Layout.parse(layout)
        dt = DEFAULT_DTYPE if dtype is None else canonical_dtype(dtype)
        shape_t = tuple(int(s) for s in shape)
        sig = tuple((int(m), int(j)) for m, j in steps)
        order_key = order if isinstance(order, str) else tuple(order)
        key = (shape_t, sig, layout, dt.name, self.max_threads, order_key)
        tracer = active_tracer()
        if not tracer.enabled:
            return self._plan_chain_impl(key, shape_t, sig, layout, dt, order)
        with tracer.span(
            "chain-plan",
            shape=list(shape_t),
            steps=[[m, j] for m, j in sig],
            layout=layout.name,
            dtype=dt.name,
            threads=self.max_threads,
        ) as span:
            cached = key in self._chain_cache
            plan = self._plan_chain_impl(key, shape_t, sig, layout, dt, order)
            span.set(
                cache_hit=cached,
                order=list(plan.order),
                flops=plan.total_flops,
                peak_intermediate_bytes=plan.peak_intermediate_bytes,
                scratch_slots=len(plan.scratch_elements),
            )
        return plan

    def _plan_chain_impl(
        self,
        key: tuple,
        shape_t: tuple[int, ...],
        sig: tuple[tuple[int, int], ...],
        layout: Layout,
        dt: np.dtype,
        order: "str | Sequence[int]",
    ) -> ChainPlan:
        plan = self._chain_cache.get(key)
        if plan is None:
            def step_planner(shape, mode, j, lay, dtype=None):
                return self.plan(shape, mode, j, lay, dtype=dtype)

            plan = plan_chain(
                shape_t, sig, layout, dtype=dt, order=order,
                planner=step_planner,
                flops_per_byte=self.machine_balance,
            )
            self._chain_cache[key] = plan
        return plan

    def ttm_chain(
        self,
        x: DenseTensor,
        steps,
        out: DenseTensor | None = None,
        order: "str | Sequence[int]" = "auto",
        transpose: bool = False,
    ) -> DenseTensor:
        """Execute a multi-TTM chain fused: plan once, reuse every buffer.

        *steps* are ``(mode, matrix)`` pairs or :class:`ChainStep`
        objects; with ``transpose=True`` every matrix is ``(I_n, J)``
        and applied transposed (the Tucker projection's convention),
        served by transpose views — no copies.  Intermediates ping-pong
        through this instance's scratch pool (reused across calls, so
        HOOI sweeps converge to zero allocations); the final product is
        written into *out* when given.  Each step runs through
        :meth:`execute`, i.e. the facade's configured executor.
        """
        if not isinstance(x, DenseTensor):
            x = DenseTensor(np.asarray(x))
        steps_t = []
        for s in steps:
            if isinstance(s, ChainStep):
                mode, matrix = s.mode, s.matrix
            else:
                mode, matrix = int(s[0]), s[1]
            matrix = _match_u_dtype(matrix, x.data.dtype)
            if matrix.ndim != 2:
                raise ShapeError(
                    f"chain step at mode {mode} must be 2-D, got "
                    f"{matrix.ndim}-D"
                )
            if transpose:
                matrix = matrix.T  # view; BLAS-legal
            steps_t.append(ChainStep(mode, matrix))
        plan = self.plan_chain(
            x.shape,
            [(s.mode, s.j) for s in steps_t],
            x.layout,
            dtype=x.data.dtype,
            order=order,
        )

        def run_step(step_plan, x_cur, u, target):
            return self.execute(step_plan, x_cur, u, out=target)

        return execute_chain(
            x, steps_t, plan, out=out, pool=self._chain_pool,
            execute=run_step,
        )

    def release_scratch(self) -> int:
        """Drop the chain scratch buffers; returns the bytes freed."""
        return self._chain_pool.release()

    def __call__(self, x, u, mode, **kwargs):
        """Alias of :meth:`ttm` so an instance is itself a TTM backend."""
        return self.ttm(x, u, mode, **kwargs)

    def tune(
        self,
        x: DenseTensor,
        u: np.ndarray,
        mode: int,
        kernels: Sequence[str] = ("blas",),
        min_seconds: float = 0.02,
    ) -> TtmPlan:
        """Exhaustively tune this input on real data and pin the winner.

        Runs the figure-12 sweep (:class:`~repro.core.tuner
        .ExhaustiveTuner`) over every legal configuration, stores the
        measured best in the plan cache (overriding the estimator for
        this signature from now on), and returns it.  Use for hot
        signatures where the one-off sweep cost is worth paying; the
        pinned result survives ``save_plan_cache``.
        """
        from repro.core.tuner import ExhaustiveTuner

        if not isinstance(x, DenseTensor):
            x = DenseTensor(np.asarray(x))
        u = _match_u_dtype(u, x.data.dtype)
        if u.ndim != 2:
            raise ShapeError(f"U must be 2-D (J x I_n), got {u.ndim}-D")
        tuner = ExhaustiveTuner(
            min_seconds=min_seconds,
            executor=self.executor,
        )
        result = tuner.sweep(
            x, u, mode, max_threads=self.max_threads, kernels=kernels
        )
        best = result.best_plan
        self._plan_cache[best.cache_key()] = best
        if self._persistent_cache is not None:
            self._persistent_cache.put_plan(
                best.shape, best.mode, best.j, best.layout,
                self.max_threads, best, source="tuned", dtype=best.dtype,
            )
        return best

    def save_plan_cache(self, path: str) -> int:
        """Persist every cached plan as JSON; returns the count saved."""
        from repro.core.serialize import save_plans

        plans = list(self._plan_cache.values())
        save_plans(plans, path)
        return len(plans)

    def load_plan_cache(self, path: str) -> int:
        """Pre-populate the plan cache from JSON; returns the count loaded.

        Loaded plans take precedence over estimation for their inputs —
        the offline-autotuning deployment mode.
        """
        from repro.core.serialize import load_plans

        plans = load_plans(path)
        for plan in plans:
            self._plan_cache[plan.cache_key()] = plan
        return len(plans)

    # -- execution ------------------------------------------------------------

    def ttm(
        self,
        x: DenseTensor,
        u: np.ndarray,
        mode: int,
        out: DenseTensor | None = None,
        transpose_u: bool = False,
        check_finite: bool = False,
        allow_replan: bool = False,
    ) -> DenseTensor:
        """Compute ``Y = X x_mode U`` with the input-adaptive plan.

        ``transpose_u=True`` computes ``X x_mode U^T`` for *u* of shape
        ``(I_n, J)`` via a transpose view (Tensor Toolbox 't' flag).
        ``check_finite=True`` validates the result for NaN/Inf after
        execution and raises :class:`~repro.util.errors.NumericError`
        naming the kernel when any appear.  ``allow_replan=True`` lets
        the memory pre-flight guard swap in a lower-degree plan (smaller
        kernel working set) instead of raising
        :class:`~repro.util.errors.ResourceError` under memory pressure.
        """
        if not isinstance(x, DenseTensor):
            x = DenseTensor(np.asarray(x))
        u = _match_u_dtype(u, x.data.dtype)
        if u.ndim != 2:
            raise ShapeError(f"U must be 2-D, got {u.ndim}-D")
        if transpose_u:
            u = u.T
        tracer = active_tracer()
        if not tracer.enabled:
            plan = self.plan(
                x.shape, mode, u.shape[0], x.layout, dtype=x.data.dtype
            )
            return self.execute(
                plan, x, u, out=out,
                check_finite=check_finite, allow_replan=allow_replan,
            )
        with tracer.span(
            "ttm",
            shape=list(x.shape),
            mode=mode,
            j=int(u.shape[0]),
            layout=x.layout.name,
            dtype=x.data.dtype.name,
            executor=self.executor,
        ):
            plan = self.plan(
                x.shape, mode, u.shape[0], x.layout, dtype=x.data.dtype
            )
            return self.execute(
                plan, x, u, out=out,
                check_finite=check_finite, allow_replan=allow_replan,
            )

    def execute(
        self,
        plan: TtmPlan,
        x: DenseTensor,
        u: np.ndarray,
        out: DenseTensor | None = None,
        check_finite: bool = False,
        allow_replan: bool = False,
    ) -> DenseTensor:
        """Run a specific plan (bypassing estimation) on real data.

        When the plan's footprint exceeds the memory budget — the normal
        case for memmap-backed tensors under ``$REPRO_MEM_LIMIT`` — the
        call transparently reroutes through the tiling planner
        (:mod:`repro.core.tiling`) and executes tile by tile; callers
        see the same output tensor either way.
        """
        tiled = self._maybe_execute_tiled(plan, x, u, out, check_finite)
        if tiled is not None:
            return tiled
        if self.executor == "interpreted":
            return ttm_inplace(
                x, u, plan=plan, out=out,
                check_finite=check_finite, allow_replan=allow_replan,
            )
        if x.shape != plan.shape or x.layout is not plan.layout:
            raise ShapeError(
                f"plan is for {plan.shape}/{plan.layout.name}, tensor is "
                f"{x.shape}/{x.layout.name}"
            )
        if x.data.dtype != plan.np_dtype:
            raise DtypeError(
                f"plan is for dtype {plan.dtype}, tensor is "
                f"{x.data.dtype.name}; re-plan for the tensor's dtype"
            )
        u = _match_u_dtype(u, plan.np_dtype)
        if u.shape != (plan.j, plan.i_n):
            raise ShapeError(
                f"U shape {u.shape} != (J={plan.j}, I_n={plan.i_n})"
            )
        # Pre-flight the allocation before making it: memory pressure
        # becomes a typed ResourceError (or a lower-degree replan) rather
        # than an OOM kill.  The replanned plan keeps the signature, so
        # the validations above still hold for it.
        plan = guard_memory(
            plan, allocate_out=out is None, allow_replan=allow_replan
        )
        if out is None:
            out = DenseTensor.empty(plan.out_shape, plan.layout,
                                    dtype=plan.dtype)
        elif out.shape != plan.out_shape or out.layout is not plan.layout:
            raise ShapeError(
                f"out is {out.shape}/{out.layout.name}, plan needs "
                f"{plan.out_shape}/{plan.layout.name}"
            )
        elif out.data.dtype != plan.np_dtype:
            raise DtypeError(
                f"out has dtype {out.data.dtype.name}, plan needs "
                f"{plan.dtype}"
            )
        fn = compile_plan(plan)
        tracer = active_tracer()
        try:
            faults = active_faults()
            if faults is not None:
                # Generated code may compile down to a raw np.matmul with
                # no gemm-layer checkpoint inside, so the injection point
                # for the whole compiled kernel sits at its dispatch.
                faults.check("kernel-raise", kernel=plan.kernel,
                             generated=True)
            if tracer.enabled:
                with tracer.span(
                    "execute",
                    executor="generated",
                    kernel=plan.kernel,
                    degree=plan.degree,
                    batch_modes=list(plan.batch_modes),
                    dtype=plan.dtype,
                    flops=plan.total_flops,
                ):
                    fn(x.data, u, out.data)
            else:
                fn(x.data, u, out.data)
        except BaseException as exc:
            # Generated code dispatches kernels directly (no fallback
            # chain inside the compiled loop nest), so a recoverable
            # kernel failure degrades one level up: rerun through the
            # interpreted executor, whose KernelChain retries tier by
            # tier.  Overwrite mode rewrites every element, so a partial
            # write from the failed run cannot survive.
            if not recoverable(exc):
                raise
            log.warning(
                "generated executor failed (%s: %s); degrading to the "
                "interpreted executor", type(exc).__name__, exc,
            )
            record_degradation(
                "kernel_fallbacks",
                degraded=True,
                degraded_from="generated",
                degraded_to="interpreted",
                degraded_error=type(exc).__name__,
            )
            return ttm_inplace(
                x, u, plan=plan, out=out, check_finite=check_finite
            )
        if check_finite:
            check_finite_result(out.data, kernel=plan.kernel, context="ttm")
        return out

    def _maybe_execute_tiled(
        self,
        plan: TtmPlan,
        x: DenseTensor,
        u,
        out: DenseTensor | None,
        check_finite: bool,
    ) -> DenseTensor | None:
        """Reroute through tiling when the plan exceeds the budget.

        Returns None on the fast path (small in-memory call, budget
        unknowable, or the footprint fits) and when tiling cannot help
        (no splittable mode, budget below any kernel working set) — in
        the latter case the classic guard downstream still gets to
        replan or refuse, preserving the pre-tiling contract.
        """
        if not isinstance(x, DenseTensor) or x.shape != plan.shape:
            return None
        budget = tiling_opportunity(
            plan, x_inmem=x.is_inmem, out_given=out is not None
        )
        if budget is None:
            return None

        def planner(shape, mode, j, layout, dtype=None):
            return self.plan(shape, mode, j, layout, dtype=dtype)

        try:
            tiling = TilingPlanner(planner).plan(
                plan, budget=budget, out_preallocated=out is not None
            )
        except ResourceError:
            return None
        if not tiling.tiled:
            return None
        u = _match_u_dtype(u, plan.np_dtype)

        def run_tile(tile_plan, x_tile, u_arr, y_tile):
            return self.execute(tile_plan, x_tile, u_arr, out=y_tile)

        return execute_tiled(
            x, u, tiling, out=out, planner=planner, executor=run_tile,
            check_finite=check_finite,
        )

    def ttm_stream(
        self,
        slices,
        u,
        mode: int,
        axis: int = 0,
        layout: Layout | str = Layout.ROW_MAJOR,
    ):
        """TTM over incrementally produced slices (see
        :func:`repro.core.tiling.ttm_stream`), planned by this facade.

        Chunk plans flow through :meth:`plan` and therefore through the
        estimator and any attached persistent cache — a stream of
        equal-shaped chunks plans exactly once.
        """

        def planner(shape, mode_, j, lay, dtype=None):
            return self.plan(shape, mode_, j, lay, dtype=dtype)

        return _ttm_stream(
            slices, u, mode, axis=axis, layout=layout, planner=planner
        )


_DEFAULT: InTensLi | None = None


def default_intensli() -> InTensLi:
    """The lazily constructed module-wide instance behind :func:`repro.ttm`."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = InTensLi()
    return _DEFAULT


def ttm(
    x: DenseTensor,
    u: np.ndarray,
    mode: int,
    out: DenseTensor | None = None,
    check_finite: bool = False,
    allow_replan: bool = False,
) -> DenseTensor:
    """Input-adaptive in-place TTM using the default :class:`InTensLi`."""
    return default_intensli().ttm(
        x, u, mode, out=out,
        check_finite=check_finite, allow_replan=allow_replan,
    )
