"""Code generation: emit a specialized Python TTM for one plan (§4.3.2).

The paper generates C++/OpenMP; this reproduction generates Python with
the identical structure — a literal nested loop over the loop modes and
an inner kernel call on reshaped *views* — then compiles it with
``compile()``/``exec``.  The value mirrors the paper's: all plan logic is
resolved at generation time, leaving straight-line code whose loop
bounds, index expressions, and reshape extents are literals; the source
is inspectable (``generate_source``) and the compiled callables are
cached per plan.

The generated reshapes are guaranteed to be views: component modes are a
contiguous run of a contiguous tensor (Lemma 4.1), whose strides still
nest after the loop-mode axes are indexed away, and NumPy merges nesting
axes without copying.  A defensive check at first call verifies this.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.plan import Strategy, TtmPlan
from repro.gemm.batched import gemm_batched
from repro.gemm.blocked import gemm_blocked
from repro.gemm.interface import blas_dtype_legal, gemm
from repro.gemm.threaded import gemm_threaded
from repro.parallel.parfor import parfor
from repro.tensor.layout import Layout, element_strides

_CACHE: dict[TtmPlan, object] = {}


def _index_expr(plan: TtmPlan, loop_vars: dict[int, str]) -> str:
    """The subscript selecting one kernel's sub-tensor, e.g. ``i0, :, i1, :``."""
    parts = []
    for axis in range(plan.order):
        if axis in loop_vars:
            parts.append(loop_vars[axis])
        else:
            parts.append(":")
    return ", ".join(parts)


def _kernel_call(plan: TtmPlan) -> str:
    if plan.kernel_threads > 1:
        inner = "auto" if plan.kernel == "threaded" else plan.kernel
        return (
            f"gemm_threaded({{a}}, {{b}}, out={{c}}, "
            f"threads={plan.kernel_threads}, kernel={inner!r})"
        )
    if plan.kernel == "blas" and blas_dtype_legal(plan.np_dtype):
        # Fast path: call BLAS directly, skipping dispatch overhead.
        return "np.matmul({a}, {b}, out={c})"
    if plan.kernel in ("blas", "blocked"):
        # Element types BLAS does not expose (float16) take the blocked
        # kernel — the same capability fallback resolve_kernel applies.
        return "gemm_blocked({a}, {b}, out={c})"
    return f"gemm({{a}}, {{b}}, out={{c}}, kernel={plan.kernel!r})"


def _batched_form(plan: TtmPlan) -> str | None:
    """A single batched-GEMM body when the whole loop nest collapses.

    When the loop modes are exactly the modes *between* the storage start
    and the mode/component block — ``{0..n-1}`` for row-major forward,
    ``{n+1..N-1}`` for column-major backward — the generated loop nest is
    equivalent to one rank-3 batched matmul over contiguous views.  NumPy
    executes the batch loop in C (one BLAS call per slice), which is the
    closest Python analogue of the paper's compiled OpenMP loop nest, so
    this is the preferred single-threaded code shape.
    """
    if plan.loop_threads > 1 or plan.kernel_threads > 1:
        return None
    if plan.kernel not in ("blas", "auto"):
        return None
    if not blas_dtype_legal(plan.np_dtype):
        return None
    if plan.degree == 0:
        return None
    i_n, p, j = plan.i_n, plan.component_extent, plan.j
    loops = plan.loop_modes
    batch = 1
    for m in loops:
        batch *= plan.shape[m]
    forward = plan.strategy is Strategy.FORWARD
    row_major = plan.layout is Layout.ROW_MAJOR
    if forward and row_major and loops == tuple(range(plan.mode)):
        # x viewed as (L, I_n, P) C-order; y as (L, J, P).
        return (
            f"    x3 = x.reshape(({batch}, {i_n}, {p}))\n"
            f"    y3 = y.reshape(({batch}, {j}, {p}))\n"
            f"    np.matmul(u, x3, out=y3)\n"
        )
    if (
        not forward
        and not row_major
        and loops == tuple(range(plan.order - 1, plan.mode, -1))
    ):
        # x viewed as (P, I_n, L) F-order; batch over the trailing axis.
        return (
            f"    ut = u.T\n"
            f"    x3 = x.reshape(({p}, {i_n}, {batch}), order='F')"
            f".transpose(2, 0, 1)\n"
            f"    y3 = y.reshape(({p}, {j}, {batch}), order='F')"
            f".transpose(2, 0, 1)\n"
            f"    np.matmul(x3, ut, out=y3)\n"
        )
    if (
        not forward
        and row_major
        and plan.mode == plan.order - 1
        and sorted(loops) == list(range(plan.degree, plan.mode))
    ):
        # Backward on the last row-major mode: blocks are [comp][loops][mode]
        # in storage order; batch over the (middle) loop block.
        return (
            f"    ut = u.T\n"
            f"    x3 = x.reshape(({p}, {batch}, {i_n}))"
            f".transpose(1, 0, 2)\n"
            f"    y3 = y.reshape(({p}, {batch}, {j}))"
            f".transpose(1, 0, 2)\n"
            f"    np.matmul(x3, ut, out=y3)\n"
        )
    if (
        forward
        and not row_major
        and plan.mode == 0
        and sorted(loops) == list(range(1, plan.order - plan.degree))
    ):
        # Forward on the first column-major mode: blocks are
        # [mode][loops][comp] in index order; batch over the loop block.
        return (
            f"    x3 = x.reshape(({i_n}, {batch}, {p}), order='F')"
            f".transpose(1, 0, 2)\n"
            f"    y3 = y.reshape(({j}, {batch}, {p}), order='F')"
            f".transpose(1, 0, 2)\n"
            f"    np.matmul(u, x3, out=y3)\n"
        )
    return None


def _batch_view_exprs(plan: TtmPlan) -> tuple[str, str, str, str]:
    """Literal ``as_strided`` expressions for the batched operand views.

    Returns ``(x3_expr, y3_expr, x_offset, y_offset)`` where the offset
    strings are linear forms in the outer loop variables (``'0'`` when no
    outer loop remains).  All extents and byte strides are resolved to
    literals at generation time — the generated body does no stride
    arithmetic beyond the offset dot-product.
    """
    forward = plan.strategy is Strategy.FORWARD or plan.degree == 0
    x_strides = element_strides(plan.shape, plan.layout)
    y_strides = element_strides(plan.out_shape, plan.layout)
    outer = plan.outer_loop_modes
    batch = plan.batch_modes
    comp = plan.component_modes
    b = plan.batch_extent
    i_n, p, j = plan.i_n, plan.component_extent, plan.j

    def run_stride(strides, shape, run):
        # Merged-run element stride: the smallest stride of its non-size-1
        # modes (nesting already validated by the plan); 1 for empty runs.
        effective = [m for m in run if shape[m] != 1]
        return min(strides[m] for m in effective) if effective else 1

    itemsize = plan.itemsize

    def views(strides, shape, row_extent):
        bs = run_stride(strides, shape, batch)
        rs = strides[plan.mode]
        cs = run_stride(strides, shape, comp)
        if forward:
            return (
                (b, row_extent, p),
                (bs * itemsize, rs * itemsize, cs * itemsize),
            )
        return (
            (b, p, row_extent),
            (bs * itemsize, cs * itemsize, rs * itemsize),
        )

    x_extents, x_bstrides = views(x_strides, plan.shape, i_n)
    y_extents, y_bstrides = views(y_strides, plan.out_shape, j)
    x_off = " + ".join(
        f"i{m}*{x_strides[m]}" for m in outer
    ) or "0"
    y_off = " + ".join(
        f"i{m}*{y_strides[m]}" for m in outer
    ) or "0"
    x3 = f"_as_strided(xf[{{off}}:], {x_extents}, {x_bstrides})"
    y3 = f"_as_strided(yf[{{off}}:], {y_extents}, {y_bstrides})"
    return x3, y3, x_off, y_off


def _generic_batched_source(plan: TtmPlan) -> list[str] | None:
    """Body lines for the batch-modes execution shape, or None.

    Applies whenever the plan marks a batchable run and the inner kernel
    is the BLAS fast path: the batched run becomes one literal
    ``np.matmul`` over rank-3 strided views, any outer loop-mode residue
    stays a literal (or parfor-driven) nest.  Unlike
    :func:`_batched_form`'s full-collapse reshapes, this handles partial
    collapses — the general engine the interpreter executor also uses.
    """
    if not plan.batch_modes:
        return None
    if plan.kernel_threads > 1 or plan.kernel not in ("blas", "auto"):
        return None
    if not blas_dtype_legal(plan.np_dtype):
        return None
    forward = plan.strategy is Strategy.FORWARD or plan.degree == 0
    x3_t, y3_t, x_off, y_off = _batch_view_exprs(plan)
    call = "np.matmul(u, x3, out=y3)" if forward else "np.matmul(x3, ut, out=y3)"
    indent = "    "
    lines: list[str] = []
    lines.append(f"{indent}xf = x.reshape(-1, order='A')")
    lines.append(f"{indent}yf = y.reshape(-1, order='A')")
    if not forward:
        lines.append(f"{indent}ut = u.T")
    outer = plan.outer_loop_modes
    if not outer:
        lines.append(f"{indent}x3 = " + x3_t.format(off="0"))
        lines.append(f"{indent}y3 = " + y3_t.format(off="0"))
        if plan.loop_threads > 1 and plan.batch_extent > 1:
            # No outer nest to split: chunk the batch run over P_L workers.
            n_chunks = min(plan.loop_threads, plan.batch_extent)
            chunk = math.ceil(plan.batch_extent / n_chunks)
            inner = call.replace("x3", "x3[lo:hi]").replace("y3", "y3[lo:hi]")
            lines.append(f"{indent}def body(_index):")
            lines.append(f"{indent}    lo = _index[0] * {chunk}")
            lines.append(
                f"{indent}    hi = min(lo + {chunk}, {plan.batch_extent})"
            )
            lines.append(f"{indent}    {inner}")
            lines.append(
                f"{indent}parfor(({n_chunks},), body, "
                f"threads={plan.loop_threads})"
            )
        else:
            lines.append(f"{indent}{call}")
        return lines

    body_lines = [
        "x3 = " + x3_t.format(off=x_off),
        "y3 = " + y3_t.format(off=y_off),
        call,
    ]
    loop_vars = {m: f"i{m}" for m in outer}
    if plan.loop_threads > 1:
        var_tuple = ", ".join(loop_vars[m] for m in outer)
        lines.append(f"{indent}def body(_index):")
        if len(outer) > 1:
            lines.append(f"{indent}    {var_tuple} = _index")
        else:
            lines.append(f"{indent}    ({var_tuple},) = _index")
        for bl in body_lines:
            lines.append(f"{indent}    {bl}")
        extents = plan.outer_loop_extents
        lines.append(
            f"{indent}parfor({extents!r}, body, threads={plan.loop_threads})"
        )
    else:
        depth = 0
        for m in outer:
            lines.append(
                f"{indent}{'    ' * depth}for {loop_vars[m]} in "
                f"range({plan.shape[m]}):"
            )
            depth += 1
        for bl in body_lines:
            lines.append(f"{indent}{'    ' * depth}{bl}")
    return lines


def generate_source(plan: TtmPlan, function_name: str = "inttm") -> str:
    """Python source of the specialized TTM for *plan*.

    The emitted function has signature ``(x, u, y)`` over raw ndarrays
    (``x``/``y`` in the plan's layout) and returns ``y``.
    """
    loop_vars = {m: f"i{m}" for m in plan.loop_modes}
    sub_expr = _index_expr(plan, loop_vars)
    i_n, p, j = plan.i_n, plan.component_extent, plan.j
    forward = plan.strategy is Strategy.FORWARD
    f_order = plan.layout is Layout.COL_MAJOR
    order_kw = ", order='F'" if f_order else ""

    if plan.degree == 0:
        x_shape, y_shape = (i_n, 1), (j, 1)
    elif forward:
        x_shape, y_shape = (i_n, p), (j, p)
    else:
        x_shape, y_shape = (p, i_n), (p, j)

    lines = [
        f"def {function_name}(x, u, y):",
        f'    """{plan.describe()}"""',
    ]
    indent = "    "
    batched = _batched_form(plan)
    if batched is not None:
        return (
            "\n".join(lines) + "\n" + batched + f"{indent}return y\n"
        )
    generic = _generic_batched_source(plan)
    if generic is not None:
        return "\n".join(lines + generic + [f"{indent}return y"]) + "\n"
    if not forward and plan.degree > 0:
        lines.append(f"{indent}ut = u.T")

    body_lines = [
        f"x_sub = x[{sub_expr}].reshape({x_shape}{order_kw})",
        f"y_sub = y[{sub_expr}].reshape({y_shape}{order_kw})",
    ]
    if plan.degree == 0 or forward:
        call = _kernel_call(plan).format(a="u", b="x_sub", c="y_sub")
    else:
        call = _kernel_call(plan).format(a="x_sub", b="ut", c="y_sub")
    body_lines.append(call)

    if plan.loop_threads > 1 and plan.loop_modes:
        # Parallel driver: collapsed index space chunked over P_L threads.
        var_tuple = ", ".join(loop_vars[m] for m in plan.loop_modes)
        lines.append(f"{indent}def body(_index):")
        if len(plan.loop_modes) > 1:
            lines.append(f"{indent}    {var_tuple} = _index")
        else:
            lines.append(f"{indent}    ({var_tuple},) = _index")
        for bl in body_lines:
            lines.append(f"{indent}    {bl}")
        extents = plan.loop_extents
        lines.append(
            f"{indent}parfor({extents!r}, body, threads={plan.loop_threads})"
        )
    else:
        depth = 0
        for m in plan.loop_modes:
            lines.append(
                f"{indent}{'    ' * depth}for {loop_vars[m]} in "
                f"range({plan.shape[m]}):"
            )
            depth += 1
        for bl in body_lines:
            lines.append(f"{indent}{'    ' * depth}{bl}")
    lines.append(f"{indent}return y")
    return "\n".join(lines) + "\n"


def compile_plan(plan: TtmPlan):
    """Compile (and cache) the specialized TTM callable for *plan*.

    The returned function takes ``(x_data, u, y_data)`` ndarrays and
    writes through ``y_data``.
    """
    cached = _CACHE.get(plan)
    if cached is not None:
        return cached
    source = generate_source(plan)
    namespace = {
        "np": np,
        "_as_strided": np.lib.stride_tricks.as_strided,
        "gemm": gemm,
        "gemm_batched": gemm_batched,
        "gemm_blocked": gemm_blocked,
        "gemm_threaded": gemm_threaded,
        "parfor": parfor,
    }
    code = compile(source, f"<inttm:{hash(plan) & 0xFFFFFFFF:08x}>", "exec")
    exec(code, namespace)
    fn = namespace["inttm"]
    fn.__source__ = source
    _CACHE[plan] = fn
    return fn


def clear_cache() -> None:
    """Drop all compiled plans (mostly for tests)."""
    _CACHE.clear()
