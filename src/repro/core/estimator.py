"""The parameter estimator: inputs -> plan (figure 7's middle stage).

Given the input description (tensor geometry, layout, mode, J) plus the
environment (a GEMM shape benchmark, a thread budget), the estimator
fixes every free parameter of Algorithm 2:

1. strategy  — by layout (forward for row-major, backward for
   column-major), keeping the inner kernel unit-strided;
2. degree / ``M_C`` — via the MSTH/MLTH working-set window derived from
   the benchmark (figure 8's procedure);
3. ``M_L`` and the loop order — the remaining modes, iterated in
   increasing index order for row-major (decreasing for column-major) so
   consecutive iterations touch nearby storage;
4. ``P_L`` / ``P_C`` — by the PTH rule;
5. the kernel — ``blas`` when the sub-tensor views are BLAS-legal
   (always true for the natural strategy), ``blocked`` otherwise.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.core.partition import (
    PAPER_THRESHOLDS,
    Thresholds,
    available_modes_for_strategy,
    choose_batch_modes,
    choose_degree,
    component_modes_for_strategy,
    derive_thresholds,
    kernel_working_set_bytes,
    strategy_for,
)
from repro.core.plan import TtmPlan
from repro.core.threads import DEFAULT_PTH_BYTES, allocate_threads
from repro.gemm.bench import GemmProfile
from repro.gemm.interface import kernel_supports
from repro.obs.tracer import active_tracer
from repro.perf.profiler import active_hot_counters
from repro.tensor.layout import Layout
from repro.util.dtypes import DEFAULT_DTYPE, canonical_dtype
from repro.util.validation import check_mode, check_positive_int


class ParameterEstimator:
    """Turns (input geometry, environment) into a :class:`TtmPlan`.

    Parameters
    ----------
    profile:
        GEMM shape benchmark; when given, MSTH/MLTH are derived from it
        per J on demand (and cached).  When None, the paper's measured
        thresholds (1.04 MB / 7.04 MB) are used.
    max_threads:
        The thread budget shared by ``P_L`` and ``P_C``.
    pth_bytes:
        The loop-vs-kernel allocation threshold (paper: 800 KB).
    kappa:
        Fraction of peak defining the threshold window (paper: 0.8).
    calibration:
        A live-machine fit (:class:`repro.perf.dse.CalibrationRecord`,
        or anything exposing ``thresholds_for(j, max_threads)`` and
        ``digest()``).  When set, its fitted MSTH/MLTH windows take
        precedence over both the profile and the paper defaults; those
        remain the fallback whenever the record has nothing for a query.
    """

    def __init__(
        self,
        profile: GemmProfile | None = None,
        max_threads: int = 1,
        pth_bytes: int = DEFAULT_PTH_BYTES,
        kappa: float = 0.8,
        refine_with_model: bool = True,
        calibration=None,
    ) -> None:
        check_positive_int(max_threads, "max_threads")
        check_positive_int(pth_bytes, "pth_bytes")
        self.profile = profile
        self.max_threads = max_threads
        self.pth_bytes = pth_bytes
        self.kappa = kappa
        self.refine_with_model = refine_with_model
        self._calibration = calibration
        self._threshold_cache: dict[tuple, Thresholds] = {}

    # -- threshold derivation -------------------------------------------------

    @property
    def calibration(self):
        """The attached live-machine fit (None = profile/paper only)."""
        return self._calibration

    @calibration.setter
    def calibration(self, record) -> None:
        # Swapping the fit invalidates every cached window: a key alone
        # cannot distinguish "cached before the record changed in place".
        self._calibration = record
        self._threshold_cache.clear()

    def invalidate_thresholds(self) -> None:
        """Drop every cached window (call after mutating ``profile``)."""
        self._threshold_cache.clear()

    def _calibration_token(self) -> str | None:
        """A value identifying the current calibration for cache keys.

        Records are content-addressed via ``digest()`` so two different
        fits never alias; an object without one falls back to ``id``
        (still correct under the setter's cache clear).
        """
        if self._calibration is None:
            return None
        digest = getattr(self._calibration, "digest", None)
        return digest() if callable(digest) else f"id:{id(self._calibration)}"

    def thresholds_for(self, j: int) -> Thresholds:
        """MSTH/MLTH for output rank *j*.

        Precedence: calibrated fit (when attached and it has a window
        for this thread budget) > profile-derived > paper defaults.
        """
        check_positive_int(j, "j")
        key = (j, self.max_threads, self._calibration_token())
        cached = self._threshold_cache.get(key)
        if cached is not None:
            return cached
        thresholds: Thresholds | None = None
        if self._calibration is not None:
            thresholds = self._calibration.thresholds_for(j, self.max_threads)
        if thresholds is None:
            if self.profile is None:
                return PAPER_THRESHOLDS
            threads = self._profile_threads()
            m_values = sorted({p.m for p in self.profile.points})
            # Use the profiled m closest to J (the benchmark fixes m to a
            # typical low-rank J; exact match is the common case).
            m_probe = min(m_values, key=lambda m: abs(m - j))
            thresholds = derive_thresholds(
                self.profile, m_probe, threads=threads, kappa=self.kappa
            )
        self._threshold_cache[key] = thresholds
        return thresholds

    def _profile_threads(self) -> int:
        """The profiled thread count to derive thresholds at.

        The largest profiled count within ``max_threads`` — thresholds
        measured at a concurrency we can actually run.  When *every*
        profiled count exceeds the budget the smallest one is used
        anyway (closest available evidence beats refusing to plan); the
        resulting window is then an extrapolation, which is the
        documented, asserted behavior rather than an accident.
        """
        counts = self.profile.thread_counts()
        eligible = [t for t in counts if t <= self.max_threads]
        return max(eligible) if eligible else min(counts)

    # -- estimation -----------------------------------------------------------

    def estimate(
        self,
        shape: Sequence[int],
        mode: int,
        j: int,
        layout: Layout | str = Layout.ROW_MAJOR,
        dtype=None,
    ) -> TtmPlan:
        """The near-optimal plan for one TTM input.

        *dtype* is the element type the plan will execute (default
        float64, the paper's setting).  It scales every byte threshold —
        MSTH/MLTH degree selection and the PTH thread split — and decides
        the kernel: element types real BLAS does not expose route to the
        blocked kernel up front instead of warning at dispatch time.
        """
        counters = active_hot_counters()
        if counters is not None:
            # Planning cost is part of the dispatch overhead the hot-path
            # counters exist to expose: a cache layer that works shows
            # this staying flat while TTM calls accumulate.
            counters.count_estimate()
        layout = Layout.parse(layout)
        dt = DEFAULT_DTYPE if dtype is None else canonical_dtype(dtype)
        shape_t = tuple(int(s) for s in shape)
        order = len(shape_t)
        mode = check_mode(mode, order)
        check_positive_int(j, "j")

        tracer = active_tracer()
        if tracer.enabled:
            with tracer.span(
                "partition",
                shape=list(shape_t),
                mode=mode,
                j=j,
                layout=layout.name,
                dtype=dt.name,
                threads=self.max_threads,
            ) as span:
                plan = self._estimate_impl(shape_t, order, mode, j, layout, dt)
                span.set(
                    strategy=plan.strategy.value,
                    degree=plan.degree,
                    batch_modes=list(plan.batch_modes),
                    loop_threads=plan.loop_threads,
                    kernel_threads=plan.kernel_threads,
                    kernel=plan.kernel,
                )
            return plan
        return self._estimate_impl(shape_t, order, mode, j, layout, dt)

    def _estimate_impl(
        self,
        shape_t: tuple[int, ...],
        order: int,
        mode: int,
        j: int,
        layout: Layout,
        dt,
    ) -> TtmPlan:
        strategy = strategy_for(order, mode, layout)
        thresholds = self.thresholds_for(j)
        degree = choose_degree(
            shape_t,
            mode,
            layout,
            j,
            thresholds,
            strategy=strategy,
            itemsize=dt.itemsize,
        )
        comp = component_modes_for_strategy(order, mode, strategy, degree)
        loops = self._loop_order(order, mode, comp, layout)

        kernel_bytes = kernel_working_set_bytes(
            shape_t, mode, j, comp, itemsize=dt.itemsize
        )
        loop_iters = 1
        for m in loops:
            loop_iters *= shape_t[m]
        alloc = allocate_threads(
            kernel_bytes,
            self.max_threads,
            # Zero-extent tensors have zero iterations; plan the (empty)
            # nest as if it ran once so the thread split stays valid.
            loop_iterations=max(1, loop_iters),
            pth_bytes=self.pth_bytes,
        )
        plan = TtmPlan(
            shape=shape_t,
            mode=mode,
            j=j,
            layout=layout,
            strategy=strategy,
            component_modes=comp,
            loop_modes=loops,
            loop_threads=alloc.loop_threads,
            kernel_threads=alloc.kernel_threads,
            kernel="blas",
            batch_modes=choose_batch_modes(shape_t, layout, mode, j, loops),
            dtype=dt.name,
        )
        if not plan.views_blas_legal or not kernel_supports("blas", dt):
            # Figure 7's dispatch: general-stride views need the BLIS-role
            # kernel, and so do element types BLAS GEMM does not expose
            # (float16).  Choosing blocked here keeps the dispatch-time
            # capability fallback a safety net, not the normal path.
            plan = dataclasses.replace(plan, kernel="blocked")
        if (
            self.refine_with_model
            and self.profile is not None
            and plan.total_flops > 0
        ):
            # Zero-extent inputs do no work; every degree predicts zero
            # seconds, so there is nothing for the model to rank.
            plan = self._refine(plan)
        return plan

    def _refine(self, plan: TtmPlan) -> TtmPlan:
        """Cross-check the threshold choice against the throughput model.

        The paper's thresholds assume negligible per-iteration loop cost
        (true of its generated C++); a Python loop nest is not free, so
        degrees whose kernels are individually fine can still lose to a
        coarser merge.  The model of :mod:`repro.core.predict` — driven
        by the same MM benchmark — prices that in; the refinement keeps
        the threshold plan unless another degree predicts strictly
        faster.
        """
        from repro.core.predict import predict_gflops

        order, mode = plan.order, plan.mode
        available = available_modes_for_strategy(order, mode, plan.strategy)
        # Trust the model only within a margin of the profiled shape
        # range: near the boundary the nearest-neighbour lookup acts as a
        # plateau assumption (the grid's largest shapes already reflect
        # the out-of-cache decline), but far beyond it the cliff is
        # invisible and the prediction would be wildly optimistic.
        max_m = max(p.m for p in self.profile.points)
        max_k = max(p.k for p in self.profile.points)
        max_n = max(p.n for p in self.profile.points)
        margin = 8

        def in_range(candidate: TtmPlan) -> bool:
            m, k, n = candidate.kernel_shape
            return (
                m <= margin * max_m
                and k <= margin * max_k
                and n <= margin * max_n
            )

        best_plan = plan
        best_rate = (
            predict_gflops(plan, self.profile) if in_range(plan) else None
        )
        for degree in range(1, len(available) + 1):
            if degree == plan.degree:
                continue
            comp = component_modes_for_strategy(
                order, mode, plan.strategy, degree
            )
            loops = self._loop_order(order, mode, comp, plan.layout)
            kernel_bytes = kernel_working_set_bytes(
                plan.shape, mode, plan.j, comp, itemsize=plan.itemsize
            )
            loop_iters = 1
            for m in loops:
                loop_iters *= plan.shape[m]
            alloc = allocate_threads(
                kernel_bytes,
                self.max_threads,
                loop_iterations=max(1, loop_iters),
                pth_bytes=self.pth_bytes,
            )
            candidate = dataclasses.replace(
                plan,
                component_modes=comp,
                loop_modes=loops,
                loop_threads=alloc.loop_threads,
                kernel_threads=alloc.kernel_threads,
                batch_modes=choose_batch_modes(
                    plan.shape, plan.layout, mode, plan.j, loops
                ),
            )
            if not in_range(candidate):
                continue
            rate = predict_gflops(candidate, self.profile)
            if best_rate is None or rate > best_rate:
                best_plan, best_rate = candidate, rate
        return best_plan

    @staticmethod
    def _loop_order(
        order: int, mode: int, comp: Sequence[int], layout: Layout
    ) -> tuple[int, ...]:
        remaining = [m for m in range(order) if m != mode and m not in comp]
        # Row-major: increasing index order walks storage monotonically;
        # column-major: the mirror image.
        if layout is Layout.COL_MAJOR:
            remaining.reverse()
        return tuple(remaining)
