"""Plan (de)serialization: persisting offline-autotuning decisions.

The paper's framework is an *offline* autotuner: the GEMM benchmark and
the derived configuration are computed once per machine and reused.
:class:`~repro.gemm.bench.GemmProfile` already serializes; this module
adds JSON round-tripping for plans and for whole plan caches, so a
deployment can pin its tuned configurations in version control and skip
estimation at run time.

Plan-cache files carry a versioned header — ``{"schema": N,
"fingerprint": ...}`` — so readers can tell three failure modes apart:
a file written under an incompatible schema, a file autotuned on a
different machine (see :meth:`repro.perf.machine.MachineInfo
.fingerprint`), and plain corruption.  The persistent autotune store
(:mod:`repro.autotune.store`) builds on the same header helpers.
Legacy headerless files (a bare JSON list of plans) still load.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.core.plan import Strategy, TtmPlan
from repro.tensor.layout import Layout
from repro.util.errors import (
    FingerprintMismatchError,
    PlanError,
    SchemaMismatchError,
    StoreCorruptError,
)

#: Version of the on-disk plan/cache format.  Bump when the envelope or
#: the per-plan payload changes incompatibly; readers reject other
#: versions with :class:`SchemaMismatchError` rather than guessing.
#: Version 3 added the plan dtype (and dtype-qualified cache keys):
#: pre-dtype stores planned every signature as float64, so their entries
#: would shadow float32 plans — readers invalidate them wholesale.
#: Version 4 added the optional ``calibration`` section (fitted
#: thresholds + raw DSE observations, :mod:`repro.perf.dse`): entries
#: cached under uncalibrated thresholds may disagree with calibrated
#: planning, so v3 stores invalidate wholesale too.
SCHEMA_VERSION = 4


def plan_to_dict(plan: TtmPlan) -> dict:
    """A JSON-safe dict capturing every plan field."""
    return {
        "shape": list(plan.shape),
        "mode": plan.mode,
        "j": plan.j,
        "layout": plan.layout.name,
        "strategy": plan.strategy.value,
        "component_modes": list(plan.component_modes),
        "loop_modes": list(plan.loop_modes),
        "loop_threads": plan.loop_threads,
        "kernel_threads": plan.kernel_threads,
        "kernel": plan.kernel,
        "batch_modes": list(plan.batch_modes),
        "dtype": plan.dtype,
    }


def plan_from_dict(payload: dict) -> TtmPlan:
    """Reconstruct (and fully re-validate) a plan from its dict form."""
    try:
        return TtmPlan(
            shape=tuple(int(s) for s in payload["shape"]),
            mode=int(payload["mode"]),
            j=int(payload["j"]),
            layout=Layout[payload["layout"]],
            strategy=Strategy(payload["strategy"]),
            component_modes=tuple(int(m) for m in payload["component_modes"]),
            loop_modes=tuple(int(m) for m in payload["loop_modes"]),
            loop_threads=int(payload["loop_threads"]),
            kernel_threads=int(payload["kernel_threads"]),
            kernel=str(payload["kernel"]),
            # Absent in caches written before batched execution existed;
            # such plans simply run the per-iteration path.
            batch_modes=tuple(int(m) for m in payload.get("batch_modes", ())),
            # Absent in pre-dtype payloads (schema <= 2, all float64).
            dtype=str(payload.get("dtype", "float64")),
        )
    except KeyError as exc:
        raise PlanError(f"plan payload missing field {exc}") from exc


def cache_header(fingerprint: str | None = None) -> dict:
    """The envelope header every versioned cache file leads with."""
    return {"schema": SCHEMA_VERSION, "fingerprint": fingerprint}


def check_cache_header(
    payload: dict, expected_fingerprint: str | None = None
) -> None:
    """Validate a cache envelope's schema version and machine stamp.

    Raises :class:`StoreCorruptError` for a malformed header,
    :class:`SchemaMismatchError` for a different schema version, and
    :class:`FingerprintMismatchError` when both the file and the caller
    declare fingerprints and they disagree.  Files written without a
    fingerprint (``None``) are accepted anywhere — the portable,
    geometry-only deployment mode.
    """
    if not isinstance(payload, dict):
        raise StoreCorruptError(
            f"cache payload must be an object, got {type(payload).__name__}"
        )
    schema = payload.get("schema")
    if not isinstance(schema, int):
        raise StoreCorruptError(f"cache header has no integer schema: {schema!r}")
    if schema != SCHEMA_VERSION:
        raise SchemaMismatchError(
            f"cache schema {schema} != supported {SCHEMA_VERSION}"
        )
    found = payload.get("fingerprint")
    if (
        expected_fingerprint is not None
        and found is not None
        and found != expected_fingerprint
    ):
        raise FingerprintMismatchError(
            f"cache fingerprint {found!r} does not match this machine "
            f"({expected_fingerprint!r})"
        )


def plans_to_json(
    plans: Iterable[TtmPlan], fingerprint: str | None = None
) -> str:
    """Serialize a collection of plans (e.g. an InTensLi cache)."""
    payload = cache_header(fingerprint)
    payload["plans"] = [plan_to_dict(p) for p in plans]
    return json.dumps(payload, indent=2)


def plans_from_json(
    text: str, expected_fingerprint: str | None = None
) -> list[TtmPlan]:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise StoreCorruptError(f"plan cache is not valid JSON: {exc}") from exc
    if isinstance(payload, list):
        # Legacy schema-1 files: a bare list, no header, no fingerprint.
        return [plan_from_dict(p) for p in payload]
    if not isinstance(payload, dict):
        raise PlanError("plan cache JSON must be a list of plan objects")
    check_cache_header(payload, expected_fingerprint)
    plans = payload.get("plans")
    if not isinstance(plans, list):
        raise PlanError("plan cache JSON must be a list of plan objects")
    return [plan_from_dict(p) for p in plans]


def save_plans(
    plans: Iterable[TtmPlan], path: str, fingerprint: str | None = None
) -> None:
    with open(path, "w") as fh:
        fh.write(plans_to_json(plans, fingerprint=fingerprint))


def load_plans(
    path: str, expected_fingerprint: str | None = None
) -> list[TtmPlan]:
    with open(path) as fh:
        return plans_from_json(fh.read(), expected_fingerprint)
