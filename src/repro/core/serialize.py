"""Plan (de)serialization: persisting offline-autotuning decisions.

The paper's framework is an *offline* autotuner: the GEMM benchmark and
the derived configuration are computed once per machine and reused.
:class:`~repro.gemm.bench.GemmProfile` already serializes; this module
adds JSON round-tripping for plans and for whole plan caches, so a
deployment can pin its tuned configurations in version control and skip
estimation at run time.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.core.plan import Strategy, TtmPlan
from repro.tensor.layout import Layout
from repro.util.errors import PlanError


def plan_to_dict(plan: TtmPlan) -> dict:
    """A JSON-safe dict capturing every plan field."""
    return {
        "shape": list(plan.shape),
        "mode": plan.mode,
        "j": plan.j,
        "layout": plan.layout.name,
        "strategy": plan.strategy.value,
        "component_modes": list(plan.component_modes),
        "loop_modes": list(plan.loop_modes),
        "loop_threads": plan.loop_threads,
        "kernel_threads": plan.kernel_threads,
        "kernel": plan.kernel,
        "batch_modes": list(plan.batch_modes),
    }


def plan_from_dict(payload: dict) -> TtmPlan:
    """Reconstruct (and fully re-validate) a plan from its dict form."""
    try:
        return TtmPlan(
            shape=tuple(int(s) for s in payload["shape"]),
            mode=int(payload["mode"]),
            j=int(payload["j"]),
            layout=Layout[payload["layout"]],
            strategy=Strategy(payload["strategy"]),
            component_modes=tuple(int(m) for m in payload["component_modes"]),
            loop_modes=tuple(int(m) for m in payload["loop_modes"]),
            loop_threads=int(payload["loop_threads"]),
            kernel_threads=int(payload["kernel_threads"]),
            kernel=str(payload["kernel"]),
            # Absent in caches written before batched execution existed;
            # such plans simply run the per-iteration path.
            batch_modes=tuple(int(m) for m in payload.get("batch_modes", ())),
        )
    except KeyError as exc:
        raise PlanError(f"plan payload missing field {exc}") from exc


def plans_to_json(plans: Iterable[TtmPlan]) -> str:
    """Serialize a collection of plans (e.g. an InTensLi cache)."""
    return json.dumps([plan_to_dict(p) for p in plans], indent=2)


def plans_from_json(text: str) -> list[TtmPlan]:
    payload = json.loads(text)
    if not isinstance(payload, list):
        raise PlanError("plan cache JSON must be a list of plan objects")
    return [plan_from_dict(p) for p in payload]


def save_plans(plans: Iterable[TtmPlan], path: str) -> None:
    with open(path, "w") as fh:
        fh.write(plans_to_json(plans))


def load_plans(path: str) -> list[TtmPlan]:
    with open(path) as fh:
        return plans_from_json(fh.read())
