"""Plan explanation: why the estimator chose what it chose.

Autotuners earn trust by showing their work.  :func:`explain_plan`
renders a plan's decision trail in the terms of the paper's §4.3.1 —
which strategy and why, how the degree relates to the MSTH/MLTH window,
which side of PTH the kernel fell on, and whether the views are
BLAS-legal — as plain text for the CLI (``repro plan --explain``) and
for logging in deployments.
"""

from __future__ import annotations

import numpy as np

from repro.core.partition import Thresholds
from repro.core.plan import Strategy, TtmPlan
from repro.core.threads import DEFAULT_PTH_BYTES
from repro.tensor.layout import Layout
from repro.util.formatting import format_bytes


def explain_plan(
    plan: TtmPlan,
    thresholds: Thresholds | None = None,
    pth_bytes: int = DEFAULT_PTH_BYTES,
) -> str:
    """A multi-line, human-readable rationale for *plan*."""
    lines = [plan.describe(), ""]

    # -- strategy --------------------------------------------------------------
    natural = Strategy.natural_for(plan.layout)
    layout_name = (
        "row-major" if plan.layout is Layout.ROW_MAJOR else "column-major"
    )
    if plan.strategy is natural:
        side = "right" if plan.strategy is Strategy.FORWARD else "left"
        lines.append(
            f"strategy: {plan.strategy.value} — the natural choice for "
            f"{layout_name} storage; merging modes to the {side} of mode "
            f"{plan.mode} keeps the unit-stride dimension inside the kernel."
        )
    else:
        lines.append(
            f"strategy: {plan.strategy.value} (fallback) — mode {plan.mode} "
            f"has no {natural.value}-side modes in {layout_name} storage; "
            "the opposite side is used, and the contracted mode itself "
            "carries the unit stride, so the kernel stays BLAS-legal."
        )

    # -- degree ------------------------------------------------------------------
    ws = plan.kernel_working_set_bytes
    m, k, n = plan.kernel_shape
    degree_line = (
        f"degree: {plan.degree} — inner GEMM is ({m} x {k}) @ ({k} x {n}), "
        f"working set {format_bytes(ws)}"
    )
    if thresholds is not None:
        if thresholds.contains(ws):
            degree_line += (
                f"; inside the [MSTH={format_bytes(thresholds.msth_bytes)}, "
                f"MLTH={format_bytes(thresholds.mlth_bytes)}] window."
            )
        elif ws < thresholds.msth_bytes:
            degree_line += (
                f"; below MSTH={format_bytes(thresholds.msth_bytes)} — no "
                "larger merge was available (or the model preferred this "
                "degree after pricing loop overhead)."
            )
        else:
            degree_line += (
                f"; above MLTH={format_bytes(thresholds.mlth_bytes)} — the "
                "smallest legal kernel still overshoots the window."
            )
    lines.append(degree_line)
    if plan.degree == 0:
        lines.append(
            "  (degree 0 = fiber representation: no contiguous modes were "
            "available to merge at all — order-1 input.)"
        )

    # -- loops -------------------------------------------------------------------
    if plan.loop_modes:
        extents = " x ".join(str(e) for e in plan.loop_extents)
        loop_line = (
            f"loops: modes {list(plan.loop_modes)} — {extents} = "
            f"{plan.loop_iterations} kernel invocations."
        )
        if plan.batch_modes:
            loop_line += (
                f" Modes {list(plan.batch_modes)} stack into the batch axis "
                f"(B={plan.batch_extent}), so only "
                f"{plan.gemm_dispatch_count} batched GEMM call(s) are "
                "dispatched."
            )
        lines.append(loop_line)
    else:
        lines.append(
            "loops: none — the merge covers every non-product mode, so the "
            "whole TTM is a single kernel call (or one batched matmul)."
        )

    # -- threads -----------------------------------------------------------------
    if plan.loop_threads == plan.kernel_threads == 1:
        lines.append("threads: serial (budget of 1).")
    elif plan.kernel_threads > 1:
        lines.append(
            f"threads: P_C={plan.kernel_threads} inside the kernel — the "
            f"working set {format_bytes(ws)} is at or above "
            f"PTH={format_bytes(pth_bytes)}, large enough to amortize "
            "intra-GEMM parallelism."
        )
    else:
        lines.append(
            f"threads: P_L={plan.loop_threads} across the loop nest — the "
            f"kernel ({format_bytes(ws)}) is below "
            f"PTH={format_bytes(pth_bytes)}, so coarse-grained parallelism "
            "wins."
        )

    # -- kernel ------------------------------------------------------------------
    legal = plan.views_blas_legal
    lines.append(
        f"kernel: {plan.kernel} — sub-tensor views are "
        f"{'BLAS-legal (unit stride in one dimension)' if legal else 'general-stride (both strides non-unit); the blocked BLIS-role kernel packs panels'}."
    )
    return "\n".join(lines)


def explain_chain(plan, flops_per_byte: float | None = None) -> str:
    """A multi-line rationale for a :class:`~repro.core.chain.ChainPlan`.

    Shows the chosen execution order against the caller's given order —
    flops, intermediate write traffic, and the combined roofline cost
    the planner actually minimized — plus the ping-pong scratch schedule
    and a one-line summary of every pre-built per-step plan.
    """
    from repro.core.chain import (
        DEFAULT_FLOPS_PER_BYTE,
        ChainStep,
        chain_cost,
        chain_flops,
        chain_intermediate_bytes,
    )

    fpb = DEFAULT_FLOPS_PER_BYTE if flops_per_byte is None else flops_per_byte
    lines = [plan.describe(), ""]
    if not plan.step_plans:
        lines.append("empty chain: nothing to execute.")
        return "\n".join(lines)

    # Rebuild the caller's original (mode, J) sequence from the executed
    # plans: step_plans[k] executes original step order[k].  The dummy
    # matrices are zero-byte broadcast views — only their shapes matter
    # to the cost models.
    original: list[ChainStep | None] = [None] * plan.n_steps
    for k, step_plan in enumerate(plan.step_plans):
        i_n = plan.shape[step_plan.mode]
        matrix = np.broadcast_to(np.float64(0.0), (step_plan.j, i_n))
        original[plan.order[k]] = ChainStep(step_plan.mode, matrix)
    steps = [s for s in original if s is not None]
    itemsize = plan.itemsize

    given_flops = chain_flops(plan.shape, steps)
    chosen_flops = chain_flops(plan.shape, steps, plan.order)
    given_bytes, given_peak = chain_intermediate_bytes(
        plan.shape, steps, itemsize=itemsize
    )
    chosen_bytes, chosen_peak = chain_intermediate_bytes(
        plan.shape, steps, plan.order, itemsize=itemsize
    )
    given_cost = chain_cost(plan.shape, steps, itemsize=itemsize,
                            flops_per_byte=fpb)
    chosen_cost = chain_cost(plan.shape, steps, plan.order,
                             itemsize=itemsize, flops_per_byte=fpb)

    seq = " -> ".join(
        f"mode {p.mode} (I={plan.shape[p.mode]} -> J={p.j})"
        for p in plan.step_plans
    )
    lines.append(f"order: {list(plan.order)} — {seq}.")

    def ratio(given: float, chosen: float) -> str:
        if chosen <= 0:
            return "1.00x"
        return f"{given / chosen:.2f}x"

    lines.append(
        f"flops: {chosen_flops:,} vs {given_flops:,} as given "
        f"({ratio(given_flops, chosen_flops)} saved by reordering)."
    )
    lines.append(
        f"intermediate writes: {format_bytes(chosen_bytes)} total / "
        f"{format_bytes(chosen_peak)} peak, vs {format_bytes(given_bytes)} / "
        f"{format_bytes(given_peak)} as given."
    )
    lines.append(
        f"roofline cost (@ {fpb:.1f} flops/byte): {chosen_cost:,.0f} vs "
        f"{given_cost:,.0f} byte-equivalents "
        f"({ratio(given_cost, chosen_cost)}) — the planner minimizes this "
        "combined figure, so an order that saves traffic wins whenever the "
        "chain is bandwidth-bound."
    )

    slots = plan.scratch_elements
    if slots:
        sizes = " + ".join(
            format_bytes(e * itemsize) for e in slots
        )
        lines.append(
            f"scratch: {len(slots)} ping-pong slot(s) ({sizes}) — "
            f"intermediates alternate slots, so this {plan.n_steps}-step "
            "chain makes at most 2 allocations (0 once the pool is warm); "
            "the final product writes the caller's out."
        )
    else:
        lines.append(
            "scratch: none — a single-step chain writes the output directly."
        )

    lines.append("")
    lines.append("per-step plans (pre-built once, cached per chain signature):")
    for k, step_plan in enumerate(plan.step_plans):
        last = k == plan.n_steps - 1
        target = "out" if last else f"slot {k % 2}"
        lines.append(f"  step {k} -> {target}: {step_plan.describe()}")
    return "\n".join(lines)
