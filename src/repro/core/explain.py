"""Plan explanation: why the estimator chose what it chose.

Autotuners earn trust by showing their work.  :func:`explain_plan`
renders a plan's decision trail in the terms of the paper's §4.3.1 —
which strategy and why, how the degree relates to the MSTH/MLTH window,
which side of PTH the kernel fell on, and whether the views are
BLAS-legal — as plain text for the CLI (``repro plan --explain``) and
for logging in deployments.
"""

from __future__ import annotations

from repro.core.partition import Thresholds
from repro.core.plan import Strategy, TtmPlan
from repro.core.threads import DEFAULT_PTH_BYTES
from repro.tensor.layout import Layout
from repro.util.formatting import format_bytes


def explain_plan(
    plan: TtmPlan,
    thresholds: Thresholds | None = None,
    pth_bytes: int = DEFAULT_PTH_BYTES,
) -> str:
    """A multi-line, human-readable rationale for *plan*."""
    lines = [plan.describe(), ""]

    # -- strategy --------------------------------------------------------------
    natural = Strategy.natural_for(plan.layout)
    layout_name = (
        "row-major" if plan.layout is Layout.ROW_MAJOR else "column-major"
    )
    if plan.strategy is natural:
        side = "right" if plan.strategy is Strategy.FORWARD else "left"
        lines.append(
            f"strategy: {plan.strategy.value} — the natural choice for "
            f"{layout_name} storage; merging modes to the {side} of mode "
            f"{plan.mode} keeps the unit-stride dimension inside the kernel."
        )
    else:
        lines.append(
            f"strategy: {plan.strategy.value} (fallback) — mode {plan.mode} "
            f"has no {natural.value}-side modes in {layout_name} storage; "
            "the opposite side is used, and the contracted mode itself "
            "carries the unit stride, so the kernel stays BLAS-legal."
        )

    # -- degree ------------------------------------------------------------------
    ws = plan.kernel_working_set_bytes
    m, k, n = plan.kernel_shape
    degree_line = (
        f"degree: {plan.degree} — inner GEMM is ({m} x {k}) @ ({k} x {n}), "
        f"working set {format_bytes(ws)}"
    )
    if thresholds is not None:
        if thresholds.contains(ws):
            degree_line += (
                f"; inside the [MSTH={format_bytes(thresholds.msth_bytes)}, "
                f"MLTH={format_bytes(thresholds.mlth_bytes)}] window."
            )
        elif ws < thresholds.msth_bytes:
            degree_line += (
                f"; below MSTH={format_bytes(thresholds.msth_bytes)} — no "
                "larger merge was available (or the model preferred this "
                "degree after pricing loop overhead)."
            )
        else:
            degree_line += (
                f"; above MLTH={format_bytes(thresholds.mlth_bytes)} — the "
                "smallest legal kernel still overshoots the window."
            )
    lines.append(degree_line)
    if plan.degree == 0:
        lines.append(
            "  (degree 0 = fiber representation: no contiguous modes were "
            "available to merge at all — order-1 input.)"
        )

    # -- loops -------------------------------------------------------------------
    if plan.loop_modes:
        extents = " x ".join(str(e) for e in plan.loop_extents)
        loop_line = (
            f"loops: modes {list(plan.loop_modes)} — {extents} = "
            f"{plan.loop_iterations} kernel invocations."
        )
        if plan.batch_modes:
            loop_line += (
                f" Modes {list(plan.batch_modes)} stack into the batch axis "
                f"(B={plan.batch_extent}), so only "
                f"{plan.gemm_dispatch_count} batched GEMM call(s) are "
                "dispatched."
            )
        lines.append(loop_line)
    else:
        lines.append(
            "loops: none — the merge covers every non-product mode, so the "
            "whole TTM is a single kernel call (or one batched matmul)."
        )

    # -- threads -----------------------------------------------------------------
    if plan.loop_threads == plan.kernel_threads == 1:
        lines.append("threads: serial (budget of 1).")
    elif plan.kernel_threads > 1:
        lines.append(
            f"threads: P_C={plan.kernel_threads} inside the kernel — the "
            f"working set {format_bytes(ws)} is at or above "
            f"PTH={format_bytes(pth_bytes)}, large enough to amortize "
            "intra-GEMM parallelism."
        )
    else:
        lines.append(
            f"threads: P_L={plan.loop_threads} across the loop nest — the "
            f"kernel ({format_bytes(ws)}) is below "
            f"PTH={format_bytes(pth_bytes)}, so coarse-grained parallelism "
            "wins."
        )

    # -- kernel ------------------------------------------------------------------
    legal = plan.views_blas_legal
    lines.append(
        f"kernel: {plan.kernel} — sub-tensor views are "
        f"{'BLAS-legal (unit stride in one dimension)' if legal else 'general-stride (both strides non-unit); the blocked BLIS-role kernel packs panels'}."
    )
    return "\n".join(lines)
