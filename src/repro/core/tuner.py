"""Exhaustive plan search: the ground truth the heuristics are judged by.

Figure 12 compares the estimator's single predicted configuration against
the best of an exhaustive sweep (16 configurations for a mode-1 product
on a 5th-order tensor).  ``enumerate_plans`` generates the same space —
every legal degree crossed with both thread allocations (all-loops vs
all-kernel) — and :class:`ExhaustiveTuner` times each candidate on the
actual input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.inttm import ttm_inplace
from repro.core.partition import (
    available_modes_for_strategy,
    choose_batch_modes,
    component_modes_for_strategy,
    strategy_for,
)
from repro.core.plan import TtmPlan
from repro.obs.tracer import active_tracer
from repro.perf.flops import gflops_rate, ttm_flops
from repro.perf.profiler import active_hot_counters
from repro.perf.timing import time_callable
from repro.tensor.dense import DenseTensor
from repro.tensor.layout import Layout
from repro.util.validation import check_mode, check_positive_int


def enumerate_plans(
    shape: Sequence[int],
    mode: int,
    j: int,
    layout: Layout | str = Layout.ROW_MAJOR,
    max_threads: int = 1,
    kernels: Sequence[str] = ("blas",),
    dtype: str = "float64",
) -> list[TtmPlan]:
    """Every legal configuration for one input.

    The space is degrees ``1..len(available)`` (plus 0 only when no
    contiguous modes exist) x thread allocations x kernels.  With one
    thread the two allocations coincide and are deduplicated.
    """
    layout = Layout.parse(layout)
    shape_t = tuple(int(s) for s in shape)
    order = len(shape_t)
    mode = check_mode(mode, order)
    check_positive_int(j, "j")
    check_positive_int(max_threads, "max_threads")
    strategy = strategy_for(order, mode, layout)
    available = available_modes_for_strategy(order, mode, strategy)
    degrees = list(range(1, len(available) + 1)) if available else [0]
    if max_threads == 1:
        allocations = [(1, 1)]
    else:
        allocations = [(max_threads, 1), (1, max_threads)]

    plans = []
    for degree in degrees:
        comp = component_modes_for_strategy(order, mode, strategy, degree)
        loops_fwd = [m for m in range(order) if m != mode and m not in comp]
        if layout is Layout.COL_MAJOR:
            loops_fwd.reverse()
        loops = tuple(loops_fwd)
        batch = choose_batch_modes(shape_t, layout, mode, j, loops)
        for p_l, p_c in allocations:
            for kernel in kernels:
                plans.append(
                    TtmPlan(
                        shape=shape_t,
                        mode=mode,
                        j=j,
                        layout=layout,
                        strategy=strategy,
                        component_modes=comp,
                        loop_modes=loops,
                        loop_threads=p_l,
                        kernel_threads=p_c,
                        kernel=kernel,
                        batch_modes=batch,
                        dtype=dtype,
                    )
                )
    return plans


@dataclass
class TunerResult:
    """Outcome of an exhaustive sweep over one input."""

    plans: list[TtmPlan]
    seconds: list[float]
    flops: int

    @property
    def best_index(self) -> int:
        return int(np.argmin(self.seconds))

    @property
    def best_plan(self) -> TtmPlan:
        return self.plans[self.best_index]

    @property
    def best_gflops(self) -> float:
        return gflops_rate(self.flops, self.seconds[self.best_index])

    def gflops_of(self, plan: TtmPlan) -> float:
        """Measured rate of a specific candidate from this sweep."""
        idx = self.plans.index(plan)
        return gflops_rate(self.flops, self.seconds[idx])

    def table(self) -> list[tuple[str, float]]:
        """(description, GFLOP/s) per candidate, best first."""
        rows = [
            (p.describe(), gflops_rate(self.flops, s))
            for p, s in zip(self.plans, self.seconds)
        ]
        return sorted(rows, key=lambda r: -r[1])


class ExhaustiveTuner:
    """Times every candidate plan on a real input (figure 12's gray bars).

    Candidates run through the same generated-code path the estimator's
    prediction uses (``executor="generated"``), so the comparison isolates
    the *plan* choice; pass ``executor="interpreted"`` to time the generic
    Algorithm-2 interpreter instead.
    """

    def __init__(
        self,
        min_seconds: float = 0.02,
        min_repeats: int = 2,
        executor: str = "generated",
    ):
        self.min_seconds = min_seconds
        self.min_repeats = min_repeats
        self.executor = executor

    def _runner(self, plan: TtmPlan, x: DenseTensor, u: np.ndarray,
                out: DenseTensor):
        if self.executor == "generated":
            from repro.core.codegen import compile_plan

            fn = compile_plan(plan)
            return lambda: fn(x.data, u, out.data)
        return lambda: ttm_inplace(x, u, plan=plan, out=out)

    def time_plan(
        self,
        plan: TtmPlan,
        x: DenseTensor,
        u: np.ndarray,
        out: DenseTensor | None = None,
    ) -> float:
        """Measured seconds for one candidate on real data.

        The unit the sweep is built from, exposed so callers that only
        want to try *a few* candidates — the autotune session's online
        refinement — time them exactly the way the exhaustive tuner
        would.
        """
        if out is None:
            out = DenseTensor.empty(plan.out_shape, x.layout, dtype=plan.dtype)
        run = self._runner(plan, x, np.asarray(u), out)
        return time_callable(
            run, min_repeats=self.min_repeats, min_seconds=self.min_seconds
        )

    def sweep(
        self,
        x: DenseTensor,
        u: np.ndarray,
        mode: int,
        max_threads: int = 1,
        kernels: Sequence[str] = ("blas",),
    ) -> TunerResult:
        """Run all candidates for ``X x_mode U``; returns their timings."""
        counters = active_hot_counters()
        if counters is not None:
            counters.count_tuner_sweep()
        u = np.asarray(u)
        plans = enumerate_plans(
            x.shape, mode, u.shape[0], x.layout, max_threads, kernels,
            dtype=x.data.dtype.name,
        )
        out = DenseTensor.empty(
            plans[0].out_shape, x.layout, dtype=x.data.dtype.name
        )
        tracer = active_tracer()
        if tracer.enabled:
            with tracer.span(
                "tuner-sweep",
                shape=list(x.shape),
                mode=mode,
                j=int(u.shape[0]),
                layout=x.layout.name,
                candidates=len(plans),
                executor=self.executor,
            ) as span:
                seconds = [self.time_plan(plan, x, u, out) for plan in plans]
                span.set(best=plans[int(np.argmin(seconds))].describe())
        else:
            seconds = [self.time_plan(plan, x, u, out) for plan in plans]
        return TunerResult(
            plans=plans, seconds=seconds, flops=ttm_flops(x.shape, u.shape[0])
        )
