"""The TTM execution plan: the tuple of choices the estimator makes.

A :class:`TtmPlan` pins down, for one (tensor geometry, mode, J, layout)
input, everything Algorithm 2 leaves open:

* the **strategy** — forward (component modes to the right of mode *n*;
  the unit-stride choice for row-major storage) or backward (to the
  left; unit-stride for column-major);
* the **component modes** ``M_C`` merged into the inner GEMM;
* the **loop modes** ``M_L`` iterated by the (possibly parallel) nest;
* the **batch modes** ``M_B`` — the innermost run of ``M_L`` whose
  iterations collapse into one batched GEMM (a rank-3 strided view fed
  to ``np.matmul``) instead of interpreted per-index dispatches;
* the thread split ``P_L`` / ``P_C``;
* the inner **kernel** (``blas`` fast path or ``blocked`` general-stride).

Plans are frozen, hashable, and fully validated at construction, so the
executor and the code generator can trust them blindly — and the plan
cache can key on them.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.tensor.layout import Layout, element_strides
from repro.util.dtypes import SUPPORTED_DTYPES
from repro.util.errors import LayoutError, PlanError


class Strategy(enum.Enum):
    """Which side of mode *n* supplies the component modes (§4.3.1)."""

    FORWARD = "forward"    # M_C from {n+1, ..., N-1} (rightmost modes)
    BACKWARD = "backward"  # M_C from {0, ..., n-1} (leftmost modes)

    @classmethod
    def natural_for(cls, layout: Layout) -> "Strategy":
        """The unit-stride strategy for a storage layout."""
        return cls.FORWARD if layout is Layout.ROW_MAJOR else cls.BACKWARD


@dataclass(frozen=True)
class TtmPlan:
    """A fully specified in-place TTM execution recipe."""

    shape: tuple[int, ...]
    mode: int
    j: int
    layout: Layout
    strategy: Strategy
    component_modes: tuple[int, ...]
    loop_modes: tuple[int, ...]
    loop_threads: int = 1
    kernel_threads: int = 1
    kernel: str = "auto"
    batch_modes: tuple[int, ...] = ()
    dtype: str = "float64"

    def __post_init__(self) -> None:
        order = len(self.shape)
        if order < 1:
            raise PlanError("plan requires an order >= 1 tensor")
        if self.dtype not in SUPPORTED_DTYPES:
            raise PlanError(
                f"plan dtype {self.dtype!r} not in {SUPPORTED_DTYPES}; "
                "pass the canonical dtype name (e.g. 'float32')"
            )
        if not 0 <= self.mode < order:
            raise PlanError(f"mode {self.mode} out of range for order {order}")
        if self.j < 1:
            raise PlanError(f"J must be >= 1, got {self.j}")
        if self.loop_threads < 1 or self.kernel_threads < 1:
            raise PlanError("thread counts must be >= 1")
        mc, ml = set(self.component_modes), set(self.loop_modes)
        if mc & ml:
            raise PlanError(f"M_C {mc} and M_L {ml} overlap")
        if self.mode in mc or self.mode in ml:
            raise PlanError(f"mode {self.mode} cannot be a loop/component mode")
        if mc | ml | {self.mode} != set(range(order)):
            raise PlanError(
                f"M_C {sorted(mc)} + M_L {sorted(ml)} + mode {self.mode} "
                f"do not cover all modes of order {order}"
            )
        comp = list(self.component_modes)
        if comp != sorted(comp) or (
            comp and comp != list(range(comp[0], comp[0] + len(comp)))
        ):
            raise PlanError(
                f"component modes {comp} must be a sorted consecutive run"
            )
        if comp:
            if self.strategy is Strategy.FORWARD:
                # Rightmost run: must start after mode and end at N-1.
                if comp[0] <= self.mode or comp[-1] != order - 1:
                    raise PlanError(
                        f"forward strategy requires M_C to be the rightmost "
                        f"modes after {self.mode}, got {comp}"
                    )
            else:
                if comp[-1] >= self.mode or comp[0] != 0:
                    raise PlanError(
                        f"backward strategy requires M_C to be the leftmost "
                        f"modes before {self.mode}, got {comp}"
                    )
        batch = list(self.batch_modes)
        if batch:
            if batch != sorted(batch) or batch != list(
                range(batch[0], batch[0] + len(batch))
            ):
                raise PlanError(
                    f"batch modes {batch} must be a sorted consecutive run"
                )
            if set(batch) != set(self.loop_modes[len(self.loop_modes) - len(batch):]):
                raise PlanError(
                    f"batch modes {batch} must be exactly the innermost "
                    f"(last-iterated) loop modes of M_L {list(self.loop_modes)}"
                )
            # Stackability (Lemma 4.2 analogue): the batch run must merge
            # copy-free in *both* operands.  Always true for contiguous
            # storage, but validated here so the executor and the code
            # generator can trust ``batch_modes`` blindly.
            from repro.tensor.views import merged_stride

            try:
                merged_stride(
                    element_strides(self.shape, self.layout), self.shape, batch
                )
                merged_stride(
                    element_strides(self.out_shape, self.layout),
                    self.out_shape,
                    batch,
                )
            except LayoutError as exc:
                raise PlanError(
                    f"batch modes {batch} are not stackable without a copy: "
                    f"{exc}"
                ) from exc

    # -- derived geometry ---------------------------------------------------

    @property
    def order(self) -> int:
        return len(self.shape)

    @property
    def degree(self) -> int:
        """|M_C|: how many modes are merged into the inner GEMM."""
        return len(self.component_modes)

    @property
    def i_n(self) -> int:
        """Extent of the contracted mode."""
        return self.shape[self.mode]

    @property
    def component_extent(self) -> int:
        """Merged length P of the component dimension (1 when M_C is empty)."""
        return math.prod(self.shape[m] for m in self.component_modes)

    @property
    def out_shape(self) -> tuple[int, ...]:
        """Shape of the output tensor Y."""
        return self.shape[: self.mode] + (self.j,) + self.shape[self.mode + 1 :]

    @property
    def loop_extents(self) -> tuple[int, ...]:
        """Iteration counts of the collapsed loop nest, in loop order."""
        return tuple(self.shape[m] for m in self.loop_modes)

    @property
    def loop_iterations(self) -> int:
        return math.prod(self.loop_extents) if self.loop_extents else 1

    # -- batched execution geometry ----------------------------------------

    @property
    def batch_extent(self) -> int:
        """B: iterations fused into one batched GEMM (1 when unbatched)."""
        return math.prod(self.shape[m] for m in self.batch_modes)

    @property
    def outer_loop_modes(self) -> tuple[int, ...]:
        """The loop modes that remain interpreted outside the batch."""
        if not self.batch_modes:
            return self.loop_modes
        return self.loop_modes[: len(self.loop_modes) - len(self.batch_modes)]

    @property
    def outer_loop_extents(self) -> tuple[int, ...]:
        return tuple(self.shape[m] for m in self.outer_loop_modes)

    @property
    def outer_loop_iterations(self) -> int:
        extents = self.outer_loop_extents
        return math.prod(extents) if extents else 1

    @property
    def gemm_dispatch_count(self) -> int:
        """Interpreter-level GEMM dispatches the executor performs.

        Per-iteration execution dispatches once per loop index; batched
        execution dispatches once per *outer* index, reducing the count by
        the batch factor B.  This is the quantity the new hot-path
        counters measure and the batched benchmark reports.
        """
        if not self.batch_modes:
            return self.loop_iterations
        return self.outer_loop_iterations

    @property
    def kernel_shape(self) -> tuple[int, int, int]:
        """(m, k, n) of the inner GEMM as dispatched.

        Forward: ``Y_sub (J x P) = U (J x I_n) @ X_sub (I_n x P)``.
        Backward: ``Y_sub (P x J) = X_sub (P x I_n) @ U^T (I_n x J)``.
        """
        p = self.component_extent
        if self.strategy is Strategy.FORWARD:
            return (self.j, self.i_n, p)
        return (p, self.i_n, self.j)

    @property
    def views_blas_legal(self) -> bool:
        """True when the plan's sub-tensor views fit the BLAS interface.

        The inner views have unit stride in one dimension exactly when
        the component run includes the storage's leading mode (natural
        strategies) or when the contracted mode itself is the leading
        mode (the cross-strategy fallback).  Otherwise both strides are
        non-unit and the blocked (BLIS-role) kernel is required — the
        figure-7 "BLIS or MKL" dispatch decision, decidable from geometry
        alone.
        """
        order = self.order
        leading = order - 1 if self.layout is Layout.ROW_MAJOR else 0
        if self.mode == leading:
            return True
        if self.degree == 0:
            # Fiber kernels are single-column matrices: vacuously legal.
            return True
        return leading in self.component_modes

    @property
    def np_dtype(self) -> np.dtype:
        """The plan's element type as a :class:`numpy.dtype`."""
        return np.dtype(self.dtype)

    @property
    def itemsize(self) -> int:
        """Bytes per element — the scale factor of every byte threshold."""
        return np.dtype(self.dtype).itemsize

    @property
    def kernel_working_set_bytes(self) -> int:
        """Bytes of the three inner-GEMM operands (the threshold unit).

        Scaled by the plan dtype's itemsize: a float32 kernel of the same
        geometry touches half the memory, which is exactly what moves it
        across the MSTH/MLTH window (§4.3.1 is stated in bytes).
        """
        m, k, n = self.kernel_shape
        return self.itemsize * (m * k + k * n + m * n)

    @property
    def output_bytes(self) -> int:
        """Bytes of the full output tensor Y (what a chain step materializes).

        This is the quantity the chain planner sums and peaks over when
        ordering a multi-TTM chain: every intermediate is one step's
        output, so the order that minimizes these bytes minimizes both
        scratch footprint and write traffic.
        """
        return self.itemsize * math.prod(self.out_shape)

    @property
    def kernel_flops(self) -> int:
        m, k, n = self.kernel_shape
        return 2 * m * k * n

    @property
    def total_flops(self) -> int:
        return self.kernel_flops * self.loop_iterations

    def describe(self) -> str:
        """One-line human-readable summary (used by benchmarks/examples)."""
        dims = "x".join(str(s) for s in self.shape)
        comp = ",".join(str(m) for m in self.component_modes) or "-"
        loops = ",".join(str(m) for m in self.loop_modes) or "-"
        batch = ",".join(str(m) for m in self.batch_modes) or "-"
        return (
            f"TtmPlan[{dims} mode={self.mode} J={self.j} "
            f"{self.layout.name}/{self.strategy.value} "
            f"M_C=({comp}) M_L=({loops}) M_B=({batch}) "
            f"P_L={self.loop_threads} "
            f"P_C={self.kernel_threads} kernel={self.kernel} "
            f"dtype={self.dtype}]"
        )

    def cache_key(self) -> tuple:
        """Key identifying the *input* this plan was built for.

        Includes the dtype: a float32 plan and a float64 plan for the
        same geometry make different threshold decisions and must never
        collide in a cache.
        """
        return (self.shape, self.mode, self.j, self.layout, self.dtype)
