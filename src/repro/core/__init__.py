"""The paper's contribution: input-adaptive, in-place TTM (INTENSLI).

Pipeline (figure 7): inputs (tensor geometry, layout, mode, a GEMM shape
benchmark, thread budget) feed the **parameter estimator**, which fixes
the four plan parameters — loop modes ``M_L``, component modes ``M_C``,
loop threads ``P_L``, kernel threads ``P_C`` — and the kernel choice;
the plan then drives either the generic **executor**
(:func:`repro.core.inttm.ttm_inplace`) or a **generated** specialized
implementation (:mod:`repro.core.codegen`).

Most users want the :class:`repro.core.intensli.InTensLi` facade or the
top-level :func:`repro.ttm`.
"""

from repro.core.plan import TtmPlan, Strategy
from repro.core.partition import (
    Thresholds,
    available_component_modes,
    choose_degree,
    component_modes_for_degree,
    derive_thresholds,
    kernel_working_set_bytes,
)
from repro.core.threads import ThreadAllocation, allocate_threads, DEFAULT_PTH_BYTES
from repro.core.estimator import ParameterEstimator
from repro.core.inttm import ttm_inplace
from repro.core.codegen import compile_plan, generate_source
from repro.core.tuner import ExhaustiveTuner, TunerResult, enumerate_plans
from repro.core.predict import predict_gflops, predict_seconds, rank_plans
from repro.core.serialize import (
    SCHEMA_VERSION,
    cache_header,
    check_cache_header,
    load_plans,
    plan_from_dict,
    plan_to_dict,
    plans_from_json,
    plans_to_json,
    save_plans,
)
from repro.core.chain import (
    ChainPlan,
    ChainStep,
    ScratchPool,
    chain_cost,
    chain_flops,
    chain_intermediate_bytes,
    execute_chain,
    greedy_order,
    optimal_order,
    plan_chain,
    ttm_chain,
)
from repro.core.tiling import (
    StreamChunk,
    TileSpec,
    TilingPlan,
    TilingPlanner,
    execute_tiled,
    explain_tiling,
    ttm_stream,
    ttm_stream_collect,
    ttm_tiled,
)
from repro.core.intensli import InTensLi

__all__ = [
    "TtmPlan",
    "Strategy",
    "Thresholds",
    "available_component_modes",
    "choose_degree",
    "component_modes_for_degree",
    "derive_thresholds",
    "kernel_working_set_bytes",
    "ThreadAllocation",
    "allocate_threads",
    "DEFAULT_PTH_BYTES",
    "ParameterEstimator",
    "ttm_inplace",
    "compile_plan",
    "generate_source",
    "ExhaustiveTuner",
    "TunerResult",
    "enumerate_plans",
    "ChainPlan",
    "ChainStep",
    "ScratchPool",
    "chain_cost",
    "chain_flops",
    "chain_intermediate_bytes",
    "execute_chain",
    "greedy_order",
    "optimal_order",
    "plan_chain",
    "ttm_chain",
    "predict_gflops",
    "predict_seconds",
    "rank_plans",
    "load_plans",
    "plan_from_dict",
    "plan_to_dict",
    "plans_from_json",
    "plans_to_json",
    "save_plans",
    "SCHEMA_VERSION",
    "cache_header",
    "check_cache_header",
    "StreamChunk",
    "TileSpec",
    "TilingPlan",
    "TilingPlanner",
    "execute_tiled",
    "explain_tiling",
    "ttm_stream",
    "ttm_stream_collect",
    "ttm_tiled",
    "InTensLi",
]
