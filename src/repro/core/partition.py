"""Mode partitioning: choosing ``M_C`` and ``M_L`` (paper §4.3.1).

Two decisions are made here:

1. **Strategy** — forward for row-major storage, backward for
   column-major, so the inner GEMM keeps a unit-stride dimension and can
   use the fast (BLAS) kernel.
2. **Degree** — how many contiguous modes to merge into the component
   set.  The paper derives two working-set thresholds, ``MSTH`` and
   ``MLTH``, from the GEMM shape benchmark (figure 8): the region between
   them is where GEMM throughput stays within a fraction ``kappa`` (0.8)
   of its peak.  ``choose_degree`` grows the degree from 1 until the
   kernel working set lands inside [MSTH, MLTH] (taking the largest such
   kernel), because too-small kernels waste the benchmark's sweet spot
   and too-large ones fall off the right side of figure 8.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Sequence

from repro.gemm.bench import GemmProfile
from repro.tensor.layout import Layout, element_strides
from repro.util.errors import BenchmarkError, LayoutError, PlanError
from repro.util.validation import check_mode, check_positive_int, check_probability

#: Thresholds the paper measured on its Core i7 (§4.3.1): used as a
#: fallback when no benchmark profile is supplied.
PAPER_MSTH_BYTES = int(1.04 * 1024**2)
PAPER_MLTH_BYTES = int(7.04 * 1024**2)


@dataclass(frozen=True)
class Thresholds:
    """The MSTH/MLTH working-set window (bytes) at a given kappa."""

    msth_bytes: int
    mlth_bytes: int
    kappa: float = 0.8

    def __post_init__(self) -> None:
        check_positive_int(self.msth_bytes, "msth_bytes")
        check_positive_int(self.mlth_bytes, "mlth_bytes")
        check_probability(self.kappa, "kappa")
        if self.msth_bytes > self.mlth_bytes:
            raise PlanError(
                f"MSTH ({self.msth_bytes}) must not exceed MLTH "
                f"({self.mlth_bytes})"
            )

    def contains(self, nbytes: int) -> bool:
        return self.msth_bytes <= nbytes <= self.mlth_bytes


PAPER_THRESHOLDS = Thresholds(PAPER_MSTH_BYTES, PAPER_MLTH_BYTES)


def available_modes_for_strategy(order: int, mode: int, strategy) -> tuple[int, ...]:
    """Modes eligible for ``M_C`` under an explicit strategy.

    Forward: the modes right of *mode* (the component run must end at
    N-1); backward: the modes left of it (the run must start at 0).
    """
    from repro.core.plan import Strategy

    mode = check_mode(mode, order)
    if strategy is Strategy.FORWARD:
        return tuple(range(mode + 1, order))
    return tuple(range(0, mode))


def component_modes_for_strategy(
    order: int, mode: int, strategy, degree: int
) -> tuple[int, ...]:
    """The degree-sized component run for an explicit strategy."""
    from repro.core.plan import Strategy

    available = available_modes_for_strategy(order, mode, strategy)
    if degree < 0 or degree > len(available):
        raise PlanError(
            f"degree {degree} out of range: mode {mode} of an order-{order} "
            f"tensor admits 0..{len(available)} {strategy.value} component "
            "modes"
        )
    if degree == 0:
        return ()
    if strategy is Strategy.FORWARD:
        return available[-degree:]
    return available[:degree]


def strategy_for(order: int, mode: int, layout: Layout):
    """The strategy to use for this input: natural, unless it is empty.

    Row-major prefers forward and column-major backward (unit-stride
    kernels); when the natural side has no modes at all — mode N-1 of a
    row-major tensor, mode 0 of a column-major one — the opposite
    strategy is used instead.  In exactly those fallback cases the
    contracted mode itself carries the unit stride, so the cross-strategy
    kernel is still BLAS-legal (indeed it degenerates to a single GEMM on
    the whole, contiguously reshaped tensor).
    """
    from repro.core.plan import Strategy

    natural = Strategy.natural_for(layout)
    if available_modes_for_strategy(order, mode, natural):
        return natural
    flipped = (
        Strategy.BACKWARD if natural is Strategy.FORWARD else Strategy.FORWARD
    )
    if available_modes_for_strategy(order, mode, flipped):
        return flipped
    return natural  # order-1 tensor: no component modes either way


def available_component_modes(
    order: int, mode: int, layout: Layout
) -> tuple[int, ...]:
    """Modes eligible for ``M_C`` under the layout's natural strategy.

    Row-major (forward): the modes to the right of *mode*; column-major
    (backward): the modes to its left.  (Lemma 4.1: at most
    ``max(n-1, N-n)`` contiguous modes, anchored at the leading
    dimension.)
    """
    mode = check_mode(mode, order)
    if layout is Layout.ROW_MAJOR:
        return tuple(range(mode + 1, order))
    return tuple(range(0, mode))


def component_modes_for_degree(
    order: int, mode: int, layout: Layout, degree: int
) -> tuple[int, ...]:
    """The degree-sized component run anchored at the leading dimension.

    Forward strategy takes the *last* ``degree`` modes (ending at N-1);
    backward takes the *first* ``degree`` (starting at 0) — both keep the
    unit-stride mode inside the merge, the requirement for the fast
    kernel.
    """
    available = available_component_modes(order, mode, layout)
    if degree < 0 or degree > len(available):
        raise PlanError(
            f"degree {degree} out of range: mode {mode} of an order-{order} "
            f"{layout.name} tensor admits 0..{len(available)} component modes"
        )
    if degree == 0:
        return ()
    if layout is Layout.ROW_MAJOR:
        return available[-degree:]
    return available[:degree]


def choose_batch_modes(
    shape: Sequence[int],
    layout: Layout,
    mode: int,
    j: int,
    loop_modes: Sequence[int],
) -> tuple[int, ...]:
    """The maximal innermost run of ``M_L`` that stacks into a batched GEMM.

    A suffix of the loop iteration order can be fused into the batch
    dimension of one rank-3 strided view exactly when (a) its modes form a
    consecutive index run (so the merged dimension exists copy-free —
    Lemma 4.1 applied to the batch axis) and (b) the run's strides nest in
    *both* the input and the output tensor.  For contiguous storage (b)
    follows from (a), but it is checked explicitly so exotic layouts fail
    toward the safe per-iteration path rather than toward a wrong view.

    Returns the chosen modes as a sorted tuple — ``()`` when even the
    innermost loop mode cannot be stacked (only possible with no loop
    modes at all).
    """
    from repro.tensor.views import merged_stride

    shape_t = tuple(int(s) for s in shape)
    loops = tuple(int(m) for m in loop_modes)
    mode = check_mode(mode, len(shape_t))
    check_positive_int(j, "j")
    out_shape = shape_t[:mode] + (int(j),) + shape_t[mode + 1:]
    x_strides = element_strides(shape_t, layout)
    y_strides = element_strides(out_shape, layout)
    best: tuple[int, ...] = ()
    for k in range(1, len(loops) + 1):
        run = tuple(sorted(loops[len(loops) - k:]))
        if list(run) != list(range(run[0], run[0] + len(run))):
            break
        try:
            merged_stride(x_strides, shape_t, run)
            merged_stride(y_strides, out_shape, run)
        except LayoutError:
            break
        best = run
    return best


def kernel_working_set_bytes(
    shape: Sequence[int],
    mode: int,
    j: int,
    component_modes: Sequence[int],
    itemsize: int = 8,
) -> int:
    """Bytes of the three inner-GEMM matrices for a candidate ``M_C``.

    ``X_sub (I_n x P)``, ``U (J x I_n)``, ``Y_sub (J x P)`` with
    ``P = prod(shape[c] for c in M_C)``.  *itemsize* is the element size
    in bytes (8 for float64, the paper's setting; 4 for float32): the
    MSTH/MLTH window is a byte budget, so halving the element size lets a
    kernel of twice the geometry fit the same window.
    """
    check_positive_int(j, "j")
    check_positive_int(itemsize, "itemsize")
    i_n = int(shape[mode])
    p = math.prod(int(shape[c]) for c in component_modes) if component_modes else 1
    return itemsize * (i_n * p + j * i_n + j * p)


def describe_profile(profile: GemmProfile) -> str:
    """A short human label for a profile, used in threshold errors.

    Combines the provenance recorded in ``profile.meta`` (source and,
    when synthetic, the platform preset) with the point count so error
    messages name *which* benchmark artifact was unusable.
    """
    meta = getattr(profile, "meta", None) or {}
    source = meta.get("source", "unknown-source")
    parts = [str(source)]
    for key in ("platform", "kernel"):
        if meta.get(key):
            parts.append(str(meta[key]))
    label = ", ".join(parts)
    return f"GemmProfile({label}; {len(profile)} points)"


def derive_thresholds(
    profile: GemmProfile,
    m: int,
    threads: int | None = None,
    kappa: float = 0.8,
) -> Thresholds:
    """Extract MSTH/MLTH from a GEMM shape profile (the figure-8 procedure).

    For each profiled ``k`` (with the output rows fixed at ``m``), scan
    the ``n`` series: find the peak ``f_max``, then the first point at or
    below ``kappa * f_max`` walking down each side of the peak.  The
    working-set sizes of those two points are that ``k``'s thresholds;
    the final MSTH/MLTH average over all ``k``.
    """
    check_probability(kappa, "kappa")
    if threads is None:
        threads = max(profile.thread_counts())
    k_values = sorted({p.k for p in profile.series(m=m, threads=threads)})
    if not k_values:
        raise BenchmarkError(
            f"cannot derive thresholds from {describe_profile(profile)}: "
            f"no points with m={m}, threads={threads}"
        )
    small_sizes: list[int] = []
    large_sizes: list[int] = []
    short_series = 0
    for k in k_values:
        series = profile.series(m=m, k=k, threads=threads)
        if len(series) < 3:
            short_series += 1
            continue
        rates = [p.gflops for p in series]
        peak_idx = max(range(len(series)), key=rates.__getitem__)
        cutoff = kappa * rates[peak_idx]
        lo = peak_idx
        while lo > 0 and rates[lo - 1] > cutoff:
            lo -= 1
        if lo > 0:
            lo -= 1  # the bar just *below* the horizontal line
        hi = peak_idx
        while hi < len(series) - 1 and rates[hi + 1] > cutoff:
            hi += 1
        if hi < len(series) - 1:
            hi += 1
        small_sizes.append(series[lo].working_set_bytes)
        large_sizes.append(series[hi].working_set_bytes)
    if not small_sizes:
        # Every k landed in the ``continue`` above: without this guard
        # the means below would crash on empty inputs.  Name the profile
        # so the operator knows which benchmark artifact is too sparse.
        raise BenchmarkError(
            f"cannot derive thresholds from {describe_profile(profile)}: "
            f"all {short_series} n-series for m={m}, threads={threads} "
            "have fewer than 3 points (the figure-8 peak walk needs at "
            "least 3); re-run the benchmark with a denser n grid"
        )
    msth = int(statistics.mean(small_sizes))
    mlth = int(statistics.mean(large_sizes))
    if msth > mlth:  # degenerate profiles (monotone series); keep a window
        msth, mlth = mlth, msth
    return Thresholds(max(1, msth), max(1, mlth), kappa)


def choose_degree(
    shape: Sequence[int],
    mode: int,
    layout: Layout,
    j: int,
    thresholds: Thresholds,
    strategy=None,
    itemsize: int = 8,
) -> int:
    """The paper's degree selection (§4.3.1).

    Start at degree 1 and grow while the kernel working set stays below
    MSTH; return the largest degree whose working set is <= MLTH (at
    least 1 when any component mode exists, since a degree-0 fiber kernel
    is strictly worse — Observation 3's BLAS-level argument).

    *strategy* defaults to :func:`strategy_for`'s choice.  *itemsize*
    scales the working set: a float32 input (itemsize 4) can merge more
    modes before hitting MLTH than the same geometry in float64.
    """
    order = len(shape)
    if strategy is None:
        strategy = strategy_for(order, mode, layout)
    available = available_modes_for_strategy(order, mode, strategy)
    if not available:
        return 0
    best = 1
    for degree in range(1, len(available) + 1):
        comp = component_modes_for_strategy(order, mode, strategy, degree)
        ws = kernel_working_set_bytes(shape, mode, j, comp, itemsize=itemsize)
        if ws <= thresholds.mlth_bytes:
            best = degree
            if ws >= thresholds.msth_bytes:
                # Inside the window: the paper keeps the largest kernel
                # within [MSTH, MLTH]; continue growing while still <= MLTH.
                continue
        else:
            break
    return best
