"""Arithmetic-intensity analysis of TTM (paper §3, equations 4-6).

Model: a two-level hierarchy with a fast memory of ``Z`` words.  The
communication lower bound for GEMM-like contractions is
``W >= Q / (8 sqrt(Z)) - Z`` [Ballard et al.], giving the intensity upper
bound ``A <= 8 sqrt(Z)`` (equation 4) in the regime ``Q >> 8 Z^{3/2}``.

A TTM implemented with explicit matricization moves an extra ``2 m^d``
words (unfold the input + fold the output of an order-``d`` cubical tensor
of side ``m``), reducing intensity by the factor ``1 + A/m`` (equation 5).
The in-place algorithm removes that term and restores ``A`` (equation 6).

All word counts are in double-precision words (8 bytes).
"""

from __future__ import annotations

import math

from repro.util.validation import check_positive_int


def gemm_intensity_bound(z_words: int) -> float:
    """Equation (4): the intensity upper bound ``A ~= 8 sqrt(Z)``.

    *z_words* is the fast-memory capacity in 8-byte words.
    """
    check_positive_int(z_words, "z_words")
    return 8.0 * math.sqrt(z_words)


def intensity_regime_holds(q_flops: float, z_words: int) -> bool:
    """True when ``Q >> 8 Z^{3/2}`` (we require a 10x margin), the regime
    in which the approximation of equation (4) is valid."""
    check_positive_int(z_words, "z_words")
    return q_flops >= 10.0 * 8.0 * z_words**1.5


def min_words_moved(q_flops: float, z_words: int) -> float:
    """The Ballard et al. lower bound ``W >= Q/(8 sqrt(Z)) - Z`` (clamped at 0)."""
    check_positive_int(z_words, "z_words")
    return max(0.0, q_flops / (8.0 * math.sqrt(z_words)) - z_words)


def ttm_flops(shape, j: int) -> int:
    """Flop count of a mode-n product: ``2 * J * prod(shape)`` (equation 1).

    Each output element is an ``I_n``-term dot product (multiply+add), and
    there are ``J * prod(shape)/I_n`` outputs, independent of the mode.
    """
    check_positive_int(j, "j")
    total = math.prod(int(s) for s in shape)
    return 2 * j * total


def copy_penalty(z_words: int, m: int) -> float:
    """Equation (5)'s loss factor ``1 + A/m`` of explicit matricization.

    For the paper's example (Z = 2^20 words = 8 MiB, d = 3, m ~= 254) this
    evaluates to ~33x.
    """
    check_positive_int(m, "m")
    return 1.0 + gemm_intensity_bound(z_words) / m


def copy_ttm_intensity(z_words: int, m: int) -> float:
    """Equation (5): intensity of a copy-based TTM, ``A / (1 + A/m)``."""
    return gemm_intensity_bound(z_words) / copy_penalty(z_words, m)


def inplace_ttm_intensity(z_words: int) -> float:
    """Equation (6): the in-place TTM restores the GEMM bound ``A``."""
    return gemm_intensity_bound(z_words)


def equivalent_gemm_dim(m: int, d: int) -> float:
    """The square-GEMM dimension n with the same flops as a cubical TTM.

    From ``Q_gemm = 2 n^3`` and ``Q_ttm = 2 m^{d+1}``: ``n = m^{(d+1)/3}``.
    (The paper states the inverse relation ``m = n^{3/(d+1)}``.)
    """
    check_positive_int(m, "m")
    check_positive_int(d, "d")
    return float(m) ** ((d + 1) / 3.0)


def ttm_copy_words(shape) -> int:
    """Words moved by the two physical transformations of Algorithm 1.

    Unfolding reads+writes the input once (``|X|`` words written) and
    folding does the same for the output; following the paper's accounting
    we charge the ``2 m^d`` words *written* (the incompressible extra
    traffic versus in-place).
    """
    total = math.prod(int(s) for s in shape)
    return 2 * total
