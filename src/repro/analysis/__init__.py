"""Performance analysis: arithmetic-intensity bounds and roofline models.

Implements the paper's §3 analysis — equations (4), (5) and (6) — and a
roofline-style throughput model used both for the platform presets of
table 2 and for generating deterministic synthetic GEMM profiles.
"""

from repro.analysis.intensity import (
    copy_penalty,
    copy_ttm_intensity,
    equivalent_gemm_dim,
    gemm_intensity_bound,
    inplace_ttm_intensity,
    intensity_regime_holds,
    min_words_moved,
    ttm_copy_words,
    ttm_flops,
)
from repro.analysis.roofline import (
    CORE_I7_4770K,
    PLATFORMS,
    XEON_E7_4820,
    RooflinePlatform,
    attainable_gflops,
    gemm_model_gflops,
    shape_intensity,
)

__all__ = [
    "copy_penalty",
    "copy_ttm_intensity",
    "equivalent_gemm_dim",
    "gemm_intensity_bound",
    "inplace_ttm_intensity",
    "intensity_regime_holds",
    "min_words_moved",
    "ttm_copy_words",
    "ttm_flops",
    "CORE_I7_4770K",
    "PLATFORMS",
    "XEON_E7_4820",
    "RooflinePlatform",
    "attainable_gflops",
    "gemm_model_gflops",
    "shape_intensity",
]
