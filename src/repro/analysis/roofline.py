"""Roofline-style GEMM throughput model and platform presets.

The estimator needs GEMM performance as a function of shape (figures 5
and 8).  On real hardware we *measure* it (:mod:`repro.gemm.bench`); for
deterministic tests, for scaled-up what-if studies, and to instantiate the
paper's two testbeds (table 2), this module provides a closed-form model:

``gflops(m, k, n) = min(peak * ramp * spill, intensity * BW / 8)``

* ``intensity`` is the shape's flops-per-word ratio ``2/(1/m + 1/k + 1/n)``
  capped at the cache bound ``8 sqrt(Z)`` — small dimensions limit reuse
  (Observation 2: skinny GEMMs run far below peak);
* ``ramp = Q/(Q + Q0)`` models fixed per-call overhead that starves tiny
  problems;
* ``spill = 1/(1 + ws/(c * LLC))`` models the gradual decline once the
  working set far exceeds the last-level cache — producing the
  peak-then-decline shape of figure 8 from which the MSTH/MLTH thresholds
  are derived.

The model is a *qualitative* stand-in for a measured profile: its value is
that the same downstream machinery (threshold extraction, mode
partitioning) runs unchanged on model output and on measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.intensity import gemm_intensity_bound
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class RooflinePlatform:
    """A machine abstraction: peak compute, memory bandwidth, LLC size.

    ``peak_gflops`` is the all-core double-precision peak;
    single-thread peak is derived as ``peak_gflops / cores`` (we fold any
    frequency-boost asymmetry into the model's ramp term).
    """

    name: str
    peak_gflops: float
    bandwidth_gbs: float
    llc_bytes: int
    cores: int
    threads_with_smt: int
    ramp_flops: float = 5.0e5
    spill_capacity_factor: float = 8.0

    def __post_init__(self) -> None:
        check_positive_int(self.llc_bytes, "llc_bytes")
        check_positive_int(self.cores, "cores")
        check_positive_int(self.threads_with_smt, "threads_with_smt")

    @property
    def llc_words(self) -> int:
        """LLC capacity in 8-byte words (the Z of equations 4-6)."""
        return self.llc_bytes // 8

    def peak_at(self, threads: int) -> float:
        """Peak GFLOP/s with *threads* worker threads (core-bound)."""
        check_positive_int(threads, "threads")
        usable = min(threads, self.cores)
        return self.peak_gflops * usable / self.cores


# Table 2 presets.  The paper's table lists the last-level caches as
# "8 GiB"/"18 GiB", an obvious typo for MiB (i7-4770K has an 8 MiB L3,
# E7-4820 an 18 MiB L3); we use MiB.
CORE_I7_4770K = RooflinePlatform(
    name="Intel Core i7-4770K (Haswell)",
    peak_gflops=224.0,
    bandwidth_gbs=25.6,
    llc_bytes=8 * 1024**2,
    cores=4,
    threads_with_smt=8,
)

XEON_E7_4820 = RooflinePlatform(
    name="Intel Xeon E7-4820 (Westmere)",
    peak_gflops=128.0,
    bandwidth_gbs=34.2,
    llc_bytes=18 * 1024**2,
    cores=16,
    threads_with_smt=32,
)

PLATFORMS = {
    "core-i7-4770k": CORE_I7_4770K,
    "xeon-e7-4820": XEON_E7_4820,
}


def shape_intensity(m: int, k: int, n: int, z_words: int | None = None) -> float:
    """Flops-per-word intensity of an (m x k) @ (k x n) GEMM.

    ``2mkn / (mk + kn + mn) = 2 / (1/n + 1/m + 1/k)`` — each operand
    touched at least once — optionally capped at the cache-reuse bound
    ``8 sqrt(Z)``.
    """
    check_positive_int(m, "m")
    check_positive_int(k, "k")
    check_positive_int(n, "n")
    intensity = 2.0 / (1.0 / m + 1.0 / k + 1.0 / n)
    if z_words is not None:
        intensity = min(intensity, gemm_intensity_bound(z_words))
    return intensity


def attainable_gflops(intensity: float, platform: RooflinePlatform,
                      threads: int = 1) -> float:
    """Classical roofline: ``min(peak, intensity * bandwidth)``.

    *intensity* is flops per 8-byte word; bandwidth is shared by all
    threads (adding threads raises the compute roof only).
    """
    mem_roof = intensity * platform.bandwidth_gbs / 8.0
    return min(platform.peak_at(threads), mem_roof)


def working_set_bytes(m: int, k: int, n: int) -> int:
    """Bytes of the three GEMM operands (the MSTH/MLTH measurement unit)."""
    return 8 * (m * k + k * n + m * n)


def gemm_model_gflops(
    m: int,
    k: int,
    n: int,
    platform: RooflinePlatform = CORE_I7_4770K,
    threads: int = 1,
) -> float:
    """Modelled GEMM throughput for shape (m, k, n) at *threads* threads.

    Reproduces the qualitative features of figures 5 and 8: a ramp for
    tiny problems, a roofline cap for skinny shapes, and a gradual decline
    once the working set spills far beyond the LLC.
    """
    q = 2.0 * m * k * n
    ramp = q / (q + platform.ramp_flops * max(1, threads))
    ws = working_set_bytes(m, k, n)
    # Spill degrades both roofs: far beyond the LLC, skinny shapes lose
    # blocking efficiency *and* effective bandwidth (TLB/page effects) —
    # the empirical decline on the right side of figure 8.
    spill = 1.0 / (
        1.0 + ws / (platform.spill_capacity_factor * platform.llc_bytes)
    )
    compute_roof = platform.peak_at(threads) * ramp
    intensity = shape_intensity(m, k, n, platform.llc_words)
    mem_roof = intensity * platform.bandwidth_gbs / 8.0
    return max(0.0, min(compute_roof, mem_roof) * spill)
