"""The autotune session: cached dispatch plus online measure-and-promote.

:class:`AutotuneSession` wraps an :class:`repro.core.intensli.InTensLi`
instance so that

* the **first** call for a signature pays the estimator once and caches
  the decision persistently;
* every **subsequent** call — in this process or any later one on the
  same machine — resolves the plan with a pure cache lookup, zero
  estimator or tuner work (assertable via :class:`repro.perf.profiler
  .HotCounters`);
* with ``refine=True``, each call additionally times the work it was
  going to do anyway and opportunistically measures a couple of untried
  alternate configurations from the exhaustive-tuner space
  (:func:`repro.core.tuner.enumerate_plans`), promoting a measured
  winner into the cache once the evidence says the estimator guessed
  wrong.  This amortizes figure 12's exhaustive sweep over real traffic
  instead of paying it up front.

Usage::

    session = AutotuneSession(path="/var/cache/repro/plans.json",
                              refine=True)
    y = session.ttm(x, u, mode=1)          # slow once, cached forever
"""

from __future__ import annotations

import logging
from typing import Sequence

import numpy as np

from repro.autotune.cache import CacheEntry, PlanCache, PlanKey, plan_digest
from repro.core.intensli import InTensLi, _match_u_dtype
from repro.core.plan import TtmPlan
from repro.core.tuner import ExhaustiveTuner, enumerate_plans
from repro.obs.tracer import active_tracer
from repro.tensor.dense import DenseTensor
from repro.tensor.layout import Layout
from repro.util.errors import ShapeError

log = logging.getLogger("repro.autotune")


class AutotuneSession:
    """Persistent-cached, optionally self-refining TTM dispatch.

    Parameters
    ----------
    intensli:
        The wrapped framework instance (default: a fresh ``InTensLi()``).
    path / cache:
        Where decisions persist — either a store path (a
        :class:`PlanCache` is opened there) or an explicit cache object.
    refine:
        Enable the online refinement loop.
    refine_trials:
        Maximum *alternate* plans measured per call (1–2 keeps the
        opportunistic overhead bounded; 0 only times the incumbent).
    refine_margin:
        Fractional speedup an alternate must show over the incumbent's
        best measurement before it is promoted (guards against jitter).
    min_seconds:
        Timing floor per measured candidate, forwarded to the tuner.
    calibrate:
        Feed every refinement measurement into the incremental
        design-space exploration (:mod:`repro.perf.dse`): observations
        accumulate in the plan store's calibration section, thresholds
        refit every ``calibration_refit_every`` new samples (once
        ``calibration_min_samples`` exist), and the wrapped instance
        adopts each refit immediately — plan quality improves with use.
        A calibration already persisted for this machine is attached at
        construction even before any new measurement.  Implies measuring
        like ``refine``; enable both to also promote measured winners.
    """

    def __init__(
        self,
        intensli: InTensLi | None = None,
        path: str | None = None,
        cache: PlanCache | None = None,
        refine: bool = False,
        refine_trials: int = 2,
        refine_margin: float = 0.05,
        min_seconds: float = 0.002,
        kernels: Sequence[str] = ("blas",),
        autosave: bool = True,
        calibrate: bool = False,
        calibration_min_samples: int = 12,
        calibration_refit_every: int = 8,
    ) -> None:
        if refine_trials < 0:
            raise ShapeError(
                f"refine_trials must be >= 0, got {refine_trials}"
            )
        self.lib = intensli if intensli is not None else InTensLi()
        if cache is None:
            cache = PlanCache(path=path, autosave=autosave)
        self.cache = cache
        self.refine = refine or calibrate
        self.refine_trials = refine_trials
        self.refine_margin = refine_margin
        self.kernels = tuple(kernels)
        self._tuner = ExhaustiveTuner(
            min_seconds=min_seconds, min_repeats=1, executor=self.lib.executor
        )
        self._accumulator = None
        if calibrate:
            from repro.perf.dse import CalibrationAccumulator

            self._accumulator = CalibrationAccumulator(
                self.cache.store,
                min_samples=calibration_min_samples,
                refit_every=calibration_refit_every,
            )
            if self._accumulator.record is not None:
                self.lib.attach_calibration(self._accumulator.record)
        # Route the wrapped instance's own plan() lookups through the
        # persistent cache too, so mixed use (session.ttm here, lib.plan
        # there) shares one source of truth.
        self.lib.attach_plan_cache(self.cache)

    @property
    def calibration(self):
        """The current fitted record (None before enough evidence)."""
        return self._accumulator.record if self._accumulator else None

    # -- planning -------------------------------------------------------------

    def key_for(
        self,
        shape: Sequence[int],
        mode: int,
        j: int,
        layout: Layout | str = Layout.ROW_MAJOR,
        dtype: str = "float64",
    ) -> PlanKey:
        return PlanKey.make(
            shape, mode, j, layout, self.lib.max_threads, dtype
        )

    def plan(
        self,
        shape: Sequence[int],
        mode: int,
        j: int,
        layout: Layout | str = Layout.ROW_MAJOR,
        dtype=None,
    ) -> TtmPlan:
        """The cached (or freshly estimated, then cached) plan."""
        return self.lib.plan(shape, mode, j, layout, dtype=dtype)

    def warm(self, signatures: Sequence[tuple]) -> int:
        """Pre-plan a batch of ``(shape, mode, j[, layout])`` signatures.

        Returns how many were *new* to the cache — the CLI's
        ``cache warm`` subcommand and deploy scripts call this so first
        requests never pay the estimator.
        """
        fresh = 0
        for signature in signatures:
            shape, mode, j, *rest = signature
            layout = rest[0] if rest else Layout.ROW_MAJOR
            key = self.key_for(shape, mode, j, layout)
            known = key in self.cache
            self.plan(shape, mode, j, layout)
            fresh += 0 if known else 1
        return fresh

    def save(self) -> None:
        self.cache.save()

    def __enter__(self) -> "AutotuneSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.save()

    # -- execution ------------------------------------------------------------

    def ttm(
        self,
        x: DenseTensor,
        u: np.ndarray,
        mode: int,
        out: DenseTensor | None = None,
        transpose_u: bool = False,
    ) -> DenseTensor:
        """``Y = X x_mode U`` through the cache (and refinement, if on)."""
        if not isinstance(x, DenseTensor):
            x = DenseTensor(np.asarray(x))
        u = _match_u_dtype(u, x.data.dtype)
        if u.ndim != 2:
            raise ShapeError(f"U must be 2-D, got {u.ndim}-D")
        if transpose_u:
            u = u.T
        dtype = x.data.dtype.name
        key = self.key_for(x.shape, mode, u.shape[0], x.layout, dtype)
        plan = self.plan(x.shape, mode, u.shape[0], x.layout, dtype=dtype)
        if self.refine:
            plan = self._refine_step(key, plan, x, u)
        return self.lib.execute(plan, x, u, out=out)

    # -- online refinement -----------------------------------------------------

    def _measure(self, plan: TtmPlan, x: DenseTensor, u: np.ndarray) -> float:
        """Seconds for one candidate (overridable seam for tests)."""
        return self._tuner.time_plan(plan, x, u)

    def _refine_step(
        self, key: PlanKey, plan: TtmPlan, x: DenseTensor, u: np.ndarray
    ) -> TtmPlan:
        """Measure the incumbent + up to ``refine_trials`` alternates.

        Returns the plan the caller should execute — the promoted winner
        when a measurably faster configuration emerged, otherwise the
        incumbent.
        """
        tracer = active_tracer()
        if tracer.enabled:
            with tracer.span(
                "autotune-refine",
                key=key.encode(),
                trials=self.refine_trials,
            ) as span:
                plan = self._refine_impl(key, plan, x, u)
                span.set(chosen=plan.describe())
            return plan
        return self._refine_impl(key, plan, x, u)

    def _refine_impl(
        self, key: PlanKey, plan: TtmPlan, x: DenseTensor, u: np.ndarray
    ) -> TtmPlan:
        entry = self.cache.peek(key)
        if entry is None:  # plan() always seeds the entry; be defensive
            entry = self.cache.put(key, plan)
        if entry.seconds is None:
            seconds = self._measure(plan, x, u)
            self.cache.record_trial(key, plan, seconds)
            self._observe(plan, seconds)
        best_plan, best_seconds = entry.plan, entry.seconds
        for candidate in self._untried(key, entry):
            seconds = self._measure(candidate, x, u)
            self.cache.record_trial(key, candidate, seconds)
            self._observe(candidate, seconds)
            if seconds < best_seconds * (1.0 - self.refine_margin):
                best_plan, best_seconds = candidate, seconds
        if best_plan is not entry.plan:
            entry = self.cache.promote(key, best_plan, best_seconds)
        self._maybe_adopt_refit()
        return entry.plan

    def _observe(self, plan: TtmPlan, seconds: float) -> None:
        """Feed one measurement into the calibration accumulator (if on)."""
        if self._accumulator is None or seconds <= 0:
            return
        self._accumulator.observe(plan, seconds)

    def _maybe_adopt_refit(self) -> None:
        if self._accumulator is None:
            return
        record = self._accumulator.maybe_refit()
        if record is not None:
            # Skip the synthetic-profile rebuild on the hot path: the
            # thresholds and PTH are what changes between refits.
            self.lib.attach_calibration(record, refresh_profile=False)
            log.info(
                "adopted refit calibration (%d samples, digest %s)",
                record.samples, record.digest(),
            )

    def _untried(self, key: PlanKey, entry: CacheEntry) -> list[TtmPlan]:
        """The next alternates to measure for *key* (may be empty)."""
        candidates = enumerate_plans(
            key.shape,
            key.mode,
            key.j,
            key.layout,
            max_threads=key.threads,
            kernels=self.kernels,
            dtype=key.dtype,
        )
        fresh = [
            c for c in candidates if plan_digest(c) not in entry.trials
        ]
        return fresh[: self.refine_trials]
