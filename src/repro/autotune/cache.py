"""The persistent plan cache: per-signature tuned decisions that survive.

Every process used to pay the parameter estimator (and the exhaustive
tuner, when asked) again for signatures the machine had already planned.
:class:`PlanCache` memoizes those decisions across processes: entries
are keyed by the full dispatch signature — tensor shape, product mode,
output rank J, storage layout, thread budget — inside a store file
stamped with this machine's fingerprint, so a key never resolves to a
decision tuned for different hardware.

Besides the chosen plan, an entry remembers *evidence*: the best
measured seconds per candidate plan digest (``trials``).  The online
refinement loop (:class:`repro.autotune.session.AutotuneSession`) feeds
these and promotes a measured winner over the estimator's guess — the
measure-and-promote pattern of cuDNN-style autotune caches.

Robustness contract: a store file that is corrupt, from another schema
version, or from another machine is *never* trusted — the cache logs
the reason, counts an invalidation (visible in :class:`repro.perf
.profiler.HotCounters` and in :attr:`PlanCache.stats`) and degrades to
an empty cache, i.e. the plain estimator path.
"""

from __future__ import annotations

import hashlib
import json
import logging
import threading
from dataclasses import asdict, dataclass, field
from typing import Iterator, Sequence

from repro.autotune.store import PlanStore, default_cache_path
from repro.core.plan import TtmPlan
from repro.core.serialize import plan_from_dict, plan_to_dict
from repro.perf.profiler import active_hot_counters
from repro.tensor.layout import Layout
from repro.util.dtypes import canonical_dtype
from repro.util.errors import CacheError, DtypeError, PlanError

log = logging.getLogger("repro.autotune")


def plan_digest(plan: TtmPlan) -> str:
    """A short content digest identifying one exact plan configuration."""
    text = json.dumps(plan_to_dict(plan), sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()[:12]


@dataclass(frozen=True)
class PlanKey:
    """The dispatch signature an autotuned decision is valid for.

    The dtype is part of the signature: a float32 plan and a float64
    plan for the same geometry make different threshold (and kernel)
    decisions and must never resolve to each other.
    """

    shape: tuple[int, ...]
    mode: int
    j: int
    layout: Layout
    threads: int
    dtype: str = "float64"

    @classmethod
    def make(
        cls,
        shape: Sequence[int],
        mode: int,
        j: int,
        layout: Layout | str,
        threads: int,
        dtype: str = "float64",
    ) -> "PlanKey":
        return cls(
            shape=tuple(int(s) for s in shape),
            mode=int(mode),
            j=int(j),
            layout=Layout.parse(layout),
            threads=int(threads),
            dtype=canonical_dtype(dtype).name,
        )

    def encode(self) -> str:
        """The JSON-object key form, e.g.
        ``20x20x20|m1|J16|ROW_MAJOR|T4|float64``."""
        dims = "x".join(str(s) for s in self.shape)
        return (
            f"{dims}|m{self.mode}|J{self.j}|{self.layout.name}"
            f"|T{self.threads}|{self.dtype}"
        )

    @classmethod
    def decode(cls, text: str) -> "PlanKey":
        try:
            dims, mode, j, layout, threads, dtype = text.split("|")
            return cls(
                shape=tuple(int(s) for s in dims.split("x")),
                mode=int(mode.removeprefix("m")),
                j=int(j.removeprefix("J")),
                layout=Layout[layout],
                threads=int(threads.removeprefix("T")),
                dtype=canonical_dtype(dtype).name,
            )
        except (ValueError, KeyError, DtypeError) as exc:
            raise PlanError(f"malformed plan-cache key {text!r}") from exc


@dataclass
class CacheEntry:
    """One cached decision plus the measurements backing it."""

    plan: TtmPlan
    source: str = "estimator"  # "estimator" | "tuned" | "measured"
    seconds: float | None = None  # best measured seconds of ``plan``
    trials: dict = field(default_factory=dict)  # digest -> best seconds

    def to_dict(self) -> dict:
        return {
            "plan": plan_to_dict(self.plan),
            "source": self.source,
            "seconds": self.seconds,
            "trials": dict(self.trials),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CacheEntry":
        return cls(
            plan=plan_from_dict(payload["plan"]),
            source=str(payload.get("source", "estimator")),
            seconds=payload.get("seconds"),
            trials={
                str(k): float(v)
                for k, v in dict(payload.get("trials", {})).items()
            },
        )


@dataclass
class CacheStats:
    """Lifetime tallies of one cache instance (mirrored to HotCounters).

    One instance tracks the cache-wide totals; the multi-tenant serving
    layer additionally keeps one per tenant (see
    :meth:`PlanCache.tenant_stats`), so a shared cache can report exact
    per-tenant hit rates.
    """

    hits: int = 0
    misses: int = 0
    promotions: int = 0
    invalidations: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when none)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict:
        return asdict(self)


class PlanCache:
    """Disk-backed, fingerprint-guarded map from :class:`PlanKey` to plan.

    Parameters
    ----------
    path:
        Store file location; defaults to :func:`repro.autotune.store
        .default_cache_path` (respects ``$REPRO_PLAN_CACHE``).
    fingerprint:
        Machine stamp for the store file.  Defaults to this host's
        :func:`repro.perf.machine.machine_fingerprint`; pass an explicit
        value in tests or for portable (unstamped) caches.
    autosave:
        Persist after every mutation (entries are small; saves are
        atomic).  Turn off for bulk loads and call :meth:`save` once.
    tenant_quota:
        When set, the most entries any single tenant may have inserted
        and still resident; a tenant's insertion over quota evicts that
        tenant's oldest entry (counted in ``stats.evictions``).  Per
        tenant overrides via :meth:`set_tenant_quota`.

    Thread safety: all stats accounting and entry mutation happens under
    one reentrant lock, so concurrent readers under the multi-tenant
    serving layer observe exact hit/miss/promotion numbers (a bare
    ``+=`` on the stats object would lose increments under contention).
    """

    def __init__(
        self,
        path: str | None = None,
        fingerprint: str | None = None,
        autosave: bool = True,
        store: PlanStore | None = None,
        tenant_quota: int | None = None,
    ) -> None:
        if store is None:
            if fingerprint is None:
                from repro.perf.machine import machine_fingerprint

                fingerprint = machine_fingerprint()
            store = PlanStore(path or default_cache_path(), fingerprint)
        self.store = store
        self.autosave = autosave
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._entries: dict[PlanKey, CacheEntry] = {}
        self._tenant_stats: dict[str, CacheStats] = {}
        self._tenant_keys: dict[str, list[PlanKey]] = {}
        self._tenant_quotas: dict[str, int] = {}
        self._default_tenant_quota = tenant_quota
        self.reload()

    # -- bookkeeping ----------------------------------------------------------

    def _count(self, event: str, n: int = 1, tenant: str | None = None) -> None:
        with self._lock:
            setattr(self.stats, event, getattr(self.stats, event) + n)
            if tenant is not None:
                per_tenant = self._tenant_stats.setdefault(tenant, CacheStats())
                setattr(per_tenant, event, getattr(per_tenant, event) + n)
        counters = active_hot_counters()
        if counters is not None:
            counters.count_plan_cache(event, n)

    # -- tenants ---------------------------------------------------------------

    def set_tenant_quota(self, tenant: str, max_entries: int | None) -> None:
        """Cap how many entries *tenant* may keep resident (None: default)."""
        with self._lock:
            if max_entries is None:
                self._tenant_quotas.pop(tenant, None)
            else:
                if max_entries < 1:
                    raise CacheError(
                        f"tenant quota must be >= 1, got {max_entries}"
                    )
                self._tenant_quotas[tenant] = int(max_entries)

    def tenant_quota(self, tenant: str) -> int | None:
        """The effective entry quota for *tenant* (None: unlimited)."""
        with self._lock:
            return self._tenant_quotas.get(tenant, self._default_tenant_quota)

    def tenant_stats(self, tenant: str) -> CacheStats:
        """Lifetime hit/miss/eviction tallies attributed to *tenant*."""
        with self._lock:
            return self._tenant_stats.setdefault(tenant, CacheStats())

    def tenants(self) -> list[str]:
        """Every tenant that has touched the cache, sorted."""
        with self._lock:
            return sorted(self._tenant_stats)

    def tenant_entries(self, tenant: str) -> int:
        """How many resident entries *tenant* inserted (owned entries)."""
        with self._lock:
            return len(self._tenant_keys.get(tenant, []))

    @property
    def path(self) -> str:
        return self.store.path

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: PlanKey) -> bool:
        with self._lock:
            return key in self._entries

    def items(self) -> Iterator[tuple[PlanKey, CacheEntry]]:
        with self._lock:
            snapshot = sorted(
                self._entries.items(), key=lambda kv: kv[0].encode()
            )
        return iter(snapshot)

    # -- persistence ----------------------------------------------------------

    def reload(self) -> int:
        """(Re)read the store; invalid files invalidate to an empty cache."""
        fresh: dict[PlanKey, CacheEntry] = {}
        try:
            raw = self.store.load()
            for key_text, payload in raw.items():
                key = PlanKey.decode(key_text)
                fresh[key] = CacheEntry.from_dict(payload)
        except (CacheError, PlanError) as exc:
            # One bad entry poisons the file: a partially trusted cache
            # is worse than none.  Count it, log it, start estimating.
            fresh = {}
            self._count("invalidations")
            log.warning(
                "ignoring plan cache %s (%s: %s); falling back to the "
                "estimator path",
                self.store.path,
                type(exc).__name__,
                exc,
            )
        with self._lock:
            self._entries = fresh
            self._tenant_keys = {}
            return len(self._entries)

    def save(self) -> None:
        self.store.save(
            {key.encode(): entry.to_dict() for key, entry in self.items()}
        )

    def _autosave(self) -> None:
        if self.autosave:
            self.save()

    def clear(self) -> int:
        """Drop every entry and delete the store file; returns the count."""
        with self._lock:
            dropped = len(self._entries)
            self._entries = {}
            self._tenant_keys = {}
        self.store.clear()
        return dropped

    # -- the cache proper ------------------------------------------------------

    def get(self, key: PlanKey, tenant: str | None = None) -> CacheEntry | None:
        with self._lock:
            entry = self._entries.get(key)
            self._count("hits" if entry is not None else "misses", tenant=tenant)
            return entry

    def peek(self, key: PlanKey) -> CacheEntry | None:
        """Like :meth:`get` but without touching the hit/miss stats."""
        with self._lock:
            return self._entries.get(key)

    def put(
        self,
        key: PlanKey,
        plan: TtmPlan,
        source: str = "estimator",
        seconds: float | None = None,
        tenant: str | None = None,
    ) -> CacheEntry:
        entry = CacheEntry(plan=plan, source=source, seconds=seconds)
        if seconds is not None:
            entry.trials[plan_digest(plan)] = float(seconds)
        with self._lock:
            if tenant is not None and key not in self._entries:
                self._charge_tenant_insert(key, tenant)
            self._entries[key] = entry
            self._autosave()
        return entry

    def _charge_tenant_insert(self, key: PlanKey, tenant: str) -> None:
        """Record *tenant* inserting *key*, evicting over quota (locked)."""
        owned = self._tenant_keys.setdefault(tenant, [])
        if key in owned:
            return
        quota = self._tenant_quotas.get(tenant, self._default_tenant_quota)
        while quota is not None and len(owned) >= quota:
            oldest = owned.pop(0)
            if self._entries.pop(oldest, None) is not None:
                self._count("evictions", tenant=tenant)
                log.info(
                    "tenant %s over plan-cache quota (%d); evicted %s",
                    tenant,
                    quota,
                    oldest.encode(),
                )
        owned.append(key)

    def record_trial(self, key: PlanKey, plan: TtmPlan, seconds: float) -> None:
        """Fold one measurement into a key's evidence (keeps the minimum)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                raise CacheError(f"no cache entry for {key.encode()!r}")
            digest = plan_digest(plan)
            best = entry.trials.get(digest)
            if best is None or seconds < best:
                entry.trials[digest] = float(seconds)
            if digest == plan_digest(entry.plan):
                entry.seconds = entry.trials[digest]
            self._autosave()

    def promote(self, key: PlanKey, plan: TtmPlan, seconds: float) -> CacheEntry:
        """Install a measured winner over the current decision for *key*."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = self._entries[key] = CacheEntry(plan=plan)
            log.info(
                "promoting measured plan for %s: %.3g s (was %s, %s s)",
                key.encode(),
                seconds,
                entry.source,
                "un-timed" if entry.seconds is None else f"{entry.seconds:.3g}",
            )
            entry.plan = plan
            entry.source = "measured"
            entry.seconds = float(seconds)
            entry.trials[plan_digest(plan)] = min(
                float(seconds),
                entry.trials.get(plan_digest(plan), float("inf")),
            )
            self._count("promotions")
            self._autosave()
        return entry

    # -- InTensLi plan-source protocol ----------------------------------------

    def get_plan(
        self,
        shape: Sequence[int],
        mode: int,
        j: int,
        layout: Layout | str,
        threads: int,
        dtype: str = "float64",
        tenant: str | None = None,
    ) -> TtmPlan | None:
        """Duck-typed lookup used by ``InTensLi.attach_plan_cache``."""
        entry = self.get(
            PlanKey.make(shape, mode, j, layout, threads, dtype), tenant=tenant
        )
        return entry.plan if entry is not None else None

    def put_plan(
        self,
        shape: Sequence[int],
        mode: int,
        j: int,
        layout: Layout | str,
        threads: int,
        plan: TtmPlan,
        source: str = "estimator",
        dtype: str = "float64",
        tenant: str | None = None,
    ) -> None:
        self.put(
            PlanKey.make(shape, mode, j, layout, threads, dtype),
            plan,
            source,
            tenant=tenant,
        )
