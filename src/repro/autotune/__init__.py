"""Persistent autotuning: the plan cache and its online refinement.

The paper's framework decides MSTH/MLTH/PTH *per input* (§4.3.1); this
package makes those decisions — and measured improvements on them —
survive the process.  See :mod:`repro.autotune.cache` for the cache
semantics, :mod:`repro.autotune.store` for the on-disk robustness
contract, and :mod:`repro.autotune.session` for the dispatch wrapper
with measure-and-promote refinement.

Quick start::

    from repro.autotune import AutotuneSession

    session = AutotuneSession(refine=True)
    y = session.ttm(x, u, mode=1)   # estimator once, cache thereafter
"""

from repro.autotune.cache import (
    CacheEntry,
    CacheStats,
    PlanCache,
    PlanKey,
    plan_digest,
)
from repro.autotune.session import AutotuneSession
from repro.autotune.store import CACHE_PATH_ENV, PlanStore, default_cache_path

__all__ = [
    "AutotuneSession",
    "CacheEntry",
    "CacheStats",
    "PlanCache",
    "PlanKey",
    "PlanStore",
    "CACHE_PATH_ENV",
    "default_cache_path",
    "plan_digest",
]
