"""Disk persistence for the autotune plan cache.

One store file holds every tuned decision for one machine, as JSON:

.. code-block:: json

    {
      "schema": 4,
      "fingerprint": "9f2c...",
      "entries": {
        "20x20x20|m1|J16|ROW_MAJOR|T1": {
          "plan": { ... plan_to_dict ... },
          "source": "estimator",
          "seconds": 1.2e-4,
          "trials": {"<digest>": 1.2e-4, "<digest>": 2.0e-4}
        }
      },
      "calibration": {
        "record": { ... CalibrationRecord.to_dict ... },
        "observations": [ ... DseObservation.to_dict ... ]
      }
    }

The optional ``calibration`` section (schema v4) holds the fitted cost
model of :mod:`repro.perf.dse` plus the capped raw observations it was
fitted from; :meth:`PlanStore.save` preserves it across entry rewrites
so plan promotions and calibration refits cannot clobber each other.

The header reuses :mod:`repro.core.serialize`'s schema-version +
machine-fingerprint envelope, so the three failure modes a persistent
cache meets in the wild are told apart and surfaced as distinct
exceptions: :class:`~repro.util.errors.StoreCorruptError` (truncated or
mangled JSON — e.g. a reader racing a non-atomic writer),
:class:`~repro.util.errors.SchemaMismatchError` (file from another
release) and :class:`~repro.util.errors.FingerprintMismatchError` (file
from another machine).  Writes go through a temp file that is fsync'd
before an ``os.replace`` (and the directory fsync'd after), so a
concurrent reader only ever sees the old or the new file — never a
half-written one — and a power loss cannot publish a torn store either.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
import time

from repro.core.serialize import cache_header, check_cache_header
from repro.perf.profiler import active_hot_counters
from repro.resilience.faults import active_faults, record_degradation
from repro.util.errors import StoreCorruptError

log = logging.getLogger("repro.autotune")

#: Environment variable overriding the default store location.
CACHE_PATH_ENV = "REPRO_PLAN_CACHE"

#: Read attempts before a transient OSError is surfaced (NFS hiccups,
#: EINTR-ish conditions); a missing file never retries.
_RETRY_ATTEMPTS = 3

#: First backoff sleep; doubles per retry.  Module-level so tests can
#: patch it to zero.
_RETRY_BASE_SECONDS = 0.05


def default_cache_path() -> str:
    """Where the plan cache lives unless told otherwise.

    ``$REPRO_PLAN_CACHE`` wins; otherwise ``$XDG_CACHE_HOME/repro`` (or
    ``~/.cache/repro``) ``/plans.json``.
    """
    override = os.environ.get(CACHE_PATH_ENV)
    if override:
        return override
    base = os.environ.get("XDG_CACHE_HOME") or os.path.expanduser("~/.cache")
    return os.path.join(base, "repro", "plans.json")


class PlanStore:
    """Atomic load/save of one machine's plan-cache file.

    The store is deliberately dumb: it moves header-checked dicts
    between disk and memory and raises the typed errors above.  Policy —
    what to do when a file is bad, what the entries mean — lives in
    :class:`repro.autotune.cache.PlanCache`.
    """

    def __init__(self, path: str, fingerprint: str | None = None) -> None:
        self.path = path
        self.fingerprint = fingerprint

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def load(self) -> dict:
        """The entries mapping from disk (``{}`` when no file exists).

        Raises :class:`StoreCorruptError`, :class:`SchemaMismatchError`
        or :class:`FingerprintMismatchError`; never returns a partially
        trusted payload.  Transient ``OSError`` reads (shared
        filesystems, EINTR-ish conditions) are retried with exponential
        backoff before giving up; a missing file returns ``{}`` at once.
        """
        payload = self._load_payload()
        if payload is None:
            return {}
        entries = payload.get("entries")
        if not isinstance(entries, dict):
            raise StoreCorruptError(
                f"plan store {self.path} has no entries object"
            )
        for key, entry in entries.items():
            if not isinstance(entry, dict) or "plan" not in entry:
                raise StoreCorruptError(
                    f"plan store {self.path} entry {key!r} is malformed"
                )
        return entries

    def load_calibration(self) -> dict | None:
        """The ``calibration`` section, or None when absent/no file.

        Same header checks (and typed errors) as :meth:`load`; the
        section's *internal* versioning — rejecting a stale fit — is the
        caller's job (:func:`repro.perf.dse.load_calibration_record`).
        """
        payload = self._load_payload()
        if payload is None:
            return None
        calibration = payload.get("calibration")
        if calibration is None:
            return None
        if not isinstance(calibration, dict):
            raise StoreCorruptError(
                f"plan store {self.path} calibration section is not an object"
            )
        return calibration

    def _load_payload(self) -> dict | None:
        """The whole header-checked payload, or None for a missing file."""
        text = self._read_with_retries()
        if text is None:
            return None
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise StoreCorruptError(
                f"plan store {self.path} is not valid JSON "
                f"(half-written or mangled): {exc}"
            ) from exc
        check_cache_header(payload, self.fingerprint)
        return payload

    def _read_with_retries(self) -> str | None:
        """The raw store text, or None for a missing file.

        A cache read failing transiently should not cost the process its
        warm cache: retry up to :data:`_RETRY_ATTEMPTS` times, doubling
        the backoff each round and counting every retry
        (``store_retries``), and only then raise
        :class:`StoreCorruptError` — which :class:`repro.autotune.cache
        .PlanCache` already converts into a cold-cache restart.
        """
        last_exc: OSError | None = None
        for attempt in range(_RETRY_ATTEMPTS):
            try:
                faults = active_faults()
                if faults is not None:
                    faults.check("store-read-error", path=self.path)
                with open(self.path) as fh:
                    return fh.read()
            except FileNotFoundError:
                return None
            except OSError as exc:
                last_exc = exc
                if attempt + 1 < _RETRY_ATTEMPTS:
                    delay = _RETRY_BASE_SECONDS * (2 ** attempt)
                    log.warning(
                        "transient error reading plan store %s (%s); "
                        "retry %d/%d in %.2fs",
                        self.path, exc, attempt + 1,
                        _RETRY_ATTEMPTS - 1, delay,
                    )
                    record_degradation(
                        "store_retries",
                        store_retry=attempt + 1,
                        store_error=type(exc).__name__,
                    )
                    time.sleep(delay)
        raise StoreCorruptError(
            f"cannot read plan store {self.path} after "
            f"{_RETRY_ATTEMPTS} attempts: {last_exc}"
        ) from last_exc

    def save(self, entries: dict) -> None:
        """Atomically replace the store's entries, keeping its calibration.

        The calibration section is written by a different producer (the
        DSE engine) on a different cadence than plan promotions; save
        re-reads and carries it so neither writer erases the other's
        work.  An unreadable existing file simply means nothing to
        preserve — the save proceeds and heals the store.
        """
        calibration = None
        try:
            calibration = self.load_calibration()
        except Exception:  # corrupt/foreign store: overwrite it wholesale
            log.debug(
                "not preserving calibration from unreadable store %s",
                self.path, exc_info=True,
            )
        self._write_payload(entries, calibration)

    def save_calibration(self, calibration: dict | None) -> None:
        """Atomically replace the calibration section, keeping entries.

        ``None`` removes the section.  An unreadable existing file
        yields empty entries — same healing policy as :meth:`save`.
        """
        entries: dict = {}
        try:
            entries = self.load()
        except Exception:
            log.debug(
                "not preserving entries from unreadable store %s",
                self.path, exc_info=True,
            )
        self._write_payload(entries, calibration)

    def _write_payload(self, entries: dict, calibration: dict | None) -> None:
        payload = cache_header(self.fingerprint)
        payload["entries"] = entries
        if calibration is not None:
            payload["calibration"] = calibration
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            prefix=".plans-", suffix=".tmp", dir=directory
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, indent=2)
                # os.replace alone only orders the rename against other
                # *renames*; without flushing the temp file's data (and
                # the directory entry) to media first, a power loss can
                # publish a zero-length or torn store at the final path.
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        try:
            dir_fd = os.open(directory, os.O_RDONLY)
        except OSError:
            dir_fd = None
        if dir_fd is not None:
            try:
                os.fsync(dir_fd)
            except OSError:
                pass
            finally:
                os.close(dir_fd)
        counters = active_hot_counters()
        if counters is not None:
            counters.count_store_fsync()

    def clear(self) -> bool:
        """Delete the store file; True when one existed."""
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            return False
        log.info("cleared plan store %s", self.path)
        return True
