"""Deterministic random-number generation helpers.

Every stochastic routine in the library accepts either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy) and
funnels through :func:`default_rng` so behaviour is reproducible in tests.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | None"


def default_rng(seed=None) -> np.random.Generator:
    """Return a NumPy Generator from a seed, an existing generator, or None."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
