"""Shared utilities: errors, argument validation, RNG, and formatting.

These helpers are deliberately tiny and dependency-free so that every
substrate (tensor, gemm, cachesim, core) can rely on them without import
cycles.
"""

from repro.util.errors import (
    ReproError,
    LayoutError,
    PlanError,
    ShapeError,
    StrideError,
)
from repro.util.validation import (
    check_axis,
    check_mode,
    check_positive_int,
    check_probability,
    normalized_order,
)
from repro.util.rng import default_rng
from repro.util.formatting import (
    format_bytes,
    format_gflops,
    format_shape,
    format_table,
)

__all__ = [
    "ReproError",
    "LayoutError",
    "PlanError",
    "ShapeError",
    "StrideError",
    "check_axis",
    "check_mode",
    "check_positive_int",
    "check_probability",
    "normalized_order",
    "default_rng",
    "format_bytes",
    "format_gflops",
    "format_shape",
    "format_table",
]
