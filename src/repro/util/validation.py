"""Argument validation helpers used across the package.

The public API validates eagerly with clear error messages; inner kernels
assume validated inputs for speed.
"""

from __future__ import annotations

from typing import Sequence

from repro.util.errors import ShapeError


def check_positive_int(value: int, name: str) -> int:
    """Validate that *value* is a positive (>= 1) integer and return it."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return int(value)


def check_mode(mode: int, order: int) -> int:
    """Validate a 0-based mode index against a tensor order and return it.

    The paper uses 1-based modes; this library is 0-based throughout and
    converts only when printing paper-style output.
    """
    if isinstance(mode, bool) or not isinstance(mode, int):
        raise TypeError(f"mode must be an int, got {type(mode).__name__}")
    if not 0 <= mode < order:
        raise ShapeError(f"mode {mode} out of range for order-{order} tensor")
    return mode


def check_axis(axis: int, ndim: int) -> int:
    """Validate an axis index, allowing negative indices; return normalized."""
    if isinstance(axis, bool) or not isinstance(axis, int):
        raise TypeError(f"axis must be an int, got {type(axis).__name__}")
    if axis < 0:
        axis += ndim
    if not 0 <= axis < ndim:
        raise ShapeError(f"axis {axis} out of range for ndim {ndim}")
    return axis


def check_probability(value: float, name: str) -> float:
    """Validate that *value* lies in [0, 1] and return it as float."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_finite_result(array, kernel: str, context: str = "ttm") -> None:
    """Raise :class:`NumericError` when *array* contains NaN/Inf.

    Opt-in validation for the execution layer (``check_finite=True``):
    the error names the kernel that produced the values, so a poisoned
    result is attributed to its producer instead of surfacing three
    layers later in caller arithmetic.
    """
    import numpy as np

    from repro.util.errors import NumericError

    if array.size == 0 or array.dtype.kind not in "fc":
        return
    if bool(np.isfinite(array).all()):
        return
    bad = int(array.size - np.count_nonzero(np.isfinite(array)))
    raise NumericError(
        f"{context} result contains {bad} non-finite value(s) "
        f"(NaN/Inf) produced by kernel {kernel!r}; check the operands "
        "for non-finite input or overflow at this precision"
    )


def normalized_order(perm: Sequence[int], ndim: int) -> tuple[int, ...]:
    """Validate that *perm* is a permutation of range(ndim); return a tuple."""
    perm_t = tuple(int(p) for p in perm)
    if sorted(perm_t) != list(range(ndim)):
        raise ShapeError(f"{perm!r} is not a permutation of range({ndim})")
    return perm_t
