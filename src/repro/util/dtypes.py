"""Element-type policy: which dtypes the TTM stack executes faithfully.

The paper's working-set analysis (§4.3.1) is stated in *bytes*, not
elements, so the element size is a first-class tuning input: a float32
kernel touches half the memory of the float64 kernel with the same
geometry, which shifts the MSTH/MLTH window and therefore the chosen
degree.  This module pins down the supported set and the normalization
rule every layer (tensor wrapper, plan, estimator, kernels, plan cache)
shares, so "what dtype is this computation" has exactly one answer
end-to-end — never a silent upcast.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import DtypeError

#: Element types the plan/kernel stack executes natively.  float64 is the
#: paper's setting; float32 is the inference-style workload (half the
#: memory traffic); float16 is storage-only in BLAS terms and routes to
#: the blocked kernel (see :func:`repro.gemm.interface.resolve_kernel`).
SUPPORTED_DTYPES: tuple[str, ...] = ("float16", "float32", "float64")

#: The library-wide default (the paper's convention).
DEFAULT_DTYPE = np.dtype(np.float64)


def canonical_dtype(dtype) -> np.dtype:
    """Normalize *dtype* to a supported :class:`numpy.dtype`.

    Accepts anything ``np.dtype`` accepts (names, type objects, dtype
    instances); raises :class:`DtypeError` for element types outside
    :data:`SUPPORTED_DTYPES` instead of guessing a coercion.
    """
    try:
        dt = np.dtype(dtype)
    except TypeError as exc:
        raise DtypeError(f"not a dtype: {dtype!r}") from exc
    if dt.name not in SUPPORTED_DTYPES:
        raise DtypeError(
            f"dtype {dt.name!r} is not supported; choose from "
            f"{SUPPORTED_DTYPES}"
        )
    return dt


def result_dtype(*operands) -> np.dtype:
    """The dtype a kernel should allocate its output in.

    NumPy type promotion over the operands, floored at float64 for
    non-float inputs (ints, bools) so the kernels keep their historical
    behaviour of computing in floating point — but a float32 @ float32
    multiply stays float32 instead of being silently widened.
    """
    dt = np.result_type(*operands)
    if dt.kind != "f" or dt.name not in SUPPORTED_DTYPES:
        return DEFAULT_DTYPE
    return dt


def is_supported_dtype(dtype) -> bool:
    """True when *dtype* normalizes to a member of :data:`SUPPORTED_DTYPES`."""
    try:
        canonical_dtype(dtype)
    except DtypeError:
        return False
    return True
