"""Human-readable formatting used by benchmarks and examples."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_bytes(nbytes: float) -> str:
    """Format a byte count with a binary-prefix unit (e.g. ``1.25 MiB``)."""
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return f"{value:.2f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_gflops(gflops: float) -> str:
    """Format a GFLOP/s rate with two decimals."""
    return f"{gflops:.2f} GFLOP/s"


def format_shape(shape: Sequence[int]) -> str:
    """Format a tensor shape as ``I1 x I2 x ... x IN``."""
    return " x ".join(str(int(s)) for s in shape)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a simple fixed-width text table (used by bench harness output)."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
