"""Exception hierarchy for the repro package.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch one base class.  Subclasses also
derive from the matching builtin (``ValueError``/``TypeError``) so that
generic call sites keep working.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ShapeError(ReproError, ValueError):
    """An array or tensor has an incompatible shape for the operation."""


class StrideError(ReproError, ValueError):
    """A stride configuration is invalid or unsupported by a kernel."""


class LayoutError(ReproError, ValueError):
    """A tensor layout (row-/column-major) is invalid for the operation."""


class PlanError(ReproError, ValueError):
    """A TTM execution plan is malformed or inconsistent with its input."""


class DtypeError(ReproError, TypeError):
    """An element type is unsupported or inconsistent across operands.

    Raised instead of silently upcasting: a hidden ``astype`` on a tensor
    operand allocates a full copy, which is exactly the cost the in-place
    algorithm exists to avoid.
    """


class BenchmarkError(ReproError, RuntimeError):
    """A benchmark profile is missing data required by the estimator."""


class CacheError(ReproError, RuntimeError):
    """A persistent plan-cache store cannot be used as-is.

    Subclasses distinguish corruption, schema-version mismatches and
    foreign machine fingerprints; all are recoverable — the cache logs,
    counts an invalidation and rebuilds from the estimator path.
    """


class ResourceError(ReproError, MemoryError):
    """A TTM would exceed the memory the pre-flight guard sees available.

    Raised *before* any allocation, from the plan's own size arithmetic,
    so a too-large call fails cleanly instead of dying mid-flight with a
    partially written output.  ``ttm_inplace(..., allow_replan=True)``
    degrades to a lower-degree plan instead when one fits.
    """


class KernelExecutionError(ReproError, RuntimeError):
    """Every tier of the GEMM kernel fallback chain failed.

    The executor degrades ``blas -> blocked -> reference`` with one retry
    per tier; this error means even the reference kernel raised.  The
    original exception is chained as ``__cause__``.
    """


class DeadlineError(ReproError, TimeoutError):
    """A supervised parallel region exceeded its watchdog deadline.

    Raised by :func:`repro.parallel.parfor` instead of blocking forever
    on a stuck worker; the suspect pool is evicted so the next call gets
    a fresh worker team.
    """


class NumericError(ReproError, ArithmeticError):
    """A kernel produced non-finite values (NaN/Inf) in the result.

    Only raised when the caller opts in (``check_finite=True``); the
    message names the kernel that produced the values.
    """


class OverloadError(ReproError, RuntimeError):
    """A serving request was shed instead of executed.

    Raised by :class:`repro.serve.TtmServer` when admission control
    refuses a request (server or tenant at capacity), when a queued
    request's deadline expires before dispatch, or when the serving
    watchdog gives up on a stuck batch.  ``reason`` distinguishes the
    three (``"admission"``, ``"tenant-quota"``, ``"deadline"``,
    ``"watchdog"``) so load reports can attribute every shed.
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str = "overload",
        tenant: "str | None" = None,
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.tenant = tenant


class RecoveryError(ReproError, RuntimeError):
    """A journaled job cannot be resumed or verified.

    Raised by :mod:`repro.resilience.recovery` when a journal's header
    does not match the job being resumed (different inputs, tiling
    decision, or schema version), when a journal is structurally
    unusable (no header), or when a checkpoint sidecar the journal
    points at is missing.  Checksum *mismatches* on landed data are not
    errors — they trigger recomputation (resume) or a failing verify
    report — because surviving torn writes is the module's job.
    """


class StoreCorruptError(CacheError, PlanError):
    """A cache file is unreadable: truncated, invalid JSON, wrong types."""


class SchemaMismatchError(CacheError, PlanError):
    """A cache file was written under a different serialization schema."""


class FingerprintMismatchError(CacheError, PlanError):
    """A cache file was autotuned on a different machine."""
