"""Exception hierarchy for the repro package.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch one base class.  Subclasses also
derive from the matching builtin (``ValueError``/``TypeError``) so that
generic call sites keep working.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ShapeError(ReproError, ValueError):
    """An array or tensor has an incompatible shape for the operation."""


class StrideError(ReproError, ValueError):
    """A stride configuration is invalid or unsupported by a kernel."""


class LayoutError(ReproError, ValueError):
    """A tensor layout (row-/column-major) is invalid for the operation."""


class PlanError(ReproError, ValueError):
    """A TTM execution plan is malformed or inconsistent with its input."""


class DtypeError(ReproError, TypeError):
    """An element type is unsupported or inconsistent across operands.

    Raised instead of silently upcasting: a hidden ``astype`` on a tensor
    operand allocates a full copy, which is exactly the cost the in-place
    algorithm exists to avoid.
    """


class BenchmarkError(ReproError, RuntimeError):
    """A benchmark profile is missing data required by the estimator."""


class CacheError(ReproError, RuntimeError):
    """A persistent plan-cache store cannot be used as-is.

    Subclasses distinguish corruption, schema-version mismatches and
    foreign machine fingerprints; all are recoverable — the cache logs,
    counts an invalidation and rebuilds from the estimator path.
    """


class StoreCorruptError(CacheError, PlanError):
    """A cache file is unreadable: truncated, invalid JSON, wrong types."""


class SchemaMismatchError(CacheError, PlanError):
    """A cache file was written under a different serialization schema."""


class FingerprintMismatchError(CacheError, PlanError):
    """A cache file was autotuned on a different machine."""
