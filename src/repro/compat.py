"""Tensor Toolbox-style compatibility layer.

The baseline this paper measures against is MATLAB's Tensor Toolbox,
whose conventions differ from this library's: 1-based modes,
column-major storage, ``ttm(X, A, n)`` / ``ttm(X, A, n, 't')`` call
forms, list-of-matrices chains, and negative-mode exclusion
(``ttm(X, As, -n)`` = multiply along every mode except ``n``).  This
module speaks those conventions while executing everything through the
in-place input-adaptive framework — the drop-in-replacement story made
literal for code being ported from the Toolbox.
"""

from __future__ import annotations

import numpy as np

from repro.core.chain import ChainStep, ttm_chain
from repro.core.intensli import ttm as _adaptive_ttm
from repro.tensor.dense import DenseTensor
from repro.tensor.layout import COL_MAJOR
from repro.tensor.unfold import unfold as _unfold
from repro.util.errors import ShapeError


def tensor(data: np.ndarray) -> DenseTensor:
    """``tensor(A)``: wrap an array in MATLAB (column-major) convention."""
    return DenseTensor(np.asarray(data, dtype=np.float64), COL_MAJOR)


def ndims(x: DenseTensor) -> int:
    """``ndims(X)``: the tensor order."""
    return x.order


def size(x: DenseTensor, n: int | None = None):
    """``size(X)`` or ``size(X, n)`` with a 1-based mode."""
    if n is None:
        return x.shape
    return x.shape[_to_zero_based(n, x.order)]


def norm(x: DenseTensor) -> float:
    """``norm(X)``: the Frobenius norm."""
    return float(np.linalg.norm(x.data))


def tenmat(x: DenseTensor, rdim: int) -> np.ndarray:
    """``tenmat(X, n)``: the mode-n unfolding, 1-based mode.

    Matches the Toolbox's column ordering for column-major tensors
    (remaining modes in increasing order, first varying fastest).
    """
    return _unfold(x, _to_zero_based(rdim, x.order))


def _to_zero_based(n: int, order: int) -> int:
    if not isinstance(n, (int, np.integer)) or isinstance(n, bool):
        raise TypeError(f"mode must be an int, got {type(n).__name__}")
    if not 1 <= n <= order:
        raise ShapeError(
            f"mode {n} out of range for an order-{order} tensor (1-based)"
        )
    return int(n) - 1


def ttm(
    x: DenseTensor,
    matrices,
    n=None,
    flag: str = "",
) -> DenseTensor:
    """Tensor Toolbox ``ttm``, all call forms.

    * ``ttm(X, A, n)`` — mode-n product with ``A (J x I_n)``, n 1-based;
    * ``ttm(X, A, n, 't')`` — uses ``A``'s transpose (``A`` is
      ``I_n x J``), served as a view;
    * ``ttm(X, {A1..Ak}, [n1..nk])`` — a chain (order-optimized);
    * ``ttm(X, {A1..AN}, -n)`` — every mode except ``n``;
    * ``ttm(X, {A1..AN})`` — every mode.
    """
    if not isinstance(x, DenseTensor):
        x = tensor(x)
    if flag not in ("", "t"):
        raise ShapeError(f"flag must be '' or 't', got {flag!r}")
    transpose = flag == "t"

    if isinstance(matrices, np.ndarray):
        if n is None:
            raise ShapeError("ttm with a single matrix needs a mode")
        mode = _to_zero_based(int(n), x.order)
        u = matrices.T if transpose else matrices
        return _adaptive_ttm(x, np.asarray(u, dtype=np.float64), mode)

    mats = [np.asarray(m, dtype=np.float64) for m in matrices]
    order = x.order
    if n is None:
        modes = list(range(1, len(mats) + 1))
    elif isinstance(n, (int, np.integer)):
        if n < 0:
            skip = _to_zero_based(int(-n), order)
            if len(mats) not in (order, order - 1):
                raise ShapeError(
                    f"ttm(X, As, -n) needs {order} (indexed by mode) or "
                    f"{order - 1} matrices, got {len(mats)}"
                )
            modes_0 = [m for m in range(order) if m != skip]
            if len(mats) == order:
                mats = [mats[m] for m in modes_0]
            modes = [m + 1 for m in modes_0]
        else:
            modes = [int(n)]
            if len(mats) != 1:
                raise ShapeError(
                    "a single positive mode takes a single matrix"
                )
    else:
        modes = [int(m) for m in n]
    if len(modes) != len(mats):
        raise ShapeError(
            f"{len(mats)} matrices but {len(modes)} modes"
        )
    steps = []
    for mode_1, u in zip(modes, mats):
        mode = _to_zero_based(mode_1, order)
        u_eff = u.T if transpose else u
        steps.append(ChainStep(mode, u_eff))
    return ttm_chain(x, steps, backend=_adaptive_ttm, order="greedy")


def ttv(x: DenseTensor, vector: np.ndarray, n: int) -> DenseTensor | float:
    """``ttv(X, v, n)``: tensor-times-vector, 1-based mode.

    Contracts mode *n* away entirely (order drops by one); an order-1
    input yields a scalar.
    """
    if not isinstance(x, DenseTensor):
        x = tensor(x)
    v = np.asarray(vector, dtype=np.float64)
    if v.ndim != 1:
        raise ShapeError(f"v must be 1-D, got {v.ndim}-D")
    mode = _to_zero_based(n, x.order)
    if v.shape[0] != x.shape[mode]:
        raise ShapeError(
            f"v has length {v.shape[0]}, mode {n} has extent "
            f"{x.shape[mode]}"
        )
    contracted = _adaptive_ttm(x, v[None, :], mode)
    squeezed = np.squeeze(contracted.data, axis=mode)
    if squeezed.ndim == 0:
        return float(squeezed)
    return DenseTensor(squeezed, x.layout)
