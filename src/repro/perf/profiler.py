"""Phase profiler: attributes time and space to named phases.

Figure 4 of the paper profiles the conventional TTM into a *transform*
phase (matricize + tensorize copies) and a *multiply* phase (the GEMM),
reporting each phase's fraction of total time and of total storage.  The
baselines in :mod:`repro.baselines` instrument themselves with this
profiler so the same breakdown can be reproduced for any input.

This module also hosts the TTM executor's **hot-path counters**
(:class:`HotCounters`): lightweight tallies of GEMM dispatches, batched
calls and batch sizes, and view-construction time.  They exist to make
the batched engine's interpreter-overhead reduction *measurable* — a
batched plan should show the dispatch count dropping by the batch factor
while the math stays identical.  Collection is off by default (the
executor checks one module global per call), so the hot path pays
nothing when nobody is watching.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class PhaseProfile:
    """Accumulated per-phase seconds and bytes for one profiled run."""

    seconds: dict = field(default_factory=dict)
    bytes: dict = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes.values())

    def time_fraction(self, phase: str) -> float:
        """Fraction of total time spent in *phase* (0 when nothing timed)."""
        total = self.total_seconds
        return self.seconds.get(phase, 0.0) / total if total > 0 else 0.0

    def space_fraction(self, phase: str) -> float:
        """Fraction of total charged bytes attributed to *phase*."""
        total = self.total_bytes
        return self.bytes.get(phase, 0) / total if total > 0 else 0.0

    def merge(self, other: "PhaseProfile") -> "PhaseProfile":
        """Sum another profile into this one (for aggregating repeats)."""
        for phase, secs in other.seconds.items():
            self.seconds[phase] = self.seconds.get(phase, 0.0) + secs
        for phase, nbytes in other.bytes.items():
            self.bytes[phase] = self.bytes.get(phase, 0) + nbytes
        return self


class PhaseProfiler:
    """Collects phase timings/space charges during an instrumented run.

    Usage::

        prof = PhaseProfiler()
        with prof.phase("transform"):
            ...copies...
        prof.charge_bytes("transform", temp.nbytes)
        with prof.phase("multiply"):
            ...gemm...
        prof.profile.time_fraction("transform")
    """

    def __init__(self) -> None:
        self.profile = PhaseProfile()

    @contextmanager
    def phase(self, name: str):
        """Time a block and charge it to phase *name* (re-enterable)."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            lap = time.perf_counter() - start
            self.profile.seconds[name] = (
                self.profile.seconds.get(name, 0.0) + lap
            )

    def charge_bytes(self, name: str, nbytes: int) -> None:
        """Attribute *nbytes* of allocated storage to phase *name*."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        self.profile.bytes[name] = self.profile.bytes.get(name, 0) + int(nbytes)


class NullProfiler(PhaseProfiler):
    """A profiler that discards everything (keeps hot paths branch-free)."""

    @contextmanager
    def phase(self, name: str):
        yield self

    def charge_bytes(self, name: str, nbytes: int) -> None:
        pass


# -- hot-path counters --------------------------------------------------------


@dataclass
class HotCounters:
    """Tallies from one instrumented region of the TTM hot path.

    ``gemm_calls`` counts interpreter-level GEMM dispatches (one per loop
    iteration on the per-iteration path); ``batched_calls`` counts batched
    dispatches and ``batched_slices`` the matrix multiplies they covered,
    so ``gemm_calls + batched_slices`` is the total GEMM work while
    ``gemm_calls + batched_calls`` is the interpreter crossings paid for
    it.  ``view_seconds`` accumulates time spent constructing strided
    views (the executor's non-GEMM overhead).

    The planning layer reports here too, so a tracked region shows how
    much *deciding* happened alongside the executing: ``estimator_runs``
    counts full parameter estimations, ``tuner_sweeps`` exhaustive
    sweeps, and the ``plan_cache_*`` fields mirror the persistent
    autotune cache (:mod:`repro.autotune`) — lookups served (``hits``)
    or not (``misses``), refinement ``promotions``, and store files
    rejected as corrupt/stale/foreign (``invalidations``).
    """

    gemm_calls: int = 0
    batched_calls: int = 0
    batched_slices: int = 0
    max_batch: int = 0
    view_seconds: float = 0.0
    estimator_runs: int = 0
    tuner_sweeps: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    plan_cache_promotions: int = 0
    plan_cache_invalidations: int = 0
    plan_cache_evictions: int = 0
    kernel_fallbacks: int = 0
    pool_replacements: int = 0
    serial_degradations: int = 0
    watchdog_timeouts: int = 0
    store_retries: int = 0
    memory_replans: int = 0
    tiled_ttms: int = 0
    tiles_executed: int = 0
    tile_pack_bytes: int = 0
    stream_chunks: int = 0
    dse_measurements: int = 0
    calibration_refits: int = 0
    tiles_resumed: int = 0
    tiles_reverified: int = 0
    journal_commits: int = 0
    store_fsyncs: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    @property
    def dispatches(self) -> int:
        """Interpreter-level kernel dispatches (the overhead unit)."""
        return self.gemm_calls + self.batched_calls

    @property
    def total_slices(self) -> int:
        """Individual matrix multiplies executed, batched or not."""
        return self.gemm_calls + self.batched_slices

    def count_gemm(self, calls: int = 1) -> None:
        with self._lock:
            self.gemm_calls += calls

    def count_batched(self, slices: int) -> None:
        with self._lock:
            self.batched_calls += 1
            self.batched_slices += slices
            if slices > self.max_batch:
                self.max_batch = slices

    def add_view_time(self, seconds: float) -> None:
        with self._lock:
            self.view_seconds += seconds

    def count_estimate(self) -> None:
        with self._lock:
            self.estimator_runs += 1

    def count_tuner_sweep(self) -> None:
        with self._lock:
            self.tuner_sweeps += 1

    def count_plan_cache(self, event: str, n: int = 1) -> None:
        """Bump one of the ``plan_cache_*`` tallies by name.

        *event* is ``"hits"``, ``"misses"``, ``"promotions"`` or
        ``"invalidations"`` — the same vocabulary
        :class:`repro.autotune.CacheStats` uses, so the cache can mirror
        its stats into an active tracking region with one call.
        """
        field_name = f"plan_cache_{event}"
        if not hasattr(self, field_name):
            raise ValueError(f"unknown plan-cache counter {event!r}")
        with self._lock:
            setattr(self, field_name, getattr(self, field_name) + n)

    #: Degradation events the resilience layer may report (each is a field).
    RESILIENCE_EVENTS = (
        "kernel_fallbacks",
        "pool_replacements",
        "serial_degradations",
        "watchdog_timeouts",
        "store_retries",
        "memory_replans",
    )

    def count_resilience(self, event: str, n: int = 1) -> None:
        """Bump one of the resilience degradation tallies by name.

        *event* is one of :data:`RESILIENCE_EVENTS` — the vocabulary the
        resilience layer (:mod:`repro.resilience`) and the supervised
        ``parfor`` use, so every degradation path increments exactly one
        named counter.
        """
        if event not in self.RESILIENCE_EVENTS:
            raise ValueError(f"unknown resilience counter {event!r}")
        with self._lock:
            setattr(self, event, getattr(self, event) + n)

    def count_tiled(self, tiles: int, pack_bytes: int = 0) -> None:
        """Report one tiled TTM execution: tile count and bytes packed.

        ``tile_pack_bytes`` measures the staging traffic tiling paid for
        non-contiguous tiles — zero when every tile ran as a pure view,
        which is the geometry the planner prefers.
        """
        with self._lock:
            self.tiled_ttms += 1
            self.tiles_executed += tiles
            self.tile_pack_bytes += pack_bytes

    def count_stream_chunk(self, n: int = 1) -> None:
        with self._lock:
            self.stream_chunks += n

    def count_recovery(self, resumed: int = 0, reverified: int = 0) -> None:
        """Report a resume pass: units re-checksummed, units skipped.

        ``tiles_reverified`` counts committed units whose landed bytes
        were re-checksummed on resume; ``tiles_resumed`` the subset that
        verified clean and were skipped — the work a crash did *not*
        throw away.  The difference is recomputed (torn/corrupt) units.
        """
        with self._lock:
            self.tiles_resumed += resumed
            self.tiles_reverified += reverified

    def count_journal_commit(self, n: int = 1) -> None:
        """Report commit records appended to a recovery journal."""
        with self._lock:
            self.journal_commits += n

    def count_store_fsync(self, n: int = 1) -> None:
        """Report durable (fsync'd) plan-store publishes."""
        with self._lock:
            self.store_fsyncs += n

    def count_dse(self, measurements: int = 1) -> None:
        """Report design-space-exploration timings taken on the live host."""
        with self._lock:
            self.dse_measurements += measurements

    def count_calibration_refit(self) -> None:
        """Report one refit of the calibrated cost model from measurements."""
        with self._lock:
            self.calibration_refits += 1

    def as_dict(self) -> dict:
        """A JSON-safe snapshot of every tally (plus the derived sums).

        ``dataclasses.asdict`` would choke on the lock field; this is the
        form :func:`repro.obs.snapshot` folds into its counter registry.
        """
        with self._lock:
            return {
                "gemm_calls": self.gemm_calls,
                "batched_calls": self.batched_calls,
                "batched_slices": self.batched_slices,
                "max_batch": self.max_batch,
                "view_seconds": self.view_seconds,
                "estimator_runs": self.estimator_runs,
                "tuner_sweeps": self.tuner_sweeps,
                "plan_cache_hits": self.plan_cache_hits,
                "plan_cache_misses": self.plan_cache_misses,
                "plan_cache_promotions": self.plan_cache_promotions,
                "plan_cache_invalidations": self.plan_cache_invalidations,
                "plan_cache_evictions": self.plan_cache_evictions,
                "kernel_fallbacks": self.kernel_fallbacks,
                "pool_replacements": self.pool_replacements,
                "serial_degradations": self.serial_degradations,
                "watchdog_timeouts": self.watchdog_timeouts,
                "store_retries": self.store_retries,
                "memory_replans": self.memory_replans,
                "tiled_ttms": self.tiled_ttms,
                "tiles_executed": self.tiles_executed,
                "tile_pack_bytes": self.tile_pack_bytes,
                "stream_chunks": self.stream_chunks,
                "dse_measurements": self.dse_measurements,
                "calibration_refits": self.calibration_refits,
                "tiles_resumed": self.tiles_resumed,
                "tiles_reverified": self.tiles_reverified,
                "journal_commits": self.journal_commits,
                "store_fsyncs": self.store_fsyncs,
                "dispatches": self.gemm_calls + self.batched_calls,
                "total_slices": self.gemm_calls + self.batched_slices,
            }


_HOT_COUNTERS: HotCounters | None = None


def active_hot_counters() -> HotCounters | None:
    """The counters currently collecting, or None (the common fast case)."""
    return _HOT_COUNTERS


def install_hot_counters(counters: HotCounters | None) -> HotCounters | None:
    """Make *counters* the active sink; returns the previous one.

    The seam :func:`repro.obs.tracing` uses to fold counters and spans
    into one registry — callers must restore the returned previous sink
    (``track_hot_path`` remains the plain context-managed form).
    """
    global _HOT_COUNTERS
    previous = _HOT_COUNTERS
    _HOT_COUNTERS = counters
    return previous


@contextmanager
def track_hot_path():
    """Collect hot-path counters for the duration of a ``with`` block.

    Yields the :class:`HotCounters` being filled; instrumented code looks
    the active collector up via :func:`active_hot_counters`.  Regions do
    not nest — the innermost wins — which is fine for the benchmarking
    use this serves.
    """
    global _HOT_COUNTERS
    counters = HotCounters()
    previous = _HOT_COUNTERS
    _HOT_COUNTERS = counters
    try:
        yield counters
    finally:
        _HOT_COUNTERS = previous
