"""Phase profiler: attributes time and space to named phases.

Figure 4 of the paper profiles the conventional TTM into a *transform*
phase (matricize + tensorize copies) and a *multiply* phase (the GEMM),
reporting each phase's fraction of total time and of total storage.  The
baselines in :mod:`repro.baselines` instrument themselves with this
profiler so the same breakdown can be reproduced for any input.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class PhaseProfile:
    """Accumulated per-phase seconds and bytes for one profiled run."""

    seconds: dict = field(default_factory=dict)
    bytes: dict = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes.values())

    def time_fraction(self, phase: str) -> float:
        """Fraction of total time spent in *phase* (0 when nothing timed)."""
        total = self.total_seconds
        return self.seconds.get(phase, 0.0) / total if total > 0 else 0.0

    def space_fraction(self, phase: str) -> float:
        """Fraction of total charged bytes attributed to *phase*."""
        total = self.total_bytes
        return self.bytes.get(phase, 0) / total if total > 0 else 0.0

    def merge(self, other: "PhaseProfile") -> "PhaseProfile":
        """Sum another profile into this one (for aggregating repeats)."""
        for phase, secs in other.seconds.items():
            self.seconds[phase] = self.seconds.get(phase, 0.0) + secs
        for phase, nbytes in other.bytes.items():
            self.bytes[phase] = self.bytes.get(phase, 0) + nbytes
        return self


class PhaseProfiler:
    """Collects phase timings/space charges during an instrumented run.

    Usage::

        prof = PhaseProfiler()
        with prof.phase("transform"):
            ...copies...
        prof.charge_bytes("transform", temp.nbytes)
        with prof.phase("multiply"):
            ...gemm...
        prof.profile.time_fraction("transform")
    """

    def __init__(self) -> None:
        self.profile = PhaseProfile()

    @contextmanager
    def phase(self, name: str):
        """Time a block and charge it to phase *name* (re-enterable)."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            lap = time.perf_counter() - start
            self.profile.seconds[name] = (
                self.profile.seconds.get(name, 0.0) + lap
            )

    def charge_bytes(self, name: str, nbytes: int) -> None:
        """Attribute *nbytes* of allocated storage to phase *name*."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        self.profile.bytes[name] = self.profile.bytes.get(name, 0) + int(nbytes)


class NullProfiler(PhaseProfiler):
    """A profiler that discards everything (keeps hot paths branch-free)."""

    @contextmanager
    def phase(self, name: str):
        yield self

    def charge_bytes(self, name: str, nbytes: int) -> None:
        pass
