"""Design-space exploration: fit the cost model from live measurements.

The paper fixes its thresholds (MSTH/MLTH from the figure-8 GEMM sweep,
PTH from InTTM runs) once, offline, per machine.  This module closes
ROADMAP item 3's loop: it *measures* the (kernel, degree, thread-split,
dtype) configuration space on the machine actually running — either in
one explicit sweep (``python -m repro calibrate run``) or incrementally
from the timings the autotune session takes anyway — and refits the
estimator's inputs from those observations:

* **MSTH/MLTH** per kernel-thread count, by the same
  fraction-of-peak rule :func:`repro.core.partition.derive_thresholds`
  applies to the offline benchmark, but over the *scatter* of measured
  kernel working sets rather than a fixed ``n`` grid;
* **PTH**, from the measured crossover between all-loop and all-kernel
  thread allocations;
* the roofline inputs (peak GFLOP/s, bandwidth), combining measured
  rates with :mod:`repro.cachesim` traffic counts so memory-bound
  observations yield a bandwidth estimate without a separate STREAM run.

The fitted :class:`CalibrationRecord` persists per machine fingerprint
in the :class:`~repro.autotune.store.PlanStore`'s ``calibration``
section (schema v4) with its own version stamp, and
:class:`~repro.core.estimator.ParameterEstimator` consults it ahead of
``PAPER_THRESHOLDS`` / synthetic profiles — the paper defaults remain
the untouched fallback whenever no calibration exists.
"""

from __future__ import annotations

import hashlib
import json
import logging
import math
import statistics
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

# NOTE: repro.core / repro.obs are imported lazily inside functions.
# This module is re-exported from ``repro.perf``, which the core layer
# itself imports; a module-level import back into core would cycle.
from repro.perf.blasctl import blas_threads
from repro.perf.machine import MachineInfo, machine_info
from repro.perf.profiler import active_hot_counters
from repro.util.errors import BenchmarkError, SchemaMismatchError
from repro.util.validation import check_positive_int, check_probability

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.roofline import RooflinePlatform
    from repro.autotune.store import PlanStore
    from repro.core.plan import TtmPlan

log = logging.getLogger("repro.perf")

#: Version of the persisted calibration payload.  Bumped when the fit
#: changes meaning; readers reject other versions (the paper-default
#: fallback then applies) instead of trusting a stale fit.
CALIBRATION_VERSION = 1

#: Raw observations kept in the store's calibration section so the
#: online accumulator can refit across processes.  Oldest-first
#: truncation: the newest measurements describe the machine best.
MAX_STORED_OBSERVATIONS = 512

#: Minimum distinct working sets before a per-thread-count threshold fit
#: is attempted (mirrors the >=3-point rule of the figure-8 walk).
MIN_FIT_POINTS = 3


# -- observations -------------------------------------------------------------


@dataclass(frozen=True)
class DseObservation:
    """One measured configuration: the kernel's shape, split and rate.

    ``kernel_gflops`` is the *inner-GEMM* rate implied by a whole-TTM
    timing (see :func:`observation_from_plan`), which makes
    observations from different degrees comparable on the figure-8 axes
    (working set vs. rate).  ``intensity`` is the cache-simulated
    flops-per-word of the whole TTM when available — the hook that lets
    memory-bound observations double as bandwidth probes.  ``pinned``
    records whether the BLAS pool was actually limited to
    ``kernel_threads`` during the measurement; only pinned single-thread
    rates may be scaled by the core count (the
    :func:`repro.perf.calibrate.measure_peak` rule).
    """

    m: int
    k: int
    n: int
    kernel_threads: int
    loop_threads: int
    working_set_bytes: int
    seconds: float
    kernel_gflops: float
    dtype: str = "float64"
    source: str = "dse"
    intensity: float | None = None
    pinned: bool = False

    def to_dict(self) -> dict:
        return {
            "m": self.m,
            "k": self.k,
            "n": self.n,
            "kernel_threads": self.kernel_threads,
            "loop_threads": self.loop_threads,
            "working_set_bytes": self.working_set_bytes,
            "seconds": self.seconds,
            "kernel_gflops": self.kernel_gflops,
            "dtype": self.dtype,
            "source": self.source,
            "intensity": self.intensity,
            "pinned": self.pinned,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DseObservation":
        try:
            intensity = payload.get("intensity")
            return cls(
                m=int(payload["m"]),
                k=int(payload["k"]),
                n=int(payload["n"]),
                kernel_threads=int(payload["kernel_threads"]),
                loop_threads=int(payload["loop_threads"]),
                working_set_bytes=int(payload["working_set_bytes"]),
                seconds=float(payload["seconds"]),
                kernel_gflops=float(payload["kernel_gflops"]),
                dtype=str(payload.get("dtype", "float64")),
                source=str(payload.get("source", "dse")),
                intensity=None if intensity is None else float(intensity),
                pinned=bool(payload.get("pinned", False)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise BenchmarkError(
                f"malformed DSE observation payload: {exc}"
            ) from exc


def observation_from_plan(
    plan: "TtmPlan",
    seconds: float,
    source: str = "session",
    intensity: float | None = None,
    pinned: bool = False,
) -> DseObservation:
    """Convert a whole-TTM timing into a per-kernel observation.

    The executor dispatches ``loop_iterations`` kernels; with ``P_L``
    loop threads roughly ``P_L`` of them overlap, so the effective
    per-kernel time is ``seconds * loop_threads / loop_iterations``.
    This is the inversion of the estimator's own cost model, so the
    fitted surface speaks the same units the estimator consumes.
    """
    if seconds <= 0:
        raise BenchmarkError(f"observation needs seconds > 0, got {seconds}")
    iterations = max(1, plan.loop_iterations)
    kernel_seconds = seconds * plan.loop_threads / iterations
    m, k, n = plan.kernel_shape
    rate = plan.kernel_flops / kernel_seconds / 1e9 if kernel_seconds > 0 else 0.0
    return DseObservation(
        m=m,
        k=k,
        n=n,
        kernel_threads=plan.kernel_threads,
        loop_threads=plan.loop_threads,
        working_set_bytes=plan.kernel_working_set_bytes,
        seconds=seconds,
        kernel_gflops=rate,
        dtype=plan.dtype,
        source=source,
        intensity=intensity,
        pinned=pinned,
    )


# -- exploration --------------------------------------------------------------


@dataclass(frozen=True)
class DseCase:
    """One TTM input of the sweep: geometry, contracted mode, output rank."""

    shape: tuple[int, ...]
    mode: int
    j: int


#: The default sweep: small enough to finish inside a CI smoke budget,
#: shaped to exercise several degrees and working-set decades.
DEFAULT_CASES: tuple[DseCase, ...] = (
    DseCase(shape=(8, 8, 8, 8), mode=0, j=8),
    DseCase(shape=(12, 12, 12, 12), mode=1, j=16),
    DseCase(shape=(16, 16, 16), mode=0, j=16),
    DseCase(shape=(24, 24, 24), mode=1, j=16),
)


@dataclass(frozen=True)
class DseConfig:
    """What to sweep and how long the sweep may take.

    ``max_seconds`` is a wall-clock budget for the whole exploration:
    once exceeded no further candidate is timed (the partial set of
    observations is still returned), so a calibration run is always
    bounded no matter how large the case list is.
    """

    cases: tuple[DseCase, ...] = DEFAULT_CASES
    layouts: tuple[str, ...] = ("ROW_MAJOR",)
    dtypes: tuple[str, ...] = ("float64",)
    kernels: tuple[str, ...] = ("blas",)
    max_threads: int = 1
    min_seconds: float = 0.005
    max_seconds: float = 30.0
    simulate_traffic: bool = True
    cache_words: int = 1 << 16

    def __post_init__(self) -> None:
        check_positive_int(self.max_threads, "max_threads")
        check_positive_int(self.cache_words, "cache_words")
        if not self.cases:
            raise BenchmarkError("DseConfig needs at least one case")
        if self.max_seconds <= 0:
            raise BenchmarkError(
                f"max_seconds must be > 0, got {self.max_seconds}"
            )


def explore(config: DseConfig, tuner=None) -> list[DseObservation]:
    """Time every configuration of the sweep on the live machine.

    Each candidate runs through the same
    :meth:`~repro.core.tuner.ExhaustiveTuner.time_plan` unit figure 12's
    exhaustive bars use, with the BLAS pool pinned (best effort) to the
    plan's ``P_C`` so the measured rate belongs to the thread count it is
    filed under.  Returns the observations gathered before the
    ``max_seconds`` budget ran out.
    """
    from repro.cachesim.cache import CacheModel
    from repro.core.tuner import ExhaustiveTuner, enumerate_plans
    from repro.obs.tracer import active_tracer
    from repro.tensor.dense import DenseTensor
    from repro.tensor.layout import Layout
    from repro.util.rng import default_rng

    if tuner is None:
        tuner = ExhaustiveTuner(min_seconds=config.min_seconds, min_repeats=1)
    rng = default_rng(0)
    observations: list[DseObservation] = []
    counters = active_hot_counters()
    tracer = active_tracer()
    deadline = time.perf_counter() + config.max_seconds
    intensity_cache: dict[tuple, float] = {}
    truncated = False

    def case_intensity(case: DseCase, layout, degree: int) -> float | None:
        if not config.simulate_traffic:
            return None
        key = (case.shape, case.j, case.mode, layout.name, degree)
        cached = intensity_cache.get(key)
        if cached is None:
            from repro.cachesim.traffic import simulate_ttm_traffic

            try:
                report = simulate_ttm_traffic(
                    case.shape,
                    case.j,
                    case.mode,
                    CacheModel(size_words=config.cache_words),
                    method="inplace",
                    layout=layout,
                    degree=degree or None,
                )
            except Exception:  # traffic model gaps must not kill the sweep
                log.debug("traffic simulation failed for %s", key, exc_info=True)
                return None
            cached = report.intensity
            intensity_cache[key] = cached
        return cached if math.isfinite(cached) else None

    with tracer.span("dse-explore", cases=len(config.cases)) if tracer.enabled \
            else _null_context():
        for case in config.cases:
            for layout_name in config.layouts:
                layout = Layout.parse(layout_name)
                for dtype in config.dtypes:
                    x = DenseTensor.random(
                        case.shape, layout, seed=rng, dtype=dtype
                    )
                    u = rng.standard_normal(
                        (case.j, case.shape[case.mode])
                    ).astype(dtype)
                    plans = enumerate_plans(
                        case.shape,
                        case.mode,
                        case.j,
                        layout,
                        config.max_threads,
                        config.kernels,
                        dtype=dtype,
                    )
                    for plan in plans:
                        if time.perf_counter() > deadline:
                            truncated = True
                            break
                        with blas_threads(plan.kernel_threads) as pinned:
                            seconds = tuner.time_plan(plan, x, u)
                        if counters is not None:
                            counters.count_dse()
                        observations.append(
                            observation_from_plan(
                                plan,
                                seconds,
                                source="dse",
                                intensity=case_intensity(
                                    case, layout, plan.degree
                                ),
                                pinned=pinned,
                            )
                        )
                    if truncated:
                        break
                if truncated:
                    break
            if truncated:
                break
    if truncated:
        log.info(
            "DSE budget of %.1fs exhausted after %d observations; "
            "remaining candidates skipped",
            config.max_seconds, len(observations),
        )
    return observations


class _null_context:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


# -- fitting ------------------------------------------------------------------


def fit_thresholds(
    observations: Sequence[DseObservation], kappa: float = 0.8
) -> dict[int, Thresholds]:
    """MSTH/MLTH per kernel-thread count from the measured scatter.

    The figure-8 procedure on irregular data: within each thread group,
    find the peak kernel rate, keep the observations at or above
    ``kappa`` of it, and take the smallest/largest working set among the
    keepers as MSTH/MLTH — the widest window in which measured
    throughput stays near peak.  Groups with fewer than
    :data:`MIN_FIT_POINTS` distinct working sets are skipped; an empty
    result raises :class:`BenchmarkError` (nothing to calibrate from).
    """
    from repro.core.partition import Thresholds

    check_probability(kappa, "kappa")
    groups: dict[int, list[DseObservation]] = {}
    for obs in observations:
        if obs.kernel_gflops > 0 and obs.working_set_bytes > 0:
            groups.setdefault(obs.kernel_threads, []).append(obs)
    fitted: dict[int, Thresholds] = {}
    for threads, group in sorted(groups.items()):
        sizes = {o.working_set_bytes for o in group}
        if len(sizes) < MIN_FIT_POINTS:
            continue
        peak = max(o.kernel_gflops for o in group)
        keep = [o for o in group if o.kernel_gflops >= kappa * peak]
        msth = min(o.working_set_bytes for o in keep)
        mlth = max(o.working_set_bytes for o in keep)
        fitted[threads] = Thresholds(max(1, msth), max(1, mlth), kappa)
    if not fitted:
        raise BenchmarkError(
            f"cannot fit thresholds from {len(observations)} observations: "
            f"no kernel-thread group has {MIN_FIT_POINTS}+ distinct "
            "working sets"
        )
    return fitted


def fit_pth(observations: Sequence[DseObservation]) -> int | None:
    """The measured loop-vs-kernel crossover working set (PTH), or None.

    Pairs all-loop observations (``P_L > 1``) against all-kernel ones
    (``P_C > 1``) in log2 working-set buckets and returns the smallest
    working set at which the kernel allocation wins.  ``None`` when the
    sweep had no multi-threaded allocations to compare (single-thread
    machines) — the caller keeps its current PTH.
    """
    loop_side = [o for o in observations if o.loop_threads > 1]
    kernel_side = [o for o in observations if o.kernel_threads > 1]
    if not loop_side or not kernel_side:
        return None

    def bucket(obs: DseObservation) -> int:
        return int(math.log2(max(1, obs.working_set_bytes)))

    loop_rates: dict[int, list[float]] = {}
    kernel_rates: dict[int, list[DseObservation]] = {}
    for o in loop_side:
        loop_rates.setdefault(bucket(o), []).append(o.kernel_gflops)
    for o in kernel_side:
        kernel_rates.setdefault(bucket(o), []).append(o)
    shared = sorted(set(loop_rates) & set(kernel_rates))
    if not shared:
        return None
    for b in shared:
        loop_mean = statistics.mean(loop_rates[b])
        group = kernel_rates[b]
        kernel_mean = statistics.mean(o.kernel_gflops for o in group)
        if kernel_mean >= loop_mean:
            return min(o.working_set_bytes for o in group)
    # The kernel allocation never won: PTH sits above everything measured,
    # so every observed size keeps routing threads to the loops.
    return 2 * max(o.working_set_bytes for o in observations)


def fit_platform_inputs(
    observations: Sequence[DseObservation],
    info: MachineInfo | None = None,
) -> tuple[float | None, float | None]:
    """(all-core peak GFLOP/s, bandwidth GB/s) implied by the sweep.

    The peak follows the :func:`repro.perf.calibrate.measure_peak` rule:
    a *pinned* single-thread rate scales by the physical core count; an
    unpinned one is already an all-core rate and is taken as-is.  The
    bandwidth is the median ``rate x 8 / intensity`` over memory-bound
    observations (working set past the LLC, simulated intensity known) —
    each such point is its own mini-STREAM.  Either figure is ``None``
    when the sweep produced no qualifying observations.
    """
    info = info or machine_info()
    peak: float | None = None
    single = [
        o for o in observations
        if o.kernel_threads == 1 and o.kernel_gflops > 0
    ]
    if single:
        pinned = [o for o in single if o.pinned]
        if pinned:
            peak = max(o.kernel_gflops for o in pinned) * info.physical_cores
        else:
            peak = max(o.kernel_gflops for o in single)
    bandwidths = [
        o.kernel_gflops * 8.0 / o.intensity
        for o in observations
        if o.intensity and o.intensity > 0
        and o.working_set_bytes > info.llc_bytes
        and o.kernel_gflops > 0
    ]
    bandwidth = statistics.median(bandwidths) if bandwidths else None
    return peak, bandwidth


# -- the persisted record -----------------------------------------------------


@dataclass(frozen=True)
class CalibrationRecord:
    """A fitted cost model for one machine, ready to persist.

    ``thresholds`` maps kernel-thread count to the fitted MSTH/MLTH
    window; ``pth_bytes``/``peak_gflops``/``bandwidth_gbs`` are ``None``
    when the sweep could not determine them (the consumer keeps its
    defaults).  The record travels with its own ``version`` (see
    :data:`CALIBRATION_VERSION`) so a fit whose meaning changed is
    rejected at load rather than silently misread.
    """

    fingerprint: str | None
    thresholds: dict[int, Thresholds] = field(default_factory=dict)
    pth_bytes: int | None = None
    peak_gflops: float | None = None
    bandwidth_gbs: float | None = None
    samples: int = 0
    kappa: float = 0.8
    source: str = "dse"
    version: int = CALIBRATION_VERSION

    def thresholds_for(self, j: int, max_threads: int) -> Thresholds | None:
        """The fitted window for a thread budget, or None when unfitted.

        Thread selection mirrors the estimator's profile rule: the
        largest fitted count within the budget, else the smallest fitted
        count (an under-budget fit beats no fit).  *j* participates for
        interface stability — the scatter fit pools all output ranks, so
        today every *j* sees the same window.
        """
        if not self.thresholds:
            return None
        check_positive_int(j, "j")
        check_positive_int(max_threads, "max_threads")
        eligible = [t for t in self.thresholds if t <= max_threads]
        pick = max(eligible) if eligible else min(self.thresholds)
        return self.thresholds[pick]

    def platform(self, info: MachineInfo | None = None) -> "RooflinePlatform | None":
        """A RooflinePlatform from the fitted peak/bandwidth, or None.

        Needs both figures; cache size and core counts come from the
        machine introspection (*info*), which the fit does not replace.
        """
        if self.peak_gflops is None or self.bandwidth_gbs is None:
            return None
        from repro.analysis.roofline import RooflinePlatform

        info = info or machine_info()
        return RooflinePlatform(
            name=f"calibrated: {info.cpu_model}",
            peak_gflops=self.peak_gflops,
            bandwidth_gbs=self.bandwidth_gbs,
            llc_bytes=info.llc_bytes,
            cores=info.physical_cores,
            threads_with_smt=info.logical_cpus,
        )

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "fingerprint": self.fingerprint,
            "thresholds": {
                str(threads): {
                    "msth_bytes": t.msth_bytes,
                    "mlth_bytes": t.mlth_bytes,
                    "kappa": t.kappa,
                }
                for threads, t in sorted(self.thresholds.items())
            },
            "pth_bytes": self.pth_bytes,
            "peak_gflops": self.peak_gflops,
            "bandwidth_gbs": self.bandwidth_gbs,
            "samples": self.samples,
            "kappa": self.kappa,
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CalibrationRecord":
        from repro.core.partition import Thresholds

        version = payload.get("version")
        if version != CALIBRATION_VERSION:
            raise SchemaMismatchError(
                f"calibration version {version!r} != supported "
                f"{CALIBRATION_VERSION}"
            )
        try:
            thresholds = {
                int(threads): Thresholds(
                    msth_bytes=int(t["msth_bytes"]),
                    mlth_bytes=int(t["mlth_bytes"]),
                    kappa=float(t.get("kappa", 0.8)),
                )
                for threads, t in (payload.get("thresholds") or {}).items()
            }
            pth = payload.get("pth_bytes")
            peak = payload.get("peak_gflops")
            bw = payload.get("bandwidth_gbs")
            return cls(
                fingerprint=payload.get("fingerprint"),
                thresholds=thresholds,
                pth_bytes=None if pth is None else int(pth),
                peak_gflops=None if peak is None else float(peak),
                bandwidth_gbs=None if bw is None else float(bw),
                samples=int(payload.get("samples", 0)),
                kappa=float(payload.get("kappa", 0.8)),
                source=str(payload.get("source", "dse")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise BenchmarkError(
                f"malformed calibration payload: {exc}"
            ) from exc

    def digest(self) -> str:
        """A short content hash — the estimator's cache-key token.

        Two records fitting different windows must never share cached
        thresholds, so the estimator keys its per-J cache on this.
        """
        text = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(text.encode()).hexdigest()[:12]

    def summary_rows(self) -> list[tuple[str, str]]:
        """Rows for ``repro calibrate show`` (human rendering)."""
        from repro.util.formatting import format_bytes

        rows: list[tuple[str, str]] = [
            ("calibration version", str(self.version)),
            ("fingerprint", self.fingerprint or "(portable)"),
            ("samples", str(self.samples)),
            ("source", self.source),
        ]
        for threads, t in sorted(self.thresholds.items()):
            rows.append(
                (
                    f"MSTH/MLTH @ {threads} thread(s)",
                    f"{format_bytes(t.msth_bytes)} / "
                    f"{format_bytes(t.mlth_bytes)} (kappa={t.kappa})",
                )
            )
        rows.append(
            (
                "PTH",
                format_bytes(self.pth_bytes)
                if self.pth_bytes is not None
                else "(unfitted: single-thread sweep)",
            )
        )
        rows.append(
            (
                "peak GFLOP/s (all cores)",
                f"{self.peak_gflops:.2f}" if self.peak_gflops else "(unfitted)",
            )
        )
        rows.append(
            (
                "bandwidth GB/s",
                f"{self.bandwidth_gbs:.2f}"
                if self.bandwidth_gbs
                else "(unfitted)",
            )
        )
        return rows


def fit_calibration(
    observations: Sequence[DseObservation],
    fingerprint: str | None = None,
    kappa: float = 0.8,
    info: MachineInfo | None = None,
    source: str = "dse",
) -> CalibrationRecord:
    """Fit every model input the observations support into one record."""
    thresholds = fit_thresholds(observations, kappa=kappa)
    peak, bandwidth = fit_platform_inputs(observations, info=info)
    counters = active_hot_counters()
    if counters is not None:
        counters.count_calibration_refit()
    return CalibrationRecord(
        fingerprint=fingerprint,
        thresholds=thresholds,
        pth_bytes=fit_pth(observations),
        peak_gflops=peak,
        bandwidth_gbs=bandwidth,
        samples=len(observations),
        kappa=kappa,
        source=source,
    )


# -- persistence through the PlanStore ---------------------------------------


def store_calibration(
    store: "PlanStore",
    record: CalibrationRecord,
    observations: Sequence[DseObservation] = (),
) -> None:
    """Persist a record (plus capped raw observations) in the store.

    The observations ride along so a later process can *extend* the fit
    instead of starting cold; only the newest
    :data:`MAX_STORED_OBSERVATIONS` are kept.
    """
    kept = list(observations)[-MAX_STORED_OBSERVATIONS:]
    store.save_calibration(
        {
            "record": record.to_dict(),
            "observations": [o.to_dict() for o in kept],
        }
    )


def load_calibration_record(
    store: "PlanStore",
) -> tuple[CalibrationRecord | None, list[DseObservation]]:
    """The persisted record and raw observations, or ``(None, [])``.

    A stale or malformed calibration section downgrades to the
    paper-default fallback (with a log line) rather than failing the
    caller — the same policy the plan cache applies to bad stores.
    """
    payload = store.load_calibration()
    if not payload:
        return None, []
    try:
        record = CalibrationRecord.from_dict(payload.get("record") or {})
        observations = [
            DseObservation.from_dict(o)
            for o in payload.get("observations") or []
        ]
    except (SchemaMismatchError, BenchmarkError) as exc:
        log.warning(
            "ignoring unusable calibration in %s (%s); paper defaults apply",
            store.path, exc,
        )
        return None, []
    return record, observations


def run_calibration(
    store: "PlanStore",
    config: DseConfig | None = None,
    info: MachineInfo | None = None,
    tuner=None,
) -> CalibrationRecord:
    """One explicit calibration session: sweep, fit, persist, return.

    New observations merge with any already stored (same cap), so
    repeated runs refine rather than replace the fit.
    """
    config = config or DseConfig()
    info = info or machine_info()
    _prior, stored = load_calibration_record(store)
    fresh = explore(config, tuner=tuner)
    if not fresh and not stored:
        raise BenchmarkError(
            "calibration sweep produced no observations (budget too small?)"
        )
    merged = (stored + fresh)[-MAX_STORED_OBSERVATIONS:]
    record = fit_calibration(
        merged,
        fingerprint=store.fingerprint or info.fingerprint(),
        info=info,
    )
    store_calibration(store, record, merged)
    log.info(
        "calibration fitted from %d observations (%d new) -> %s",
        len(merged), len(fresh), store.path,
    )
    return record


# -- incremental accumulation (the autotune-session hook) --------------------


class CalibrationAccumulator:
    """Feeds real-workload timings into the calibration, incrementally.

    The autotune session already measures plans (incumbent and
    alternates) to promote winners; each of those timings is also a DSE
    observation.  The accumulator buffers them and refits once enough
    new evidence arrives (``refit_every``), provided a minimum total
    sample count (``min_samples``) has been reached — below that a fit
    would be noise.  Every refit persists through the store so the next
    process starts warm.
    """

    def __init__(
        self,
        store: "PlanStore",
        min_samples: int = 12,
        refit_every: int = 8,
        kappa: float = 0.8,
        info: MachineInfo | None = None,
    ) -> None:
        check_positive_int(min_samples, "min_samples")
        check_positive_int(refit_every, "refit_every")
        check_probability(kappa, "kappa")
        self.store = store
        self.min_samples = min_samples
        self.refit_every = refit_every
        self.kappa = kappa
        self.info = info or machine_info()
        record, observations = load_calibration_record(store)
        self.record = record
        self.observations = observations
        self._new_since_fit = 0

    def observe(
        self,
        plan: "TtmPlan",
        seconds: float,
        intensity: float | None = None,
    ) -> DseObservation:
        """Record one real measurement (whole-TTM seconds for *plan*)."""
        obs = observation_from_plan(
            plan, seconds, source="session", intensity=intensity
        )
        self.observations.append(obs)
        if len(self.observations) > MAX_STORED_OBSERVATIONS:
            del self.observations[: -MAX_STORED_OBSERVATIONS]
        self._new_since_fit += 1
        counters = active_hot_counters()
        if counters is not None:
            counters.count_dse()
        return obs

    def maybe_refit(self) -> CalibrationRecord | None:
        """Refit and persist when due; returns the new record or None.

        A fit attempt that fails (still too little spread in the data)
        simply defers to the next interval instead of raising into the
        serving path.
        """
        if (
            len(self.observations) < self.min_samples
            or self._new_since_fit < self.refit_every
        ):
            return None
        try:
            record = fit_calibration(
                self.observations,
                fingerprint=self.store.fingerprint
                or self.info.fingerprint(),
                kappa=self.kappa,
                info=self.info,
                source="session",
            )
        except BenchmarkError as exc:
            log.debug("calibration refit deferred: %s", exc)
            self._new_since_fit = 0
            return None
        self.record = record
        self._new_since_fit = 0
        store_calibration(self.store, record, self.observations)
        return record


def merge_observations(
    *groups: Iterable[DseObservation],
) -> list[DseObservation]:
    """Concatenate observation groups under the storage cap (newest win)."""
    merged: list[DseObservation] = []
    for group in groups:
        merged.extend(group)
    return merged[-MAX_STORED_OBSERVATIONS:]


__all__ = [
    "CALIBRATION_VERSION",
    "MAX_STORED_OBSERVATIONS",
    "CalibrationAccumulator",
    "CalibrationRecord",
    "DseCase",
    "DseConfig",
    "DseObservation",
    "explore",
    "fit_calibration",
    "fit_pth",
    "fit_platform_inputs",
    "fit_thresholds",
    "load_calibration_record",
    "merge_observations",
    "observation_from_plan",
    "run_calibration",
    "store_calibration",
]
