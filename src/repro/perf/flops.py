"""Flop accounting for GEMM and TTM, and GFLOP/s rate helpers."""

from __future__ import annotations

import math
from typing import Sequence

from repro.util.validation import check_positive_int


def gemm_flops(m: int, k: int, n: int) -> int:
    """``2 m k n`` flops for an (m x k) @ (k x n) product."""
    check_positive_int(m, "m")
    check_positive_int(k, "k")
    check_positive_int(n, "n")
    return 2 * m * k * n


def ttm_flops(shape: Sequence[int], j: int) -> int:
    """``2 J prod(shape)`` flops for a mode-n product (any mode)."""
    check_positive_int(j, "j")
    total = math.prod(int(s) for s in shape)
    return 2 * j * total


def gflops_rate(flops: int, seconds: float) -> float:
    """GFLOP/s given a flop count and elapsed seconds (inf-safe)."""
    if seconds <= 0.0:
        return float("inf") if flops > 0 else 0.0
    return flops / seconds / 1.0e9
