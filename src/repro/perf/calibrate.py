"""Host calibration: build a RooflinePlatform for *this* machine.

Table 2's columns (peak GFLOP/s, memory bandwidth, LLC) are inputs to the
roofline model; for the paper's testbeds they are presets, and for the
current host this module measures them: a STREAM-triad sweep for
sustainable bandwidth, a large square GEMM for the compute peak, and
sysfs for the cache size.  The resulting platform makes the synthetic
profile and :mod:`repro.core.predict` host-accurate without running the
full GEMM shape benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.roofline import RooflinePlatform
from repro.perf.flops import gemm_flops, gflops_rate
from repro.perf.machine import machine_info
from repro.perf.timing import time_callable
from repro.util.validation import check_positive_int


def measure_bandwidth(
    size_words: int = 8_000_000, min_seconds: float = 0.05
) -> float:
    """Sustainable memory bandwidth in GB/s via the STREAM triad.

    ``a = b + s * c`` streams three arrays (two reads, one write); the
    reported figure counts 24 bytes moved per element, STREAM's
    convention.
    """
    check_positive_int(size_words, "size_words")
    b = np.full(size_words, 1.5)
    c = np.full(size_words, 2.5)
    a = np.empty(size_words)
    scalar = 3.0

    def triad() -> None:
        np.multiply(c, scalar, out=a)
        np.add(a, b, out=a)

    seconds = time_callable(triad, min_repeats=3, min_seconds=min_seconds)
    bytes_moved = 24 * size_words  # read b, read c, write a
    return bytes_moved / seconds / 1e9


def measure_peak_gflops(n: int = 768, min_seconds: float = 0.1) -> float:
    """Near-peak double-precision rate via a large square GEMM."""
    check_positive_int(n, "n")
    rng = np.random.default_rng(0)
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))
    out = np.empty((n, n))
    seconds = time_callable(
        lambda: np.matmul(a, b, out=out), min_repeats=2,
        min_seconds=min_seconds,
    )
    return gflops_rate(gemm_flops(n, n, n), seconds)


def host_platform(
    gemm_n: int = 768,
    stream_words: int = 8_000_000,
) -> RooflinePlatform:
    """Measure this host and package it as a RooflinePlatform.

    The measured peak is the *single-thread* rate scaled by the physical
    core count (the model divides it back per-thread), and the spill/ramp
    constants keep their calibrated defaults.
    """
    info = machine_info()
    single = measure_peak_gflops(n=gemm_n)
    bandwidth = measure_bandwidth(size_words=stream_words)
    return RooflinePlatform(
        name=f"host: {info.cpu_model}",
        peak_gflops=single * info.physical_cores,
        bandwidth_gbs=bandwidth,
        llc_bytes=info.llc_bytes,
        cores=info.physical_cores,
        threads_with_smt=info.logical_cpus,
    )
