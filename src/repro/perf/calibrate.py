"""Host calibration: build a RooflinePlatform for *this* machine.

Table 2's columns (peak GFLOP/s, memory bandwidth, LLC) are inputs to the
roofline model; for the paper's testbeds they are presets, and for the
current host this module measures them: a STREAM-triad sweep for
sustainable bandwidth, a large square GEMM for the compute peak, and
sysfs for the cache size.  The resulting platform makes the synthetic
profile and :mod:`repro.core.predict` host-accurate without running the
full GEMM shape benchmark.

Accounting notes (both were measurably wrong before and skewed every
roofline-based plan prediction):

* The triad here is two NumPy ufunc passes, not STREAM's single fused
  loop, so it moves **40** bytes per element (see
  :data:`TRIAD_BYTES_PER_ELEMENT`), not STREAM's nominal 24.
* The GEMM peak is measured with the BLAS pool pinned to one thread
  (:mod:`repro.perf.blasctl`); only a successfully *pinned* rate may be
  scaled by the physical core count.  When no pinning mechanism exists
  the measured rate already used every core and is taken as the all-core
  peak directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.roofline import RooflinePlatform
from repro.perf.blasctl import blas_threads
from repro.perf.flops import gemm_flops, gflops_rate
from repro.perf.machine import machine_info
from repro.perf.timing import time_callable
from repro.util.validation import check_positive_int

#: Bytes moved per element by the two-pass NumPy triad below.
#: ``np.multiply(c, s, out=a)`` reads c and writes a (16 B); ``np.add(a,
#: b, out=a)`` reads a, reads b and writes a (24 B).  STREAM's fused
#: ``a = b + s*c`` would move 24 B/element, but NumPy has no fused triad,
#: and counting 24 for a 40-byte kernel underreported bandwidth by ~40%.
TRIAD_BYTES_PER_ELEMENT = 40


def measure_bandwidth(
    size_words: int = 8_000_000, min_seconds: float = 0.05
) -> float:
    """Sustainable memory bandwidth in GB/s via a two-pass STREAM triad.

    ``a = b + s * c`` implemented as two ufunc calls; the reported figure
    counts the traffic those two passes actually generate —
    :data:`TRIAD_BYTES_PER_ELEMENT` (40) bytes per element.
    """
    check_positive_int(size_words, "size_words")
    b = np.full(size_words, 1.5)
    c = np.full(size_words, 2.5)
    a = np.empty(size_words)
    scalar = 3.0

    def triad() -> None:
        np.multiply(c, scalar, out=a)
        np.add(a, b, out=a)

    seconds = time_callable(triad, min_repeats=3, min_seconds=min_seconds)
    bytes_moved = TRIAD_BYTES_PER_ELEMENT * size_words
    return bytes_moved / seconds / 1e9


@dataclass(frozen=True)
class PeakMeasurement:
    """A measured GEMM rate plus whether the BLAS pool was really pinned.

    ``pinned=False`` means the backend used its default (usually
    all-core) pool, so ``gflops`` is an *all-core* rate and must not be
    multiplied by the core count.
    """

    gflops: float
    pinned: bool


def measure_peak(n: int = 768, min_seconds: float = 0.1) -> PeakMeasurement:
    """Near-peak double-precision GEMM rate with the pool pinned to 1.

    ``np.matmul`` at this size already fans out across every BLAS worker
    thread; the measurement only deserves the name "single-thread rate"
    when the pool is actually limited, so the pin status travels with
    the number.
    """
    check_positive_int(n, "n")
    rng = np.random.default_rng(0)
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))
    out = np.empty((n, n))
    with blas_threads(1) as pinned:
        seconds = time_callable(
            lambda: np.matmul(a, b, out=out), min_repeats=2,
            min_seconds=min_seconds,
        )
    return PeakMeasurement(
        gflops=gflops_rate(gemm_flops(n, n, n), seconds), pinned=pinned
    )


def measure_peak_gflops(n: int = 768, min_seconds: float = 0.1) -> float:
    """Single-thread GEMM rate (pool pinned when possible); see
    :func:`measure_peak` for the pin status."""
    return measure_peak(n=n, min_seconds=min_seconds).gflops


def host_platform(
    gemm_n: int = 768,
    stream_words: int = 8_000_000,
) -> RooflinePlatform:
    """Measure this host and package it as a RooflinePlatform.

    The all-core peak is the pinned single-thread rate scaled by the
    physical core count (the model divides it back per-thread).  When
    the BLAS pool could not be pinned, the measured rate already used
    every core and becomes the all-core peak as-is — scaling it would
    double count the backend's own parallelism.  The spill/ramp
    constants keep their calibrated defaults.
    """
    info = machine_info()
    peak = measure_peak(n=gemm_n)
    bandwidth = measure_bandwidth(size_words=stream_words)
    if peak.pinned:
        peak_all_cores = peak.gflops * info.physical_cores
    else:
        peak_all_cores = peak.gflops
    return RooflinePlatform(
        name=f"host: {info.cpu_model}",
        peak_gflops=peak_all_cores,
        bandwidth_gbs=bandwidth,
        llc_bytes=info.llc_bytes,
        cores=info.physical_cores,
        threads_with_smt=info.logical_cpus,
    )
