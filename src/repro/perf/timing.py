"""Robust wall-clock timing.

Measurement policy (same as the paper's style of reporting best sustained
rates): run the callable until both a minimum repetition count and a
minimum total time are reached, then report the *minimum* per-call time —
the least-noise estimator for compute kernels on a shared machine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable


@dataclass
class Timer:
    """A context-manager stopwatch accumulating elapsed seconds.

    Re-enterable: each ``with`` block adds to :attr:`elapsed`, and
    :attr:`laps` records each block separately.
    """

    elapsed: float = 0.0
    laps: list = field(default_factory=list)
    _start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._start is not None, "Timer.__exit__ without __enter__"
        lap = time.perf_counter() - self._start
        self._start = None
        self.elapsed += lap
        self.laps.append(lap)

    def reset(self) -> None:
        """Zero the accumulated time and laps."""
        self.elapsed = 0.0
        self.laps = []
        self._start = None


def time_callable(
    fn: Callable[[], object],
    min_repeats: int = 3,
    min_seconds: float = 0.05,
    max_repeats: int = 1_000_000,
) -> float:
    """Best (minimum) per-call seconds of *fn* under the measurement policy."""
    if min_repeats < 1:
        raise ValueError(f"min_repeats must be >= 1, got {min_repeats}")
    best = float("inf")
    total = 0.0
    repeats = 0
    while (repeats < min_repeats or total < min_seconds) and repeats < max_repeats:
        start = time.perf_counter()
        fn()
        lap = time.perf_counter() - start
        best = min(best, lap)
        total += lap
        repeats += 1
    return best


def best_of(fn: Callable[[], object], repeats: int = 3) -> float:
    """Minimum per-call seconds over exactly *repeats* calls."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    return min(time_callable(fn, min_repeats=1, min_seconds=0.0) for _ in range(repeats))
