"""Host machine introspection: the table-2 analogue for this run.

Every benchmark report begins with the machine configuration so that
paper-vs-measured comparisons carry their context, exactly as the paper
leads its evaluation with table 2.
"""

from __future__ import annotations

import hashlib
import os
import platform
import re
from dataclasses import asdict, dataclass

import numpy as np


@dataclass(frozen=True)
class MachineInfo:
    """A snapshot of the execution platform."""

    cpu_model: str
    physical_cores: int
    logical_cpus: int
    memory_bytes: int
    llc_bytes: int
    python_version: str
    numpy_version: str
    blas_backend: str

    def as_dict(self) -> dict:
        return asdict(self)

    def fingerprint(self) -> str:
        """A short stable digest identifying this performance platform.

        Autotuned decisions (MSTH/MLTH thresholds, measured plan
        promotions) are only valid on the machine that produced them, so
        the persistent plan cache stamps its files with this value and
        rejects foreign ones.  Only fields that change the performance
        landscape participate: CPU model, core/CPU counts, LLC size and
        the BLAS backend — not memory size or interpreter patch levels,
        which would invalidate caches gratuitously.
        """
        basis = "|".join(
            (
                self.cpu_model,
                str(self.physical_cores),
                str(self.logical_cpus),
                str(self.llc_bytes),
                self.blas_backend,
            )
        )
        return hashlib.sha256(basis.encode()).hexdigest()[:16]

    def table_rows(self) -> list[tuple[str, str]]:
        """Rows analogous to the paper's table 2."""
        from repro.util.formatting import format_bytes

        return [
            ("CPU model", self.cpu_model),
            ("# of physical cores", str(self.physical_cores)),
            ("# of logical CPUs", str(self.logical_cpus)),
            ("Memory size", format_bytes(self.memory_bytes)),
            ("Last-level cache", format_bytes(self.llc_bytes)),
            ("Python", self.python_version),
            ("NumPy", self.numpy_version),
            ("BLAS backend", self.blas_backend),
        ]


def _cpu_model() -> str:
    try:
        with open("/proc/cpuinfo") as fh:
            for line in fh:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or platform.machine() or "unknown"


def _memory_bytes() -> int:
    try:
        with open("/proc/meminfo") as fh:
            for line in fh:
                if line.startswith("MemTotal"):
                    kib = int(re.search(r"(\d+)", line).group(1))
                    return kib * 1024
    except (OSError, AttributeError):
        pass
    return 0


def _llc_bytes() -> int:
    """Largest cache reported under sysfs, or a 8 MiB default."""
    best = 0
    base = "/sys/devices/system/cpu/cpu0/cache"
    try:
        for entry in sorted(os.listdir(base)):
            path = os.path.join(base, entry, "size")
            try:
                with open(path) as fh:
                    text = fh.read().strip()
            except OSError:
                continue
            match = re.match(r"(\d+)([KMG]?)", text)
            if not match:
                continue
            value = int(match.group(1))
            unit = {"": 1, "K": 1024, "M": 1024**2, "G": 1024**3}[match.group(2)]
            best = max(best, value * unit)
    except OSError:
        pass
    return best or 8 * 1024**2


def _physical_cores() -> int:
    seen = set()
    try:
        with open("/proc/cpuinfo") as fh:
            physical, core = None, None
            for line in fh:
                if line.startswith("physical id"):
                    physical = line.split(":")[1].strip()
                elif line.startswith("core id"):
                    core = line.split(":")[1].strip()
                elif not line.strip() and physical is not None and core is not None:
                    seen.add((physical, core))
                    physical, core = None, None
            if physical is not None and core is not None:
                seen.add((physical, core))
    except OSError:
        pass
    return len(seen) or (os.cpu_count() or 1)


def _blas_backend() -> str:
    try:
        config = np.show_config(mode="dicts")
        blas = config.get("Build Dependencies", {}).get("blas", {})
        name = blas.get("name", "")
        if name:
            return name
    except (TypeError, AttributeError):
        pass
    return "unknown"


def machine_fingerprint() -> str:
    """The current host's :meth:`MachineInfo.fingerprint` (convenience)."""
    return machine_info().fingerprint()


def machine_info() -> MachineInfo:
    """Introspect the current host (cheap; safe to call per benchmark)."""
    return MachineInfo(
        cpu_model=_cpu_model(),
        physical_cores=_physical_cores(),
        logical_cpus=os.cpu_count() or 1,
        memory_bytes=_memory_bytes(),
        llc_bytes=_llc_bytes(),
        python_version=platform.python_version(),
        numpy_version=np.__version__,
        blas_backend=_blas_backend(),
    )
