"""Best-effort control of the BLAS backend's worker-thread pool.

Calibration must know how many threads a measured GEMM actually used:
``np.matmul`` on a large matrix dispatches to the BLAS backend's own
pool, which defaults to every core.  Scaling a "single-thread" rate by
the core count when the measurement was already multi-threaded double
counts the parallelism — the bug this module exists to prevent.

Pinning is attempted through, in order:

1. ``threadpoolctl`` when importable (the robust, portable path);
2. a ``ctypes`` probe of the BLAS shared library the running process
   has actually loaded (found via ``/proc/self/maps``), trying the
   known ``*_set_num_threads`` entry points of OpenBLAS (including the
   suffixed ``scipy-openblas`` builds), BLIS and MKL;
3. a graceful no-op: :func:`blas_threads` still runs its body but
   reports ``pinned=False`` so callers can account honestly instead of
   scaling a rate they do not understand.

The probe never raises: any failure simply downgrades to the no-op.
"""

from __future__ import annotations

import contextlib
import ctypes
import logging
import os
import re
from typing import Callable, Iterator

log = logging.getLogger("repro.perf")

#: Library-name fragments identifying a BLAS implementation in the
#: process memory map.
_BLAS_LIB_PATTERN = re.compile(r"(/\S+(?:openblas|blis|mkl)\S*\.so\S*)", re.I)

#: (setter, getter) symbol-name candidates, tried in order per library.
#: Getters may be absent (MKL/BLIS); restoration then uses the value the
#: caller supplies (default: ``os.cpu_count()``).
_SYMBOL_CANDIDATES: tuple[tuple[str, str | None], ...] = (
    ("openblas_set_num_threads", "openblas_get_num_threads"),
    ("openblas_set_num_threads64_", "openblas_get_num_threads64_"),
    ("scipy_openblas_set_num_threads64_", "scipy_openblas_get_num_threads64_"),
    ("scipy_openblas_set_num_threads", "scipy_openblas_get_num_threads"),
    ("MKL_Set_Num_Threads", None),
    ("bli_thread_set_num_threads", None),
)

#: Cached probe result: None = not probed yet; [] = nothing controllable.
_controls: "list[tuple[Callable[[int], None], Callable[[], int] | None]] | None" = None


def _loaded_blas_paths() -> list[str]:
    """Shared-library paths of every BLAS mapped into this process."""
    paths: list[str] = []
    try:
        with open("/proc/self/maps") as fh:
            for line in fh:
                match = _BLAS_LIB_PATTERN.search(line)
                if match and match.group(1) not in paths:
                    paths.append(match.group(1))
    except OSError:
        pass  # non-Linux or hardened /proc: the ctypes path is unavailable
    return paths


def _probe_ctypes_controls() -> list[
    "tuple[Callable[[int], None], Callable[[], int] | None]"
]:
    controls = []
    for path in _loaded_blas_paths():
        try:
            lib = ctypes.CDLL(path)
        except OSError:
            continue
        for set_name, get_name in _SYMBOL_CANDIDATES:
            try:
                setter = getattr(lib, set_name)
            except AttributeError:
                continue
            getter = None
            if get_name is not None:
                try:
                    getter = getattr(lib, get_name)
                    getter.restype = ctypes.c_int
                except AttributeError:
                    getter = None
            setter.argtypes = [ctypes.c_int]
            controls.append((setter, getter))
            break  # one entry point per library is enough
    return controls


def _get_controls():
    global _controls
    if _controls is None:
        _controls = _probe_ctypes_controls()
        if not _controls:
            log.info(
                "no controllable BLAS threadpool found; calibration will "
                "report unpinned measurements"
            )
    return _controls


def blas_pinning_available() -> bool:
    """Whether :func:`blas_threads` can actually pin the pool."""
    try:
        import threadpoolctl  # noqa: F401

        return True
    except ImportError:
        pass
    return bool(_get_controls())


@contextlib.contextmanager
def blas_threads(n: int) -> Iterator[bool]:
    """Run the body with the BLAS pool limited to *n* threads, best effort.

    Yields True when a limiting mechanism took effect, False when the
    body ran with whatever pool the backend chose — callers must branch
    their accounting on this flag rather than assume success.
    """
    if n < 1:
        raise ValueError(f"thread count must be >= 1, got {n}")
    try:
        from threadpoolctl import threadpool_limits
    except ImportError:
        threadpool_limits = None
    if threadpool_limits is not None:
        with threadpool_limits(limits=n, user_api="blas"):
            yield True
        return
    controls = _get_controls()
    if not controls:
        yield False
        return
    previous: list[int] = []
    for setter, getter in controls:
        before = None
        if getter is not None:
            try:
                before = int(getter())
            except (OSError, ValueError):
                before = None
        previous.append(before if before and before > 0 else (os.cpu_count() or 1))
        setter(int(n))
    try:
        yield True
    finally:
        for (setter, _getter), before in zip(controls, previous):
            setter(int(before))
