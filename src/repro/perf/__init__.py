"""Measurement utilities: timers, flop accounting, phase profiling.

Everything the benchmark harness reports funnels through this package so
that GFLOP/s numbers are computed the same way everywhere.
"""

from repro.perf.timing import Timer, best_of, time_callable
from repro.perf.flops import gemm_flops, gflops_rate, ttm_flops
from repro.perf.profiler import (
    HotCounters,
    PhaseProfile,
    PhaseProfiler,
    active_hot_counters,
    track_hot_path,
)
from repro.perf.machine import MachineInfo, machine_fingerprint, machine_info
from repro.perf.blasctl import blas_pinning_available, blas_threads
from repro.perf.calibrate import (
    PeakMeasurement,
    host_platform,
    measure_bandwidth,
    measure_peak,
    measure_peak_gflops,
)
from repro.perf.dse import (
    CalibrationAccumulator,
    CalibrationRecord,
    DseCase,
    DseConfig,
    DseObservation,
    explore,
    fit_calibration,
    load_calibration_record,
    run_calibration,
)

__all__ = [
    "host_platform",
    "measure_bandwidth",
    "measure_peak",
    "measure_peak_gflops",
    "PeakMeasurement",
    "blas_pinning_available",
    "blas_threads",
    "CalibrationAccumulator",
    "CalibrationRecord",
    "DseCase",
    "DseConfig",
    "DseObservation",
    "explore",
    "fit_calibration",
    "load_calibration_record",
    "run_calibration",
    "Timer",
    "best_of",
    "time_callable",
    "gemm_flops",
    "gflops_rate",
    "ttm_flops",
    "HotCounters",
    "PhaseProfile",
    "PhaseProfiler",
    "active_hot_counters",
    "track_hot_path",
    "MachineInfo",
    "machine_fingerprint",
    "machine_info",
]
