"""``repro.obs`` — structured tracing and metrics for the TTM pipeline.

The observability layer the decision stack reports to: nested spans
(:class:`Tracer`, enabled per-block via :func:`tracing`), the shared
:func:`snapshot` surface folding in the hot-path counters, exporters for
JSON-lines and Chrome ``trace_event`` format, and the structural
validator the fuzz suite asserts with.

Quick use::

    from repro.obs import tracing, render_span_tree, write_chrome_trace

    with tracing() as tracer:
        repro.ttm(x, u, mode=1)
    spans = tracer.collector.spans()
    print(render_span_tree(spans))
    write_chrome_trace(spans, "trace.json")   # load in chrome://tracing

Or from the shell: ``python -m repro trace ttm --chrome trace.json``.
"""

from repro.obs.tracer import (
    NULL_TRACER,
    ROOT,
    NullTracer,
    Span,
    SpanCollector,
    Tracer,
    active_tracer,
    snapshot,
    tracing,
)
from repro.obs.export import (
    render_span_tree,
    spans_to_chrome_trace,
    spans_to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.validate import (
    assert_spans_well_nested,
    check_spans_well_nested,
)

__all__ = [
    "NULL_TRACER",
    "ROOT",
    "NullTracer",
    "Span",
    "SpanCollector",
    "Tracer",
    "active_tracer",
    "snapshot",
    "tracing",
    "render_span_tree",
    "spans_to_chrome_trace",
    "spans_to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
    "assert_spans_well_nested",
    "check_spans_well_nested",
]
