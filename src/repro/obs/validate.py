"""Span-tree structural validation: the property the fuzz tests assert.

A correct tracer emits a *forest*: on every thread the open/close order
is stack-disciplined (no partial overlap), every ``parent_id`` resolves
to a recorded span, and a child's interval sits inside its parent's.
:func:`check_spans_well_nested` returns every violation it finds (empty
list = clean) so test failures name all problems at once;
:func:`assert_spans_well_nested` is the raising form.
"""

from __future__ import annotations

from typing import Sequence

from repro.obs.tracer import Span

#: Slack (seconds) allowed on parent/child interval containment —
#: ``perf_counter`` calls on either side of a ``finally`` are not
#: perfectly ordered observations of the same instant.
_EPSILON = 1e-9


def check_spans_well_nested(spans: Sequence[Span | dict]) -> list[str]:
    """Every structural violation in a finished span collection."""
    payloads = [
        span.to_dict() if isinstance(span, Span) else dict(span)
        for span in spans
    ]
    problems: list[str] = []
    by_id: dict[int, dict] = {}
    for payload in payloads:
        span_id = payload["span_id"]
        if span_id in by_id:
            problems.append(f"duplicate span_id {span_id}")
        by_id[span_id] = payload
        if payload["end"] is None:
            problems.append(
                f"span {span_id} ({payload['name']!r}) was never closed"
            )

    for payload in payloads:
        parent_id = payload["parent_id"]
        if parent_id is None:
            continue
        parent = by_id.get(parent_id)
        if parent is None:
            problems.append(
                f"span {payload['span_id']} ({payload['name']!r}) has "
                f"unknown parent {parent_id} (orphan)"
            )
            continue
        if parent["end"] is None or payload["end"] is None:
            continue  # already reported as unclosed
        if (
            payload["start"] < parent["start"] - _EPSILON
            or payload["end"] > parent["end"] + _EPSILON
        ):
            problems.append(
                f"span {payload['span_id']} ({payload['name']!r}) "
                f"[{payload['start']:.9f}, {payload['end']:.9f}] escapes "
                f"parent {parent_id} ({parent['name']!r}) "
                f"[{parent['start']:.9f}, {parent['end']:.9f}]"
            )

    # Per-thread stack discipline: siblings on one thread either nest or
    # are disjoint — partial overlap means the tracer's stack broke.
    by_thread: dict[int, list[dict]] = {}
    for payload in payloads:
        if payload["end"] is not None:
            by_thread.setdefault(payload["thread_id"], []).append(payload)
    for thread_id, thread_spans in by_thread.items():
        thread_spans.sort(key=lambda p: (p["start"], -(p["end"] or 0.0)))
        stack: list[dict] = []
        for payload in thread_spans:
            while stack and stack[-1]["end"] <= payload["start"] + _EPSILON:
                stack.pop()
            if stack and payload["end"] > stack[-1]["end"] + _EPSILON:
                problems.append(
                    f"thread {thread_id}: span {payload['span_id']} "
                    f"({payload['name']!r}) partially overlaps span "
                    f"{stack[-1]['span_id']} ({stack[-1]['name']!r})"
                )
            stack.append(payload)
    return problems


def assert_spans_well_nested(spans: Sequence[Span | dict]) -> int:
    """Raise AssertionError listing *all* violations; returns span count."""
    problems = check_spans_well_nested(spans)
    if problems:
        detail = "\n  ".join(problems)
        raise AssertionError(
            f"{len(problems)} span-nesting violation(s):\n  {detail}"
        )
    return len(list(spans))
