"""Structured execution tracing: nested spans over the TTM pipeline.

The framework now has three decision layers (estimator, exhaustive
tuner, persistent autotune cache) plus two execution engines (batched
and per-iteration), and the paper's whole argument is about *which*
configuration those layers pick.  A :class:`Tracer` records that as a
tree of timed **spans** — ``plan``, ``cache-lookup``, ``partition``,
``tuner-sweep``, ``view-build``, ``parfor-dispatch``, ``gemm-kernel`` —
each carrying the attributes the paper's figures are drawn from (shape,
mode, layout, |M_C|, batch modes, thread split, FLOPs).

Design constraints, in order:

1. **The disabled path is near-free.**  Instrumented modules fetch the
   active tracer with one module-global read (:func:`active_tracer`)
   and branch on its ``enabled`` attribute; the default
   :data:`NULL_TRACER` never allocates, so code that is not inside a
   :func:`tracing` block pays one attribute lookup per instrumented
   call and *zero* per loop iteration (the executors only build traced
   loop bodies when ``enabled`` is True — the same pattern the
   hot-path counters use).
2. **Worker threads keep the tree intact.**  Span stacks are
   per-thread (``threading.local``), so concurrent bodies never
   corrupt each other; a span started on a worker can be parented
   explicitly (``tracer.span(..., parent=...)``) to the span that was
   current when the parallel region was entered, which is how
   ``parfor`` bodies stay attached to the dispatching call.
3. **One snapshot surface.**  Every ``Tracer`` owns a
   :class:`repro.perf.profiler.HotCounters`; entering a
   :func:`tracing` block installs it as the active counter sink, so
   spans and the existing dispatch/cache counters land in the same
   :func:`snapshot`.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.perf.profiler import (
    HotCounters,
    active_hot_counters,
    install_hot_counters,
)


@dataclass
class Span:
    """One timed, attributed region of execution.

    ``start``/``end`` are ``time.perf_counter()`` seconds (monotonic,
    process-local); ``parent_id`` is None for root spans.  ``attrs``
    holds JSON-safe key/value pairs — exporters serialize them as-is.
    """

    name: str
    span_id: int
    parent_id: int | None
    thread_id: int
    thread_name: str
    start: float
    end: float | None = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while the span is still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def set(self, **attrs) -> "Span":
        """Attach attributes decided mid-span (e.g. the chosen degree)."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread_id": self.thread_id,
            "thread_name": self.thread_name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }


class SpanCollector:
    """Thread-safe sink for finished spans (append-only, snapshot reads)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: list[Span] = []

    def add(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def spans(self) -> list[Span]:
        """A point-in-time copy, ordered by completion time."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


class _NullSpanContext:
    """The context manager :data:`NULL_TRACER` hands out — does nothing."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()

#: Sentinel parent that forces a span to start a *new root tree*, no
#: matter what spans are open on the calling thread.  The serving layer
#: (:mod:`repro.serve`) executes many tenants' requests on a small pool
#: of shared worker threads; passing ``parent=ROOT`` gives each request
#: (or coalesced batch) its own span tree instead of nesting it under
#: whatever the thread happened to be doing.
ROOT = Span(
    name="<root>",
    span_id=0,
    parent_id=None,
    thread_id=0,
    thread_name="",
    start=0.0,
)


class NullTracer:
    """The default tracer: every operation is a no-op.

    ``enabled`` is False so hot paths can skip building attribute dicts
    entirely; ``span()`` still works (returning a shared null context)
    so call sites that do not branch remain correct.
    """

    enabled = False

    def span(self, name: str, parent: Span | None = None, **attrs):
        return _NULL_SPAN_CONTEXT

    def current_span(self) -> Span | None:
        return None

    def snapshot(self) -> dict:
        return {"spans": [], "counters": {}}


NULL_TRACER = NullTracer()


class Tracer:
    """Collects a tree of spans (plus hot-path counters) for one region."""

    enabled = True

    def __init__(
        self,
        collector: SpanCollector | None = None,
        counters: HotCounters | None = None,
        clock=time.perf_counter,
    ) -> None:
        self.collector = collector if collector is not None else SpanCollector()
        self.counters = counters if counters is not None else HotCounters()
        self._clock = clock
        self._local = threading.local()
        self._ids = itertools.count(1)

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span(self) -> Span | None:
        """The innermost open span on *this* thread (None at top level)."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, parent: Span | None = None, **attrs):
        """Open a nested span for the duration of a ``with`` block.

        The parent defaults to the current span of the calling thread;
        pass *parent* explicitly to attach work running on a worker
        thread to the span that dispatched it, or :data:`ROOT` to force
        a fresh root tree regardless of what this thread has open.
        """
        stack = self._stack()
        if parent is ROOT:
            parent = None
        elif parent is None and stack:
            parent = stack[-1]
        thread = threading.current_thread()
        span = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=None if parent is None else parent.span_id,
            thread_id=thread.ident or 0,
            thread_name=thread.name,
            start=self._clock(),
            attrs=dict(attrs),
        )
        stack.append(span)
        try:
            yield span
        finally:
            span.end = self._clock()
            stack.pop()
            self.collector.add(span)

    def snapshot(self) -> dict:
        """Everything observed so far: spans + counters, one surface."""
        return {
            "spans": [s.to_dict() for s in self.collector.spans()],
            "counters": self.counters.as_dict(),
        }


_ACTIVE: NullTracer | Tracer = NULL_TRACER


def active_tracer() -> NullTracer | Tracer:
    """The tracer instrumented code reports to (NULL_TRACER when off)."""
    return _ACTIVE


@contextmanager
def tracing(tracer: Tracer | None = None):
    """Enable tracing for a ``with`` block; yields the :class:`Tracer`.

    Also installs the tracer's :class:`HotCounters` as the active
    counter sink, so the dispatch/cache tallies recorded by existing
    instrumentation show up in the same :meth:`Tracer.snapshot`.
    Blocks nest: the previous tracer (and counter sink) is restored on
    exit.
    """
    global _ACTIVE
    if tracer is None:
        tracer = Tracer()
    previous = _ACTIVE
    _ACTIVE = tracer
    previous_counters = install_hot_counters(tracer.counters)
    try:
        yield tracer
    finally:
        _ACTIVE = previous
        install_hot_counters(previous_counters)


def snapshot() -> dict:
    """The active tracer's spans + counters (works outside tracing too).

    Inside a :func:`tracing` block this is the tracer's snapshot; outside
    one it still surfaces any counters collected by a bare
    :func:`repro.perf.profiler.track_hot_path` region, so the two
    observability entry points share one read path.
    """
    tracer = active_tracer()
    if tracer.enabled:
        return tracer.snapshot()
    counters = active_hot_counters()
    return {
        "spans": [],
        "counters": counters.as_dict() if counters is not None else {},
    }
