"""Span exporters: JSON-lines, Chrome ``trace_event``, and a text tree.

Three consumers, three formats:

* **JSON-lines** (:func:`spans_to_jsonl`) — one span object per line,
  the grep/jq-friendly form for log pipelines;
* **Chrome trace** (:func:`spans_to_chrome_trace`) — the
  ``trace_event`` JSON loadable in ``chrome://tracing`` and Perfetto
  (complete ``"ph": "X"`` events with microsecond timestamps, one
  track per thread);
* **span tree** (:func:`render_span_tree`) — the ``explain``-style
  terminal rendering the ``repro trace`` CLI prints.
"""

from __future__ import annotations

import json
import os
from typing import IO, Iterable, Sequence

from repro.obs.tracer import Span


def _as_span_dict(span: Span | dict) -> dict:
    return span.to_dict() if isinstance(span, Span) else dict(span)


def spans_to_jsonl(spans: Iterable[Span | dict]) -> str:
    """One compact JSON object per line (trailing newline included)."""
    lines = [
        json.dumps(_as_span_dict(span), sort_keys=True) for span in spans
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(spans: Iterable[Span | dict], file: str | IO[str]) -> None:
    """Write :func:`spans_to_jsonl` output to a path or open text file."""
    text = spans_to_jsonl(spans)
    if isinstance(file, str):
        with open(file, "w") as fh:
            fh.write(text)
    else:
        file.write(text)


def spans_to_chrome_trace(
    spans: Iterable[Span | dict], pid: int | None = None
) -> dict:
    """The ``trace_event`` payload for ``chrome://tracing`` / Perfetto.

    Every span becomes a complete event (``"ph": "X"``): ``ts``/``dur``
    in microseconds, ``tid`` from the recording thread so parallel loop
    bodies land on their own tracks, and the span attributes under
    ``args`` where the trace viewer shows them on click.
    """
    if pid is None:
        pid = os.getpid()
    events = []
    for span in spans:
        payload = _as_span_dict(span)
        end = payload["end"]
        duration = 0.0 if end is None else end - payload["start"]
        args = dict(payload["attrs"])
        args["span_id"] = payload["span_id"]
        if payload["parent_id"] is not None:
            args["parent_id"] = payload["parent_id"]
        events.append(
            {
                "name": payload["name"],
                "cat": "repro",
                "ph": "X",
                "ts": payload["start"] * 1e6,
                "dur": max(duration, 0.0) * 1e6,
                "pid": pid,
                "tid": payload["thread_id"],
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    spans: Iterable[Span | dict], file: str | IO[str]
) -> None:
    """Write :func:`spans_to_chrome_trace` output as JSON."""
    payload = spans_to_chrome_trace(spans)
    if isinstance(file, str):
        with open(file, "w") as fh:
            json.dump(payload, fh, indent=2)
    else:
        json.dump(payload, file, indent=2)


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def _format_attrs(attrs: dict) -> str:
    parts = []
    for key in sorted(attrs):
        value = attrs[key]
        if isinstance(value, float):
            parts.append(f"{key}={value:.4g}")
        else:
            parts.append(f"{key}={value}")
    return " ".join(parts)


def render_span_tree(spans: Sequence[Span | dict]) -> str:
    """An indented text rendering of the span forest, roots first.

    Children sort by start time under their parent; spans whose parent
    never finished (or was recorded by another tracer) render as roots,
    so a partial collection still prints everything it has.
    """
    payloads = [_as_span_dict(span) for span in spans]
    by_id = {p["span_id"]: p for p in payloads}
    children: dict[int | None, list[dict]] = {}
    for payload in payloads:
        parent = payload["parent_id"]
        if parent is not None and parent not in by_id:
            parent = None  # orphaned by partial collection: promote to root
        children.setdefault(parent, []).append(payload)
    for siblings in children.values():
        siblings.sort(key=lambda p: p["start"])

    lines: list[str] = []

    def walk(payload: dict, depth: int) -> None:
        attrs = _format_attrs(payload["attrs"])
        duration = _format_duration(
            0.0
            if payload["end"] is None
            else payload["end"] - payload["start"]
        )
        indent = "  " * depth
        suffix = f"  [{attrs}]" if attrs else ""
        lines.append(f"{indent}{payload['name']}  {duration}{suffix}")
        for child in children.get(payload["span_id"], ()):
            walk(child, depth + 1)

    for root in children.get(None, ()):
        walk(root, 0)
    return "\n".join(lines)
