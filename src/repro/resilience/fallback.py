"""The GEMM kernel fallback chain: degrade, don't die.

The planner picks the *fastest* kernel for an input (paper §4.3.1); this
module makes that an optimistic first choice rather than a single point
of failure.  When the planned kernel raises at execution time — a BLAS
error, a ``MemoryError`` from a packing buffer, an unsupported stride —
the dispatcher retries the same multiply one tier down the chain

    ``blas -> blocked -> reference``

recording each degradation as a :class:`~repro.perf.profiler
.HotCounters` tally (``kernel_fallbacks``) and a trace-span attribute,
and only raising — a typed :class:`~repro.util.errors
.KernelExecutionError` — when even the reference kernel fails.

Degradation is **sticky within one executor call**: once a tier failed
for one loop index, later indices start at the degraded tier instead of
re-failing per iteration.  It never crosses calls — the next TTM trusts
its plan again (a transient failure should not permanently slow the
process down).

Output safety: retried kernels in overwrite mode rewrite every element
of the destination, so a partial write from the failed attempt can never
survive.  In *accumulate* mode that argument fails (a partial ``+=``
cannot be undone), so the chain computes each attempt into a
kernel-sized scratch and adds it exactly once after success — the same
bounded temporary the BLAS accumulate path already pays.
"""

from __future__ import annotations

import logging
import threading
from typing import Callable

import numpy as np

from repro.gemm.interface import kernel_supports, resolve_kernel
from repro.resilience.faults import record_degradation
from repro.util.errors import KernelExecutionError, ReproError, StrideError

log = logging.getLogger("repro.resilience")

#: The degradation order: fastest and most demanding first, the
#: always-works scalar oracle last.
FALLBACK_CHAIN = ("blas", "blocked", "reference")


def fallback_tiers(kernel: str) -> tuple[str, ...]:
    """Kernel names to try in order, starting from the planned *kernel*.

    Kernels on the chain degrade along it; routing kernels (``auto``,
    ``threaded``) already pick per-operand, so they degrade straight to
    the universal tiers.
    """
    if kernel in FALLBACK_CHAIN:
        return FALLBACK_CHAIN[FALLBACK_CHAIN.index(kernel):]
    return (kernel,) + FALLBACK_CHAIN[1:]


def recoverable(exc: BaseException) -> bool:
    """True when retrying a *different kernel* could plausibly succeed.

    Stride legality is per-kernel (the motivating case: BLAS refuses
    general strides that the blocked kernel handles), and so are
    allocation failures (the blocked kernel's packing buffers, BLAS
    workspace) and numeric/runtime faults inside a backend.  Every other
    :class:`ReproError` — shape, dtype, plan mismatches — would fail
    identically in every tier and propagates untouched, as do
    programming errors (TypeError etc.).
    """
    if isinstance(exc, StrideError):
        return True
    if isinstance(exc, ReproError):
        return False
    return isinstance(
        exc, (MemoryError, ArithmeticError, RuntimeError, ValueError)
    )


def _dedupe(tiers: list[tuple[str, Callable]]) -> list[tuple[str, Callable]]:
    seen: set[str] = set()
    unique = []
    for name, dispatch in tiers:
        if name not in seen:
            seen.add(name)
            unique.append((name, dispatch))
    return unique


def build_gemm_tiers(plan) -> list:
    """``[(name, callable(a, b, out))]`` for the per-iteration executor.

    Every dispatch is *overwrite* mode (``out = a @ b``) — accumulation
    is the chain's job, see :class:`KernelChain`.  Tier 0 is the plan's
    own dispatch, including its ``P_C`` threading and dtype-capability
    routing (a kernel that cannot execute the plan dtype lands on
    ``blocked`` immediately, same as before); later tiers are the
    single-threaded universal kernels.
    """
    # Imported at tier-build time, not module import: the kernel modules
    # themselves import the fault-injection checkpoints from this package.
    from repro.gemm.threaded import gemm_threaded

    tiers: list[tuple[str, Callable]] = []
    if plan.kernel_threads > 1:
        inner = "auto" if plan.kernel == "threaded" else plan.kernel
        threads = plan.kernel_threads

        def run_threaded(a, b, out):
            gemm_threaded(a, b, out=out, threads=threads, kernel=inner)

        tiers.append((f"threaded[{inner}]", run_threaded))
        rest: tuple[str, ...] = FALLBACK_CHAIN[1:]
    else:
        names = fallback_tiers(plan.kernel)
        if names[0] in FALLBACK_CHAIN and not kernel_supports(
            names[0], plan.dtype
        ):
            # The capability fallback already rewrites tier 0 to blocked;
            # name it honestly so degradations are attributed right.
            names = fallback_tiers("blocked")
        first = resolve_kernel(names[0], plan.dtype)

        # Bind through a default argument: the loop below reuses the
        # enclosing scope, and a late-binding closure here would silently
        # dispatch every tier through the last-resolved kernel.
        def run_first(a, b, out, _impl=first):
            _impl(a, b, out=out)

        tiers.append((names[0], run_first))
        rest = names[1:]
    for name in rest:

        def run(a, b, out, _impl=resolve_kernel(name, plan.dtype)):
            _impl(a, b, out=out)

        tiers.append((name, run))
    return _dedupe(tiers)


def build_batched_tiers(plan) -> list:
    """``[(name, callable(a3, b3, out3))]`` for the batched executor."""
    from repro.gemm.batched import gemm_batched

    tiers: list[tuple[str, Callable]] = []
    if plan.kernel_threads > 1:
        threads = plan.kernel_threads

        def run_threaded(a, b, out):
            gemm_batched(a, b, out=out, kernel="threaded", threads=threads)

        tiers.append(("threaded", run_threaded))
        names: tuple[str, ...] = FALLBACK_CHAIN[1:]
    else:
        names = fallback_tiers(plan.kernel)

    for name in names:

        def run(a, b, out, _name=name):
            gemm_batched(a, b, out=out, kernel=_name)

        tiers.append((name, run))
    return _dedupe(tiers)


class KernelChain:
    """A degrading GEMM dispatcher over an ordered list of tiers.

    Callable as ``chain(a, b, out)``; thread-safe (``parfor`` workers
    share one chain).  Each failing dispatch is retried once on the next
    tier; the tier a call succeeds at becomes the starting tier for
    subsequent calls from this chain.

    With ``accumulate=True`` every attempt runs into a kernel-sized
    scratch and is added into *out* exactly once after success, so a
    failed attempt can never leave a partial accumulation behind.
    """

    def __init__(self, tiers, accumulate: bool = False) -> None:
        if not tiers:
            raise ValueError("KernelChain needs at least one tier")
        self._tiers = list(tiers)
        self._accumulate = accumulate
        self._tier = 0
        self._lock = threading.Lock()

    @property
    def kernel_name(self) -> str:
        """The tier currently dispatched first (degrades over time)."""
        return self._tiers[self._tier][0]

    @property
    def degraded(self) -> bool:
        return self._tier > 0

    def __call__(self, a, b, out) -> None:
        tier = self._tier
        while True:
            name, dispatch = self._tiers[tier]
            try:
                if self._accumulate:
                    scratch = np.empty(out.shape, dtype=out.dtype)
                    dispatch(a, b, scratch)
                    out += scratch
                else:
                    dispatch(a, b, out)
                return
            except BaseException as exc:
                if not recoverable(exc):
                    raise
                if tier + 1 >= len(self._tiers):
                    raise KernelExecutionError(
                        f"every GEMM kernel tier failed "
                        f"({' -> '.join(n for n, _ in self._tiers)}); "
                        f"last error from {name!r}: "
                        f"{type(exc).__name__}: {exc}"
                    ) from exc
                nxt = self._tiers[tier + 1][0]
                log.warning(
                    "gemm kernel %r failed (%s: %s); degrading to %r",
                    name, type(exc).__name__, exc, nxt,
                )
                record_degradation(
                    "kernel_fallbacks",
                    degraded=True,
                    degraded_from=name,
                    degraded_to=nxt,
                    degraded_error=type(exc).__name__,
                )
                tier += 1
                with self._lock:
                    if tier > self._tier:
                        self._tier = tier
