"""Deterministic fault injection for the resilience layer.

Every degradation path in this library — kernel fallback, pool
replacement, serial execution, store-read retry, memory-pressure replan
— exists because something in the hot path can fail.  Those failures are
rare by construction, so without help the degradation code would be the
least-tested code in the repository.  This module makes failure a test
input: a :class:`FaultInjector` armed with named rules is installed for
a ``with`` block, and instrumented call sites *check in* at well-known
injection points.

Named injection points (the wiring sites ship with the library):

``kernel-raise``
    Entry of every GEMM kernel (``repro.gemm.blas_like/blocked/
    reference`` and the batched fast path).  Context: ``kernel=<name>``.
``worker-death``
    ``parfor``'s submit step — fires *before* any worker is scheduled,
    simulating a pool torn down or poisoned under the caller.
``slow-body``
    Inside a ``parfor`` worker, once per pulled block — arm with a
    ``delay`` to simulate a stuck body and trip the watchdog.
``store-read-error``
    :meth:`repro.autotune.store.PlanStore.load`'s file read, and
    :func:`repro.tensor.dense.open_memmap_tensor`'s file open (context:
    ``site="memmap-open", path=<str>``).
``alloc-fail``
    The memory pre-flight guard — arming it with no ``match`` (no
    exception needed) makes the guard see zero available bytes.  The
    tiled executor additionally checks in before each scratch
    allocation with ``site="tile-scratch", tile=<i>, bytes=<n>`` so a
    matched rule can kill allocation *k* mid-run without zeroing the
    global budget probe (which passes no context).
``crash``
    Process death, for the checkpoint/restart layer
    (:mod:`repro.resilience.recovery`).  Checked at
    ``site="tile-commit"`` (tiled executor, output written but not yet
    journaled), ``site="journal-append"`` (inside
    :meth:`~repro.resilience.recovery.Journal.append`, before the
    write), ``site="chunk-commit"`` (streaming TTM) and
    ``site="sweep-end"`` (HOOI, sweep computed but not yet
    checkpointed).  A rule armed with no *exc* delivers a real
    ``SIGKILL`` to the process — the subprocess crash/resume suites are
    built on this — while a rule armed with an exception raises it
    instead, the in-process form the Hypothesis resume fuzz uses.

Besides firing armed rules, instrumented allocation sites report what
they allocate through :meth:`FaultInjector.observe`; the ``observed``
log is how the out-of-core tests measure peak scratch against the
budget without monkeypatching NumPy.

The disabled path is the same shape as the tracer's and the hot-path
counters': instrumented code reads one module global
(:func:`active_faults`) and skips everything when it is None, so
production runs pay a single attribute load per checkpoint and nothing
per loop iteration.

Everything is deterministic: rules fire by hit count (``after`` skips,
``times`` firings), never by randomness, so every degradation test is
exactly reproducible.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs.tracer import active_tracer
from repro.perf.profiler import active_hot_counters

#: Injection points the in-tree wiring checks.  ``arm`` validates against
#: this so a typo in a test fails loudly instead of silently never firing.
INJECTION_POINTS = (
    "kernel-raise",
    "worker-death",
    "slow-body",
    "store-read-error",
    "alloc-fail",
    "crash",
)


class InjectedFault(RuntimeError):
    """Default exception type raised by an armed rule with no explicit one."""


@dataclass
class FaultRule:
    """One armed failure: where, when, and what happens.

    ``match`` filters on the context keywords the checkpoint supplies
    (e.g. ``kernel="blas"`` fires only in the BLAS kernel); an empty
    match fires everywhere the point is checked.  The rule skips its
    first *after* matching hits, then fires *times* times, then disarms.
    """

    point: str
    exc: type[BaseException] | BaseException | None = None
    delay: float = 0.0
    times: int = 1
    after: int = 0
    match: dict = field(default_factory=dict)
    hits: int = 0
    fired: int = 0

    def matches(self, ctx: dict) -> bool:
        return all(ctx.get(key) == value for key, value in self.match.items())

    def exhausted(self) -> bool:
        return self.fired >= self.times


class FaultInjector:
    """A deterministic set of armed :class:`FaultRule`\\ s.

    Thread-safe: ``parfor`` workers and the dispatching thread hit the
    same injector concurrently.  The ``fired`` log records every firing
    as ``(point, ctx)`` so tests can assert not only the outcome but
    that the intended site actually failed.
    """

    def __init__(self) -> None:
        self._rules: list[FaultRule] = []
        self._lock = threading.Lock()
        self.fired: list[tuple[str, dict]] = []
        self.observed: list[tuple[str, dict]] = []

    def arm(
        self,
        point: str,
        exc: type[BaseException] | BaseException | None = None,
        delay: float = 0.0,
        times: int = 1,
        after: int = 0,
        **match,
    ) -> "FaultInjector":
        """Add a rule; returns self so arming chains fluently.

        *exc* may be an exception class or instance to raise when the
        rule fires; with no *exc* the firing is recorded (and *delay*
        slept) and :meth:`check` returns True — the form value-level
        guards like ``alloc-fail`` use.
        """
        if point not in INJECTION_POINTS:
            raise ValueError(
                f"unknown injection point {point!r}; choose from "
                f"{INJECTION_POINTS}"
            )
        if times < 1:
            raise ValueError(f"times must be >= 1, got {times}")
        if after < 0 or delay < 0:
            raise ValueError("after and delay must be >= 0")
        with self._lock:
            self._rules.append(
                FaultRule(
                    point=point,
                    exc=exc,
                    delay=delay,
                    times=times,
                    after=after,
                    match=dict(match),
                )
            )
        return self

    def check(self, point: str, **ctx) -> bool:
        """Fire the first live rule for *point* matching *ctx*.

        Sleeps the rule's delay, records the firing, raises the rule's
        exception if it has one, and returns True (False when nothing
        fired).  Called only from instrumented sites that already saw a
        non-None :func:`active_faults`.
        """
        with self._lock:
            rule = None
            for candidate in self._rules:
                if candidate.point != point or candidate.exhausted():
                    continue
                if not candidate.matches(ctx):
                    continue
                candidate.hits += 1
                if candidate.hits <= candidate.after:
                    continue
                candidate.fired += 1
                rule = candidate
                break
            if rule is None:
                return False
            self.fired.append((point, dict(ctx)))
            delay, exc = rule.delay, rule.exc
        # Sleep and raise outside the lock: a slow-body rule must not
        # serialize every other checkpoint behind its sleep.
        if delay:
            time.sleep(delay)
        if exc is not None:
            raise exc if isinstance(exc, BaseException) else exc(
                f"injected fault at {point!r}"
            )
        if point == "crash":
            # A crash rule with no exception is the real thing: SIGKILL,
            # uncatchable, no atexit, no finally — exactly what the
            # checkpoint/restart layer must survive.
            os.kill(os.getpid(), signal.SIGKILL)
        return True

    def count(self, point: str) -> int:
        """How many times *point* has fired so far."""
        with self._lock:
            return sum(1 for p, _ in self.fired if p == point)

    def observe(self, event: str, **ctx) -> None:
        """Record a passive observation (no rule matching, never raises).

        Instrumented allocation sites call this with what they are about
        to allocate (``observe("alloc", site=..., bytes=...)``) so tests
        can reconstruct peak transient memory from the log.  Free-form:
        *event* is not restricted to :data:`INJECTION_POINTS`.
        """
        with self._lock:
            self.observed.append((event, dict(ctx)))

    def observations(self, event: str) -> list[dict]:
        """All recorded contexts for *event*, in order."""
        with self._lock:
            return [dict(ctx) for e, ctx in self.observed if e == event]


_ACTIVE: FaultInjector | None = None


def active_faults() -> FaultInjector | None:
    """The installed injector, or None (the production fast path)."""
    return _ACTIVE


@contextmanager
def fault_injection(injector: FaultInjector | None = None):
    """Install *injector* (a fresh one by default) for a ``with`` block.

    Blocks nest; the previous injector is restored on exit.  Yields the
    injector so tests can arm rules and read its ``fired`` log::

        with fault_injection() as faults:
            faults.arm("kernel-raise", exc=MemoryError, kernel="blas")
            y = repro.ttm(x, u, mode=1)   # degrades to blocked, still right
            assert faults.count("kernel-raise") == 1
    """
    global _ACTIVE
    if injector is None:
        injector = FaultInjector()
    previous = _ACTIVE
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = previous


def record_degradation(counter: str, **span_attrs) -> None:
    """Report one degradation: bump its counter, annotate the open span.

    The shared reporting seam for every resilience path — kernel
    fallback, pool replacement, serial degradation, watchdog timeout,
    store retry, memory replan.  Both sinks are best-effort: with no
    active counters or tracer the call is two global reads.
    """
    counters = active_hot_counters()
    if counters is not None:
        counters.count_resilience(counter)
    tracer = active_tracer()
    if tracer.enabled:
        span = tracer.current_span()
        if span is not None:
            span.set(**span_attrs)
