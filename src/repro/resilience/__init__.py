"""Resilient execution: fallbacks, supervision, pre-flight guards.

The planner (paper §4.3.1) is adaptive at *plan* time; this package
makes the executor adaptive at *failure* time, with one contract (see
DESIGN.md §10): a TTM either returns the oracle-correct result — via a
degraded path when the planned one fails — or raises a typed
:class:`~repro.util.errors.ReproError` subclass.  Never a hang, never a
bare ``RuntimeError``, never a partially written output; every
degradation increments a :class:`~repro.perf.profiler.HotCounters`
counter and annotates the open trace span.

Pieces:

* :mod:`repro.resilience.fallback` — the GEMM kernel fallback chain
  (``blas -> blocked -> reference``) the executors dispatch through;
* :mod:`repro.resilience.memory` — the memory-pressure pre-flight guard
  (:func:`guard_memory`) sizing a call from its plan before allocating;
* :mod:`repro.resilience.faults` — the deterministic fault-injection
  harness (:class:`FaultInjector`) that lets tests *prove* each
  degradation path instead of trusting it;
* :mod:`repro.resilience.recovery` — journaled checkpoint/restart for
  out-of-core jobs (checksummed commit records, complete-or-untouched
  output landing, resume/verify), surviving what the in-process layer
  cannot: the death of the process itself;
* the supervised ``parfor`` (watchdog deadline, pool replacement,
  serial degradation) lives with the pools in
  :mod:`repro.parallel.parfor`.
"""

from repro.resilience.fallback import (
    FALLBACK_CHAIN,
    KernelChain,
    build_batched_tiers,
    build_gemm_tiers,
    fallback_tiers,
    recoverable,
)
from repro.resilience.faults import (
    INJECTION_POINTS,
    FaultInjector,
    FaultRule,
    InjectedFault,
    active_faults,
    fault_injection,
    record_degradation,
)
from repro.resilience.memory import (
    MEM_LIMIT_ENV,
    available_bytes,
    guard_memory,
    pinned_budget,
    plan_footprint_bytes,
)
from repro.resilience.recovery import (
    JOURNAL_SCHEMA,
    Journal,
    VerifyReport,
    atomic_save_array,
    describe_journal,
    file_checksum,
    fingerprint_array,
    fingerprint_tensor,
    open_or_resume,
    partial_path,
    publish_file,
    region_checksum,
    resume_job,
    verify_journal,
)

__all__ = [
    "FALLBACK_CHAIN",
    "INJECTION_POINTS",
    "JOURNAL_SCHEMA",
    "MEM_LIMIT_ENV",
    "FaultInjector",
    "FaultRule",
    "InjectedFault",
    "Journal",
    "KernelChain",
    "VerifyReport",
    "active_faults",
    "atomic_save_array",
    "available_bytes",
    "build_batched_tiers",
    "build_gemm_tiers",
    "describe_journal",
    "fallback_tiers",
    "fault_injection",
    "file_checksum",
    "fingerprint_array",
    "fingerprint_tensor",
    "guard_memory",
    "open_or_resume",
    "partial_path",
    "pinned_budget",
    "plan_footprint_bytes",
    "publish_file",
    "recoverable",
    "record_degradation",
    "region_checksum",
    "resume_job",
    "verify_journal",
]
