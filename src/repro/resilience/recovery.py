"""Journaled checkpoint/restart: crash-safe out-of-core execution.

The resilience layer (DESIGN.md §10) survives *in-process* faults — a
kernel raising, a worker dying, memory pressure — but nothing in it
survives the death of the process itself.  For the jobs the out-of-core
layer exists for (tiled TTMs over memmap tensors, multi-sweep HOOI
decompositions) that is the dominant failure: a ``kill -9`` at tile
900/1000 throws away every completed tile and, worse, leaves a torn
output file that looks like a finished result.  This module closes the
gap with two mechanisms:

**The journal** — a JSON-lines manifest beside the job.  Line 1 is a
header carrying the schema version, the job kind, a digest of the
execution decision (the tiling geometry, the HOOI configuration), and
cheap content fingerprints of the inputs.  Every completed unit of work
(tile, stream chunk, HOOI sweep) then appends one commit record carrying
a CRC-32 content checksum of the bytes it landed.  Appends are a single
``write`` of one line, so a crash can tear at most the final line, which
the parser drops; fsync is grouped on a time interval
(:data:`SYNC_INTERVAL_S`) so durability costs O(elapsed time), not
O(commits).  A commit record is never *trusted* on resume: the landed
bytes are re-checksummed first, and a mismatch (torn page, bit rot)
recomputes the unit instead of silently keeping it.

**Complete-or-untouched landing** — outputs written to a path go to
``<path>.partial`` and are published with flush + fsync +
``os.replace`` only after every unit committed, so a file at the
requested path is always a complete, verified result, across crashes
and power loss alike.

The consumers are :func:`repro.core.tiling.execute_tiled` /
``ttm_tiled`` (``journal_path=``), :func:`repro.core.tiling.ttm_stream`
(resumable chunk cursors), and :func:`repro.decomp.tucker.hooi`
(``checkpoint_path=``); ``python -m repro recover {show,resume,verify}``
is the operator surface.  The deterministic ``crash`` fault point
(:mod:`repro.resilience.faults`) makes process death a test input at
sites ``tile-commit``, ``journal-append``, ``chunk-commit`` and
``sweep-end``.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import zlib
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.obs.tracer import active_tracer
from repro.perf.profiler import active_hot_counters
from repro.resilience.faults import active_faults
from repro.util.errors import RecoveryError

#: Journal file format version.  Bumped on any change to the header or
#: record shapes; a mismatched journal refuses to resume (the safe
#: failure: recompute from scratch under a fresh journal).
JOURNAL_SCHEMA = 1

#: Grouped-fsync interval for commit records, seconds.  A crash loses at
#: most this much *committed-but-unsynced* work to a power cut (a plain
#: ``kill -9`` loses nothing: the page cache survives the process), and
#: in exchange journal durability costs O(elapsed time) instead of one
#: fsync per tile.  The header, the final record, and every checkpoint
#: sidecar publish are always fsync'd.
SYNC_INTERVAL_S = 0.05

#: Bytes sampled per region (head, middle, tail) by the input
#: fingerprints.  Sampling keeps fingerprinting O(1) for memmap tensors
#: that deliberately do not fit in RAM; the full-file checksum lives in
#: the per-tile commit records, not here.
FINGERPRINT_SAMPLE_BYTES = 1 << 16


# -- checksums and fingerprints ----------------------------------------------


def region_checksum(arr) -> int:
    """CRC-32 over an array region's bytes (copying only if strided).

    The content checksum the journal commits and resume verifies.  Any
    single-bit flip changes a CRC-32, which is the integrity class this
    layer defends against (torn pages, partial writes, bit rot) —
    adversarial corruption is out of scope.
    """
    a = np.asarray(arr)
    if not a.flags["C_CONTIGUOUS"]:
        if a.flags["F_CONTIGUOUS"]:
            a = a.T
        else:
            a = np.ascontiguousarray(a)
    return zlib.crc32(a) & 0xFFFFFFFF


def file_checksum(path) -> int:
    """CRC-32 of a whole file, streamed in 1 MiB chunks."""
    crc = 0
    with open(path, "rb") as fh:
        while True:
            block = fh.read(1 << 20)
            if not block:
                break
            crc = zlib.crc32(block, crc)
    return crc & 0xFFFFFFFF


def fingerprint_array(arr: np.ndarray) -> dict:
    """A cheap, stable identity for one input operand.

    Geometry plus CRC-32s of sampled byte ranges (head/middle/tail).
    Sampling is deliberate: fingerprinting a terabyte memmap must not
    read a terabyte.  Two tensors that differ only outside the sampled
    ranges collide here — the per-unit content checksums still catch
    any output divergence on verify.
    """
    a = np.asarray(arr)
    if a.flags["F_CONTIGUOUS"] and not a.flags["C_CONTIGUOUS"]:
        a = a.T
    if not a.flags["C_CONTIGUOUS"]:
        a = np.ascontiguousarray(a)
    flat = a.reshape(-1)
    n = flat.size
    step = max(1, FINGERPRINT_SAMPLE_BYTES // max(1, a.itemsize))
    samples = []
    for lo in (0, max(0, n // 2 - step // 2), max(0, n - step)):
        samples.append(region_checksum(flat[lo : lo + step]))
    return {
        "shape": list(a.shape),
        "dtype": a.dtype.name,
        "nbytes": int(a.nbytes),
        "samples": samples,
    }


def fingerprint_tensor(x) -> dict:
    """:func:`fingerprint_array` plus the tensor's declared layout."""
    info = fingerprint_array(x.data)
    info["layout"] = x.layout.name
    return info


def digest_payload(payload: dict) -> str:
    """A short stable digest of a JSON-safe decision record.

    Used to pin the execution decision (tiling geometry, HOOI config)
    in the journal header: resume refuses to continue a job under a
    different decision than the one that wrote the committed work.
    """
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()[:12]


def memmap_path(x) -> str | None:
    """The backing file of a memmap-backed tensor/array, or None."""
    node = getattr(x, "data", x)
    while node is not None:
        if isinstance(node, np.memmap):
            filename = getattr(node, "filename", None)
            return None if filename is None else str(filename)
        node = getattr(node, "base", None)
    return None


# -- durable file landing -----------------------------------------------------


def partial_path(path) -> str:
    """Where an output lands before it is published."""
    return f"{path}.partial"


def fsync_file(path) -> None:
    """fsync an existing file by path (flushes the page cache to media)."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_dir(path) -> None:
    """fsync a directory so a rename inside it survives power loss.

    Best-effort: some filesystems refuse O_RDONLY on directories; the
    rename itself is still atomic there, only its durability window
    widens to the next metadata flush.
    """
    try:
        fd = os.open(os.path.dirname(os.path.abspath(path)) or ".",
                     os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def publish_file(partial: str, final: str) -> None:
    """Atomically publish a completed ``.partial`` file at its final path.

    fsync the data, ``os.replace`` into place, fsync the directory: the
    complete-or-untouched commit protocol.  After this returns, a file
    at *final* is a complete result even across power loss.
    """
    fsync_file(partial)
    os.replace(partial, final)
    fsync_dir(final)


def atomic_save_array(path: str, arr: np.ndarray) -> int:
    """Write an ``.npy`` durably via the partial + publish protocol.

    Returns the CRC-32 of the written file so callers can journal it.
    """
    part = partial_path(path)
    with open(part, "wb") as fh:
        np.save(fh, np.ascontiguousarray(arr))
    crc = file_checksum(part)
    publish_file(part, path)
    return crc


# -- the journal ---------------------------------------------------------------


@dataclass
class Journal:
    """An append-only JSON-lines manifest for one resumable job.

    One header line, then one commit record per completed unit of work,
    then a ``done`` record.  Appends are single ``write`` calls (a crash
    tears at most the trailing line); fsync is grouped on
    :data:`SYNC_INTERVAL_S`.  Use :meth:`fresh` to start a job,
    :meth:`read` to inspect one, and :func:`open_or_resume` for the
    create-or-continue decision executors need.
    """

    path: str
    header: dict
    sync_interval_s: float = SYNC_INTERVAL_S
    _fd: int | None = field(default=None, repr=False)
    _last_sync: float = field(default=0.0, repr=False)

    @classmethod
    def fresh(cls, path, header: dict,
              sync_interval_s: float = SYNC_INTERVAL_S) -> "Journal":
        """Create (truncating any previous journal) and fsync the header."""
        header = dict(header)
        header["type"] = "header"
        header["schema"] = JOURNAL_SCHEMA
        journal = cls(str(path), header, sync_interval_s)
        journal._fd = os.open(
            str(path), os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644
        )
        os.write(journal._fd, cls._encode(header))
        os.fsync(journal._fd)
        fsync_dir(str(path))
        journal._last_sync = time.monotonic()
        return journal

    @classmethod
    def read(cls, path) -> tuple[dict, list[dict]]:
        """Parse a journal: (header, records), dropping a torn last line.

        Raises :class:`RecoveryError` for a journal with no parseable
        header — an unusable file, distinct from a merely torn tail.
        """
        header: dict | None = None
        records: list[dict] = []
        with open(path, "rb") as fh:
            raw = fh.read()
        for i, line in enumerate(raw.splitlines()):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if header is None:
                    raise RecoveryError(
                        f"journal {path} has no parseable header; delete it "
                        "to restart the job from scratch"
                    ) from None
                # A torn trailing line is the expected crash artifact;
                # a torn line in the *middle* would desynchronize the
                # manifest, so everything after it is dropped too.
                break
            if i == 0 or header is None:
                if record.get("type") != "header":
                    raise RecoveryError(
                        f"journal {path} does not start with a header record"
                    )
                header = record
            else:
                records.append(record)
        if header is None:
            raise RecoveryError(f"journal {path} is empty")
        return header, records

    @classmethod
    def resume(cls, path, sync_interval_s: float = SYNC_INTERVAL_S,
               ) -> tuple["Journal", list[dict]]:
        """Reopen an existing journal for appending; returns its records."""
        header, records = cls.read(path)
        journal = cls(str(path), header, sync_interval_s)
        journal._fd = os.open(str(path), os.O_WRONLY | os.O_APPEND, 0o644)
        journal._last_sync = time.monotonic()
        return journal, records

    @staticmethod
    def _encode(record: dict) -> bytes:
        return (json.dumps(record, sort_keys=True,
                           separators=(",", ":")) + "\n").encode()

    def append(self, record: dict, sync: bool = False) -> None:
        """Append one commit record (a single write; grouped fsync).

        The deterministic ``crash`` fault point fires here with
        ``site="journal-append"`` *before* the write, so an injected
        kill loses exactly this record and nothing earlier.
        """
        if self._fd is None:
            raise RecoveryError(f"journal {self.path} is closed")
        faults = active_faults()
        if faults is not None:
            faults.check("crash", site="journal-append",
                         record=record.get("type"))
        os.write(self._fd, self._encode(record))
        counters = active_hot_counters()
        if counters is not None:
            counters.count_journal_commit()
        now = time.monotonic()
        if sync or now - self._last_sync >= self.sync_interval_s:
            os.fsync(self._fd)
            self._last_sync = now

    def close(self, final: dict | None = None) -> None:
        """Append an optional final record, fsync, and release the fd."""
        if self._fd is None:
            return
        try:
            if final is not None:
                self.append(final, sync=True)
            else:
                os.fsync(self._fd)
        finally:
            os.close(self._fd)
            self._fd = None


def open_or_resume(
    path,
    header: dict,
    sync_interval_s: float = SYNC_INTERVAL_S,
) -> tuple[Journal, list[dict]]:
    """A journal for *header*'s job: resumed when one exists, else fresh.

    An existing journal resumes only when its kind, schema, decision
    digest, and input fingerprints all match *header* — anything else
    raises :class:`RecoveryError` rather than silently splicing two
    different jobs' work together.  A journal whose header cannot be
    parsed at all is treated as garbage and overwritten.
    """
    path = str(path)
    if not os.path.exists(path):
        return Journal.fresh(path, header, sync_interval_s), []
    try:
        existing, records = Journal.read(path)
    except RecoveryError:
        return Journal.fresh(path, header, sync_interval_s), []
    if existing.get("schema") != JOURNAL_SCHEMA:
        raise RecoveryError(
            f"journal {path} was written under schema "
            f"{existing.get('schema')!r}; this build writes "
            f"{JOURNAL_SCHEMA}.  Delete it to restart from scratch."
        )
    for key in ("kind", "digest", "inputs"):
        if existing.get(key) != header.get(key):
            raise RecoveryError(
                f"journal {path} is for a different job ({key} mismatch: "
                f"journal {existing.get(key)!r} vs current "
                f"{header.get(key)!r}); delete it to restart, or point "
                "journal_path somewhere else"
            )
    journal, _ = Journal.resume(path, sync_interval_s)
    return journal, records


def committed_units(records: Sequence[dict], rtype: str,
                    key: str = "index") -> dict[int, dict]:
    """The last committed record per unit index for one record type."""
    out: dict[int, dict] = {}
    for record in records:
        if record.get("type") == rtype and key in record:
            out[int(record[key])] = record
    return out


def is_done(records: Sequence[dict]) -> bool:
    return any(record.get("type") == "done" for record in records)


# -- verification --------------------------------------------------------------


@dataclass
class VerifyReport:
    """What re-checksumming a landed result against its journal found."""

    journal_path: str
    kind: str
    target: str | None
    total: int
    verified: int
    mismatched: list[int]
    missing: bool = False
    done: bool = False

    @property
    def ok(self) -> bool:
        return not self.missing and not self.mismatched and self.verified > 0

    def describe(self) -> str:
        if self.missing:
            return (f"FAIL  {self.kind}: output {self.target} missing "
                    f"(journal {self.journal_path})")
        status = "ok" if self.ok else "FAIL"
        extra = "" if not self.mismatched else (
            f", CORRUPT units {self.mismatched}"
        )
        done = "complete" if self.done else "in progress"
        return (
            f"{status}    {self.kind} ({done}): {self.verified}/{self.total} "
            f"unit checksums match on {self.target}{extra}"
        )


def _tiling_from_header(header: dict):
    from repro.core.tiling import TilingPlan

    return TilingPlan.from_dict(header["decision"])


def verify_journal(journal_path, out_path=None) -> VerifyReport:
    """Re-checksum a journal's landed data; the ``recover verify`` core.

    For a tiled TTM every committed tile's output region is re-read and
    CRC-checked against its commit record (a published result is
    preferred over a lingering ``.partial``); for HOOI and streaming
    accumulation the checkpoint sidecar file is checked against the last
    committed record.  A single flipped byte anywhere a record covers
    flips its CRC-32 and lands in ``mismatched``.
    """
    header, records = Journal.read(journal_path)
    kind = header.get("kind", "?")
    done = is_done(records)
    tracer = active_tracer()
    if not tracer.enabled:
        return _verify_impl(journal_path, header, records, kind, done,
                            out_path)
    with tracer.span("recover-verify", journal=str(journal_path),
                     kind=kind) as span:
        report = _verify_impl(journal_path, header, records, kind, done,
                              out_path)
        span.set(total=report.total, verified=report.verified,
                 mismatched=len(report.mismatched), ok=report.ok)
    return report


def _verify_impl(journal_path, header, records, kind, done,
                 out_path) -> VerifyReport:
    if kind == "ttm-tiled":
        tiling = _tiling_from_header(header)
        target = out_path or header.get("out_path")
        if target is None:
            raise RecoveryError(
                f"journal {journal_path} landed no output file (in-RAM "
                "out=); nothing on disk to verify"
            )
        actual = str(target)
        if not os.path.exists(actual):
            part = partial_path(actual)
            if os.path.exists(part):
                actual = part
            else:
                return VerifyReport(str(journal_path), kind, str(target),
                                    tiling.n_tiles, 0, [], missing=True,
                                    done=done)
        from repro.tensor.dense import open_memmap_tensor

        out = open_memmap_tensor(actual, "r")
        committed = committed_units(records, "tile")
        mismatched = []
        specs = {spec.index: spec for spec in tiling.tiles()}
        for index, record in sorted(committed.items()):
            spec = specs.get(index)
            if spec is None:
                mismatched.append(index)
                continue
            crc = region_checksum(out.data[spec.out_slices])
            if crc != record.get("crc"):
                mismatched.append(index)
        return VerifyReport(
            str(journal_path), kind, actual, tiling.n_tiles,
            len(committed) - len(mismatched), mismatched, done=done,
        )
    if kind in ("hooi", "ttm-stream"):
        rtype = "sweep" if kind == "hooi" else "chunk"
        key = rtype
        committed = committed_units(records, rtype, key=key) or \
            committed_units(records, rtype)
        sidecar = header.get("state_path")
        if sidecar is None:
            # Streaming with axis != mode hands chunks to the caller;
            # there is no file of ours to re-read, only the manifest.
            return VerifyReport(str(journal_path), kind, None,
                                len(committed), len(committed), [],
                                done=done)
        if not os.path.exists(sidecar):
            return VerifyReport(str(journal_path), kind, sidecar,
                                len(committed), 0, [], missing=True,
                                done=done)
        last = max(committed) if committed else None
        mismatched = []
        verified = 0
        if last is not None:
            if file_checksum(sidecar) == committed[last].get("crc"):
                verified = 1
            else:
                mismatched.append(last)
        return VerifyReport(str(journal_path), kind, sidecar,
                            1 if committed else 0, verified, mismatched,
                            done=done)
    raise RecoveryError(
        f"journal {journal_path} has unknown kind {kind!r}"
    )


# -- operator surface (the `recover` CLI core) ---------------------------------


def describe_journal(journal_path) -> list[tuple[str, str]]:
    """Label/value rows summarizing a journal, for ``recover show``."""
    header, records = Journal.read(journal_path)
    kind = header.get("kind", "?")
    rows = [
        ("journal", str(journal_path)),
        ("kind", kind),
        ("schema", str(header.get("schema"))),
        ("decision digest", str(header.get("digest"))),
    ]
    if kind == "ttm-tiled":
        tiling = _tiling_from_header(header)
        committed = committed_units(records, "tile")
        rows += [
            ("signature", tiling.describe()),
            ("tiles committed", f"{len(committed)} / {tiling.n_tiles}"),
            ("out_path", str(header.get("out_path"))),
            ("x_path", str(header.get("x_path"))),
        ]
    elif kind == "hooi":
        committed = committed_units(records, "sweep", key="sweep")
        fit = committed[max(committed)].get("fit") if committed else None
        rows += [
            ("sweeps committed", str(len(committed))),
            ("last fit", "-" if fit is None else f"{fit:.6f}"),
            ("state_path", str(header.get("state_path"))),
            ("x_path", str(header.get("x_path"))),
        ]
    elif kind == "ttm-stream":
        committed = committed_units(records, "chunk", key="chunk")
        rows += [
            ("chunks committed", str(len(committed))),
            ("state_path", str(header.get("state_path"))),
        ]
    status = "complete" if is_done(records) else "interrupted (resumable)"
    rows.append(("status", status))
    return rows


def resume_job(journal_path, max_threads: int = 1) -> dict:
    """Finish an interrupted journaled job from its manifest alone.

    The CLI's ``recover resume``: everything needed to continue must
    have been recorded at journal-creation time — the input tensor's
    backing file (``x_path``), the U sidecar, the decision record.
    Jobs whose inputs were in-RAM only (no recorded paths) are not
    CLI-resumable; resume those by re-invoking the original API call
    with the same ``journal_path``.
    """
    header, records = Journal.read(journal_path)
    kind = header.get("kind")
    if kind == "ttm-tiled":
        x_path = header.get("x_path")
        u_path = header.get("u_path")
        if not x_path or not u_path:
            raise RecoveryError(
                f"journal {journal_path} records no input paths (the job "
                "ran on in-RAM operands); re-invoke ttm_tiled with the "
                "original operands and the same journal_path to resume"
            )
        if header.get("out_path") is None:
            raise RecoveryError(
                f"journal {journal_path} landed no output file; re-invoke "
                "ttm_tiled with the original out= to resume"
            )
        from repro.core.tiling import execute_tiled
        from repro.tensor.dense import open_memmap_tensor

        tiling = _tiling_from_header(header)
        x = open_memmap_tensor(x_path, "r")
        u = np.load(u_path)
        out = execute_tiled(
            x, u, tiling, out_path=header["out_path"],
            journal_path=journal_path,
        )
        return {"kind": kind, "out_path": header["out_path"],
                "shape": list(out.shape)}
    if kind == "hooi":
        x_path = header.get("x_path")
        if not x_path:
            raise RecoveryError(
                f"journal {journal_path} records no tensor path; re-invoke "
                "hooi(checkpoint_path=...) with the original tensor to "
                "resume"
            )
        from repro.decomp.tucker import hooi
        from repro.tensor.dense import open_memmap_tensor

        x = open_memmap_tensor(x_path, "r")
        result = hooi(
            x,
            tuple(header["ranks"]),
            max_iterations=int(header["max_iterations"]),
            tolerance=float(header["tolerance"]),
            svd_method=header.get("svd_method", "auto"),
            checkpoint_path=journal_path,
        )
        return {"kind": kind, "fit": result.fit,
                "iterations": result.iterations}
    if kind == "ttm-stream":
        raise RecoveryError(
            "streaming jobs consume a live slice source the journal cannot "
            "reconstruct; resume by re-invoking ttm_stream with the same "
            "slices and journal_path — committed chunks will be skipped"
        )
    raise RecoveryError(f"journal {journal_path} has unknown kind {kind!r}")
