"""Memory-pressure pre-flight guard: size the TTM before touching memory.

A TTM that dies in ``DenseTensor.empty`` or inside a kernel's packing
buffer leaves the caller with a ``MemoryError`` from the middle of the
hot path — and, if the output was preallocated, possibly a partially
written tensor.  The plan already knows every working set (the estimator
prices them to choose ``M_C``), so the executor can know *before the
first allocation* whether the call fits:

* the output tensor (when the caller did not preallocate it), plus
* one kernel working set per thread that can have a multiply in flight
  (operand views are free; kernel temporaries — packing buffers, BLAS
  workspace, accumulate scratch — are bounded by the kernel size).

When the footprint exceeds the memory the guard sees available it raises
a typed :class:`~repro.util.errors.ResourceError` up front — or, with
``allow_replan=True``, degrades to a lower-degree plan whose smaller
``M_C`` working set fits, counting a ``memory_replans`` degradation.

Availability comes from ``$REPRO_MEM_LIMIT`` (an explicit byte budget —
containers, tests), else ``MemAvailable`` in ``/proc/meminfo``, else the
guard stands down (None).  Small calls skip the probe entirely: below
:data:`PREFLIGHT_MIN_BYTES` a failure is implausible and the hot path
should not pay a file read per TTM.

Budget read policy
------------------

The budget is **re-read at every call** by default: flipping
``$REPRO_MEM_LIMIT`` (or memory freeing up in ``/proc/meminfo``) takes
effect on the very next guard probe, tiling decision, or materialization
check.  Code that must make *several* related decisions against one
coherent number — the serving engine admitting then executing a
coalesced batch, or the tiling executor pre-flighting every tile before
writing the first byte of output — wraps the region in
:func:`pinned_budget`, which snapshots the budget once (thread-locally,
so concurrent serving workers don't see each other's pins) and serves
that snapshot to every ``available_bytes()`` call inside the region.
Armed ``alloc-fail`` faults still override a pin: determinism of the
fault harness beats snapshot coherence.
"""

from __future__ import annotations

import contextlib
import logging
import math
import os
import threading

from repro.resilience.faults import active_faults, record_degradation
from repro.util.errors import ResourceError

log = logging.getLogger("repro.resilience")

_pin_state = threading.local()

#: Environment variable capping the bytes the guard believes available.
MEM_LIMIT_ENV = "REPRO_MEM_LIMIT"

#: Footprints below this skip the availability probe (no env cap, no
#: faults armed): probing /proc per tiny TTM would cost more than the
#: allocation it guards.
PREFLIGHT_MIN_BYTES = 64 << 20

#: Sentinel distinguishing "no pin installed" from a pinned None
#: (budget explicitly snapshotted as unknowable).
_UNPINNED = object()


@contextlib.contextmanager
def pinned_budget(budget: int | None = None):
    """Snapshot the memory budget for the duration of a region.

    Inside the ``with`` block every :func:`available_bytes` call on
    *this thread* returns the same number: the value probed on entry, or
    an explicit *budget* when given.  This is the documented escape from
    the default re-read-per-call policy for multi-step decisions that
    must agree with each other (serving batch admission + execution,
    tile pre-flight + execution).  Pins are thread-local and re-entrant
    (the innermost pin wins); armed ``alloc-fail`` faults still override.

    Yields the pinned value so callers can log or assert against it.
    """
    previous = getattr(_pin_state, "budget", _UNPINNED)
    if budget is None:
        # Probe once *before* installing the pin so nesting without an
        # explicit budget re-probes the outer pin, not the environment.
        budget = available_bytes()
    _pin_state.budget = budget
    try:
        yield budget
    finally:
        if previous is _UNPINNED:
            del _pin_state.budget
        else:
            _pin_state.budget = previous


def available_bytes() -> int | None:
    """Bytes the guard may plan against, or None when unknowable.

    An armed ``alloc-fail`` injection forces 0 — the deterministic way
    to exercise the pressure paths without actually exhausting a test
    machine.
    """
    faults = active_faults()
    if faults is not None and faults.check("alloc-fail"):
        return 0
    pinned = getattr(_pin_state, "budget", _UNPINNED)
    if pinned is not _UNPINNED:
        return pinned
    override = os.environ.get(MEM_LIMIT_ENV)
    if override:
        try:
            return max(0, int(override))
        except ValueError:
            log.warning("ignoring non-integer %s=%r", MEM_LIMIT_ENV, override)
    try:
        with open("/proc/meminfo") as fh:
            for line in fh:
                if line.startswith("MemAvailable:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    return None


def plan_footprint_bytes(plan, *, allocate_out: bool = True) -> int:
    """The bytes a plan's execution allocates, from geometry alone.

    Output storage (when the executor allocates it) plus one kernel
    working set per thread that can hold a multiply in flight.  Operand
    *views* cost nothing — that is the point of the in-place algorithm —
    so this is the complete allocation story, not an estimate of RSS.
    """
    out_bytes = 0
    if allocate_out:
        out_bytes = plan.itemsize * math.prod(plan.out_shape)
    in_flight = max(plan.loop_threads, plan.kernel_threads)
    return out_bytes + plan.kernel_working_set_bytes * in_flight


def guard_memory(plan, *, allocate_out: bool = True, allow_replan: bool = False):
    """Admit, degrade, or refuse a plan against available memory.

    Returns the plan to execute: the original when it fits (or when
    availability is unknowable), a lower-degree replacement when
    ``allow_replan`` and one fits, otherwise raises
    :class:`ResourceError` before anything was allocated.
    """
    need = plan_footprint_bytes(plan, allocate_out=allocate_out)
    forced = active_faults() is not None or MEM_LIMIT_ENV in os.environ
    if not forced and need < PREFLIGHT_MIN_BYTES:
        return plan
    avail = available_bytes()
    if avail is None or need <= avail:
        return plan
    if allow_replan:
        replacement = _lower_degree_plan(plan, avail, allocate_out)
        if replacement is not None:
            log.warning(
                "memory pressure: plan needs ~%d bytes, %d available; "
                "degrading degree %d -> %d",
                need, avail, plan.degree, replacement.degree,
            )
            record_degradation(
                "memory_replans",
                memory_replan=True,
                replan_from_degree=plan.degree,
                replan_to_degree=replacement.degree,
            )
            return replacement
    raise ResourceError(
        f"TTM for shape {plan.shape} mode {plan.mode} J={plan.j} needs "
        f"~{need} bytes ({'output + ' if allocate_out else ''}kernel "
        f"working sets) but only {avail} appear available; free memory, "
        f"raise ${MEM_LIMIT_ENV}, or pass allow_replan=True to accept a "
        "lower-degree plan"
    )


def _lower_degree_plan(plan, avail: int, allocate_out: bool):
    """The highest-degree plan below *plan* whose footprint fits, if any.

    Rebuilt through :func:`repro.core.inttm.default_plan` (imported
    lazily — this module sits below the core layer) with the kernel
    reopened to ``auto``: a shorter component run can change stride
    legality, and ``auto`` re-routes per operand.
    """
    from repro.core.inttm import default_plan

    for degree in range(plan.degree - 1, -1, -1):
        candidate = default_plan(
            plan.shape,
            plan.mode,
            plan.j,
            plan.layout,
            loop_threads=plan.loop_threads,
            kernel_threads=plan.kernel_threads,
            kernel="auto",
            degree=degree,
            batched=bool(plan.batch_modes),
            dtype=plan.dtype,
        )
        if plan_footprint_bytes(candidate, allocate_out=allocate_out) <= avail:
            return candidate
    return None
