"""Algorithm 1: the Tensor Toolbox-style copy-based TTM.

The three-step structure (figure 3) is reproduced literally:

1. **Matricize** — permute mode *n* to the front and physically copy the
   tensor into the unfolded matrix ``X_(n)``;
2. **Multiply** — one GEMM, ``Y_(n) = U @ X_(n)``;
3. **Tensorize** — physically copy ``Y_(n)`` back into the output
   tensor's natural mode order.

Steps 1 and 3 are the *transform* phase the paper profiles in figure 4;
the matricization buffers roughly double the storage footprint.  The
Tensor Toolbox is MATLAB-hosted, hence column-major; this implementation
honours whatever layout the input tensor declares, so the column-major
flavour is ``ttm_copy(DenseTensor(data, "F"), ...)``.
"""

from __future__ import annotations

import numpy as np

from repro.gemm.interface import gemm
from repro.perf.profiler import NullProfiler, PhaseProfiler
from repro.tensor.dense import DenseTensor
from repro.tensor.unfold import fold, unfold
from repro.util.errors import ShapeError
from repro.util.validation import check_mode


def ttm_copy(
    x: DenseTensor,
    u: np.ndarray,
    mode: int,
    profiler: PhaseProfiler | None = None,
    kernel: str = "blas",
    threads: int = 1,
) -> DenseTensor:
    """Mode-*mode* product via explicit matricization (Algorithm 1).

    *profiler* (optional) receives ``transform``/``multiply`` phase
    timings and storage charges — the figure-4 instrumentation.
    """
    if not isinstance(x, DenseTensor):
        raise TypeError(f"x must be a DenseTensor, got {type(x).__name__}")
    u = np.asarray(u, dtype=np.float64)
    mode = check_mode(mode, x.order)
    if u.ndim != 2 or u.shape[1] != x.shape[mode]:
        raise ShapeError(
            f"U shape {u.shape} does not match (J, I_n={x.shape[mode]})"
        )
    prof = profiler or NullProfiler()
    j = u.shape[0]
    out_shape = x.shape[:mode] + (j,) + x.shape[mode + 1 :]

    # -- step 1: matricize (physical permute + copy) -------------------------
    with prof.phase("transform"):
        x_mat = unfold(x, mode)
    prof.charge_bytes("transform", x_mat.nbytes)

    # -- step 2: multiply -----------------------------------------------------
    with prof.phase("multiply"):
        if threads > 1:
            from repro.gemm.threaded import gemm_threaded

            y_mat = np.empty((j, x_mat.shape[1]), order=x.layout.numpy_order)
            gemm_threaded(u, x_mat, out=y_mat, threads=threads, kernel=kernel)
        else:
            y_mat = np.empty((j, x_mat.shape[1]), order=x.layout.numpy_order)
            gemm(u, x_mat, out=y_mat, kernel=kernel)
    prof.charge_bytes("multiply", u.nbytes + int(np.prod(x.shape)) * 8)

    # -- step 3: tensorize (physical copy back) -------------------------------
    with prof.phase("transform"):
        y = fold(y_mat, mode, out_shape, x.layout)
    prof.charge_bytes("transform", y_mat.nbytes)
    prof.charge_bytes("multiply", y.nbytes)
    return y
