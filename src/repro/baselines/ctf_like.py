"""A Cyclops-Tensor-Framework-flavoured TTM baseline.

CTF [40] targets distributed memory: tensors live **block-cyclically
distributed** over a virtual processor grid, and every contraction first
maps operands into the layout the contraction kernel wants, then maps
the result back.  Run on a single node, those mapping steps are extra
physical data reorganizations on top of Algorithm 1's matricization —
which is why CTF trails the Tensor Toolbox in figure 10 (~3 vs
~10 GFLOP/s) and why INTENSLI's speedup over it is larger (~13x vs ~4x).

This baseline reproduces that cost structure faithfully on one node:

1. **distribute** — pack the input tensor into per-processor cyclic
   blocks (one full-data reorganization);
2. **undistribute** — reassemble into a contiguous tensor at the
   contraction site (a second full-data pass; in real CTF this is the
   all-to-all redistribution into the contraction mapping);
3. Algorithm 1 (matricize / GEMM / tensorize);
4. **distribute** the result back into the cyclic layout and
   **undistribute** it for the caller.

Phases are charged to ``redistribute``, ``transform`` and ``multiply``.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.tensor_toolbox import ttm_copy
from repro.perf.profiler import NullProfiler, PhaseProfiler
from repro.tensor.dense import DenseTensor
from repro.util.errors import ShapeError
from repro.util.validation import check_mode, check_positive_int


def processor_grid(order: int, nproc: int) -> tuple[int, ...]:
    """Factor *nproc* into an order-length grid, largest factors first.

    Mimics CTF's automatic virtual-topology folding: repeatedly peel the
    smallest prime factor of the remaining processor count onto the next
    grid dimension.
    """
    check_positive_int(order, "order")
    check_positive_int(nproc, "nproc")
    dims = [1] * order
    remaining = nproc
    axis = 0
    factor = 2
    while remaining > 1:
        while remaining % factor:
            factor += 1
        dims[axis % order] *= factor
        remaining //= factor
        axis += 1
    return tuple(dims)


def _cyclic_assignment(extent: int, procs: int) -> np.ndarray:
    """Element -> processor coordinate along one mode (cyclic layout)."""
    return np.arange(extent) % procs


def distribute_cyclic(
    x: DenseTensor, grid: tuple[int, ...]
) -> list[np.ndarray]:
    """Pack *x* into per-processor blocks of the cyclic distribution.

    Each virtual processor owns the sub-tensor of elements whose index is
    congruent to its coordinate along every mode; blocks are materialized
    contiguously (this is the physical reorganization being modelled).
    """
    if len(grid) != x.order:
        raise ShapeError(f"grid {grid} does not match order {x.order}")
    blocks: list[np.ndarray] = []
    for coord in np.ndindex(*grid):
        selector = tuple(
            slice(c, None, g) for c, g in zip(coord, grid)
        )
        blocks.append(
            np.array(x.data[selector], order=x.layout.numpy_order, copy=True)
        )
    return blocks


def undistribute_cyclic(
    blocks: list[np.ndarray],
    shape: tuple[int, ...],
    grid: tuple[int, ...],
    layout,
) -> DenseTensor:
    """Reassemble a cyclically distributed tensor into contiguous storage."""
    out = DenseTensor.empty(shape, layout)
    for coord, block in zip(np.ndindex(*grid), blocks):
        selector = tuple(slice(c, None, g) for c, g in zip(coord, grid))
        out.data[selector] = block
    return out


def ttm_ctf_like(
    x: DenseTensor,
    u: np.ndarray,
    mode: int,
    nproc: int = 4,
    profiler: PhaseProfiler | None = None,
    kernel: str = "blas",
    threads: int = 1,
) -> DenseTensor:
    """Mode-*mode* product with CTF-style redistribution overheads."""
    if not isinstance(x, DenseTensor):
        raise TypeError(f"x must be a DenseTensor, got {type(x).__name__}")
    u = np.asarray(u, dtype=np.float64)
    mode = check_mode(mode, x.order)
    if u.ndim != 2 or u.shape[1] != x.shape[mode]:
        raise ShapeError(
            f"U shape {u.shape} does not match (J, I_n={x.shape[mode]})"
        )
    prof = profiler or NullProfiler()
    grid = processor_grid(x.order, nproc)

    # The tensor notionally lives distributed; bring it to the contraction
    # mapping (pack + reassemble = the all-to-all redistribution cost).
    with prof.phase("redistribute"):
        blocks = distribute_cyclic(x, grid)
        gathered = undistribute_cyclic(blocks, x.shape, grid, x.layout)
    prof.charge_bytes(
        "redistribute", sum(b.nbytes for b in blocks)
    )

    y = ttm_copy(gathered, u, mode, profiler=prof, kernel=kernel,
                 threads=threads)

    # Map the result back into the cyclic home distribution, then hand the
    # caller a contiguous tensor (as CTF's read interface would).
    out_grid = processor_grid(y.order, nproc)
    with prof.phase("redistribute"):
        out_blocks = distribute_cyclic(y, out_grid)
        result = undistribute_cyclic(out_blocks, y.shape, out_grid, y.layout)
    prof.charge_bytes(
        "redistribute", sum(b.nbytes for b in out_blocks)
    )
    return result
