"""Baseline TTM implementations the paper compares against.

* :func:`ttm_copy` — Algorithm 1 exactly as the Tensor Toolbox runs it:
  physical matricization, GEMM, physical tensorization (figure 3).
* :func:`ttm_ctf_like` — the Cyclops Tensor Framework flavour: the same
  three steps plus block-cyclic redistribution into/out of a virtual
  processor grid, CTF's data-mapping overhead run single-node.
* :mod:`repro.baselines.representations` — the table-1 forms (scalar,
  fiber, slice, matricized), used for the BLAS-level comparison.

All baselines accept a :class:`repro.perf.profiler.PhaseProfiler` so the
figure-4 transform-vs-multiply breakdown can be measured directly.
"""

from repro.baselines.tensor_toolbox import ttm_copy
from repro.baselines.ctf_like import ttm_ctf_like
from repro.baselines.representations import (
    REPRESENTATIONS,
    ttm_fiber_form,
    ttm_matricized_form,
    ttm_scalar_form,
    ttm_slice_form,
)

__all__ = [
    "ttm_copy",
    "ttm_ctf_like",
    "REPRESENTATIONS",
    "ttm_fiber_form",
    "ttm_matricized_form",
    "ttm_scalar_form",
    "ttm_slice_form",
]
