"""The table-1 representation forms of the mode-n product.

Table 1 classifies the ways to organize a TTM by the BLAS level of their
innermost operation:

* **scalar** form — the raw five-deep loop nest of equation (1); no BLAS
  at all ("Slow" in the table);
* **fiber** form — fix all modes but *n*; each inner operation is a
  matrix-vector product (Level 2);
* **slice** form — fix all but two modes; each inner operation is a
  (small) matrix-matrix product (Level 3, no transformation);
* **matricized** form — full reorganization into one big GEMM (Level 3,
  with a physical transformation): Algorithm 1.

All forms are mathematically identical; their performance spread is
Observation 3's motivation for preferring merged-mode Level-3 kernels.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.baselines.tensor_toolbox import ttm_copy
from repro.gemm.interface import gemm
from repro.tensor.dense import DenseTensor
from repro.tensor.views import fiber, mode_slice
from repro.util.errors import ShapeError
from repro.util.validation import check_mode


def _validate(x: DenseTensor, u: np.ndarray, mode: int) -> tuple[np.ndarray, int]:
    if not isinstance(x, DenseTensor):
        raise TypeError(f"x must be a DenseTensor, got {type(x).__name__}")
    u = np.asarray(u, dtype=np.float64)
    mode = check_mode(mode, x.order)
    if u.ndim != 2 or u.shape[1] != x.shape[mode]:
        raise ShapeError(
            f"U shape {u.shape} does not match (J, I_n={x.shape[mode]})"
        )
    return u, mode


def _out_tensor(x: DenseTensor, j: int, mode: int) -> DenseTensor:
    shape = x.shape[:mode] + (j,) + x.shape[mode + 1 :]
    return DenseTensor.zeros(shape, x.layout)


def ttm_scalar_form(x: DenseTensor, u: np.ndarray, mode: int) -> DenseTensor:
    """Equation (1) as literal scalar loops (table 1, "Scalar").

    Pure Python per element — usable only at toy sizes; exists as the
    unmissably correct reference and the Level-"Slow" data point.
    """
    u, mode = _validate(x, u, mode)
    j_dim = u.shape[0]
    y = _out_tensor(x, j_dim, mode)
    other_modes = [m for m in range(x.order) if m != mode]
    ranges = [range(x.shape[m]) for m in other_modes]
    for combo in itertools.product(*ranges):
        index = dict(zip(other_modes, combo))
        for jj in range(j_dim):
            acc = 0.0
            for i_n in range(x.shape[mode]):
                index[mode] = i_n
                acc += x.data[tuple(index[m] for m in range(x.order))] * u[jj, i_n]
            index[mode] = jj
            y.data[tuple(index[m] for m in range(x.order))] = acc
    return y


def ttm_fiber_form(x: DenseTensor, u: np.ndarray, mode: int) -> DenseTensor:
    """Fiber (Level-2) form: one matrix-vector product per mode-n fiber."""
    u, mode = _validate(x, u, mode)
    y = _out_tensor(x, u.shape[0], mode)
    other_modes = [m for m in range(x.order) if m != mode]
    ranges = [range(x.shape[m]) for m in other_modes]
    for combo in itertools.product(*ranges):
        fixed = dict(zip(other_modes, combo))
        x_fib = fiber(x, mode, fixed)
        y_fib = fiber(y, mode, fixed)
        np.matmul(u, x_fib, out=y_fib)
    return y


def ttm_slice_form(
    x: DenseTensor, u: np.ndarray, mode: int, slice_mode: int | None = None
) -> DenseTensor:
    """Slice (Level-3, no transformation) form: a GEMM per 2-D slice.

    *slice_mode* chooses the second free mode of each slice (default: the
    last non-*mode* mode, the paper's table-1 example).  Requires order
    >= 2.
    """
    u, mode = _validate(x, u, mode)
    if x.order < 2:
        raise ShapeError("slice form needs an order >= 2 tensor")
    if slice_mode is None:
        slice_mode = x.order - 1 if mode != x.order - 1 else x.order - 2
    slice_mode = check_mode(slice_mode, x.order)
    if slice_mode == mode:
        raise ShapeError("slice_mode must differ from the product mode")
    y = _out_tensor(x, u.shape[0], mode)
    other_modes = [m for m in range(x.order) if m not in (mode, slice_mode)]
    ranges = [range(x.shape[m]) for m in other_modes]
    for combo in itertools.product(*ranges):
        fixed = dict(zip(other_modes, combo))
        x_slice = mode_slice(x, (mode, slice_mode), fixed)
        y_slice = mode_slice(y, (mode, slice_mode), fixed)
        # Y(:, i_s) views may be general-stride; auto dispatch handles both.
        gemm(u, x_slice, out=y_slice, kernel="auto")
    return y


def ttm_matricized_form(
    x: DenseTensor, u: np.ndarray, mode: int
) -> DenseTensor:
    """Matricized (Level-3, full transformation) form: Algorithm 1."""
    return ttm_copy(x, u, mode)


#: name -> (callable, table-1 BLAS level, needs physical transformation)
REPRESENTATIONS = {
    "scalar": (ttm_scalar_form, "Slow", False),
    "fiber": (ttm_fiber_form, "L2", False),
    "slice": (ttm_slice_form, "L3", False),
    "matricized": (ttm_matricized_form, "L3", True),
}
