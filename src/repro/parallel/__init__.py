"""Coarse-grained loop parallelism (the paper's ``P_L`` threads)."""

from repro.parallel.parfor import (
    active_pool_count,
    get_pool,
    iter_index_space,
    parfor,
    shutdown_pools,
)

__all__ = [
    "active_pool_count",
    "get_pool",
    "iter_index_space",
    "parfor",
    "shutdown_pools",
]
