"""Coarse-grained loop parallelism (the paper's ``P_L`` threads)."""

from repro.parallel.parfor import parfor, iter_index_space

__all__ = ["parfor", "iter_index_space"]
