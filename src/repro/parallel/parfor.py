"""A chunked parallel-for over a multi-dimensional index space.

This is the reproduction of the paper's ``#pragma omp parallel for
collapse(...)`` over the loop modes ``M_L`` (Algorithm 2, line 1): the
collapsed iteration space is split into blocks and each block is executed
by one worker thread.  Loop bodies call NumPy kernels that release the
GIL, so the workers genuinely overlap; each iteration writes a disjoint
slice of the output, so no synchronization is needed.

Two properties matter for the hot path and are guaranteed here:

* **No materialization** — the flattened index space is *never* turned
  into a list.  Workers pull bounded blocks from a shared lazy iterator
  (``itertools.islice``), so memory stays O(threads x block) no matter
  how many loop iterations a plan has.
* **Pool reuse** — OpenMP runtimes keep their worker teams alive between
  parallel regions; a fresh ``ThreadPoolExecutor`` per call would pay
  thread spawn/join on every TTM.  Executors are cached per worker count
  in a module-level pool registry and reused across calls.

The parallel region is **supervised** (DESIGN.md §10).  Dispatch can hit
three failure modes that would otherwise hang or crash the whole TTM,
and each has a bounded response:

* **A torn-down pool.**  ``get_pool`` can return an executor that a
  concurrent ``shutdown_pools`` is destroying; ``submit`` then raises
  ``RuntimeError``.  The stale entry is evicted, a replacement pool is
  tried once (``pool_replacements`` counter), and if that fails too the
  block runs serially (``serial_degradations``) — slower, never wrong.
  If *some* workers were submitted before the pool died, they alone
  drain the shared iterator: any nonzero worker count completes all the
  work, so a partial team is not a failure at all.
* **A stuck worker.**  ``future.result()`` waits behind a per-call
  deadline (the *timeout* argument, default ``$REPRO_PARFOR_TIMEOUT``);
  on expiry the suspect pool is evicted — its threads may be wedged
  forever and must not be handed to the next caller — and a typed
  :class:`~repro.util.errors.DeadlineError` is raised
  (``watchdog_timeouts`` counter) instead of blocking eternally.
* **Process exit.**  ``shutdown_pools`` is ``atexit``-registered, so
  persistent workers never stop the interpreter from exiting cleanly.
"""

from __future__ import annotations

import atexit
import itertools
import logging
import math
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from typing import Callable, Sequence

from repro.obs.tracer import active_tracer
from repro.resilience.faults import active_faults, record_degradation
from repro.util.errors import DeadlineError
from repro.util.validation import check_positive_int

log = logging.getLogger("repro.parallel")

#: Upper bound on indices a worker pulls per trip to the shared iterator:
#: large enough to amortize the lock, small enough to bound memory and
#: keep the tail balanced.
_BLOCK_CAP = 1024

#: Environment variable supplying the default watchdog deadline, in
#: seconds, for every parfor call that does not pass an explicit
#: ``timeout``.  Unset, empty, or <= 0 means unsupervised (wait forever).
PARFOR_TIMEOUT_ENV = "REPRO_PARFOR_TIMEOUT"

_POOLS: dict[int, ThreadPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()


def iter_index_space(extents: Sequence[int]):
    """All index tuples of the given extents in odometer (C) order.

    An empty extent list yields the single empty tuple — the collapsed
    loop nest with zero loop modes still runs its body once.
    """
    return itertools.product(*(range(int(e)) for e in extents))


def get_pool(workers: int) -> ThreadPoolExecutor:
    """The persistent executor for a worker count (created on first use)."""
    check_positive_int(workers, "workers")
    with _POOLS_LOCK:
        pool = _POOLS.get(workers)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix=f"parfor-{workers}"
            )
            _POOLS[workers] = pool
        return pool


def active_pool_count() -> int:
    """How many persistent executors currently exist (for tests/metrics)."""
    with _POOLS_LOCK:
        return len(_POOLS)


def shutdown_pools() -> None:
    """Tear down every persistent executor (tests and clean shutdown).

    Registered with :mod:`atexit` at import, so long-lived processes
    exit without waiting on (or leaking) persistent worker threads.
    """
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=True)


atexit.register(shutdown_pools)


def _evict_pool(workers: int, pool: ThreadPoolExecutor) -> None:
    """Drop *pool* from the registry (if still registered) and retire it.

    ``wait=False``: the caller may still hold live futures on this pool
    (a partial team) or suspect its threads are wedged (a watchdog
    expiry); either way nobody can afford to block on it here.  Pending
    futures keep running to completion — shutdown only refuses new work.
    """
    with _POOLS_LOCK:
        if _POOLS.get(workers) is pool:
            del _POOLS[workers]
    pool.shutdown(wait=False)


def default_timeout() -> float | None:
    """The watchdog deadline from ``$REPRO_PARFOR_TIMEOUT`` (None = off)."""
    raw = os.environ.get(PARFOR_TIMEOUT_ENV)
    if not raw:
        return None
    try:
        seconds = float(raw)
    except ValueError:
        log.warning("ignoring non-numeric %s=%r", PARFOR_TIMEOUT_ENV, raw)
        return None
    return seconds if seconds > 0 else None


def parfor(
    extents: Sequence[int],
    body: Callable[[tuple[int, ...]], None],
    threads: int = 1,
    timeout: float | None = None,
) -> int:
    """Run ``body(index)`` for every index tuple; returns iteration count.

    With ``threads == 1`` (the common case when ``P_C`` gets the threads)
    the loop runs inline with zero overhead.  Otherwise up to ``threads``
    persistent workers drain the lazily flattened space in contiguous
    blocks; the first exception raised by any body propagates to the
    caller (remaining workers stop pulling new blocks).

    *timeout* is the supervision deadline in seconds for the whole
    parallel region (default from ``$REPRO_PARFOR_TIMEOUT``); a region
    that outlives it raises :class:`~repro.util.errors.DeadlineError`
    instead of hanging on a stuck worker.
    """
    check_positive_int(threads, "threads")
    total = math.prod(int(e) for e in extents) if extents else 1
    if total == 0:
        return 0
    tracer = active_tracer()
    if tracer.enabled:
        with tracer.span(
            "parfor-dispatch",
            extents=[int(e) for e in extents],
            iterations=total,
            threads=min(threads, total),
        ):
            return _parfor_run(extents, body, threads, total, timeout)
    return _parfor_run(extents, body, threads, total, timeout)


def _parfor_run(
    extents: Sequence[int],
    body: Callable[[tuple[int, ...]], None],
    threads: int,
    total: int,
    timeout: float | None = None,
) -> int:
    if threads == 1 or total == 1:
        for index in iter_index_space(extents):
            body(index)
        return total

    n_workers = min(threads, total)
    block = min(max(1, math.ceil(total / n_workers)), _BLOCK_CAP)
    indices = iter_index_space(extents)
    feed_lock = threading.Lock()
    failed = threading.Event()
    faults = active_faults()

    def worker() -> None:
        while not failed.is_set():
            with feed_lock:
                batch = list(itertools.islice(indices, block))
            if not batch:
                return
            try:
                if faults is not None:
                    faults.check("slow-body")
                for index in batch:
                    body(index)
            except BaseException:
                failed.set()
                raise

    pool, futures = _supervised_submit(n_workers, worker, faults)
    if not futures:
        # Two pools died under us before any worker started: the shared
        # iterator is untouched, so the serial loop is exactly the work.
        log.warning(
            "parfor degrading to serial execution after repeated pool "
            "failures (%d iterations)", total,
        )
        record_degradation("serial_degradations", serial_degraded=True)
        for index in indices:
            body(index)
        return total

    if timeout is None:
        timeout = default_timeout()
    deadline = None if timeout is None else time.monotonic() + timeout
    for future in futures:
        if deadline is None:
            future.result()  # re-raises the first worker exception
            continue
        try:
            future.result(timeout=max(0.0, deadline - time.monotonic()))
        except _FuturesTimeout:
            failed.set()  # live workers stop pulling new blocks
            for pending in futures:
                pending.cancel()
            # The pool may hold a thread wedged forever; never hand it
            # to the next caller.
            _evict_pool(n_workers, pool)
            record_degradation(
                "watchdog_timeouts", watchdog_timeout=True,
                timeout_seconds=timeout,
            )
            raise DeadlineError(
                f"parfor exceeded its {timeout:.3g}s watchdog deadline "
                f"({total} iterations over {n_workers} workers); the "
                "worker pool was retired. Raise the timeout (argument or "
                f"${PARFOR_TIMEOUT_ENV}) if the workload is legitimately "
                "this slow"
            ) from None
    return total


def _supervised_submit(n_workers, worker, faults):
    """Submit the worker team, surviving a pool torn down concurrently.

    Returns ``(pool, futures)``.  A full or partial team is success —
    the shared iterator lets any nonzero number of workers finish all
    the work.  An empty team after one replacement attempt tells the
    caller to degrade to serial execution.
    """
    for attempt in range(2):
        pool = get_pool(n_workers)
        futures = []
        try:
            if faults is not None:
                faults.check("worker-death")
            for _ in range(n_workers):
                futures.append(pool.submit(worker))
            return pool, futures
        except RuntimeError as exc:
            # The registry handed us an executor that shutdown_pools (or
            # an injected fault) killed in flight: evict it so nobody
            # else trips on it.
            _evict_pool(n_workers, pool)
            record_degradation(
                "pool_replacements", pool_replaced=True,
                submit_error=type(exc).__name__,
            )
            log.warning(
                "parfor pool for %d workers rejected submit (%s: %s); "
                "%s", n_workers, type(exc).__name__, exc,
                "retrying with a replacement pool" if attempt == 0
                and not futures else "continuing with the partial team"
                if futures else "degrading to serial execution",
            )
            if futures:
                return pool, futures
    return pool, []
