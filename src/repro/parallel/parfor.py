"""A chunked parallel-for over a multi-dimensional index space.

This is the reproduction of the paper's ``#pragma omp parallel for
collapse(...)`` over the loop modes ``M_L`` (Algorithm 2, line 1): the
collapsed iteration space is flattened, split into near-equal contiguous
chunks, and each chunk is executed by one worker thread.  Loop bodies
call NumPy kernels that release the GIL, so the workers genuinely
overlap; each iteration writes a disjoint slice of the output, so no
synchronization is needed.
"""

from __future__ import annotations

import itertools
import math
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

from repro.util.validation import check_positive_int


def iter_index_space(extents: Sequence[int]):
    """All index tuples of the given extents in odometer (C) order.

    An empty extent list yields the single empty tuple — the collapsed
    loop nest with zero loop modes still runs its body once.
    """
    return itertools.product(*(range(int(e)) for e in extents))


def parfor(
    extents: Sequence[int],
    body: Callable[[tuple[int, ...]], None],
    threads: int = 1,
) -> int:
    """Run ``body(index)`` for every index tuple; returns iteration count.

    With ``threads == 1`` (the common case when ``P_C`` gets the threads)
    the loop runs inline with zero overhead.  Otherwise the flattened
    space is split into ``threads`` contiguous chunks.
    """
    check_positive_int(threads, "threads")
    total = math.prod(int(e) for e in extents) if extents else 1
    if total == 0:
        return 0
    if threads == 1 or total == 1:
        for index in iter_index_space(extents):
            body(index)
        return total

    indices = list(iter_index_space(extents))
    n_chunks = min(threads, total)
    chunk = math.ceil(total / n_chunks)

    def run(start: int) -> None:
        for index in indices[start : start + chunk]:
            body(index)

    with ThreadPoolExecutor(max_workers=n_chunks) as pool:
        # list() propagates the first worker exception, if any.
        list(pool.map(run, range(0, total, chunk)))
    return total
