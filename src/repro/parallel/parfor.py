"""A chunked parallel-for over a multi-dimensional index space.

This is the reproduction of the paper's ``#pragma omp parallel for
collapse(...)`` over the loop modes ``M_L`` (Algorithm 2, line 1): the
collapsed iteration space is split into blocks and each block is executed
by one worker thread.  Loop bodies call NumPy kernels that release the
GIL, so the workers genuinely overlap; each iteration writes a disjoint
slice of the output, so no synchronization is needed.

Two properties matter for the hot path and are guaranteed here:

* **No materialization** — the flattened index space is *never* turned
  into a list.  Workers pull bounded blocks from a shared lazy iterator
  (``itertools.islice``), so memory stays O(threads x block) no matter
  how many loop iterations a plan has.
* **Pool reuse** — OpenMP runtimes keep their worker teams alive between
  parallel regions; a fresh ``ThreadPoolExecutor`` per call would pay
  thread spawn/join on every TTM.  Executors are cached per worker count
  in a module-level pool registry and reused across calls.
"""

from __future__ import annotations

import itertools
import math
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

from repro.obs.tracer import active_tracer
from repro.util.validation import check_positive_int

#: Upper bound on indices a worker pulls per trip to the shared iterator:
#: large enough to amortize the lock, small enough to bound memory and
#: keep the tail balanced.
_BLOCK_CAP = 1024

_POOLS: dict[int, ThreadPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()


def iter_index_space(extents: Sequence[int]):
    """All index tuples of the given extents in odometer (C) order.

    An empty extent list yields the single empty tuple — the collapsed
    loop nest with zero loop modes still runs its body once.
    """
    return itertools.product(*(range(int(e)) for e in extents))


def get_pool(workers: int) -> ThreadPoolExecutor:
    """The persistent executor for a worker count (created on first use)."""
    check_positive_int(workers, "workers")
    with _POOLS_LOCK:
        pool = _POOLS.get(workers)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix=f"parfor-{workers}"
            )
            _POOLS[workers] = pool
        return pool


def active_pool_count() -> int:
    """How many persistent executors currently exist (for tests/metrics)."""
    with _POOLS_LOCK:
        return len(_POOLS)


def shutdown_pools() -> None:
    """Tear down every persistent executor (tests and clean shutdown)."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=True)


def parfor(
    extents: Sequence[int],
    body: Callable[[tuple[int, ...]], None],
    threads: int = 1,
) -> int:
    """Run ``body(index)`` for every index tuple; returns iteration count.

    With ``threads == 1`` (the common case when ``P_C`` gets the threads)
    the loop runs inline with zero overhead.  Otherwise up to ``threads``
    persistent workers drain the lazily flattened space in contiguous
    blocks; the first exception raised by any body propagates to the
    caller (remaining workers stop pulling new blocks).
    """
    check_positive_int(threads, "threads")
    total = math.prod(int(e) for e in extents) if extents else 1
    if total == 0:
        return 0
    tracer = active_tracer()
    if tracer.enabled:
        with tracer.span(
            "parfor-dispatch",
            extents=[int(e) for e in extents],
            iterations=total,
            threads=min(threads, total),
        ):
            return _parfor_run(extents, body, threads, total)
    return _parfor_run(extents, body, threads, total)


def _parfor_run(
    extents: Sequence[int],
    body: Callable[[tuple[int, ...]], None],
    threads: int,
    total: int,
) -> int:
    if threads == 1 or total == 1:
        for index in iter_index_space(extents):
            body(index)
        return total

    n_workers = min(threads, total)
    block = min(max(1, math.ceil(total / n_workers)), _BLOCK_CAP)
    indices = iter_index_space(extents)
    feed_lock = threading.Lock()
    failed = threading.Event()

    def worker() -> None:
        while not failed.is_set():
            with feed_lock:
                batch = list(itertools.islice(indices, block))
            if not batch:
                return
            try:
                for index in batch:
                    body(index)
            except BaseException:
                failed.set()
                raise

    pool = get_pool(n_workers)
    futures = [pool.submit(worker) for _ in range(n_workers)]
    for future in futures:
        future.result()  # re-raises the first worker exception
    return total
