"""Tucker decomposition of a noisy low-rank tensor (the paper's §2 use
case): HOSVD initialization, HOOI refinement, and a backend comparison.

The Tucker-HOOI algorithm runs N*(N-1) mode-n products per sweep; this
example decomposes the same tensor with the in-place TTM and with the
copy-based baseline, confirming identical fits and showing the runtime
difference attributable purely to the TTM implementation.

Run:  python examples/tucker_decomposition.py
"""

import time

import numpy as np

import repro
from repro.baselines import ttm_copy
from repro.decomp import hooi, hosvd, tucker_reconstruct


def main() -> None:
    shape, ranks = (60, 50, 40), (6, 5, 4)
    x = repro.low_rank_tensor(shape, ranks, noise=0.05, seed=7)
    print(f"input: {x!r} with planted Tucker ranks {ranks} + 5% noise")

    # -- HOSVD: a one-shot truncated decomposition ---------------------------
    start = hosvd(x, ranks)
    print(f"HOSVD fit:          {start.fit:.5f}")

    # -- HOOI: alternating refinement until the fit stalls --------------------
    lib = repro.InTensLi()
    t0 = time.perf_counter()
    result = hooi(x, ranks, ttm_backend=lambda t, u, m: lib.ttm(t, u, m),
                  init=start)
    t_inplace = time.perf_counter() - t0
    print(
        f"HOOI fit:           {result.fit:.5f} "
        f"after {result.iterations} sweeps ({t_inplace:.2f} s, in-place TTM)"
    )
    print(f"compression:        {result.compression:.1f}x fewer parameters")

    # -- identical decomposition over the copy-based TTM ----------------------
    t0 = time.perf_counter()
    baseline = hooi(x, ranks, ttm_backend=ttm_copy, init=start)
    t_copy = time.perf_counter() - t0
    print(
        f"copy-based backend: fit {baseline.fit:.5f} ({t_copy:.2f} s) "
        f"-> TTM speedup {t_copy / t_inplace:.2f}x"
    )
    assert abs(baseline.fit - result.fit) < 1e-8

    # -- reconstruction error -------------------------------------------------
    recon = tucker_reconstruct(result.core, result.factors)
    rel_err = float(
        np.linalg.norm(recon.data - x.data) / np.linalg.norm(x.data)
    )
    print(f"reconstruction:     relative error {rel_err:.4f} "
          "(bounded by the injected noise)")


if __name__ == "__main__":
    main()
