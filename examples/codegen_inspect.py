"""Inspect the code INTENSLI generates (paper §4.3.2).

The framework specializes a TTM implementation per input: the loop nest,
index expressions, reshape extents, kernel, and thread dispatch are all
resolved at generation time.  This example prints the generated source
for a range of inputs so the effect of each input property - mode,
layout, thread budget, kernel - is visible.

Run:  python examples/codegen_inspect.py
"""

from repro.core.codegen import generate_source
from repro.core.inttm import default_plan
from repro.tensor.layout import COL_MAJOR, ROW_MAJOR


CASES = [
    (
        "mode-1 of a row-major cube: the whole loop nest collapses into "
        "one batched GEMM",
        default_plan((100, 100, 100), 1, 16, ROW_MAJOR, kernel="blas"),
    ),
    (
        "middle mode of an order-5 tensor, degree 2: literal loops around "
        "a unit-stride kernel",
        default_plan((20, 20, 20, 20, 20), 1, 16, ROW_MAJOR, degree=2,
                     kernel="blas"),
    ),
    (
        "last mode of a row-major tensor: the backward strategy turns it "
        "into a single contiguous GEMM",
        default_plan((64, 64, 64), 2, 16, ROW_MAJOR, kernel="blas"),
    ),
    (
        "column-major (Tensor Toolbox convention): backward strategy with "
        "F-order reshapes",
        default_plan((64, 64, 64), 1, 16, COL_MAJOR, kernel="blas"),
    ),
    (
        "4-way loop parallelism (P_L=4): the collapsed nest becomes a "
        "parfor body",
        default_plan((30, 64, 64, 8), 1, 16, ROW_MAJOR, degree=1,
                     loop_threads=4, kernel="blas"),
    ),
    (
        "threaded kernel (P_C=4) with the general-stride blocked GEMM",
        default_plan((64, 64, 64), 1, 16, ROW_MAJOR, kernel="blocked",
                     kernel_threads=4),
    ),
]


def main() -> None:
    for description, plan in CASES:
        print("#", description)
        print(generate_source(plan))
        print()


if __name__ == "__main__":
    main()
