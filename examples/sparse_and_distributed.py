"""Future-work tour: sparse tensors and distributed TTM (paper §7).

The paper's conclusion names two extension directions: sparse tensor
primitives and serving as the intra-node component of distributed TTMs.
This example exercises both:

1. sparse TTM with a semi-sparse result (the METTM structure);
2. memory-efficient sparse Tucker that never densifies the input;
3. a simulated 8-rank block-distributed TTM, comparing communication
   volume across process grids and verifying bitwise agreement with the
   single-node product.

Run:  python examples/sparse_and_distributed.py
"""

import numpy as np

import repro
from repro.distributed import (
    best_grid,
    distributed_ttm,
    enumerate_grids,
)
from repro.sparse import SparseTensor, hooi_sparse, random_sparse, ttm_sparse
from repro.util.formatting import format_bytes


def sparse_tour() -> None:
    print("-- sparse TTM -----------------------------------------------")
    x = random_sparse((60, 60, 60), density=0.01, seed=0)
    print(f"input: {x!r}")
    u = np.random.default_rng(1).standard_normal((8, 60))
    semi = ttm_sparse(x, u, mode=1)
    print(f"mode-2 product: {semi!r}")
    print(
        f"  output fibers present: {semi.densification * 100:.1f}% "
        f"(semi-sparse storage = "
        f"{format_bytes(semi.storage_words * 8)} vs dense "
        f"{format_bytes(semi.to_dense().nbytes)})"
    )
    # Correctness against the dense path.
    dense_y = repro.ttm(x.to_dense(), u, 1)
    assert semi.to_dense().allclose(dense_y.data)
    print("  matches the dense in-place TTM: True")

    print("-- sparse Tucker (memory-efficient) -------------------------")
    planted = repro.low_rank_tensor((24, 24, 24), 3, seed=2)
    x_sp = SparseTensor.from_dense(planted)
    result = hooi_sparse(x_sp, 3, max_iterations=5)
    print(
        f"HOOI on sparse input: fit {result.fit:.6f} "
        f"(core {result.core!r}) — the dense tensor was never materialized"
    )


def distributed_tour() -> None:
    print("-- distributed TTM over 8 simulated ranks -------------------")
    shape, mode, j = (48, 48, 48), 1, 8
    x = repro.random_tensor(shape, seed=3)
    u = np.random.default_rng(4).standard_normal((j, shape[mode]))
    reference = repro.ttm(x, u, mode)
    rows = []
    for grid in enumerate_grids(3, 8):
        y, report = distributed_ttm(x, u, mode, grid)
        assert y.allclose(reference.data)
        rows.append((grid.dims, report.total_comm_words))
    rows.sort(key=lambda r: r[1])
    for dims, words in rows:
        label = "x".join(map(str, dims))
        print(f"  grid {label:8s} total comm {format_bytes(words * 8)}")
    chosen = best_grid(shape, j, mode, 8)
    print(f"model's pick: {'x'.join(map(str, chosen.dims))} "
          "(avoids splitting the contracted mode)")


def main() -> None:
    sparse_tour()
    distributed_tour()


if __name__ == "__main__":
    main()
