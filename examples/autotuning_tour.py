"""A tour of the input-adaptive machinery (paper §4.3, figure 7).

Walks through every stage the framework runs under the hood for one
input: the GEMM shape benchmark, the MSTH/MLTH threshold derivation
(figure 8), mode partitioning, thread allocation, and finally a
head-to-head of the heuristic choice against exhaustive search
(figure 12, in miniature).

Run:  python examples/autotuning_tour.py
"""

import numpy as np

import repro
from repro.analysis import CORE_I7_4770K
from repro.core import ExhaustiveTuner, ParameterEstimator
from repro.core.partition import derive_thresholds
from repro.gemm.bench import default_shape_grid, measure_profile, synthetic_profile
from repro.util.formatting import format_bytes

SHAPE = (14, 14, 14, 14, 14)
MODE = 0
J = 16


def main() -> None:
    # -- stage 1: the MM benchmark (figure 7's "MM Benchmark" input) ----------
    print("1. GEMM shape benchmark (m=16, powers-of-two k x n) ...")
    grid = default_shape_grid(k_exponents=range(6, 11),
                              n_exponents=range(4, 13))
    measured = measure_profile(grid, threads=(1,), min_seconds=0.005)
    print(f"   {measured!r}, peak {measured.peak_gflops(1):.1f} GFLOP/s")

    # -- stage 2: thresholds from the peaked curve (figure 8) -----------------
    thresholds = derive_thresholds(measured, 16, threads=1, kappa=0.8)
    print(
        f"2. thresholds at kappa=0.8: MSTH={format_bytes(thresholds.msth_bytes)}, "
        f"MLTH={format_bytes(thresholds.mlth_bytes)} "
        "(paper's i7: 1.04 MiB / 7.04 MiB)"
    )

    # -- stage 3: the estimator turns input geometry into a plan --------------
    estimator = ParameterEstimator(profile=measured, max_threads=1)
    plan = estimator.estimate(SHAPE, MODE, J)
    print(f"3. estimated plan: {plan.describe()}")
    print(
        f"   degree {plan.degree} -> kernel (m,k,n)={plan.kernel_shape}, "
        f"working set {format_bytes(plan.kernel_working_set_bytes)} "
        f"(inside the window: "
        f"{thresholds.contains(plan.kernel_working_set_bytes)})"
    )

    # -- stage 4: heuristic vs exhaustive (figure 12 in miniature) ------------
    x = repro.random_tensor(SHAPE, seed=0)
    u = np.random.default_rng(1).standard_normal((J, SHAPE[MODE]))
    tuner = ExhaustiveTuner(min_seconds=0.05)
    sweep = tuner.sweep(x, u, MODE)
    print(f"4. exhaustive sweep over {len(sweep.plans)} configurations:")
    for description, rate in sweep.table():
        marker = "  <- heuristic" if description == plan.describe() else ""
        print(f"   {rate:7.2f} GFLOP/s  {description}{marker}")
    print(
        f"   best: {sweep.best_gflops:.2f} GFLOP/s "
        f"({sweep.best_plan.describe()})"
    )

    # -- bonus: the same pipeline with a synthetic platform profile -----------
    synthetic = synthetic_profile(grid, CORE_I7_4770K, threads=(1, 4))
    est_i7 = ParameterEstimator(profile=synthetic, max_threads=4)
    plan_i7 = est_i7.estimate(SHAPE, MODE, J)
    print(f"5. on the paper's Core i7 preset the plan would be:")
    print(f"   {plan_i7.describe()}")


if __name__ == "__main__":
    main()
