"""Applications gallery: the paper's §1 motivating domains, end to end.

Runs the TTM-powered decomposition stack over synthetic workloads with
the structure of three application classes the paper's introduction
cites — EEG analysis (neuroscience), image ensembles (TensorFaces-style
vision), and molecular-dynamics time series — reporting compression and
fit for each, with every mode-n product executed by the in-place
input-adaptive TTM.

Run:  python examples/applications_gallery.py
"""

import time


import repro
from repro.decomp import hooi
from repro.tensor.workloads import eeg_tensor, image_ensemble_tensor
from repro.util.formatting import format_table


def analyze(name: str, tensor, ranks) -> list:
    start = time.perf_counter()
    result = hooi(tensor, ranks, max_iterations=10, tolerance=1e-9)
    seconds = time.perf_counter() - start
    return [
        name,
        "x".join(str(s) for s in tensor.shape),
        "x".join(str(r) for r in result.ranks),
        f"{result.fit:.4f}",
        f"{result.compression:7.1f}x",
        f"{seconds:6.2f} s",
    ]


def main() -> None:
    rows = []

    # Neuroscience: wavelet-transformed event-related EEG [28].
    eeg = eeg_tensor(32, 24, 256, n_sources=3, noise=0.05, seed=0)
    rows.append(analyze("EEG (chan x freq x time)", eeg, (4, 4, 4)))

    # Vision: TensorFaces-style image ensemble [44].
    faces = image_ensemble_tensor(16, 6, 4, 400, rank=4, noise=0.03, seed=1)
    rows.append(
        analyze("faces (id x pose x light x pix)", faces, (4, 4, 3, 8))
    )

    # Molecular dynamics time series [32] (centered trajectories).
    md = repro.md_trajectory_tensor(256, 96, n_modes=4, seed=2)
    centered = repro.DenseTensor(
        md.data - md.data.mean(axis=0, keepdims=True)
    )
    rows.append(analyze("MD (frames x atoms x xyz)", centered, (6, 8, 3)))

    print(
        format_table(
            ["workload", "shape", "tucker ranks", "fit", "compression",
             "time"],
            rows,
        )
    )
    print()
    print(
        "Every mode-n product above ran through the input-adaptive "
        "in-place TTM (repro.ttm); swap ttm_backend=repro.ttm_copy in "
        "hooi() to compare against the conventional implementation."
    )


if __name__ == "__main__":
    main()
