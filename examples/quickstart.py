"""Quickstart: the 60-second tour of the public API.

Creates a dense tensor, runs the input-adaptive in-place TTM, checks it
against the definitional oracle and the copy-based baseline, and peeks
at the plan the framework chose.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro


def main() -> None:
    rng = np.random.default_rng(0)

    # A dense 3rd-order tensor (row-major by default) and a factor matrix
    # with J = 16 rows - the "low-rank output" regime the paper targets.
    x = repro.random_tensor((200, 200, 200), seed=0)
    u = rng.standard_normal((16, 200))

    # 1. The one-liner: input-adaptive, in-place mode-1 product.
    y = repro.ttm(x, u, mode=1)
    print(f"Y = X x_1 U  ->  {y!r}")

    # 2. Same result from the conventional (copy-based) Algorithm 1.
    y_copy = repro.ttm_copy(x, u, mode=1)
    assert y.allclose(y_copy.data), "backends disagree!"
    print("matches the copy-based baseline: True")

    # 3. And from the definition (equation 1 of the paper), via einsum.
    y_def = np.einsum("jk,ikl->ijl", u, x.data)
    assert y.allclose(y_def)
    print("matches the einsum definition:  True")

    # 4. What did the framework decide for this input?
    lib = repro.InTensLi()
    plan = lib.plan(x.shape, mode=1, j=16)
    print(f"chosen plan: {plan.describe()}")
    print(
        f"  inner GEMM kernel shape (m,k,n) = {plan.kernel_shape}, "
        f"working set = {plan.kernel_working_set_bytes / 1024:.0f} KiB"
    )

    # 5. Outputs can be preallocated and reused - that is the "in-place":
    out = repro.DenseTensor.empty(plan.out_shape)
    for _ in range(3):
        lib.ttm(x, u, mode=1, out=out)  # no allocations inside
    print(f"reused output buffer three times: {out!r}")


if __name__ == "__main__":
    main()
