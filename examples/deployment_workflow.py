"""Offline-autotuning deployment workflow (the paper's usage model).

INTENSLI is an *offline* autotuner: benchmark the machine once, derive
the configuration, and reuse it for every production run.  This example
walks the full deployment loop with on-disk artifacts:

1. measure the GEMM shape benchmark and save it (``profile.json``);
2. build plans for the production workload's TTM signatures and save the
   plan cache (``plans.json``);
3. simulate a fresh production process: load both artifacts, verify no
   re-estimation happens, and run.

Run:  python examples/deployment_workflow.py
"""

import os
import tempfile
import time

import numpy as np

import repro
from repro.core import InTensLi
from repro.gemm.bench import GemmProfile, default_shape_grid, measure_profile

#: The production workload: the TTM signatures of a rank-16 Tucker sweep
#: over a 4th-order tensor.
WORKLOAD = [
    ((80, 80, 80, 80), mode, 16) for mode in range(4)
]


def tune(profile_path: str, plans_path: str) -> None:
    print("== offline tuning phase ==")
    grid = default_shape_grid(
        m_values=(16,), k_exponents=range(5, 11), n_exponents=range(5, 12)
    )
    t0 = time.perf_counter()
    profile = measure_profile(grid, threads=(1,), min_seconds=0.01)
    print(
        f"measured {len(profile)} GEMM shapes in "
        f"{time.perf_counter() - t0:.1f} s -> {profile_path}"
    )
    profile.save(profile_path)

    lib = InTensLi(profile=profile)
    for shape, mode, j in WORKLOAD:
        plan = lib.plan(shape, mode, j)
        print(f"  {plan.describe()}")
    count = lib.save_plan_cache(plans_path)
    print(f"pinned {count} plans -> {plans_path}")


def produce(profile_path: str, plans_path: str) -> None:
    print("== production phase (fresh process) ==")
    lib = InTensLi(profile=GemmProfile.load(profile_path))
    loaded = lib.load_plan_cache(plans_path)
    print(f"loaded {loaded} pinned plans; no estimation will run")

    rng = np.random.default_rng(0)
    x = repro.random_tensor(WORKLOAD[0][0], seed=1)
    total = 0.0
    for shape, mode, j in WORKLOAD:
        u = rng.standard_normal((j, shape[mode]))
        t0 = time.perf_counter()
        lib.ttm(x, u, mode)
        dt = time.perf_counter() - t0
        total += dt
        rate = 2 * j * x.size / dt / 1e9
        print(f"  mode {mode}: {dt * 1e3:7.1f} ms  ({rate:5.1f} GFLOP/s)")
        del y
    print(f"workload total {total * 1e3:.1f} ms with pinned configurations")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        profile_path = os.path.join(tmp, "profile.json")
        plans_path = os.path.join(tmp, "plans.json")
        tune(profile_path, plans_path)
        produce(profile_path, plans_path)
    print("(the same flow is available via: python -m repro profile ...)")


if __name__ == "__main__":
    main()
