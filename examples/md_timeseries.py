"""Molecular-dynamics time-series analysis with Tucker compression.

The paper's conclusion names "time series analysis for molecular
dynamics" as a target dense application.  Production MD trajectories are
proprietary/huge, so this example generates a synthetic trajectory with
planted collective motions (a superposition of low-frequency modes over
thermal noise) - the structure such analyses extract - and uses the
TTM-powered Tucker decomposition to (a) compress the trajectory and
(b) recover the number of collective motions from the core spectrum.

Run:  python examples/md_timeseries.py
"""

import numpy as np

import repro
from repro.decomp import hooi
from repro.tensor.unfold import unfold

N_FRAMES = 256
N_ATOMS = 64
N_MOTIONS = 3  # planted collective modes


def main() -> None:
    trajectory = repro.md_trajectory_tensor(
        N_FRAMES, N_ATOMS, n_modes=N_MOTIONS, seed=11
    )
    print(
        f"synthetic trajectory: {N_FRAMES} frames x {N_ATOMS} atoms x 3 "
        f"coords ({trajectory.nbytes / 1024:.0f} KiB), "
        f"{N_MOTIONS} planted collective motions"
    )

    # Center per (atom, coordinate) so the static structure drops out and
    # the decomposition sees only the dynamics.
    centered = repro.DenseTensor(
        trajectory.data - trajectory.data.mean(axis=0, keepdims=True)
    )

    # Tucker-compress: generous temporal rank, tight spatial ranks.
    ranks = (8, 8, 3)
    result = hooi(centered, ranks, tolerance=1e-10)
    print(
        f"Tucker({ranks}) fit: {result.fit:.4f}, "
        f"compression {result.compression:.0f}x"
    )

    # The temporal factor's singular-value spectrum exposes how many
    # collective motions carry the variance.
    temporal_unfolding = unfold(centered, 0)
    spectrum = np.linalg.svd(temporal_unfolding, compute_uv=False)
    energy = np.cumsum(spectrum**2) / np.sum(spectrum**2)
    recovered = int(np.searchsorted(energy, 0.90) + 1)
    print(
        "temporal energy captured by leading modes: "
        + ", ".join(f"{e:.3f}" for e in energy[:6])
    )
    print(
        f"modes needed for 90% of the dynamics (rest is thermal noise): "
        f"{recovered} (planted: {N_MOTIONS})"
    )

    # Every mode-n product inside HOOI ran through the in-place TTM; the
    # same analysis can be pinned to the copy-based baseline to compare:
    from repro.baselines import ttm_copy

    baseline = hooi(centered, ranks, ttm_backend=ttm_copy, tolerance=1e-10)
    assert abs(baseline.fit - result.fit) < 1e-8
    print("copy-based backend reproduces the same fit: True")


if __name__ == "__main__":
    main()
