"""Compare exported benchmark series against a committed baseline.

The quick benches export their printed tables as JSON via
``REPRO_BENCH_JSON=<dir>`` (see :func:`benchmarks.common.print_series`).
This checker compares a fresh export against ``benchmarks/baselines/``
and fails when a tracked metric regressed by more than the allowed
fraction (default: 30%).

Only *ratio* metrics (the ``speedup`` columns) are compared by default:
they pit two code paths against each other on the same host, so they
transfer across machines, while raw GFLOP/s or microsecond columns do
not.  The exception is the serving series (``ABSOLUTE_GATES``), whose
p99 latency and sustained GFLOP/s are the service-level objective
itself — those gate absolutely, in the direction that matters (latency
may not rise, throughput may not fall, beyond the tolerance).  A third
kind, ``HARD_CEILINGS``, gates against a fixed budget rather than the
baseline — the crash-journal overhead column must stay under its
ceiling no matter how cheap the baseline host measured it.  Other
absolute columns are reported for context but never gate.

Usage::

    REPRO_BENCH_JSON=results python benchmarks/bench_batched_inttm.py --quick
    REPRO_BENCH_JSON=results python benchmarks/bench_autotune_cache.py --quick
    python benchmarks/check_regression.py benchmarks/baselines results

Stdlib-only by design: the CI job that runs it installs nothing beyond
the test dependencies.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

#: Headers whose columns gate the check.  Values are higher-is-better
#: ratios ("12.8x"); a drop below ``baseline * (1 - tolerance)`` fails.
RATIO_HEADERS = ("speedup",)

#: Per-series absolute gates: exact header -> "higher" (may not fall
#: below ``baseline * (1 - tolerance)``) or "lower" (may not rise above
#: ``baseline * (1 + tolerance)``).  Reserved for series whose absolute
#: numbers *are* the contract — the serving SLO columns.
ABSOLUTE_GATES: dict[str, dict[str, str]] = {
    "serving_quick": {"p99 (ms)": "lower", "GF/s": "higher"},
    # Calibration convergence: the calibrated estimator's hit rate
    # against the exhaustive optimum, relative to the paper defaults
    # measured in the same run, may not fall.  The *ratio* gates (not
    # the raw hit counts) because both estimators time under identical
    # conditions, so it transfers across hosts the way speedups do.
    "fig12_convergence": {"cal/default": "higher"},
}

#: Per-series fixed ceilings: exact header -> maximum allowed value,
#: regardless of what the baseline measured.  Unlike the relative gates
#: these encode an engineering budget, not drift detection: the journal
#: overhead column, for example, must stay under 5% on *any* host, even
#: one whose baseline happened to measure 0.5%.  Every row in the
#: current run is held to the ceiling.
HARD_CEILINGS: dict[str, dict[str, float]] = {
    "ooc_journal_quick": {"journal ovh %": 5.0},
}


def parse_metric(text: str) -> float | None:
    """Parse a table cell like ``"12.8x"``/``"33.2"``; None if not numeric."""
    cleaned = text.strip().rstrip("x%")
    try:
        return float(cleaned)
    except ValueError:
        return None


def load_series(path: str) -> dict[str, dict]:
    """Map series name -> {"headers": [...], "rows": [[...], ...]}."""
    series = {}
    for name in sorted(os.listdir(path)):
        if not name.endswith(".json"):
            continue
        with open(os.path.join(path, name)) as fh:
            payload = json.load(fh)
        if isinstance(payload, dict) and "headers" in payload and "rows" in payload:
            series[name[: -len(".json")]] = payload
    return series


def row_keys(rows: list[list[str]]) -> list[tuple[str, int]]:
    """Stable row identity: first cell plus occurrence index."""
    seen: dict[str, int] = {}
    keys = []
    for row in rows:
        label = row[0] if row else ""
        n = seen.get(label, 0)
        seen[label] = n + 1
        keys.append((label, n))
    return keys


def compare_series(
    name: str, baseline: dict, current: dict, tolerance: float
) -> tuple[list[str], list[str]]:
    """Return (report lines, failure lines) for one series."""
    report: list[str] = []
    failures: list[str] = []
    headers = baseline["headers"]
    if current["headers"] != headers:
        failures.append(
            f"{name}: header mismatch (baseline {headers!r} vs "
            f"current {current['headers']!r}); regenerate the baseline"
        )
        return report, failures
    absolute = ABSOLUTE_GATES.get(name, {})
    gated: dict[int, str] = {
        i: "higher"
        for i, h in enumerate(headers)
        if any(tag in h.lower() for tag in RATIO_HEADERS)
    }
    for i, h in enumerate(headers):
        if h in absolute:
            gated[i] = absolute[h]
    hard = HARD_CEILINGS.get(name, {})
    hard_cols = {i: hard[h] for i, h in enumerate(headers) if h in hard}
    if not gated and not hard_cols:
        report.append(f"{name}: no gated columns; informational only")
        return report, failures
    current_rows = dict(zip(row_keys(current["rows"]), current["rows"]))
    for key, base_row in zip(row_keys(baseline["rows"]), baseline["rows"]):
        cur_row = current_rows.get(key)
        if cur_row is None:
            failures.append(f"{name}: row {key[0]!r} missing from current run")
            continue
        for i, direction in sorted(gated.items()):
            base_val = parse_metric(base_row[i])
            cur_val = parse_metric(cur_row[i])
            if base_val is None or cur_val is None:
                failures.append(
                    f"{name}: {key[0]} {headers[i]}: non-numeric cell "
                    f"({base_row[i]!r} vs {cur_row[i]!r})"
                )
                continue
            if direction == "lower":
                bound = base_val * (1.0 + tolerance)
                ok = cur_val <= bound
                bound_name = "ceiling"
            else:
                bound = base_val * (1.0 - tolerance)
                ok = cur_val >= bound
                bound_name = "floor"
            verdict = "ok" if ok else "REGRESSED"
            report.append(
                f"{name}: {key[0]:16s} {headers[i]:12s} "
                f"baseline {base_val:8.2f}  current {cur_val:8.2f}  "
                f"{bound_name} {bound:8.2f}  {verdict}"
            )
            if not ok:
                moved = "fell" if direction == "higher" else "rose"
                failures.append(
                    f"{name}: {key[0]} {headers[i]} {moved} to {cur_val:.2f} "
                    f"(baseline {base_val:.2f}, allowed {bound_name} "
                    f"{bound:.2f})"
                )
    for key, cur_row in current_rows.items():
        for i, ceiling in sorted(hard_cols.items()):
            cur_val = parse_metric(cur_row[i])
            if cur_val is None:
                failures.append(
                    f"{name}: {key[0]} {headers[i]}: non-numeric cell "
                    f"({cur_row[i]!r}) under a hard ceiling"
                )
                continue
            ok = cur_val <= ceiling
            verdict = "ok" if ok else "REGRESSED"
            report.append(
                f"{name}: {key[0]:16s} {headers[i]:12s} "
                f"hard ceiling {ceiling:8.2f}  current {cur_val:8.2f}  "
                f"{verdict}"
            )
            if not ok:
                failures.append(
                    f"{name}: {key[0]} {headers[i]} at {cur_val:.2f} "
                    f"exceeds the fixed ceiling {ceiling:.2f}"
                )
    return report, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="directory of committed baseline JSON")
    parser.add_argument("current", help="directory of freshly exported JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional drop before failing (default 0.30)",
    )
    args = parser.parse_args(argv)

    baseline = load_series(args.baseline)
    current = load_series(args.current)
    if not baseline:
        print(f"error: no baseline series in {args.baseline}", file=sys.stderr)
        return 2
    all_failures: list[str] = []
    for name, base in sorted(baseline.items()):
        if name not in current:
            all_failures.append(f"{name}: series missing from current run")
            continue
        report, failures = compare_series(name, base, current[name], args.tolerance)
        for line in report:
            print(line)
        all_failures.extend(failures)
    for name in sorted(set(current) - set(baseline)):
        print(f"{name}: new series (no baseline yet); informational only")
    if all_failures:
        print(f"\n{len(all_failures)} regression check(s) failed:", file=sys.stderr)
        for line in all_failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nall regression checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
