"""Figure 12: the heuristic configuration vs exhaustive search.

Paper claim: for a mode-1 product on 5th-order tensors there are 16
candidate configurations; INTENSLI's heuristics pick one without search,
and its performance is near the exhaustive-search optimum.

Reproduction: for a sweep of order-5 tensors, enumerate the same
configuration space (degrees x thread splits x kernels), time every
candidate (:class:`repro.core.tuner.ExhaustiveTuner`), and compare the
estimator's predicted plan against the best found.
"""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import print_header, print_series
from repro.core import ExhaustiveTuner, InTensLi
from repro.core.tuner import enumerate_plans
from repro.perf.flops import gflops_rate, ttm_flops
from repro.perf.timing import time_callable
from repro.tensor.dense import DenseTensor
from repro.tensor.generate import random_tensor

MODE = 0  # the paper's mode-1 product
J = 16
SIDES = (8, 10, 12, 14, 16)


def predicted_vs_best(side: int, j: int = J):
    shape = (side,) * 5
    x = random_tensor(shape, seed=side)
    u = np.random.default_rng(1).standard_normal((j, side))
    lib = InTensLi()
    predicted = lib.plan(shape, MODE, j)
    out = DenseTensor.empty(predicted.out_shape, x.layout)
    pred_seconds = time_callable(
        lambda: lib.execute(predicted, x, u, out=out),
        min_repeats=2, min_seconds=0.05,
    )
    pred_rate = gflops_rate(ttm_flops(shape, j), pred_seconds)
    tuner = ExhaustiveTuner(min_seconds=0.05, min_repeats=2)
    result = tuner.sweep(x, u, MODE, max_threads=1, kernels=("blas",))
    return {
        "shape": shape,
        "predicted_rate": pred_rate,
        "best_rate": result.best_gflops,
        "n_configs": len(result.plans),
        "predicted_plan": predicted,
        "best_plan": result.best_plan,
    }


# -- pytest-benchmark targets --------------------------------------------------


def test_fig12_config_space_matches_paper():
    plans = enumerate_plans(
        (10,) * 5, MODE, J, max_threads=8, kernels=("blas", "blocked")
    )
    assert len(plans) == 16  # the paper's count for this input


@pytest.mark.parametrize("side", [10])
def test_fig12_predicted_plan(benchmark, side):
    shape = (side,) * 5
    x = random_tensor(shape, seed=side)
    u = np.random.default_rng(1).standard_normal((J, side))
    lib = InTensLi()
    plan = lib.plan(shape, MODE, J)
    out = DenseTensor.empty(plan.out_shape, x.layout)
    benchmark.pedantic(
        lambda: lib.execute(plan, x, u, out=out), rounds=3, iterations=1,
        warmup_rounds=1,
    )
    benchmark.extra_info["plan"] = plan.describe()


def test_fig12_heuristic_is_near_optimal():
    case = predicted_vs_best(10)
    # "Near-optimal": within 40% of the exhaustive best on this noisy box
    # (the paper's bars are within a few percent on dedicated hardware).
    assert case["predicted_rate"] > 0.6 * case["best_rate"]


def main():
    print_header(
        "Figure 12 - predicted configuration vs exhaustive search "
        "(mode-1 product, 5th-order tensors, J=16)"
    )
    rows = []
    for side in SIDES:
        case = predicted_vs_best(side)
        ratio = case["predicted_rate"] / case["best_rate"]
        rows.append(
            [
                f"{side}^5",
                case["n_configs"],
                f"{case['predicted_rate']:7.2f}",
                f"{case['best_rate']:7.2f}",
                f"{ratio * 100:5.1f}%",
                f"d={case['predicted_plan'].degree}",
                f"d={case['best_plan'].degree}",
            ]
        )
    print_series(
        ["size", "#configs", "predicted", "best", "pred/best",
         "pred plan", "best plan"],
        rows,
    )
    print("Paper: the heuristic choice is near the exhaustive optimum.")


if __name__ == "__main__":
    main()
