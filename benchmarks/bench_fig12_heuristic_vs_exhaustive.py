"""Figure 12: the heuristic configuration vs exhaustive search.

Paper claim: for a mode-1 product on 5th-order tensors there are 16
candidate configurations; INTENSLI's heuristics pick one without search,
and its performance is near the exhaustive-search optimum.

Reproduction: for a sweep of order-5 tensors, enumerate the same
configuration space (degrees x thread splits x kernels), time every
candidate (:class:`repro.core.tuner.ExhaustiveTuner`), and compare the
estimator's predicted plan against the best found.

``--convergence`` runs the calibration validation instead: fit a
:class:`repro.perf.dse.CalibrationRecord` from a live sweep, then count
on how many cases the *paper-default* estimator vs the *calibrated*
estimator lands on (or within 10% of) the exhaustive optimum.  The
exported ``fig12_convergence`` series gates in ``check_regression.py``
("cal hits" may not fall), and ``--check`` additionally exits non-zero
when calibration hits fewer cases than the paper defaults.
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np
import pytest

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import print_header, print_series
from repro.util.formatting import format_table
from repro.core import ExhaustiveTuner, InTensLi
from repro.core.tuner import enumerate_plans
from repro.perf.flops import gflops_rate, ttm_flops
from repro.perf.timing import time_callable
from repro.tensor.dense import DenseTensor
from repro.tensor.generate import random_tensor

MODE = 0  # the paper's mode-1 product
J = 16
SIDES = (8, 10, 12, 14, 16)


def predicted_vs_best(side: int, j: int = J):
    shape = (side,) * 5
    x = random_tensor(shape, seed=side)
    u = np.random.default_rng(1).standard_normal((j, side))
    lib = InTensLi()
    predicted = lib.plan(shape, MODE, j)
    out = DenseTensor.empty(predicted.out_shape, x.layout)
    pred_seconds = time_callable(
        lambda: lib.execute(predicted, x, u, out=out),
        min_repeats=2, min_seconds=0.05,
    )
    pred_rate = gflops_rate(ttm_flops(shape, j), pred_seconds)
    tuner = ExhaustiveTuner(min_seconds=0.05, min_repeats=2)
    result = tuner.sweep(x, u, MODE, max_threads=1, kernels=("blas",))
    return {
        "shape": shape,
        "predicted_rate": pred_rate,
        "best_rate": result.best_gflops,
        "n_configs": len(result.plans),
        "predicted_plan": predicted,
        "best_plan": result.best_plan,
    }


# -- pytest-benchmark targets --------------------------------------------------


def test_fig12_config_space_matches_paper():
    plans = enumerate_plans(
        (10,) * 5, MODE, J, max_threads=8, kernels=("blas", "blocked")
    )
    assert len(plans) == 16  # the paper's count for this input


@pytest.mark.parametrize("side", [10])
def test_fig12_predicted_plan(benchmark, side):
    shape = (side,) * 5
    x = random_tensor(shape, seed=side)
    u = np.random.default_rng(1).standard_normal((J, side))
    lib = InTensLi()
    plan = lib.plan(shape, MODE, J)
    out = DenseTensor.empty(plan.out_shape, x.layout)
    benchmark.pedantic(
        lambda: lib.execute(plan, x, u, out=out), rounds=3, iterations=1,
        warmup_rounds=1,
    )
    benchmark.extra_info["plan"] = plan.describe()


def test_fig12_heuristic_is_near_optimal():
    case = predicted_vs_best(10)
    # "Near-optimal": within 40% of the exhaustive best on this noisy box
    # (the paper's bars are within a few percent on dedicated hardware).
    assert case["predicted_rate"] > 0.6 * case["best_rate"]


def main():
    print_header(
        "Figure 12 - predicted configuration vs exhaustive search "
        "(mode-1 product, 5th-order tensors, J=16)"
    )
    rows = []
    for side in SIDES:
        case = predicted_vs_best(side)
        ratio = case["predicted_rate"] / case["best_rate"]
        rows.append(
            [
                f"{side}^5",
                case["n_configs"],
                f"{case['predicted_rate']:7.2f}",
                f"{case['best_rate']:7.2f}",
                f"{ratio * 100:5.1f}%",
                f"d={case['predicted_plan'].degree}",
                f"d={case['best_plan'].degree}",
            ]
        )
    print_series(
        ["size", "#configs", "predicted", "best", "pred/best",
         "pred plan", "best plan"],
        rows,
    )
    print("Paper: the heuristic choice is near the exhaustive optimum.")


# -- calibration convergence ---------------------------------------------------

#: A predicted plan "hits" the exhaustive optimum when it is the best
#: plan outright or measures within this fraction of the best rate (the
#: issue's "matches or within 10%" acceptance bar).
HIT_FRACTION = 0.9


def convergence_report(
    sides=SIDES, budget: float = 30.0, min_seconds: float = 0.02
):
    """Paper-default vs calibrated estimator against exhaustive sweeps.

    Runs a DSE sweep over the same order-5 geometry, fits a
    :class:`~repro.perf.dse.CalibrationRecord`, and counts on how many
    sizes each estimator's plan hits the exhaustive optimum.
    """
    from repro.perf.dse import DseCase, DseConfig, explore, fit_calibration

    cases = tuple(DseCase(shape=(side,) * 5, mode=MODE, j=J) for side in sides)
    config = DseConfig(
        cases=cases, max_threads=1, min_seconds=min_seconds,
        max_seconds=budget,
    )
    observations = explore(config)
    record = fit_calibration(observations, source="fig12")

    default_lib = InTensLi()
    calibrated_lib = InTensLi()
    calibrated_lib.attach_calibration(record)

    tuner = ExhaustiveTuner(min_seconds=min_seconds, min_repeats=2)
    rows = []
    default_hits = calibrated_hits = 0
    for side in sides:
        shape = (side,) * 5
        x = random_tensor(shape, seed=side)
        u = np.random.default_rng(1).standard_normal((J, side))
        result = tuner.sweep(x, u, MODE, max_threads=1, kernels=("blas",))
        best_rate = result.best_gflops

        def rate_of(plan, result=result, x=x, u=u):
            try:
                return result.gflops_of(plan)
            except ValueError:  # predicted plan outside the swept space
                return gflops_rate(result.flops, tuner.time_plan(plan, x, u))

        row = [f"{side}^5", f"{best_rate:7.2f}"]
        for lib in (default_lib, calibrated_lib):
            plan = lib.plan(shape, MODE, J)
            rate = rate_of(plan)
            hit = plan == result.best_plan or rate >= HIT_FRACTION * best_rate
            row.extend([f"{rate:7.2f}", "hit" if hit else "miss"])
            if lib is default_lib:
                default_hits += int(hit)
            else:
                calibrated_hits += int(hit)
        rows.append(row)
    return {
        "rows": rows,
        "cases": len(tuple(sides)),
        "default_hits": default_hits,
        "calibrated_hits": calibrated_hits,
        "samples": record.samples,
        "record": record,
    }


def convergence_main(budget: float = 30.0, quick: bool = False) -> dict:
    sides = SIDES[:2] if quick else SIDES
    min_seconds = 0.005 if quick else 0.02
    print_header(
        "Figure 12 convergence - paper-default vs calibrated estimator "
        f"(mode-1, order-5, J={J}, {len(sides)} sizes)"
    )
    report = convergence_report(
        sides=sides, budget=budget, min_seconds=min_seconds
    )
    # Detail table: printed for context only (not exported — per-size
    # rates jitter too much to gate; the aggregate below is the contract).
    print(format_table(
        ["size", "best", "default", "", "calibrated", ""],
        report["rows"],
    ))
    print()
    # Laplace-smoothed so a zero-hit default column stays finite; both
    # estimators time under identical conditions, so this ratio — unlike
    # the raw counts — transfers across hosts and gates in CI.
    ratio = (report["calibrated_hits"] + 1) / (report["default_hits"] + 1)
    print_series(
        ["suite", "cases", "samples", "default hits", "cal hits",
         "cal/default"],
        [[
            "order5-J16",
            report["cases"],
            report["samples"],
            report["default_hits"],
            report["calibrated_hits"],
            f"{ratio:.2f}",
        ]],
        export_name="fig12_convergence",
    )
    print(
        "A 'hit' matches the exhaustive best plan or measures within "
        f"{(1 - HIT_FRACTION) * 100:.0f}% of its rate; calibration should "
        "hit at least as many cases as the paper defaults."
    )
    return report


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--convergence", action="store_true",
        help="run the calibration-convergence comparison instead",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller sweep (2 sizes, short timings) for CI smoke",
    )
    parser.add_argument(
        "--budget", type=float, default=30.0,
        help="DSE sweep wall-clock budget in seconds (convergence mode)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero when calibration hits fewer cases than defaults",
    )
    cli_args = parser.parse_args()
    if cli_args.convergence or cli_args.check:
        outcome = convergence_main(budget=cli_args.budget, quick=cli_args.quick)
        if cli_args.check and (
            outcome["calibrated_hits"] < outcome["default_hits"]
        ):
            sys.exit(
                f"calibrated estimator hit {outcome['calibrated_hits']}/"
                f"{outcome['cases']} cases vs {outcome['default_hits']} for "
                "paper defaults - calibration made planning worse"
            )
    else:
        main()
