"""Ablation: the model-refinement pass added to the paper's heuristic.

The paper's estimator picks the degree purely from the MSTH/MLTH
working-set window — sound when the generated code is C++ and loop
iterations cost nanoseconds.  This reproduction generates Python, where
each loop iteration carries microseconds of dispatch, so the estimator
adds a refinement pass (`ParameterEstimator(refine_with_model=True)`,
the default) that re-prices every legal degree with the throughput model
(same MM benchmark) including the loop-overhead term.

This ablation measures both estimator variants on a workload of TTM
signatures and reports the end-to-end speedup attributable to the
refinement.
"""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import print_header, print_series
from repro.core import InTensLi
from repro.core.estimator import ParameterEstimator
from repro.gemm.bench import default_shape_grid, measure_profile
from repro.perf.flops import gflops_rate, ttm_flops
from repro.perf.timing import time_callable
from repro.tensor.dense import DenseTensor
from repro.tensor.generate import random_tensor

WORKLOAD = [
    ((80, 80, 80, 80), 0, 16),
    ((80, 80, 80, 80), 1, 16),
    ((128, 64, 32), 0, 16),
    ((16, 16, 16, 16, 16), 1, 8),
]


def measured_profile():
    grid = default_shape_grid(
        m_values=(16,), k_exponents=range(5, 11), n_exponents=range(5, 12)
    )
    return measure_profile(grid, threads=(1,), min_seconds=0.01)


def run_workload(refine: bool, profile):
    estimator = ParameterEstimator(
        profile=profile, max_threads=1, refine_with_model=refine
    )
    lib = InTensLi(profile=profile)
    lib.estimator = estimator
    lib._plan_cache.clear()
    rows = []
    for shape, mode, j in WORKLOAD:
        x = random_tensor(shape, seed=1)
        u = np.random.default_rng(2).standard_normal((j, shape[mode]))
        plan = lib.plan(shape, mode, j)
        out = DenseTensor.empty(plan.out_shape, x.layout)
        seconds = time_callable(
            lambda: lib.execute(plan, x, u, out=out),
            min_repeats=2, min_seconds=0.05,
        )
        rows.append((shape, mode, plan.degree, seconds,
                     gflops_rate(ttm_flops(shape, j), seconds)))
    return rows


# -- pytest-benchmark targets --------------------------------------------------


@pytest.mark.parametrize("refine", [False, True])
def test_ablation_estimator_variants(benchmark, refine):
    profile = measured_profile()
    estimator = ParameterEstimator(
        profile=profile, max_threads=1, refine_with_model=refine
    )
    shape, mode, j = (64, 64, 64, 64), 0, 16
    plan = estimator.estimate(shape, mode, j)
    lib = InTensLi(profile=profile)
    x = random_tensor(shape, seed=1)
    u = np.random.default_rng(2).standard_normal((j, shape[mode]))
    out = DenseTensor.empty(plan.out_shape, x.layout)
    benchmark.pedantic(
        lambda: lib.execute(plan, x, u, out=out), rounds=3, iterations=1,
        warmup_rounds=1,
    )
    benchmark.extra_info["degree"] = plan.degree


def test_ablation_refinement_never_chooses_worse_predicted_plan():
    from repro.core.predict import predict_gflops

    profile = measured_profile()
    base = ParameterEstimator(profile=profile, max_threads=1,
                              refine_with_model=False)
    refined = ParameterEstimator(profile=profile, max_threads=1,
                                 refine_with_model=True)
    for shape, mode, j in WORKLOAD:
        p_base = base.estimate(shape, mode, j)
        p_ref = refined.estimate(shape, mode, j)
        assert predict_gflops(p_ref, profile) >= predict_gflops(
            p_base, profile
        ) * 0.999


def main():
    print_header(
        "Ablation - threshold-only estimator (paper rule) vs "
        "model-refined (this reproduction's default)"
    )
    profile = measured_profile()
    base_rows = run_workload(refine=False, profile=profile)
    refined_rows = run_workload(refine=True, profile=profile)
    table = []
    total_base = total_refined = 0.0
    for (shape, mode, d_b, s_b, r_b), (_s2, _m2, d_r, s_r, r_r) in zip(
        base_rows, refined_rows
    ):
        total_base += s_b
        total_refined += s_r
        table.append(
            [
                "x".join(map(str, shape)),
                mode,
                f"d={d_b}: {r_b:6.2f}",
                f"d={d_r}: {r_r:6.2f}",
                f"{s_b / s_r:5.2f}x",
            ]
        )
    print_series(
        ["shape", "mode", "threshold-only GFLOP/s", "refined GFLOP/s",
         "speedup"],
        table,
    )
    print(
        f"workload total: {total_base * 1e3:.0f} ms -> "
        f"{total_refined * 1e3:.0f} ms "
        f"({total_base / total_refined:.2f}x) with the refinement."
    )
    print(
        "The refinement exists because Python loop iterations cost "
        "microseconds; with compiled generated code (the paper's C++) the "
        "two variants coincide."
    )


if __name__ == "__main__":
    main()
