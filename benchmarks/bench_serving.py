"""Serving-engine benchmark: coalesced fleets vs. per-request dispatch.

The serving engine's reason to exist is that many tenants' small TTMs,
coalesced into one ``gemm_batched`` fleet, beat the same requests served
one by one.  This harness replays the same deterministic trace through
two servers — coalescing on and off — and reports p99 latency, sustained
GFLOP/s, and the speedup, plus the cache hit rate and batching telemetry
that explain the numbers.  The ``serving_quick`` series feeds the
regression gate (``benchmarks/check_regression.py``): its ``speedup``
column is ratio-gated and its ``p99 (ms)`` / ``GF/s`` columns are
absolute-gated against the committed baseline.

Run as a script (``python benchmarks/bench_serving.py [--quick]``) or
under pytest for the smoke assertions.
"""

from __future__ import annotations

import asyncio
import os
import sys

import pytest

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import print_header, print_series, run_main
from repro.serve import ServeConfig, TtmServer
from repro.serve.workload import default_tenants, generate_trace, replay

#: (label, tenants, requests, concurrency) per benchmark scenario.
SCENARIOS = [
    ("mixed-4t", 4, 1200, 64),
    ("mixed-8t", 8, 1200, 96),
]

#: The regression-gated scenario: moderate concurrency (less queueing
#: amplification in the tail) and enough requests for a stable p99.
QUICK_SCENARIOS = [
    ("quick-4t", 4, 800, 32),
]


def run_scenario(tenants, requests, concurrency, *, coalesce, seed=7):
    """Replay one deterministic trace; returns the LoadReport."""
    trace = generate_trace(default_tenants(tenants), requests, seed=seed)
    config = ServeConfig(
        max_inflight=concurrency * 4,
        max_batch=concurrency,
        coalesce=coalesce,
        workers=2,
    )

    async def _run():
        server = TtmServer(config=config)
        await server.start()
        try:
            return await replay(server, trace, concurrency=concurrency)
        finally:
            await server.stop()

    return asyncio.run(_run())


def measure_pair(label, tenants, requests, concurrency, repeats=3):
    """(row) batched vs. unbatched serving of the same trace.

    Each mode replays *repeats* times and each metric reports its best
    observation across the repeats (lowest p99, highest GFLOP/s, lowest
    wall clock): tail latency of a queue-saturated replay is
    noise-dominated on a shared host, and best-of-N per metric is the
    least contaminated estimate — the same convention as
    ``time_callable``, applied per statistic.
    """
    unbatched = [
        run_scenario(tenants, requests, concurrency, coalesce=False)
        for _ in range(repeats)
    ]
    batched = [
        run_scenario(tenants, requests, concurrency, coalesce=True)
        for _ in range(repeats)
    ]
    wall_u = min(r.wall_s for r in unbatched)
    wall_b = min(r.wall_s for r in batched)
    return {
        "scenario": label,
        "tenants": tenants,
        "requests": requests,
        "p99_ms": min(r.latencies_ms["p99"] for r in batched),
        "p99_unbatched_ms": min(r.latencies_ms["p99"] for r in unbatched),
        "gflops": max(r.sustained_gflops for r in batched),
        "gflops_unbatched": max(r.sustained_gflops for r in unbatched),
        "hit_rate": batched[0].cache["hit_rate"],
        "max_batch": max(r.batching["max_batch"] for r in batched),
        "shed": sum(r.shed["total"] for r in batched + unbatched),
        "speedup": wall_u / wall_b if wall_b > 0 else float("inf"),
    }


def report(rows, title):
    print_series(
        ["scenario", "tenants", "requests", "p99 (ms)", "p99 solo (ms)",
         "GF/s", "GF/s solo", "hit rate", "max batch", "speedup"],
        [
            (
                r["scenario"], r["tenants"], r["requests"],
                f"{r['p99_ms']:.3f}", f"{r['p99_unbatched_ms']:.3f}",
                f"{r['gflops']:.2f}", f"{r['gflops_unbatched']:.2f}",
                f"{r['hit_rate']:.2%}", r["max_batch"],
                f"{r['speedup']:.2f}x",
            )
            for r in rows
        ],
        export_name=title,
    )


# -- pytest targets ------------------------------------------------------------


@pytest.mark.parametrize("scenario", QUICK_SCENARIOS)
def test_serving_smoke(scenario):
    """Closed-loop nominal load: everything completes, nothing sheds."""
    row = measure_pair(*scenario)
    assert row["shed"] == 0
    assert row["max_batch"] > 1  # coalescing actually happened


# -- script entry --------------------------------------------------------------


def main() -> int:
    quick = "--quick" in sys.argv
    print_header(
        "TTM serving: coalesced gemm_batched fleets vs. per-request dispatch"
    )
    if quick:
        print("[quick] one small scenario\n")
        report(
            [measure_pair(*s, repeats=5) for s in QUICK_SCENARIOS],
            "serving_quick",
        )
        return 0
    report([measure_pair(*s) for s in SCENARIOS], "serving_mixed")
    return 0


if __name__ == "__main__":
    run_main(main)
