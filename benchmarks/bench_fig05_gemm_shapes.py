"""Figure 5: GEMM performance varies strongly with operand shape.

Paper claim: for ``C = B A^T`` with B fixed at m = 16 rows, throughput
varies by roughly a factor of 6 across (k, n) in 2^4..2^12, peaking well
below the large-square GEMM rate; very large k or n *decreases*
performance.

Reproduction: measure NumPy's BLAS over the same power-of-two grid
(m = 16), print the GFLOP/s heatmap, and show the roofline-model heatmap
for the paper's Core i7 preset next to it.  The container has one core,
so only the single-thread panel (figure 5a) is measured; the model
supplies the 4-thread panel (5b).
"""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import print_header, print_series
from repro.analysis import CORE_I7_4770K, gemm_model_gflops
from repro.gemm import measure_profile
from repro.gemm.bench import default_shape_grid

M = 16
K_EXPONENTS = tuple(range(4, 13))
N_EXPONENTS = tuple(range(4, 13))


def measured_grid(min_seconds=0.01):
    shapes = default_shape_grid((M,), K_EXPONENTS, N_EXPONENTS)
    profile = measure_profile(shapes, threads=(1,), min_seconds=min_seconds)
    return {
        (p.k, p.n): p.gflops for p in profile.points
    }


def heatmap_rows(lookup):
    rows = []
    for ne in N_EXPONENTS:
        row = [f"n=2^{ne}"]
        for ke in K_EXPONENTS:
            row.append(f"{lookup[(2**ke, 2**ne)]:6.1f}")
        rows.append(row)
    return rows


# -- pytest-benchmark targets --------------------------------------------------


@pytest.mark.parametrize("ke,ne", [(6, 6), (9, 9), (12, 6), (6, 12)])
def test_fig05_gemm_shape_points(benchmark, ke, ne):
    rng = np.random.default_rng(0)
    a = rng.standard_normal((M, 2**ke))
    b = rng.standard_normal((2**ke, 2**ne))
    out = np.empty((M, 2**ne))
    benchmark.pedantic(
        lambda: np.matmul(a, b, out=out), rounds=5, iterations=2,
        warmup_rounds=1,
    )
    flops = 2 * M * 2**ke * 2**ne
    benchmark.extra_info["gflops"] = round(
        flops / benchmark.stats["min"] / 1e9, 2
    )


def test_fig05_shape_variation_factor():
    """The paper's 'factor of ~6' spread across the (k, n) grid."""
    lookup = measured_grid(min_seconds=0.005)
    rates = list(lookup.values())
    spread = max(rates) / min(rates)
    assert spread > 3.0, f"shape spread only {spread:.1f}x"


def main():
    print_header(
        "Figure 5 - GEMM (m=16) GFLOP/s over k (cols) x n (rows), "
        "measured single-thread"
    )
    lookup = measured_grid()
    headers = ["n \\ k"] + [f"2^{ke}" for ke in K_EXPONENTS]
    print_series(headers, heatmap_rows(lookup))
    rates = list(lookup.values())
    print(
        f"measured spread: {max(rates) / min(rates):.1f}x "
        f"(paper: ~6x), max {max(rates):.1f} GFLOP/s"
    )
    print()
    print("Roofline model, Core i7-4770K preset, 4 threads (figure 5b):")
    model = {
        (2**ke, 2**ne): gemm_model_gflops(M, 2**ke, 2**ne, CORE_I7_4770K, 4)
        for ke in K_EXPONENTS
        for ne in N_EXPONENTS
    }
    print_series(headers, heatmap_rows(model))
    mrates = list(model.values())
    print(
        f"model spread: {max(mrates) / min(mrates):.1f}x, "
        f"max {max(mrates):.1f} GFLOP/s (paper: ~140 GFLOP/s)"
    )


if __name__ == "__main__":
    main()
