"""Ablation: the degree parameter (|M_C|) and the kappa threshold knob.

DESIGN.md calls out degree selection as the central design choice of the
estimator: too small a component set starves the inner GEMM (figure 8's
left slope), too large a set overshoots the cache window (right slope).
This ablation times *every* degree on a 5th-order input, marks the
estimator's pick, and shows how the kappa knob moves the MSTH/MLTH
window and hence the chosen degree.
"""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import print_header, print_series
from repro.analysis import CORE_I7_4770K
from repro.core import InTensLi
from repro.core.codegen import compile_plan
from repro.core.inttm import default_plan
from repro.core.partition import derive_thresholds
from repro.gemm.bench import default_shape_grid, synthetic_profile
from repro.perf.flops import gflops_rate, ttm_flops
from repro.perf.timing import time_callable
from repro.tensor.dense import DenseTensor
from repro.tensor.generate import random_tensor
from repro.util.formatting import format_bytes

SHAPE = (12, 12, 12, 12, 12)
MODE = 0
J = 16


def degree_sweep():
    x = random_tensor(SHAPE, seed=0)
    u = np.random.default_rng(1).standard_normal((J, SHAPE[MODE]))
    rows = []
    for degree in range(1, 5):
        plan = default_plan(SHAPE, MODE, J, x.layout, degree=degree,
                            kernel="blas")
        fn = compile_plan(plan)
        out = DenseTensor.empty(plan.out_shape, x.layout)
        seconds = time_callable(
            lambda: fn(x.data, u, out.data), min_repeats=2, min_seconds=0.05
        )
        rows.append(
            (degree, plan.kernel_working_set_bytes,
             gflops_rate(ttm_flops(SHAPE, J), seconds))
        )
    return rows


# -- pytest-benchmark targets --------------------------------------------------


@pytest.mark.parametrize("degree", [1, 2, 3, 4])
def test_ablation_degree(benchmark, degree):
    x = random_tensor(SHAPE, seed=0)
    u = np.random.default_rng(1).standard_normal((J, SHAPE[MODE]))
    plan = default_plan(SHAPE, MODE, J, x.layout, degree=degree,
                        kernel="blas")
    fn = compile_plan(plan)
    out = DenseTensor.empty(plan.out_shape, x.layout)
    benchmark.pedantic(
        lambda: fn(x.data, u, out.data), rounds=3, iterations=1,
        warmup_rounds=1,
    )
    benchmark.extra_info["kernel_ws"] = format_bytes(
        plan.kernel_working_set_bytes
    )


def test_ablation_higher_degree_helps_here():
    """On this input, merging more modes never hurts badly: the best
    degree outperforms degree 1 (small-kernel starvation)."""
    rows = degree_sweep()
    best = max(rate for _d, _ws, rate in rows)
    degree1 = rows[0][2]
    assert best >= degree1


def test_ablation_kappa_moves_the_window():
    profile = synthetic_profile(
        default_shape_grid(), CORE_I7_4770K, threads=(4,)
    )
    wide = derive_thresholds(profile, 16, threads=4, kappa=0.5)
    narrow = derive_thresholds(profile, 16, threads=4, kappa=0.95)
    assert wide.mlth_bytes >= narrow.mlth_bytes


def main():
    print_header(
        f"Ablation - degree sweep, {SHAPE} mode-{MODE + 1} product, J={J}"
    )
    lib = InTensLi()
    chosen = lib.plan(SHAPE, MODE, J)
    rows = [
        [
            d,
            format_bytes(ws),
            f"{rate:7.2f}",
            "<- estimator" if d == chosen.degree else "",
        ]
        for d, ws, rate in degree_sweep()
    ]
    print_series(["degree", "kernel working set", "GFLOP/s", ""], rows)

    print("kappa sensitivity (synthetic Core i7 profile):")
    profile = synthetic_profile(
        default_shape_grid(), CORE_I7_4770K, threads=(4,)
    )
    krows = []
    for kappa in (0.5, 0.7, 0.8, 0.9, 0.95):
        t = derive_thresholds(profile, 16, threads=4, kappa=kappa)
        krows.append(
            [kappa, format_bytes(t.msth_bytes), format_bytes(t.mlth_bytes)]
        )
    print_series(["kappa", "MSTH", "MLTH"], krows)


if __name__ == "__main__":
    main()
