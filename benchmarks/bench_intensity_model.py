"""Equations (4)-(6): the arithmetic-intensity argument, validated by
simulation.

Paper claim (§3): against a fast memory of Z words, a copy-based TTM
moves ``2 m^d`` extra words, costing a factor ``~ 1 + A/m`` of intensity
(A = achievable GEMM intensity); the in-place algorithm removes the term
entirely (equation 6).

Reproduction: replay the exact memory traces of Algorithm 1 and
Algorithm 2 through the same LRU cache model and report words moved and
achieved intensity Q/W.  This is deterministic and machine-independent —
the cleanest available form of the paper's analysis, since wall-clock
Python timings cannot isolate word traffic.
"""

from __future__ import annotations

import os
import sys


if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import print_header, print_series
from repro.analysis import (
    copy_penalty,
    gemm_intensity_bound,
    ttm_copy_words,
)
from repro.cachesim import CacheModel, simulate_ttm_traffic
from repro.cachesim.traffic import copy_vs_inplace_penalty

#: Cache: 4096 words (32 KiB) with 8-word (64 B) lines; tensors are sized
#: well beyond it so the Q >> Z^{3/2} regime of equation (4) holds in
#: miniature.
CACHE_WORDS = 4096
LINE_WORDS = 8
SIDES = (12, 16, 20, 24)
J = 4
MODE = 1


def fresh_cache() -> CacheModel:
    return CacheModel(CACHE_WORDS, line_words=LINE_WORDS)


def sweep():
    rows = []
    for m in SIDES:
        res = copy_vs_inplace_penalty((m, m, m), J, MODE, fresh_cache())
        ip, cp = res["inplace"], res["copy"]
        naive_extra = ttm_copy_words((m, m, m))
        analytic = 1.0 + naive_extra / ip.words_moved
        rows.append(
            {
                "m": m,
                "inplace_words": ip.words_moved,
                "copy_words": cp.words_moved,
                "inplace_intensity": ip.intensity,
                "copy_intensity": cp.intensity,
                "measured_ratio": res["measured_ratio"],
                "analytic_ratio": analytic,
            }
        )
    return rows


# -- pytest-benchmark targets --------------------------------------------------


def test_intensity_inplace_always_beats_copy():
    for row in sweep():
        assert row["copy_words"] > row["inplace_words"]
        assert row["inplace_intensity"] > row["copy_intensity"]


def test_intensity_measured_ratio_at_least_streaming_bound():
    """The simulated penalty is never below the streaming-copy lower
    bound (the analytic ratio assumes perfectly streamed copies)."""
    for row in sweep():
        assert row["measured_ratio"] >= 0.9 * row["analytic_ratio"]


def test_eq4_bound_respected():
    """No trace achieves more than the 8*sqrt(Z) intensity bound."""
    bound = gemm_intensity_bound(CACHE_WORDS)
    for method in ("copy", "inplace"):
        rep = simulate_ttm_traffic((16, 16, 16), J, MODE, fresh_cache(),
                                   method)
        assert rep.intensity < bound


def test_intensity_trace_replay(benchmark):
    benchmark.pedantic(
        lambda: simulate_ttm_traffic((12, 12, 12), J, MODE, fresh_cache(),
                                     "inplace"),
        rounds=3,
        iterations=1,
    )


def main():
    print_header(
        "Equations (4)-(6) - simulated word traffic: copy vs in-place TTM "
        f"(Z = {CACHE_WORDS} words, {LINE_WORDS}-word lines, J = {J})"
    )
    rows = []
    for row in sweep():
        rows.append(
            [
                f"{row['m']}^3",
                f"{row['inplace_words']:,}",
                f"{row['copy_words']:,}",
                f"{row['inplace_intensity']:6.2f}",
                f"{row['copy_intensity']:6.2f}",
                f"{row['measured_ratio']:5.2f}x",
                f"{row['analytic_ratio']:5.2f}x",
            ]
        )
    print_series(
        ["tensor", "W inplace", "W copy", "I inplace", "I copy",
         "traffic ratio", "streaming bound"],
        rows,
    )
    print(
        "eq (5) penalty with A at the cache bound "
        f"(A = {gemm_intensity_bound(CACHE_WORDS):.0f}): "
        + ", ".join(
            f"m={m}: {copy_penalty(CACHE_WORDS, m):.1f}x" for m in SIDES
        )
    )
    print(
        "Measured ratios exceed the streaming bound because the permute "
        "gathers with large strides (partial cache-line use) - copying is "
        "even costlier than the paper's first-order analysis."
    )

    # Multi-level view: where does each algorithm's traffic land?
    from repro.cachesim import CacheHierarchy

    def hierarchy():
        return CacheHierarchy(
            [
                CacheModel(256, line_words=LINE_WORDS),
                CacheModel(1024, line_words=LINE_WORDS),
                CacheModel(CACHE_WORDS, line_words=LINE_WORDS),
            ]
        )

    from repro.cachesim.trace import ttm_copy_trace, ttm_inplace_trace

    print()
    print("Three-level hierarchy (L1 256w / L2 1024w / LLC 4096w), 16^3:")
    rows = []
    for method, trace_fn in (
        ("inplace", ttm_inplace_trace),
        ("copy", ttm_copy_trace),
    ):
        h = hierarchy()
        h.run(trace_fn((16, 16, 16), J, MODE))
        h.flush()
        b = h.words_per_boundary()
        rows.append(
            [method, f"{b[0]:,}", f"{b[1]:,}", f"{b[2]:,}"]
        )
    print_series(
        ["method", "L1<->L2 words", "L2<->LLC words", "LLC<->DRAM words"],
        rows,
    )


if __name__ == "__main__":
    main()
