"""Figure 4: transform (copy) overhead of the conventional TTM.

Paper claim: for a mode-2 product with a low-rank output (J = 16) on
3rd/4th/5th-order tensors, the matricize+tensorize *transform* phase of
Algorithm 1 accounts for ~70% of the running time and ~50% of storage.

Reproduction: run the Tensor Toolbox-style baseline under the phase
profiler and report each phase's fraction of time and space across the
same order/size sweep (sizes scaled to this container).
"""

from __future__ import annotations

import os
import sys

import pytest

if __package__ in (None, ""):  # script mode: make `benchmarks.*` importable
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import (
    BASELINE_SIZE_GRID,
    DEFAULT_J,
    matrix_for,
    print_header,
    print_series,
)
from repro.baselines import ttm_copy
from repro.perf.profiler import PhaseProfiler
from repro.tensor.generate import random_tensor

MODE = 1  # the paper's mode-2 product (1-based) is mode 1 here.


def profile_case(order: int, m: int, j: int = DEFAULT_J, repeats: int = 3):
    """Aggregate transform/multiply fractions over *repeats* runs."""
    shape = (m,) * order
    x = random_tensor(shape, seed=order * 1000 + m)
    u = matrix_for(shape, MODE, j)
    prof = PhaseProfiler()
    for _ in range(repeats):
        ttm_copy(x, u, MODE, profiler=prof)
    p = prof.profile
    return {
        "shape": shape,
        "time_transform": p.time_fraction("transform"),
        "time_multiply": p.time_fraction("multiply"),
        "space_transform": p.space_fraction("transform"),
        "space_multiply": p.space_fraction("multiply"),
    }


def series(orders=(3, 4, 5)):
    rows = []
    for order in orders:
        for m in BASELINE_SIZE_GRID[order]:
            rows.append(profile_case(order, m))
    return rows


# -- pytest-benchmark targets --------------------------------------------------


@pytest.mark.parametrize("order", [3, 4, 5])
def test_fig04_copy_ttm_with_profile(benchmark, order):
    m = BASELINE_SIZE_GRID[order][-1]
    shape = (m,) * order
    x = random_tensor(shape, seed=order)
    u = matrix_for(shape, MODE)
    benchmark.pedantic(
        lambda: ttm_copy(x, u, MODE), rounds=3, iterations=1, warmup_rounds=1
    )
    stats = profile_case(order, m, repeats=2)
    benchmark.extra_info["transform_time_fraction"] = round(
        stats["time_transform"], 3
    )
    benchmark.extra_info["transform_space_fraction"] = round(
        stats["space_transform"], 3
    )
    # The paper's qualitative claim: the transform phase is substantial.
    assert stats["time_transform"] > 0.15
    assert 0.3 < stats["space_transform"] < 0.7


def main():
    print_header(
        "Figure 4 - profile of Algorithm 1 (mode-2 product, J=16): "
        "transform vs multiply"
    )
    rows = []
    for stats in series():
        rows.append(
            [
                len(stats["shape"]),
                "x".join(str(s) for s in stats["shape"]),
                f"{stats['time_transform'] * 100:5.1f}%",
                f"{stats['time_multiply'] * 100:5.1f}%",
                f"{stats['space_transform'] * 100:5.1f}%",
                f"{stats['space_multiply'] * 100:5.1f}%",
            ]
        )
    print_series(
        ["order", "shape", "time:transform", "time:multiply",
         "space:transform", "space:multiply"],
        rows,
    )
    print("Paper: transform ~70% of time, ~50% of space at these regimes.")


if __name__ == "__main__":
    main()
