"""Shared infrastructure for the paper-reproduction benchmark harness.

Every ``bench_*.py`` file reproduces one table or figure:

* run under ``pytest benchmarks/ --benchmark-only`` it registers
  pytest-benchmark timings for the headline operations and attaches the
  paper-style series to ``benchmark.extra_info``;
* run as a script (``python benchmarks/bench_figXX_*.py``) it prints the
  full paper-style table, prefixed by the machine configuration.

Sizes are scaled to a single-core container (see DESIGN.md's
substitution table): the paper's *shapes* — who wins, by what factor,
where the curves bend — are the reproduction target, not its absolute
GFLOP/s.
"""

from __future__ import annotations

import json
import os
import sys

import numpy as np

# Script invocations (``python benchmarks/bench_*.py``) run without the
# package installed or PYTHONPATH set; point the import machinery at src/.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.perf.flops import gflops_rate, ttm_flops
from repro.perf.machine import machine_info
from repro.perf.timing import time_callable
from repro.util.formatting import format_table

#: Default low-rank output size, matching the paper's J = 16.
DEFAULT_J = 16

#: Per-order side lengths for the order sweeps (figures 4, 9, 10).
#: Scaled so the largest order-5 case stays ~10^7 elements.
ORDER_SIZE_GRID = {
    3: (48, 64, 96, 128, 160),
    4: (12, 16, 20, 24, 28),
    5: (6, 8, 10, 12, 14),
}

#: Smaller grid for the copy-heavy baselines (figure 10's note that the
#: Tensor Toolbox/CTF runs need more memory than InTTM).
BASELINE_SIZE_GRID = {
    3: (48, 64, 96),
    4: (12, 16, 20),
    5: (6, 8, 10),
}


def print_header(title: str) -> None:
    """Print a benchmark banner with the machine configuration."""
    info = machine_info()
    print("=" * 72)
    print(title)
    print("=" * 72)
    for label, value in info.table_rows():
        print(f"  {label:24s} {value}")
    print("-" * 72)


def print_series(headers, rows, export_name: str | None = None) -> None:
    """Print a table; optionally also export it as JSON.

    Set ``REPRO_BENCH_JSON=<dir>`` to dump every printed series as
    ``<dir>/<export_name or auto>.json`` (headers + rows), so figures can
    be regenerated from the harness output without re-running it.
    """
    rows = [list(r) for r in rows]
    print(format_table(headers, rows))
    print()
    out_dir = os.environ.get("REPRO_BENCH_JSON")
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
        name = export_name or f"series_{_EXPORT_COUNTER.bump():03d}"
        path = os.path.join(out_dir, f"{name}.json")
        with open(path, "w") as fh:
            json.dump(
                {"headers": list(headers),
                 "rows": [[str(c) for c in r] for r in rows]},
                fh,
                indent=2,
            )


class _Counter:
    def __init__(self) -> None:
        self.value = 0

    def bump(self) -> int:
        self.value += 1
        return self.value


_EXPORT_COUNTER = _Counter()


def time_ttm(fn, shape, j, min_seconds=0.05, min_repeats=2) -> tuple[float, float]:
    """(seconds, GFLOP/s) of a nullary TTM callable on the given geometry."""
    seconds = time_callable(fn, min_repeats=min_repeats, min_seconds=min_seconds)
    return seconds, gflops_rate(ttm_flops(shape, j), seconds)


def matrix_for(shape, mode, j=DEFAULT_J, seed=1) -> np.ndarray:
    """The J x I_mode factor matrix used across benchmarks."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal((j, shape[mode]))


def run_main(main_fn) -> None:
    """Script entry point wrapper (kept trivial; exists for symmetry)."""
    sys.exit(main_fn() or 0)
