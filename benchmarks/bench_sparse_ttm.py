"""Extension bench: sparse TTM vs densify-and-multiply (paper §7).

The paper's future work names sparse tensor primitives as the next
target.  This bench locates the density crossover: below it, the COO
kernel with a semi-sparse output wins; above it, densifying and calling
the dense in-place TTM wins — the trade every sparse tensor library
navigates.  It also reports the semi-sparse output's storage advantage,
which shrinks as TTM output fibers densify (the memory-blowup problem
Kolda & Sun's METTM addresses).
"""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import print_header, print_series
from repro.core.inttm import ttm_inplace
from repro.perf.timing import time_callable
from repro.sparse import random_sparse, ttm_sparse

SHAPE = (64, 64, 64)
MODE = 1
J = 8
DENSITIES = (0.001, 0.005, 0.02, 0.08, 0.3)


def compare_at(density: float, seed=0):
    x_sp = random_sparse(SHAPE, density, seed=seed)
    u = np.random.default_rng(1).standard_normal((J, SHAPE[MODE]))
    x_dense = x_sp.to_dense()
    t_sparse = time_callable(
        lambda: ttm_sparse(x_sp, u, MODE), min_repeats=2, min_seconds=0.02
    )
    t_dense = time_callable(
        lambda: ttm_inplace(x_dense, u, MODE), min_repeats=2,
        min_seconds=0.02,
    )
    semi = ttm_sparse(x_sp, u, MODE)
    dense_words = semi.to_dense().size
    return {
        "density": density,
        "nnz": x_sp.nnz,
        "t_sparse": t_sparse,
        "t_dense": t_dense,
        "fiber_density": semi.densification,
        "storage_ratio": semi.storage_words / dense_words,
    }


# -- pytest-benchmark targets --------------------------------------------------


@pytest.mark.parametrize("density", [0.005, 0.3])
def test_sparse_ttm_densities(benchmark, density):
    x = random_sparse(SHAPE, density, seed=0)
    u = np.random.default_rng(1).standard_normal((J, SHAPE[MODE]))
    benchmark.pedantic(
        lambda: ttm_sparse(x, u, MODE), rounds=3, iterations=1,
        warmup_rounds=1,
    )
    benchmark.extra_info["nnz"] = x.nnz


def test_sparse_wins_at_low_density():
    case = compare_at(0.001)
    assert case["t_sparse"] < case["t_dense"]


def test_semisparse_storage_tracks_fiber_density():
    sparse_case = compare_at(0.001)
    dense_case = compare_at(0.3)
    assert sparse_case["storage_ratio"] < dense_case["storage_ratio"]
    assert sparse_case["fiber_density"] < dense_case["fiber_density"]


def main():
    print_header(
        f"Extension - sparse vs dense TTM, {SHAPE} mode-{MODE + 1}, J={J}"
    )
    rows = []
    for density in DENSITIES:
        case = compare_at(density)
        winner = "sparse" if case["t_sparse"] < case["t_dense"] else "dense"
        rows.append(
            [
                f"{case['density']:.3f}",
                f"{case['nnz']:,}",
                f"{case['t_sparse'] * 1e3:8.2f} ms",
                f"{case['t_dense'] * 1e3:8.2f} ms",
                winner,
                f"{case['fiber_density'] * 100:5.1f}%",
                f"{case['storage_ratio'] * 100:5.1f}%",
            ]
        )
    print_series(
        ["density", "nnz", "sparse TTM", "dense InTTM", "winner",
         "output fibers", "semi-sparse storage"],
        rows,
    )
    print(
        "Expected: sparse wins at low density; output fibers densify with "
        "input density (the memory-blowup effect METTM mitigates)."
    )


if __name__ == "__main__":
    main()
