"""Table 1 + Observation 3: TTM representation forms vs BLAS level.

Paper claim: the different organizations of a mode-1 product on a
3rd-order tensor map to BLAS levels — scalar loops ("Slow"), fiber
(Level 2), slice (Level 3, no transformation), matricized (Level 3,
with a physical transformation) — and higher levels have better
locality, hence higher throughput.

Reproduction: time all four forms (plus the in-place merged-mode form
this paper contributes) on the same input and print level and GFLOP/s.
The scalar form is evaluated at a reduced size (pure Python loops) and
marked as such.
"""

from __future__ import annotations

import os
import sys

import pytest

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import matrix_for, print_header, print_series, time_ttm
from repro.baselines import (
    REPRESENTATIONS,
    ttm_fiber_form,
    ttm_matricized_form,
    ttm_slice_form,
)
from repro.core.inttm import ttm_inplace
from repro.tensor.generate import random_tensor

SHAPE = (96, 96, 96)
SCALAR_SHAPE = (12, 12, 12)
MODE = 0  # the paper's mode-1 product
J = 16


def run_forms():
    x = random_tensor(SHAPE, seed=0)
    u = matrix_for(SHAPE, MODE, J)
    x_small = random_tensor(SCALAR_SHAPE, seed=0)
    u_small = matrix_for(SCALAR_SHAPE, MODE, J, seed=1)
    rows = []
    scalar_fn = REPRESENTATIONS["scalar"][0]
    _, scalar_rate = time_ttm(
        lambda: scalar_fn(x_small, u_small, MODE), SCALAR_SHAPE, J,
        min_seconds=0.01, min_repeats=1,
    )
    rows.append(("scalar", "Slow", "no", SCALAR_SHAPE, scalar_rate))
    for name, fn in (
        ("fiber", ttm_fiber_form),
        ("slice", ttm_slice_form),
        ("matricized", ttm_matricized_form),
    ):
        _, rate = time_ttm(lambda: fn(x, u, MODE), SHAPE, J)
        level = REPRESENTATIONS[name][1]
        transform = "yes" if REPRESENTATIONS[name][2] else "no"
        rows.append((name, level, transform, SHAPE, rate))
    _, rate = time_ttm(lambda: ttm_inplace(x, u, MODE), SHAPE, J)
    rows.append(("in-place merged (ours)", "L3", "no", SHAPE, rate))
    return rows


# -- pytest-benchmark targets --------------------------------------------------


@pytest.mark.parametrize(
    "name", ["fiber", "slice", "matricized", "inplace"]
)
def test_table1_forms(benchmark, name):
    x = random_tensor(SHAPE, seed=0)
    u = matrix_for(SHAPE, MODE, J)
    fns = {
        "fiber": ttm_fiber_form,
        "slice": ttm_slice_form,
        "matricized": ttm_matricized_form,
        "inplace": ttm_inplace,
    }
    fn = fns[name]
    benchmark.pedantic(
        lambda: fn(x, u, MODE), rounds=3, iterations=1, warmup_rounds=1
    )


def test_table1_level3_beats_level2():
    """Locality ordering: merged Level-3 form beats the fiber form."""
    x = random_tensor((64, 64, 64), seed=1)
    u = matrix_for((64, 64, 64), MODE, J)
    _, fiber_rate = time_ttm(
        lambda: ttm_fiber_form(x, u, MODE), (64, 64, 64), J
    )
    _, inplace_rate = time_ttm(
        lambda: ttm_inplace(x, u, MODE), (64, 64, 64), J
    )
    assert inplace_rate > fiber_rate


def main():
    print_header("Table 1 - representation forms of the mode-1 product")
    rows = [
        [name, level, transform, "x".join(map(str, shape)), f"{rate:8.2f}"]
        for name, level, transform, shape, rate in run_forms()
    ]
    print_series(
        ["form", "BLAS level", "transformation", "shape", "GFLOP/s"], rows
    )
    print(
        "Expected ordering: scalar << fiber < slice <= matricized <= "
        "in-place merged."
    )


if __name__ == "__main__":
    main()
