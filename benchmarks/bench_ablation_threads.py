"""Ablation: thread allocation — loop-level (P_L) vs kernel-level (P_C).

The paper's PTH rule sends all threads to the loop nest for small inner
kernels and to the GEMM for large ones.  This ablation times both
allocations (and the serial baseline) on a small-kernel and a
large-kernel input.  On a single-core container the absolute speedups
are ~1x; what the ablation verifies is that (a) both parallel paths are
correct, (b) oversubscription does not corrupt results, and (c) the
measured ordering can be regenerated unchanged on a multi-core host.
"""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import print_header, print_series
from repro.core.codegen import compile_plan
from repro.core.inttm import default_plan
from repro.perf.flops import gflops_rate, ttm_flops
from repro.perf.timing import time_callable
from repro.tensor.dense import DenseTensor
from repro.tensor.generate import random_tensor
from tests.helpers import ttm_oracle

CASES = {
    # Small inner kernel (degree 1, tiny trailing dim): PTH says loops.
    "small-kernel": {"shape": (128, 64, 48), "mode": 1, "degree": 1},
    # Large inner kernel (full trailing merge): PTH says kernel.
    "large-kernel": {"shape": (24, 64, 48, 48), "mode": 1, "degree": 2},
}
J = 16
ALLOCATIONS = [("serial", 1, 1), ("P_L=4", 4, 1), ("P_C=4", 1, 4)]


def run_case(name, threads=ALLOCATIONS):
    spec = CASES[name]
    shape, mode = spec["shape"], spec["mode"]
    x = random_tensor(shape, seed=3)
    u = np.random.default_rng(4).standard_normal((J, shape[mode]))
    rows = []
    for label, p_l, p_c in threads:
        plan = default_plan(
            shape, mode, J, x.layout, degree=spec["degree"],
            loop_threads=p_l, kernel_threads=p_c, kernel="blas",
        )
        fn = compile_plan(plan)
        out = DenseTensor.empty(plan.out_shape, x.layout)
        seconds = time_callable(
            lambda: fn(x.data, u, out.data), min_repeats=2, min_seconds=0.05
        )
        rows.append((label, gflops_rate(ttm_flops(shape, J), seconds), out))
    return rows


# -- pytest-benchmark targets --------------------------------------------------


@pytest.mark.parametrize("label,p_l,p_c", ALLOCATIONS)
def test_ablation_thread_split_small_kernel(benchmark, label, p_l, p_c):
    spec = CASES["small-kernel"]
    shape, mode = spec["shape"], spec["mode"]
    x = random_tensor(shape, seed=3)
    u = np.random.default_rng(4).standard_normal((J, shape[mode]))
    plan = default_plan(shape, mode, J, x.layout, degree=spec["degree"],
                        loop_threads=p_l, kernel_threads=p_c, kernel="blas")
    fn = compile_plan(plan)
    out = DenseTensor.empty(plan.out_shape, x.layout)
    benchmark.pedantic(
        lambda: fn(x.data, u, out.data), rounds=3, iterations=1,
        warmup_rounds=1,
    )


@pytest.mark.parametrize("case", list(CASES))
def test_ablation_all_allocations_correct(case):
    spec = CASES[case]
    shape, mode = spec["shape"], spec["mode"]
    x = random_tensor(shape, seed=3)
    u = np.random.default_rng(4).standard_normal((J, shape[mode]))
    expect = ttm_oracle(x.data, u, mode)
    for _label, rate, out in run_case(case):
        assert rate > 0
        assert np.allclose(out.data, expect)


def main():
    print_header("Ablation - thread allocation (P_L vs P_C), J=16")
    for name in CASES:
        print(f"{name} ({CASES[name]['shape']}, mode {CASES[name]['mode']}):")
        rows = [
            [label, f"{rate:7.2f}"] for label, rate, _out in run_case(name)
        ]
        print_series(["allocation", "GFLOP/s"], rows)
    print(
        "Single-core container: expect ~1x across allocations; on a "
        "multi-core host the PTH rule's preferred side wins."
    )


if __name__ == "__main__":
    main()
