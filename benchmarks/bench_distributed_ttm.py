"""Extension bench: distributed TTM grid comparison (paper §7 conclusion).

The paper proposes its InTTM as the intra-node component of distributed
TTMs.  This bench runs the simulated block-distributed product over every
processor-grid factorization of a fixed rank count, comparing measured
communication words (factor scatter + partial all-reduce) and load
balance, and checks that the closed-form model picks the best grid —
notably, that partitioning the *contracted* mode is penalized when
J << I_n (the all-reduce moves output-sized data).
"""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import print_header, print_series
from repro.distributed import (
    ProcessGrid,
    best_grid,
    communication_words,
    distributed_ttm,
    enumerate_grids,
)
from repro.tensor.generate import random_tensor
from repro.util.formatting import format_bytes

SHAPE = (48, 48, 48)
MODE = 1
J = 8
NPROC = 8


def sweep(nproc=NPROC):
    x = random_tensor(SHAPE, seed=0)
    u = np.random.default_rng(1).standard_normal((J, SHAPE[MODE]))
    rows = []
    for grid in enumerate_grids(3, nproc):
        try:
            grid.validate_for(SHAPE)
        except Exception:
            continue
        y, report = distributed_ttm(x, u, MODE, grid)
        rows.append((grid, report))
    return rows


# -- pytest-benchmark targets --------------------------------------------------


@pytest.mark.parametrize("dims", [(1, 1, 8), (1, 8, 1), (2, 2, 2)])
def test_distributed_ttm_grids(benchmark, dims):
    x = random_tensor(SHAPE, seed=0)
    u = np.random.default_rng(1).standard_normal((J, SHAPE[MODE]))
    grid = ProcessGrid(dims)
    benchmark.pedantic(
        lambda: distributed_ttm(x, u, MODE, grid), rounds=2, iterations=1,
        warmup_rounds=1,
    )
    _y, report = distributed_ttm(x, u, MODE, grid)
    benchmark.extra_info["comm_words"] = report.total_comm_words


def test_model_choice_minimizes_measured_comm():
    rows = sweep(nproc=4)
    min_measured = min(r[1].total_comm_words for r in rows)
    modelled_best = best_grid(SHAPE, J, MODE, 4)
    assert communication_words(SHAPE, J, MODE, modelled_best) <= min_measured


def main():
    print_header(
        f"Extension - distributed TTM over {NPROC} simulated ranks, "
        f"{SHAPE} mode-{MODE + 1}, J={J}"
    )
    rows = []
    chosen = best_grid(SHAPE, J, MODE, NPROC)
    for grid, report in sorted(
        sweep(), key=lambda r: r[1].total_comm_words
    ):
        rows.append(
            [
                "x".join(map(str, grid.dims)),
                f"{report.scatter_u_words:,}",
                f"{report.allreduce_words:,}",
                format_bytes(report.total_comm_words * 8),
                f"{report.load_imbalance:.2f}",
                "<- model pick" if grid.dims == chosen.dims else "",
            ]
        )
    print_series(
        ["grid", "scatter words", "allreduce words", "total comm",
         "imbalance", ""],
        rows,
    )
    print(
        "Grids that split the contracted mode pay the all-reduce; the "
        "model prefers splitting the free modes (output stays local)."
    )


if __name__ == "__main__":
    main()
