"""Ablation: TTM chain ordering for Tucker projections (§2's workload).

The HOOI iteration performs N*(N-1) mode-n products per sweep; because
products along distinct modes commute, the execution *order* is free,
and each product shrinks the tensor seen by the rest.  This ablation
compares the naive increasing-mode order, the worst order, and the
provably optimal exchange-criterion order used by
``repro.core.chain.greedy_order`` — in modelled flops and in measured
wall time on an intentionally skewed tensor.
"""

from __future__ import annotations

import itertools
import os
import sys

import numpy as np
import pytest

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import print_header, print_series
from repro.core.chain import ChainStep, chain_flops, greedy_order, ttm_chain
from repro.core.inttm import ttm_inplace
from repro.perf.timing import time_callable
from repro.tensor.generate import random_tensor

#: Skewed extents and ranks make ordering matter: shrinking the big,
#: strongly reduced modes first pays off.
SHAPE = (96, 12, 64, 8)
RANKS = (4, 8, 4, 8)


def make_steps(seed=0):
    rng = np.random.default_rng(seed)
    return [
        ChainStep(mode, rng.standard_normal((r, s)))
        for mode, (s, r) in enumerate(zip(SHAPE, RANKS))
    ]


def orders():
    steps = make_steps()
    costs = {
        perm: chain_flops(SHAPE, steps, perm)
        for perm in itertools.permutations(range(len(steps)))
    }
    best = greedy_order(SHAPE, steps)
    worst = max(costs, key=costs.get)
    given = tuple(range(len(steps)))
    return steps, {"greedy/optimal": best, "increasing-mode": given,
                   "worst": worst}, costs


# -- pytest-benchmark targets --------------------------------------------------


def test_ablation_greedy_is_flop_optimal():
    steps, named, costs = orders()
    assert costs[named["greedy/optimal"]] == min(costs.values())


@pytest.mark.parametrize("which", ["greedy/optimal", "worst"])
def test_ablation_chain_orders(benchmark, which):
    steps, named, costs = orders()
    x = random_tensor(SHAPE, seed=1)
    order = named[which]
    benchmark.pedantic(
        lambda: ttm_chain(x, steps, backend=ttm_inplace, order=order),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    benchmark.extra_info["modelled_flops"] = costs[order]


def main():
    print_header(
        f"Ablation - TTM chain ordering, Tucker projection of {SHAPE} "
        f"to ranks {RANKS}"
    )
    steps, named, costs = orders()
    x = random_tensor(SHAPE, seed=1)
    rows = []
    for name, order in named.items():
        seconds = time_callable(
            lambda: ttm_chain(x, steps, backend=ttm_inplace, order=order),
            min_repeats=3,
            min_seconds=0.05,
        )
        rows.append(
            [
                name,
                "->".join(str(steps[i].mode) for i in order),
                f"{costs[order] / 1e6:8.1f} Mflop",
                f"{seconds * 1e3:7.2f} ms",
            ]
        )
    print_series(["ordering", "mode order", "modelled cost", "measured"],
                 rows)
    spread = max(costs.values()) / min(costs.values())
    print(
        f"cost spread across all {len(costs)} orders: {spread:.1f}x; the "
        "exchange-criterion order is provably flop-minimal."
    )


if __name__ == "__main__":
    main()
