"""Extension bench: MTTKRP — conventional vs in-place (paper §6).

The related-work section credits Ravindran et al. [33] with an in-place
MTTKRP over the slice representation and positions the paper's merged
sub-tensors as the generalization.  This bench compares:

* ``mttkrp``          — unfold + full Khatri-Rao + one GEMM (the
  conventional form; materializes a ``(|X|/I_n) x R`` KRP);
* ``mttkrp_inplace``  — merged-trailing-modes form (materializes only a
  ``P x R`` partial KRP, reads the tensor through views);
* ``mttkrp_sparse``   — the SPLATT-style kernel on a sparsified input.

Shapes follow a CP-ALS sweep (rank 16) over a 4th-order tensor.
"""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import print_header, print_series
from repro.decomp.cp import mttkrp, mttkrp_inplace
from repro.perf.timing import time_callable
from repro.sparse import SparseTensor, mttkrp_sparse
from repro.tensor.generate import random_tensor
from repro.util.formatting import format_bytes

SHAPE = (48, 32, 24, 16)
RANK = 16


def setup(seed=0):
    x = random_tensor(SHAPE, seed=seed)
    rng = np.random.default_rng(seed + 1)
    factors = [rng.standard_normal((s, RANK)) for s in SHAPE]
    return x, factors


def krp_bytes_full(mode: int) -> int:
    rows = 1
    for m, s in enumerate(SHAPE):
        if m != mode:
            rows *= s
    return rows * RANK * 8


def krp_bytes_inplace(mode: int) -> int:
    # The kernel merges the larger side of `mode` (fewer loop iterations)
    # and materializes only that side's Khatri-Rao product.
    trailing = 1
    for m in range(mode + 1, len(SHAPE)):
        trailing *= SHAPE[m]
    leading = 1
    for m in range(0, mode):
        leading *= SHAPE[m]
    return max(trailing, leading) * RANK * 8


# -- pytest-benchmark targets --------------------------------------------------


@pytest.mark.parametrize("variant", ["conventional", "inplace"])
def test_mttkrp_variants(benchmark, variant):
    x, factors = setup()
    fn = mttkrp if variant == "conventional" else mttkrp_inplace
    benchmark.pedantic(
        lambda: fn(x, factors, 1), rounds=3, iterations=1, warmup_rounds=1
    )


def test_mttkrp_inplace_materializes_less():
    for mode in range(len(SHAPE)):
        assert krp_bytes_inplace(mode) <= krp_bytes_full(mode)
    # Interior modes split the KRP: strictly less than the full product.
    assert krp_bytes_inplace(1) < krp_bytes_full(1)
    assert krp_bytes_inplace(2) < krp_bytes_full(2)


def main():
    print_header(
        f"Extension - MTTKRP variants, {SHAPE} rank {RANK} (CP-ALS kernel)"
    )
    from repro.sparse import CsfTensor, csf_mttkrp

    x, factors = setup()
    x_sp = SparseTensor.from_dense(
        np.where(np.random.default_rng(2).random(SHAPE) < 0.02, x.data, 0.0)
    )
    csfs = {
        mode: CsfTensor.from_coo(
            x_sp,
            mode_order=(mode,)
            + tuple(m for m in range(len(SHAPE)) if m != mode),
        )
        for mode in range(len(SHAPE))
    }
    rows = []
    for mode in range(len(SHAPE)):
        t_conv = time_callable(
            lambda: mttkrp(x, factors, mode), min_repeats=2, min_seconds=0.05
        )
        t_inpl = time_callable(
            lambda: mttkrp_inplace(x, factors, mode), min_repeats=2,
            min_seconds=0.05,
        )
        t_sparse = time_callable(
            lambda: mttkrp_sparse(x_sp, factors, mode), min_repeats=2,
            min_seconds=0.05,
        )
        t_csf = time_callable(
            lambda: csf_mttkrp(csfs[mode], factors, mode), min_repeats=2,
            min_seconds=0.05,
        )
        rows.append(
            [
                mode,
                f"{t_conv * 1e3:7.2f} ms",
                f"{t_inpl * 1e3:7.2f} ms",
                f"{t_sparse * 1e3:7.2f} ms",
                f"{t_csf * 1e3:7.2f} ms",
                format_bytes(krp_bytes_full(mode)),
                format_bytes(krp_bytes_inplace(mode)),
            ]
        )
    print_series(
        ["mode", "conventional", "in-place", "COO sparse", "CSF sparse",
         "KRP bytes (conv)", "KRP bytes (in-place)"],
        rows,
    )
    print(
        f"sparse kernels run on a 2%-density sparsification "
        f"({x_sp.nnz:,} nnz); CSF compresses its coordinates "
        f"{csfs[0].compression_vs_coo():.2f}x vs COO."
    )
    print(
        "The in-place form trades one big GEMM for per-slab GEMMs with a "
        "much smaller materialized Khatri-Rao product."
    )


if __name__ == "__main__":
    main()
