"""End-to-end: Tucker-HOOI with in-place vs copy-based TTM.

The paper motivates INTENSLI with the Tucker decomposition, whose HOOI
iteration executes N*(N-1) mode-n products per sweep (§2) and whose
conclusion claims the framework "can be directly applied to tensor
decompositions".  This benchmark closes that loop: the identical HOOI
code runs over both TTM backends, so the only difference is the TTM.
"""

from __future__ import annotations

import os
import sys
import time

import pytest

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import print_header, print_series
from repro.baselines import ttm_copy, ttm_ctf_like
from repro.core import InTensLi
from repro.decomp import hooi
from repro.tensor.generate import low_rank_tensor

SHAPE = (40, 40, 40, 40)
RANKS = (8, 8, 8, 8)
SWEEPS = 3


def backends():
    lib = InTensLi()
    return {
        # The facade instance is chain-capable: hooi hands it whole
        # projection chains (fused planning + scratch reuse).
        "inttm (fused chain)": lib,
        # The same facade stripped to a plain callable: identical
        # per-product path, but step-at-a-time with per-step allocation.
        "inttm (per-step)": lambda x, u, mode: lib.ttm(x, u, mode),
        "tt-ttm (copy)": ttm_copy,
        "ctf-like": lambda x, u, mode: ttm_ctf_like(x, u, mode),
    }


def run_backend(name, backend, x):
    start = time.perf_counter()
    result = hooi(x, RANKS, ttm_backend=backend, max_iterations=SWEEPS,
                  tolerance=0.0)
    seconds = time.perf_counter() - start
    return seconds, result


# -- pytest-benchmark targets --------------------------------------------------


@pytest.mark.parametrize("name", ["inttm", "tt-ttm"])
def test_tucker_hooi_backends(benchmark, name):
    x = low_rank_tensor((24, 24, 24), (6, 6, 6), seed=0)
    lib = InTensLi()
    backend = (
        (lambda t, u, mode: lib.ttm(t, u, mode)) if name == "inttm"
        else ttm_copy
    )
    result = benchmark.pedantic(
        lambda: hooi(x, (6, 6, 6), ttm_backend=backend, max_iterations=2,
                     tolerance=0.0),
        rounds=2,
        iterations=1,
        warmup_rounds=1,
    )
    benchmark.extra_info["fit"] = round(result.fit, 6)


def test_tucker_backends_reach_same_fit():
    x = low_rank_tensor((20, 20, 20), (5, 5, 5), seed=1)
    lib = InTensLi()
    fits = []
    for backend in (lambda t, u, m: lib.ttm(t, u, m), ttm_copy):
        result = hooi(x, (5, 5, 5), ttm_backend=backend, max_iterations=2,
                      tolerance=0.0)
        fits.append(result.fit)
    assert abs(fits[0] - fits[1]) < 1e-8


def main():
    print_header(
        f"Tucker-HOOI end-to-end, {SHAPE} tensor, ranks {RANKS}, "
        f"{SWEEPS} sweeps (identical algorithm, TTM backend swapped)"
    )
    x = low_rank_tensor(SHAPE, RANKS, noise=0.01, seed=0)
    rows = []
    base = None
    for name, backend in backends().items():
        seconds, result = run_backend(name, backend, x)
        if base is None:
            base = seconds
        rows.append(
            [name, f"{seconds:7.2f} s", f"{result.fit:.4f}",
             f"{base / seconds:5.2f}x"]
        )
    print_series(["ttm backend", "wall time", "fit", "speedup vs fused"],
                 rows)
    print(
        "The decomposition quality (fit) is identical; only the TTM "
        "implementation changes the runtime."
    )


if __name__ == "__main__":
    main()
