"""Table 2: experimental platform configuration.

The paper documents its two testbeds (Core i7-4770K, Xeon E7-4820) with
peak GFLOP/s, cache, memory, and bandwidth.  This benchmark prints the
same table for (a) this host, introspected live, and (b) the two paper
platforms as roofline presets used throughout the reproduction — plus
the paper's square-GEMM reference measurement (they quote 154 GFLOP/s
on the i7 and 51 GFLOP/s on the Xeon for a 1000x1000 GEMM).
"""

from __future__ import annotations

import os
import sys

import numpy as np

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import print_header, print_series
from repro.analysis import CORE_I7_4770K, XEON_E7_4820
from repro.perf.flops import gemm_flops, gflops_rate
from repro.perf.machine import machine_info
from repro.perf.timing import time_callable
from repro.util.formatting import format_bytes

REFERENCE_N = 1000


def reference_gemm_gflops(min_seconds=0.1) -> float:
    rng = np.random.default_rng(0)
    a = rng.standard_normal((REFERENCE_N, REFERENCE_N))
    b = rng.standard_normal((REFERENCE_N, REFERENCE_N))
    out = np.empty((REFERENCE_N, REFERENCE_N))
    seconds = time_callable(
        lambda: np.matmul(a, b, out=out), min_repeats=2,
        min_seconds=min_seconds,
    )
    return gflops_rate(gemm_flops(REFERENCE_N, REFERENCE_N, REFERENCE_N),
                       seconds)


def test_table2_reference_gemm(benchmark):
    rng = np.random.default_rng(0)
    a = rng.standard_normal((REFERENCE_N, REFERENCE_N))
    b = rng.standard_normal((REFERENCE_N, REFERENCE_N))
    out = np.empty((REFERENCE_N, REFERENCE_N))
    benchmark.pedantic(
        lambda: np.matmul(a, b, out=out), rounds=3, iterations=1,
        warmup_rounds=1,
    )
    rate = gflops_rate(
        gemm_flops(REFERENCE_N, REFERENCE_N, REFERENCE_N),
        benchmark.stats["min"],
    )
    benchmark.extra_info["square_gemm_gflops"] = round(rate, 1)
    assert rate > 1.0


def main():
    print_header("Table 2 - experimental platform configuration")
    info = machine_info()
    rows = []
    labels = [
        "Peak GFLOP/s (all cores)",
        "# of physical cores",
        "Last-level cache",
        "Memory bandwidth",
    ]
    presets = (CORE_I7_4770K, XEON_E7_4820)
    preset_values = [
        [f"{p.peak_gflops:.0f}" for p in presets],
        [str(p.cores) for p in presets],
        [format_bytes(p.llc_bytes) for p in presets],
        [f"{p.bandwidth_gbs} GB/s" for p in presets],
    ]
    host_rate = reference_gemm_gflops()
    host_values = [
        f"~{host_rate:.0f} (measured 1000^2 GEMM)",
        str(info.physical_cores),
        format_bytes(info.llc_bytes),
        "n/a",
    ]
    for label, host, preset in zip(labels, host_values, preset_values):
        rows.append([label, host, preset[0], preset[1]])
    print_series(
        ["parameter", "this host", CORE_I7_4770K.name, XEON_E7_4820.name],
        rows,
    )
    print(
        f"1000x1000 GEMM: this host {host_rate:.1f} GFLOP/s; paper "
        "quotes 154 (i7) and 51 (Xeon E7)."
    )


if __name__ == "__main__":
    main()
