"""Ablation: kernel choice — BLAS fast path vs general-stride blocked.

The paper's strategy rule exists because of this asymmetry (§4.3.1):
unit-stride operands reach the optimized BLAS, while general-stride
operands need a BLIS-style kernel that packs panels and pays for it.
This ablation measures both kernels on both operand classes:

* unit-stride: the forward-strategy sub-tensor views;
* general-stride: the same logical matrices accessed through a
  backward-strategy (wrong-side) merge of a row-major tensor.
"""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import print_header, print_series
from repro.gemm import BlockSizes, gemm_blas, gemm_blocked
from repro.perf.flops import gemm_flops, gflops_rate
from repro.perf.timing import time_callable
from repro.util.errors import StrideError

M, K, N = 16, 384, 384


def operands(general_stride: bool, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((M, K))
    if general_stride:
        # Both strides non-unit: a column-sliced transpose.
        base = rng.standard_normal((3 * N, 2 * K))
        b = base[::3, ::2].T[:K, :N]
        assert b.strides[0] != b.itemsize and b.strides[1] != b.itemsize
    else:
        b = rng.standard_normal((K, N))
    out = np.empty((M, N))
    return a, b, out


def rate_of(fn) -> float:
    seconds = time_callable(fn, min_repeats=2, min_seconds=0.05)
    return gflops_rate(gemm_flops(M, K, N), seconds)


# -- pytest-benchmark targets --------------------------------------------------


@pytest.mark.parametrize("kernel", ["blas", "blocked"])
def test_ablation_kernels_unit_stride(benchmark, kernel):
    a, b, out = operands(general_stride=False)
    fn = gemm_blas if kernel == "blas" else gemm_blocked
    benchmark.pedantic(
        lambda: fn(a, b, out=out), rounds=3, iterations=1, warmup_rounds=1
    )


def test_ablation_blas_refuses_general_stride():
    a, b, out = operands(general_stride=True)
    with pytest.raises(StrideError):
        gemm_blas(a, b, out=out)


def test_ablation_blocked_handles_general_stride():
    a, b, out = operands(general_stride=True)
    gemm_blocked(a, b, out=out)
    assert np.allclose(out, a @ np.asarray(b))


def test_ablation_blas_wins_on_unit_stride():
    a, b, out = operands(general_stride=False)
    blas = rate_of(lambda: gemm_blas(a, b, out=out))
    blocked = rate_of(lambda: gemm_blocked(a, b, out=out))
    assert blas >= 0.9 * blocked  # the fast path is never much worse


def main():
    print_header(
        f"Ablation - kernel x operand stride class ({M}x{K}x{N} GEMM)"
    )
    rows = []
    a, b, out = operands(general_stride=False)
    rows.append(
        ["unit-stride", "blas (MKL role)",
         f"{rate_of(lambda: gemm_blas(a, b, out=out)):7.2f}"]
    )
    rows.append(
        ["unit-stride", "blocked (BLIS role)",
         f"{rate_of(lambda: gemm_blocked(a, b, out=out)):7.2f}"]
    )
    ag, bg, outg = operands(general_stride=True)
    rows.append(["general-stride", "blas (MKL role)", "refuses (StrideError)"])
    rows.append(
        ["general-stride", "blocked (BLIS role)",
         f"{rate_of(lambda: gemm_blocked(ag, bg, out=outg)):7.2f}"]
    )
    for blocks in (BlockSizes(64, 128, 256), BlockSizes(256, 512, 1024)):
        rows.append(
            [
                "general-stride",
                f"blocked mc={blocks.mc} kc={blocks.kc} nc={blocks.nc}",
                f"{rate_of(lambda: gemm_blocked(ag, bg, out=outg, block_sizes=blocks)):7.2f}",
            ]
        )
    print_series(["operands", "kernel", "GFLOP/s"], rows)
    print(
        "This asymmetry is why the estimator picks the strategy whose "
        "merged views keep a unit-stride dimension (paper §4.3.1)."
    )


if __name__ == "__main__":
    main()
