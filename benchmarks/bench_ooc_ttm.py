"""Out-of-core tiled TTM: what staying under a memory budget costs.

The tiling executor (:func:`repro.core.tiling.execute_tiled`) breaks a
TTM whose working set exceeds ``$REPRO_MEM_LIMIT`` into block-range
tiles over the non-contracted modes, runs each tile through its own
estimator plan, and bounds transient memory by the budget.  This
benchmark prices that machinery against the unconstrained single-shot
execution on the same operands:

* ``speedup tiled`` — untiled seconds / tiled seconds.  Below 1.0 is
  the expected tiling tax (plan-per-tile, boundary tiles, pack copies
  on the packed path); the regression gate holds the tax steady rather
  than hoping for a win.
* ``tiles`` / ``path`` — the geometry the planner actually chose: how
  many tiles, and whether they are zero-copy views or staged through
  the pack-multiply-scatter scratch pool.
* The full run adds a disk leg: the same contraction with a
  memmap-backed input and output (``ttm_tiled(..., out_path=...)``),
  reported as wall seconds — informational, since it times the page
  cache as much as the code.
* ``journal ovh %`` — the price of crash-safety: the same tiled
  execution with ``journal_path=`` set (per-tile crc32 + an appended,
  group-fsynced commit record) against the unjournaled run.  The
  regression gate holds this under a fixed 5% ceiling
  (``HARD_CEILINGS`` in ``check_regression.py``).

Run as a script for the full table, or ``--quick`` for the small grid
the bench-regression workflow gates on.
"""

from __future__ import annotations

import os
import sys
import tempfile

import numpy as np
import pytest

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import print_header, print_series, run_main
from repro.core.inttm import default_plan, ttm_inplace
from repro.core.tiling import TilingPlanner, execute_tiled, ttm_tiled
from repro.perf.timing import Timer, time_callable
from repro.resilience import plan_footprint_bytes
from repro.tensor.dense import DenseTensor, open_memmap_tensor
from repro.tensor.layout import ROW_MAJOR
from repro.tensor.generate import random_tensor

#: (shape, J, mode) cases.  mode == last on ROW_MAJOR tiles as views
#: (the outer storage mode sits inside the kernel window); leading
#: modes force the packed pack-multiply-scatter path.
FULL_CASES = [
    ((64, 48, 32), 16, 2),
    ((48, 32, 64), 16, 0),
    ((128, 96, 64), 16, 2),
    ((96, 64, 128), 16, 0),
    ((32, 32, 32, 32), 8, 3),
]

QUICK_CASES = [
    ((64, 48, 32), 16, 2),
    ((48, 32, 64), 16, 0),
]

#: Journal-overhead cases deliberately pick a large contracted mode:
#: flops per output byte scale with ``I_mode``, while the journal cost
#: (crc32 of the landed region + one appended record) scales with the
#: output bytes, so these reflect the out-of-core jobs a journal is
#: actually for.  Tiny contractions would price the fixed ~1 ms fsync
#: cost of opening/closing the journal instead, which amortises to
#: nothing on any job long enough to be worth resuming.
JOURNAL_CASES = [
    ((96, 64, 8192), 32, 2),
    ((64, 48, 8192), 48, 2),
]

#: Back-to-back (plain, journaled) pairs per case.  The overhead column
#: is the *minimum* per-pair ratio — the same least-noise estimator
#: :func:`repro.perf.timing.time_callable` uses — because differencing
#: two independently-timed legs on a shared host swamps a few-percent
#: effect in machine drift, while a ratio taken within one pair cancels
#: it.
JOURNAL_PAIRS = 5

MIN_SECONDS = 0.05


def build_case(shape, j, mode, seed=0):
    x = random_tensor(shape, seed=seed)
    rng = np.random.default_rng(seed + 1)
    u = rng.standard_normal((j, shape[mode]))
    return x, u


def measure_case(shape, j, mode, min_seconds=MIN_SECONDS):
    x, u = build_case(shape, j, mode)
    base = default_plan(shape, mode, j, x.layout)
    ws = plan_footprint_bytes(base, allocate_out=False)
    budget = ws // 2
    tiling = TilingPlanner().plan(base, budget=budget, out_preallocated=True)
    assert tiling.tiled, f"{shape} mode {mode} did not tile at {budget}B"

    out_shape = tuple(
        j if axis == mode else extent for axis, extent in enumerate(shape)
    )
    out_untiled = DenseTensor.empty(out_shape, x.layout)
    out_tiled = DenseTensor.empty(out_shape, x.layout)

    def untiled():
        return ttm_inplace(x, u, plan=base, out=out_untiled)

    def tiled():
        return execute_tiled(x, u, tiling, out=out_tiled)

    untiled()
    tiled()
    assert np.allclose(out_tiled.data, out_untiled.data, atol=1e-9)

    secs_untiled = time_callable(untiled, min_seconds=min_seconds)
    secs_tiled = time_callable(tiled, min_seconds=min_seconds)
    return {
        "shape": "x".join(str(s) for s in shape),
        "mode": mode,
        "j": j,
        "budget_kib": budget / 1024.0,
        "tiles": tiling.n_tiles,
        "path": "packed" if tiling.packed else "views",
        "ms_untiled": secs_untiled * 1e3,
        "ms_tiled": secs_tiled * 1e3,
        "speedup": secs_untiled / secs_tiled if secs_tiled > 0 else float("inf"),
    }


def measure_disk_leg(shape, j, mode, min_seconds=MIN_SECONDS):
    """Wall seconds for the memmap-in, memmap-out execution of a case."""
    rng = np.random.default_rng(2)
    u = rng.standard_normal((j, shape[mode]))
    base = default_plan(shape, mode, j, ROW_MAJOR)
    budget = plan_footprint_bytes(base, allocate_out=False) // 2
    with tempfile.TemporaryDirectory() as tmp:
        x = open_memmap_tensor(
            os.path.join(tmp, "x.npy"), "w+", shape=shape
        )
        x.data[...] = rng.standard_normal(shape)
        x.flush()

        counter = [0]

        def run():
            counter[0] += 1
            return ttm_tiled(
                x, u, mode, budget=budget,
                out_path=os.path.join(tmp, f"y{counter[0]}.npy"),
            )

        return time_callable(run, min_seconds=min_seconds)


def measure_journal_case(shape, j, mode, pairs=JOURNAL_PAIRS):
    """Tiled execution with and without a commit journal, same operands.

    Runs *pairs* back-to-back (plain, journaled) executions and reports
    the minimum per-pair time ratio as the overhead, so slow machine
    phases hit both legs of a pair and cancel out of the column the
    regression gate holds under its fixed ceiling.
    """
    x, u = build_case(shape, j, mode)
    base = default_plan(shape, mode, j, x.layout)
    budget = plan_footprint_bytes(base, allocate_out=False) // 2
    tiling = TilingPlanner().plan(base, budget=budget, out_preallocated=True)
    assert tiling.tiled, f"{shape} mode {mode} did not tile at {budget}B"
    out_shape = tuple(
        j if axis == mode else extent for axis, extent in enumerate(shape)
    )
    out = DenseTensor.empty(out_shape, x.layout)
    ratios = []
    secs_plain = []
    secs_journal = []
    with tempfile.TemporaryDirectory() as tmp:
        counter = [0]

        def plain():
            return execute_tiled(x, u, tiling, out=out)

        def journaled():
            counter[0] += 1
            return execute_tiled(
                x, u, tiling, out=out,
                journal_path=os.path.join(tmp, f"j{counter[0]}.jsonl"),
            )

        plain()
        journaled()
        timer = Timer()
        for _ in range(max(1, pairs)):
            with timer:
                plain()
            with timer:
                journaled()
            t_plain, t_journal = timer.laps[-2], timer.laps[-1]
            secs_plain.append(t_plain)
            secs_journal.append(t_journal)
            ratios.append(t_journal / t_plain if t_plain > 0 else 1.0)
    return {
        "shape": "x".join(str(s) for s in shape),
        "mode": mode,
        "j": j,
        "tiles": tiling.n_tiles,
        "ms_plain": min(secs_plain) * 1e3,
        "ms_journal": min(secs_journal) * 1e3,
        "overhead_pct": (min(ratios) - 1.0) * 100.0,
    }


def report_journal(rows, title):
    print_series(
        ["shape", "mode", "J", "tiles",
         "plain (ms)", "journaled (ms)", "journal ovh %"],
        [
            (
                r["shape"], r["mode"], r["j"], r["tiles"],
                f"{r['ms_plain']:.3f}", f"{r['ms_journal']:.3f}",
                f"{r['overhead_pct']:.2f}",
            )
            for r in rows
        ],
        export_name=title,
    )


def report(rows, title):
    print_series(
        ["shape", "mode", "J", "budget KiB", "tiles", "path",
         "untiled (ms)", "tiled (ms)", "speedup tiled"],
        [
            (
                r["shape"], r["mode"], r["j"], f"{r['budget_kib']:.0f}",
                r["tiles"], r["path"],
                f"{r['ms_untiled']:.3f}", f"{r['ms_tiled']:.3f}",
                f"{r['speedup']:.2f}x",
            )
            for r in rows
        ],
        export_name=title,
    )


# -- pytest targets ------------------------------------------------------------


@pytest.mark.parametrize("case", QUICK_CASES)
def test_tiled_path_matches_untiled(case):
    """Smoke: the measured paths agree before any timing is trusted."""
    shape, j, mode = case
    row = measure_case(shape, j, mode, min_seconds=0.0)
    assert row["tiles"] > 1


def test_disk_leg_completes():
    secs = measure_disk_leg((48, 32, 64), 16, 0, min_seconds=0.0)
    assert secs > 0


def test_journal_leg_completes():
    row = measure_journal_case((64, 48, 256), 16, 2, pairs=1)
    assert row["tiles"] > 1


# -- script entry --------------------------------------------------------------


def main() -> int:
    quick = "--quick" in sys.argv
    print_header(
        "Out-of-core tiled TTM: budget-bounded tiling vs unconstrained "
        "single-shot execution"
    )
    if quick:
        print("[quick] regression-gate grid only\n")
        report([measure_case(*case) for case in QUICK_CASES], "ooc_ttm_quick")
        print("crash-safety tax (journaled vs plain tiled execution):")
        report_journal(
            [measure_journal_case(*case) for case in JOURNAL_CASES],
            "ooc_journal_quick",
        )
        return 0
    report([measure_case(*case) for case in FULL_CASES], "ooc_ttm")
    print("crash-safety tax (journaled vs plain tiled execution):")
    report_journal(
        [measure_journal_case(*case) for case in JOURNAL_CASES],
        "ooc_journal",
    )
    print("disk leg (memmap in, memmap out, page cache warm):")
    for case in FULL_CASES[:2]:
        shape, j, mode = case
        secs = measure_disk_leg(shape, j, mode)
        label = "x".join(str(s) for s in shape)
        print(f"  {label} mode {mode} J={j}: {secs * 1e3:.2f} ms/run")
    print(
        "\nspeedup tiled is untiled/tiled on identical operands; below "
        "1.0 is the tiling tax the regression gate holds steady."
    )
    return 0


if __name__ == "__main__":
    run_main(main)
