"""Fused TTM chains vs step-at-a-time: the whole-chain planning payoff.

The fused executor (:func:`repro.core.chain.execute_chain`) plans an
N-step chain once — order, per-step plans, ping-pong buffer schedule —
and then reuses two scratch buffers across every execution.  The legacy
path plans each product on the fly and allocates a fresh intermediate
per step.  This benchmark times both on the same chains and reports:

* ``speedup fused`` — fused vs step-at-a-time *in the same order*: the
  pure buffer-reuse + pre-planning win;
* ``speedup order`` — fused vs step-at-a-time *in the written order*:
  the end-to-end win including the planner's reordering;
* per-pass intermediate allocation counts (fused: 0 once the pool is
  warm, <= 2 cold; step-at-a-time: one per step).

Run as a script for the full table, or ``--quick`` for the small grid
the bench-regression workflow gates on.
"""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import print_header, print_series, run_main
from repro.core.chain import (
    ChainStep,
    ScratchPool,
    chain_flops,
    execute_chain,
    plan_chain,
    ttm_chain,
)
from repro.core.inttm import ttm_inplace
from repro.perf.flops import gflops_rate
from repro.perf.timing import time_callable
from repro.tensor.dense import DenseTensor
from repro.tensor.generate import random_tensor

#: (shape, J per mode) chains.  The first two come from the
#: DEFAULT_CASES geometry grid (tests/helpers.TTM_CASES); the larger
#: ones exercise the regime where intermediates stop fitting in cache.
FULL_CASES = [
    ((3, 4, 5), 2),
    ((4, 4, 4, 4), 3),
    ((24, 24, 24), 8),
    ((64, 64, 64), 16),
    ((40, 40, 40, 40), 8),
    ((16, 16, 16, 16, 16), 4),
    ((8, 8, 8), 32),  # expanding chain: the reconstruct direction
]

QUICK_CASES = [
    ((3, 4, 5), 2),
    ((4, 4, 4, 4), 3),
    ((24, 24, 24), 8),
    ((40, 40, 40, 40), 8),
]

MIN_SECONDS = 0.05


def build_chain(shape, j, seed=0):
    rng = np.random.default_rng(seed)
    x = random_tensor(shape, seed=seed)
    steps = [
        ChainStep(mode, rng.standard_normal((j, extent)))
        for mode, extent in enumerate(shape)
    ]
    return x, steps


def measure_chain(shape, j, min_seconds=MIN_SECONDS):
    x, steps = build_chain(shape, j)
    sig = [(s.mode, s.j) for s in steps]
    plan = plan_chain(shape, sig, x.layout, order="auto")
    pool = ScratchPool()
    out = DenseTensor.empty(plan.out_shape, x.layout)

    def fused():
        return execute_chain(x, steps, plan, out=out, pool=pool)

    def stepwise_same_order():
        return ttm_chain(x, steps, backend=ttm_inplace, order=plan.order)

    def stepwise_given():
        return ttm_chain(x, steps, backend=ttm_inplace, order="given")

    # Warm everything: plans, the scratch pool, the BLAS threads.
    reference = stepwise_given()
    assert np.allclose(fused().data, reference.data, atol=1e-9)
    cold_allocations = pool.allocations
    assert cold_allocations <= 2

    flops_auto = chain_flops(shape, steps, plan.order)
    flops_given = chain_flops(shape, steps)
    secs_fused = time_callable(fused, min_seconds=min_seconds)
    secs_same = time_callable(stepwise_same_order, min_seconds=min_seconds)
    secs_given = time_callable(stepwise_given, min_seconds=min_seconds)

    return {
        "shape": "x".join(str(s) for s in shape),
        "j": j,
        "steps": len(steps),
        "allocs_fused": cold_allocations,
        "allocs_stepwise": len(steps),
        "gflops_fused": gflops_rate(flops_auto, secs_fused),
        "gflops_stepwise": gflops_rate(flops_auto, secs_same),
        "gflops_given": gflops_rate(flops_given, secs_given),
        "speedup_fused": secs_same / secs_fused if secs_fused > 0 else float("inf"),
        "speedup_order": secs_given / secs_fused if secs_fused > 0 else float("inf"),
    }


def report(rows, title):
    print_series(
        ["chain", "J", "steps", "allocs fused", "allocs stepwise",
         "GF/s fused", "GF/s stepwise", "GF/s as-given",
         "speedup fused", "speedup order"],
        [
            (
                r["shape"], r["j"], r["steps"],
                f"{r['allocs_fused']} cold / 0 warm", r["allocs_stepwise"],
                f"{r['gflops_fused']:.2f}", f"{r['gflops_stepwise']:.2f}",
                f"{r['gflops_given']:.2f}",
                f"{r['speedup_fused']:.2f}x", f"{r['speedup_order']:.2f}x",
            )
            for r in rows
        ],
        export_name=title,
    )


# -- pytest targets ------------------------------------------------------------


@pytest.mark.parametrize("case", QUICK_CASES[:2])
def test_chain_paths_agree(case):
    """Smoke: fused and step-at-a-time produce identical numbers."""
    shape, j = case
    x, steps = build_chain(shape, j)
    fused = ttm_chain(x, steps, order="auto")
    stepwise = ttm_chain(x, steps, backend=ttm_inplace, order="auto")
    assert np.allclose(fused.data, stepwise.data, atol=1e-9)


def test_chain_fused_reuses_buffers(benchmark=None):
    shape, j = QUICK_CASES[1]
    x, steps = build_chain(shape, j)
    sig = [(s.mode, s.j) for s in steps]
    plan = plan_chain(shape, sig, x.layout, order="auto")
    pool = ScratchPool()
    execute_chain(x, steps, plan, pool=pool)
    assert pool.allocations <= 2
    execute_chain(x, steps, plan, pool=pool)
    assert pool.allocations <= 2  # warm pool: no new buffers


# -- script entry --------------------------------------------------------------


def main() -> int:
    quick = "--quick" in sys.argv
    print_header(
        "Fused TTM chains: whole-chain planning + ping-pong scratch reuse "
        "vs per-step plan-and-allocate"
    )
    if quick:
        print("[quick] regression-gate grid only\n")
        report([measure_chain(*case) for case in QUICK_CASES],
               "ttm_chain_quick")
        return 0
    report([measure_chain(*case) for case in FULL_CASES], "ttm_chain")
    print(
        "speedup fused isolates buffer reuse and pre-built plans (same "
        "execution order); speedup order adds the planner's reordering "
        "of the chain."
    )
    return 0


if __name__ == "__main__":
    run_main(main)
