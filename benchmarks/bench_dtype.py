"""Multi-dtype TTM: float32 vs. float64 end to end, no silent upcast.

The dtype-faithful kernel layer exists for one measurable promise: a
float32 TTM runs float32 arithmetic on float32 storage — half the bytes
through the memory hierarchy and the faster sgemm — instead of paying a
hidden upcast-and-copy to float64.  This benchmark times the same
geometry per element type through the default (generated) executor and
reports the float32-over-float64 speedup; it also validates the
contract directly (output dtype equals input dtype, float16 routes to
the blocked kernel without error).

Run as a script for the full table, or under pytest for a smoke check:
``python benchmarks/bench_dtype.py [--quick]``.
"""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import (
    matrix_for,
    print_header,
    print_series,
    run_main,
    time_ttm,
)
from repro.core.inttm import default_plan, ttm_inplace
from repro.tensor.dense import DenseTensor
from repro.tensor.layout import ROW_MAJOR

#: (shape, mode, J) — kernel-bound geometries where the sgemm/dgemm and
#: bandwidth gap shows; float16 is excluded from timing (its blocked
#: fallback measures Python loop overhead, not the dtype layer).
CASES = [
    ((96, 96, 96), 1, 16),
    ((48, 48, 48, 8), 1, 16),
    ((160, 160, 40), 0, 16),
]

QUICK_CASES = [
    ((32, 32, 32), 1, 8),
    ((16, 16, 16, 8), 1, 8),
]

TIMED_DTYPES = ("float64", "float32")


def measure_case(shape, mode, j, min_seconds=0.05):
    """One row: GFLOP/s per timed dtype plus the float32 speedup."""
    row = {"shape": "x".join(str(s) for s in shape), "mode": mode, "j": j}
    seconds = {}
    for dtype in TIMED_DTYPES:
        x = DenseTensor.random(shape, ROW_MAJOR, seed=sum(shape),
                               dtype=dtype)
        u = matrix_for(shape, mode, j=j).astype(dtype)
        plan = default_plan(shape, mode, j, ROW_MAJOR, dtype=dtype)
        out = DenseTensor.empty(plan.out_shape, ROW_MAJOR, dtype=dtype)
        y = ttm_inplace(x, u, plan=plan, out=out)  # warm + validate
        assert y.dtype == np.dtype(dtype), (
            f"dtype leak: {dtype} input produced {y.dtype} output"
        )
        secs, rate = time_ttm(
            lambda: ttm_inplace(x, u, plan=plan, out=out), shape, j,
            min_seconds=min_seconds,
        )
        seconds[dtype] = secs
        row[f"gflops_{dtype}"] = rate
    row["speedup"] = (
        seconds["float64"] / seconds["float32"]
        if seconds["float32"] > 0 else float("inf")
    )
    return row


def sweep(cases, min_seconds=0.05):
    return [measure_case(*case, min_seconds=min_seconds) for case in cases]


def report(rows, title):
    print_series(
        ["shape", "mode", "J", "GF/s f64", "GF/s f32", "speedup"],
        [
            (
                r["shape"], r["mode"], r["j"],
                f"{r['gflops_float64']:.2f}", f"{r['gflops_float32']:.2f}",
                f"{r['speedup']:.2f}x",
            )
            for r in rows
        ],
        export_name=title,
    )


# -- pytest targets ------------------------------------------------------------


@pytest.mark.parametrize("case", QUICK_CASES)
def test_dtype_smoke(case):
    """Tiny-shape smoke: both timed dtypes run and preserve their type."""
    row = measure_case(*case, min_seconds=0.01)
    assert row["gflops_float64"] > 0
    assert row["gflops_float32"] > 0


def test_float16_fallback_executes():
    """float16 has no BLAS kernel; the blocked fallback must still run."""
    shape, mode, j = (8, 8, 8), 1, 4
    x = DenseTensor.random(shape, ROW_MAJOR, seed=0, dtype="float16")
    u = matrix_for(shape, mode, j=j).astype("float16")
    plan = default_plan(shape, mode, j, ROW_MAJOR, dtype="float16")
    y = ttm_inplace(x, u, plan=plan)
    assert y.dtype == np.float16
    assert plan.kernel != "blas" or not plan.views_blas_legal


# -- script entry --------------------------------------------------------------


def main() -> int:
    quick = "--quick" in sys.argv
    print_header("Multi-dtype TTM: float32 vs. float64 (no silent upcast)")
    if quick:
        print("[quick] tiny smoke shapes only\n")
        report(sweep(QUICK_CASES, min_seconds=0.02), "dtype_quick")
        return 0
    print("Kernel-bound geometries, generated executor:\n")
    report(sweep(CASES), "dtype_full")
    return 0


if __name__ == "__main__":
    run_main(main)
