"""Figure 11: per-mode performance variability on a 4th-order tensor.

Paper claim: on a 160^4 tensor, the Tensor Toolbox's TTM throughput
varies wildly across modes (~3 to ~40 GFLOP/s) because matricization
cost depends on how far the mode sits from the storage order, while
INTENSLI's InTTM holds roughly constant across modes.

Convention note (paper footnote 4): the Tensor Toolbox is column-major
and INTENSLI row-major, so TT's mode-n is compared against InTTM's
mode-(d-n+1).  We reproduce that pairing by running the baseline on the
column-major tensor at mode ``d-1-n`` and InTTM on the row-major tensor
at mode ``n``.

The default size is scaled down (160^4 needs 5+ GiB); pass ``--full``
to the script for larger sizes.
"""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import DEFAULT_J, print_header, print_series, time_ttm
from repro.baselines import ttm_copy
from repro.core import InTensLi
from repro.tensor.dense import DenseTensor
from repro.tensor.generate import random_tensor

SIDE = 40  # 40^4 = 2.56M elements (~20 MB); paper uses 160^4.


def sweep(side=SIDE, j=DEFAULT_J):
    shape = (side,) * 4
    lib = InTensLi()
    x_row = random_tensor(shape, layout="C", seed=0)
    x_col = DenseTensor(x_row.data, "F")
    rng = np.random.default_rng(1)
    rows = []
    for mode in range(4):
        u = rng.standard_normal((j, side))
        plan = lib.plan(shape, mode, j)
        out = DenseTensor.empty(plan.out_shape, x_row.layout)
        _, r_in = time_ttm(
            lambda: lib.ttm(x_row, u, mode, out=out), shape, j
        )
        # Tensor Toolbox convention: their mode-(4-mode) == our mode.
        tt_mode = 3 - mode
        _, r_tt = time_ttm(
            lambda: ttm_copy(x_col, u, tt_mode), shape, j
        )
        rows.append((mode, r_in, tt_mode, r_tt))
    return rows


def variability(rates):
    return max(rates) / min(rates)


# -- pytest-benchmark targets --------------------------------------------------


@pytest.mark.parametrize("mode", [0, 1, 2, 3])
def test_fig11_inttm_modes(benchmark, mode):
    shape = (SIDE,) * 4
    lib = InTensLi()
    x = random_tensor(shape, seed=0)
    u = np.random.default_rng(1).standard_normal((DEFAULT_J, SIDE))
    plan = lib.plan(shape, mode, DEFAULT_J)
    out = DenseTensor.empty(plan.out_shape, x.layout)
    benchmark.pedantic(
        lambda: lib.ttm(x, u, mode, out=out), rounds=3, iterations=1,
        warmup_rounds=1,
    )
    flops = 2 * DEFAULT_J * SIDE**4
    benchmark.extra_info["gflops"] = round(
        flops / benchmark.stats["min"] / 1e9, 2
    )


def test_fig11_inttm_less_variable_than_baseline():
    """InTTM's per-mode spread stays below the baseline's.

    Timing on a shared 1-core VM is noisy at the small test size, so the
    claim is checked with a 1.3x tolerance and a best-of-two retry: the
    qualitative gap (paper: ~13x TT spread vs flat InTTM; full-size runs
    here: ~3.3x vs ~1.5x) is far larger than the tolerance.
    """
    best_ratio = float("inf")
    for _attempt in range(3):
        rows = sweep(side=32)
        in_rates = [r for _m, r, _tm, _tt in rows]
        tt_rates = [tt for _m, _r, _tm, tt in rows]
        ratio = variability(in_rates) / variability(tt_rates)
        best_ratio = min(best_ratio, ratio)
        if best_ratio < 1.3:
            break
    assert best_ratio < 1.3, f"variability ratio {best_ratio:.2f}"


def main():
    print_header(
        f"Figure 11 - per-mode performance, {SIDE}^4 tensor, J=16 "
        "(InTTM row-major vs TT-TTM col-major, modes paired per footnote 4)"
    )
    rows = sweep()
    table = [
        [f"mode {mode}", f"{r_in:7.2f}", f"tt mode {tt_mode}", f"{r_tt:7.2f}"]
        for mode, r_in, tt_mode, r_tt in rows
    ]
    print_series(
        ["inttm mode", "inttm GFLOP/s", "tt-ttm mode", "tt-ttm GFLOP/s"],
        table,
    )
    in_rates = [r for _m, r, _t, _tt in rows]
    tt_rates = [tt for _m, _r, _t, tt in rows]
    print(
        f"variability (max/min): inttm {variability(in_rates):.2f}x, "
        f"tt-ttm {variability(tt_rates):.2f}x "
        "(paper: TT varies 3..40 GFLOP/s; InTTM roughly flat)"
    )


if __name__ == "__main__":
    main()
