"""Figure 10: InTTM vs Tensor Toolbox vs CTF vs pure GEMM.

Paper claim (the headline result): on mode-2 products over 3rd/4th/5th-
order tensors, INTENSLI's InTTM achieves about **4x** the Tensor
Toolbox's throughput and about **13x** CTF's, and matches (sometimes
exceeds) the pure-GEMM rate measured on a pre-matricized tensor with
transform costs excluded.

Reproduction: the same four bars per (order, size) —

* ``inttm``     — input-adaptive in-place TTM (this library's core);
* ``tt-ttm``    — Algorithm 1 with physical copies (Tensor Toolbox role);
* ``ctf``       — Algorithm 1 plus cyclic redistribution (CTF role);
* ``gemm-only`` — the GEMM of line 4 alone on a pre-unfolded operand.
"""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import (
    BASELINE_SIZE_GRID,
    DEFAULT_J,
    matrix_for,
    print_header,
    print_series,
    time_ttm,
)
from repro.baselines import ttm_copy, ttm_ctf_like
from repro.core import InTensLi
from repro.gemm import gemm
from repro.tensor.dense import DenseTensor
from repro.tensor.generate import random_tensor
from repro.tensor.unfold import unfold

MODE = 1  # paper's mode-2 product


def compare_case(lib: InTensLi, order: int, m: int, j: int = DEFAULT_J):
    shape = (m,) * order
    x = random_tensor(shape, seed=order * 10 + m)
    u = matrix_for(shape, MODE, j)
    plan = lib.plan(shape, MODE, j)
    out = DenseTensor.empty(plan.out_shape, x.layout)
    _, r_inttm = time_ttm(lambda: lib.ttm(x, u, MODE, out=out), shape, j)
    _, r_tt = time_ttm(lambda: ttm_copy(x, u, MODE), shape, j)
    _, r_ctf = time_ttm(lambda: ttm_ctf_like(x, u, MODE), shape, j)
    # GEMM-only: line 4 of Algorithm 1 with the unfolding done beforehand.
    x_mat = unfold(x, MODE)
    y_mat = np.empty((j, x_mat.shape[1]))
    _, r_gemm = time_ttm(
        lambda: gemm(u, x_mat, out=y_mat, kernel="blas"), shape, j
    )
    return {
        "shape": shape,
        "inttm": r_inttm,
        "tt": r_tt,
        "ctf": r_ctf,
        "gemm": r_gemm,
    }


def sweep(lib, orders=(3, 4, 5)):
    return [
        compare_case(lib, order, m)
        for order in orders
        for m in BASELINE_SIZE_GRID[order]
    ]


# -- pytest-benchmark targets --------------------------------------------------


@pytest.mark.parametrize("method", ["inttm", "tt-ttm", "ctf", "gemm-only"])
def test_fig10_methods_order3(benchmark, method):
    lib = InTensLi()
    shape = (96, 96, 96)
    x = random_tensor(shape, seed=0)
    u = matrix_for(shape, MODE)
    if method == "inttm":
        plan = lib.plan(shape, MODE, DEFAULT_J)
        out = DenseTensor.empty(plan.out_shape, x.layout)
        fn = lambda: lib.ttm(x, u, MODE, out=out)
    elif method == "tt-ttm":
        fn = lambda: ttm_copy(x, u, MODE)
    elif method == "ctf":
        fn = lambda: ttm_ctf_like(x, u, MODE)
    else:
        x_mat = unfold(x, MODE)
        y_mat = np.empty((DEFAULT_J, x_mat.shape[1]))
        fn = lambda: gemm(u, x_mat, out=y_mat, kernel="blas")
    benchmark.pedantic(fn, rounds=3, iterations=1, warmup_rounds=1)
    flops = 2 * DEFAULT_J * 96**3
    benchmark.extra_info["gflops"] = round(
        flops / benchmark.stats["min"] / 1e9, 2
    )


def test_fig10_ordering_holds():
    """The paper's ordering: InTTM > TT-TTM > CTF, InTTM ~ GEMM-only."""
    lib = InTensLi()
    case = compare_case(lib, 3, 96)
    assert case["inttm"] > case["tt"] > case["ctf"]
    assert case["inttm"] > 0.6 * case["gemm"]


def main():
    print_header(
        "Figure 10 - InTTM vs TT-TTM vs CTF vs pure GEMM "
        "(mode-2 product, J=16)"
    )
    lib = InTensLi()
    rows = []
    speedups_tt, speedups_ctf = [], []
    for case in sweep(lib):
        s_tt = case["inttm"] / case["tt"]
        s_ctf = case["inttm"] / case["ctf"]
        speedups_tt.append(s_tt)
        speedups_ctf.append(s_ctf)
        rows.append(
            [
                "x".join(map(str, case["shape"])),
                f"{case['inttm']:7.2f}",
                f"{case['tt']:7.2f}",
                f"{case['ctf']:7.2f}",
                f"{case['gemm']:7.2f}",
                f"{s_tt:5.2f}x",
                f"{s_ctf:5.2f}x",
            ]
        )
    print_series(
        ["shape", "inttm", "tt-ttm", "ctf", "gemm-only",
         "vs tt", "vs ctf"],
        rows,
    )
    import statistics

    print(
        f"geometric-mean speedups: vs Tensor Toolbox "
        f"{statistics.geometric_mean(speedups_tt):.2f}x (paper ~4x), "
        f"vs CTF {statistics.geometric_mean(speedups_ctf):.2f}x (paper ~13x)"
    )


if __name__ == "__main__":
    main()
