"""Figure 8 + §4.3.1: the peaked MM curve and the MSTH/MLTH thresholds.

Paper claim: with m = 16 and k = 512 fixed, GEMM throughput rises with
n, peaks, then falls; drawing a horizontal line at kappa = 0.8 of the
peak and taking the working-set sizes of the two just-below-the-line
points (averaged over k) yields the thresholds MSTH ~= 1.04 MB and
MLTH ~= 7.04 MB on their Core i7.

Reproduction: measure the same n-sweep on this host, derive MSTH/MLTH
with the identical procedure, and also derive them from the deterministic
Core i7 roofline profile for comparison with the paper's values.
"""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import print_header, print_series
from repro.analysis import CORE_I7_4770K
from repro.core.partition import derive_thresholds
from repro.gemm import measure_profile, synthetic_profile
from repro.util.formatting import format_bytes

M = 16
K_VALUES = (256, 512, 1024)
N_EXPONENTS = tuple(range(4, 14))


def measured_profile(min_seconds=0.01):
    shapes = [(M, k, 2**ne) for k in K_VALUES for ne in N_EXPONENTS]
    return measure_profile(shapes, threads=(1,), min_seconds=min_seconds)


def model_profile():
    shapes = [(M, k, 2**ne) for k in K_VALUES for ne in N_EXPONENTS]
    return synthetic_profile(shapes, CORE_I7_4770K, threads=(4,))


# -- pytest-benchmark targets --------------------------------------------------


def test_fig08_model_thresholds_match_paper_scale():
    """The Core i7 model yields thresholds within the paper's ballpark."""
    t = derive_thresholds(model_profile(), M, threads=4)
    # Paper: MSTH = 1.04 MB, MLTH = 7.04 MB; accept the right order of
    # magnitude (the model is qualitative).
    assert 64 * 1024 < t.msth_bytes < 8 * 1024**2
    assert 1024**2 < t.mlth_bytes < 64 * 1024**2
    assert t.msth_bytes < t.mlth_bytes


@pytest.mark.parametrize("k", [512])
def test_fig08_n_sweep_kernel(benchmark, k):
    rng = np.random.default_rng(0)
    n = 2**10
    a = rng.standard_normal((M, k))
    b = rng.standard_normal((k, n))
    out = np.empty((M, n))
    benchmark.pedantic(
        lambda: np.matmul(a, b, out=out), rounds=5, iterations=2,
        warmup_rounds=1,
    )
    profile = measured_profile(min_seconds=0.005)
    t = derive_thresholds(profile, M, threads=1)
    benchmark.extra_info["msth"] = format_bytes(t.msth_bytes)
    benchmark.extra_info["mlth"] = format_bytes(t.mlth_bytes)


def main():
    print_header(
        "Figure 8 - MM GFLOP/s vs n (m=16), and MSTH/MLTH derivation"
    )
    profile = measured_profile()
    for k in K_VALUES:
        series = profile.series(m=M, k=k, threads=1)
        rows = [
            [f"2^{int(np.log2(p.n))}", f"{p.gflops:6.1f}",
             format_bytes(p.working_set_bytes)]
            for p in series
        ]
        print(f"k = {k}:")
        print_series(["n", "GFLOP/s", "working set"], rows)
    measured = derive_thresholds(profile, M, threads=1)
    print(
        f"measured thresholds: MSTH = {format_bytes(measured.msth_bytes)}, "
        f"MLTH = {format_bytes(measured.mlth_bytes)} (kappa = 0.8)"
    )
    model = derive_thresholds(model_profile(), M, threads=4)
    print(
        f"Core i7 roofline model: MSTH = {format_bytes(model.msth_bytes)}, "
        f"MLTH = {format_bytes(model.mlth_bytes)}"
    )
    print("paper (Core i7, measured): MSTH = 1.04 MiB, MLTH = 7.04 MiB")


if __name__ == "__main__":
    main()
