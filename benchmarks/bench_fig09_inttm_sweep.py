"""Figure 9: InTTM throughput across orders and sizes.

Paper claim: INTENSLI-generated InTTM sustains GEMM-like rates for a
mode-2 product with J = 16 across 3rd/4th/5th-order tensors, with
performance roughly flat or gently decreasing as size/order grow (on
the Core i7; higher orders fare relatively better where the inner GEMM
weakens, thanks to coarse-grained loop parallelism).

Reproduction: the same sweep (sizes scaled to this container), reporting
GFLOP/s of the input-adaptively planned, generated InTTM per (order, m).
"""

from __future__ import annotations

import os
import sys

import pytest

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import (
    DEFAULT_J,
    ORDER_SIZE_GRID,
    matrix_for,
    print_header,
    print_series,
    time_ttm,
)
from repro.core import InTensLi
from repro.tensor.dense import DenseTensor
from repro.tensor.generate import random_tensor

MODE = 1  # paper's mode-2 product


def sweep(lib: InTensLi, orders=(3, 4, 5)):
    rows = []
    for order in orders:
        for m in ORDER_SIZE_GRID[order]:
            shape = (m,) * order
            x = random_tensor(shape, seed=order * 100 + m)
            u = matrix_for(shape, MODE)
            out = DenseTensor.empty(
                lib.plan(shape, MODE, DEFAULT_J).out_shape, x.layout
            )
            _, rate = time_ttm(
                lambda: lib.ttm(x, u, MODE, out=out), shape, DEFAULT_J
            )
            plan = lib.plan(shape, MODE, DEFAULT_J)
            rows.append((order, m, rate, plan))
    return rows


# -- pytest-benchmark targets --------------------------------------------------


@pytest.mark.parametrize("order", [3, 4, 5])
def test_fig09_inttm_orders(benchmark, order):
    lib = InTensLi()
    m = ORDER_SIZE_GRID[order][-2]
    shape = (m,) * order
    x = random_tensor(shape, seed=order)
    u = matrix_for(shape, MODE)
    plan = lib.plan(shape, MODE, DEFAULT_J)
    out = DenseTensor.empty(plan.out_shape, x.layout)
    benchmark.pedantic(
        lambda: lib.ttm(x, u, MODE, out=out), rounds=3, iterations=1,
        warmup_rounds=1,
    )
    flops = 2 * DEFAULT_J * m**order
    benchmark.extra_info["gflops"] = round(
        flops / benchmark.stats["min"] / 1e9, 2
    )
    benchmark.extra_info["plan"] = plan.describe()


def test_fig09_rates_are_gemm_like():
    """InTTM sustains a large fraction of this host's skinny-GEMM rate."""
    lib = InTensLi()
    shape = (96, 96, 96)
    x = random_tensor(shape, seed=5)
    u = matrix_for(shape, MODE)
    _, rate = time_ttm(lambda: lib.ttm(x, u, MODE), shape, DEFAULT_J)
    assert rate > 5.0, f"only {rate:.1f} GFLOP/s"


def main():
    print_header(
        "Figure 9 - InTensLi-generated InTTM, mode-2 product, J=16"
    )
    from repro.analysis import CORE_I7_4770K, XEON_E7_4820
    from repro.core import predict_gflops
    from repro.gemm.bench import default_shape_grid, synthetic_profile

    lib = InTensLi()
    platforms = {
        "i7 (model)": InTensLi(
            profile=synthetic_profile(
                default_shape_grid(), CORE_I7_4770K, threads=(1, 4)
            ),
            max_threads=4,
        ),
        "Xeon (model)": InTensLi(
            profile=synthetic_profile(
                default_shape_grid(), XEON_E7_4820, threads=(1, 32)
            ),
            max_threads=32,
        ),
    }
    rows = []
    for order, m, rate, plan in sweep(lib):
        projected = []
        for plib in platforms.values():
            pplan = plib.plan(plan.shape, MODE, DEFAULT_J)
            projected.append(f"{predict_gflops(pplan, plib.profile):7.1f}")
        rows.append(
            [order, f"{m}^{order}", f"{rate:8.2f}",
             f"d={plan.degree} P_L={plan.loop_threads} "
             f"P_C={plan.kernel_threads}", *projected]
        )
    print_series(
        ["order", "size", "GFLOP/s (host)", "chosen plan",
         *platforms.keys()],
        rows,
    )
    print(
        "Paper (Core i7, measured): >40 GFLOP/s at order 3, "
        "flat-to-decreasing with order/size; the model columns project "
        "the same inputs onto the paper's two platforms."
    )


if __name__ == "__main__":
    main()
