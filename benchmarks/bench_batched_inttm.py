"""Batched vs. per-iteration InTTM: the interpreter-overhead ablation.

The batched execution engine fuses the innermost stackable run of loop
modes into one rank-3 ``np.matmul`` per outer index, so a plan that used
to pay one interpreted GEMM dispatch per ``M_L`` iteration pays one per
*outer* iteration instead.  This benchmark measures that reduction
directly: for each Figure-9 sweep shape (plus small-``I_n``/many-loop
shapes where interpreter overhead dominates) it times the same plan with
batching on and off and reports the GEMM-dispatch counts from the
hot-path counters — the speedup should track the dispatch reduction in
the overhead-dominated regime and approach 1x where the kernels are
large enough to hide the interpreter.

Run as a script for the full table, or under pytest for a smoke check:
``python benchmarks/bench_batched_inttm.py [--quick]``.
"""

from __future__ import annotations

import os
import sys

import pytest

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import (
    DEFAULT_J,
    ORDER_SIZE_GRID,
    matrix_for,
    print_header,
    print_series,
    run_main,
    time_ttm,
)
from repro.core.inttm import default_plan, ttm_inplace
from repro.perf.profiler import track_hot_path
from repro.tensor.dense import DenseTensor
from repro.tensor.generate import random_tensor

MODE = 1  # the paper's mode-2 product

#: Shapes where the inner kernel is small and M_L is large — the regime
#: the batched engine exists for.  (shape, mode, J, degree)
OVERHEAD_CASES = [
    ((32, 32, 32, 8), 1, 8, 1),
    ((24, 24, 24, 24), 2, 8, 1),
    ((16, 16, 16, 16, 4), 2, 4, 1),
    ((64, 8, 64, 4), 1, 4, 1),
]

QUICK_CASES = [
    ((8, 8, 8, 4), 1, 4, 1),
    ((6, 6, 6, 6), 2, 4, 1),
]


def measure_pair(shape, mode, j, degree=None):
    """(row) timing + dispatch counts for batched vs. looped execution."""
    x = random_tensor(shape, seed=sum(shape))
    u = matrix_for(shape, mode, j=j)
    batched = default_plan(shape, mode, j, x.layout, degree=degree)
    looped = default_plan(shape, mode, j, x.layout, degree=degree,
                          batched=False)
    out = DenseTensor.empty(batched.out_shape, x.layout)

    ttm_inplace(x, u, plan=looped, out=out)  # warm both paths up
    ttm_inplace(x, u, plan=batched, out=out)
    secs_l, rate_l = time_ttm(
        lambda: ttm_inplace(x, u, plan=looped, out=out), shape, j
    )
    secs_b, rate_b = time_ttm(
        lambda: ttm_inplace(x, u, plan=batched, out=out), shape, j
    )
    with track_hot_path() as c_l:
        ttm_inplace(x, u, plan=looped, out=out)
    with track_hot_path() as c_b:
        ttm_inplace(x, u, plan=batched, out=out)
    return {
        "shape": "x".join(str(s) for s in shape),
        "mode": mode,
        "j": j,
        "batch": batched.batch_extent,
        "dispatch_looped": c_l.dispatches,
        "dispatch_batched": c_b.dispatches,
        "gflops_looped": rate_l,
        "gflops_batched": rate_b,
        "speedup": secs_l / secs_b if secs_b > 0 else float("inf"),
    }


def sweep(cases):
    return [measure_pair(*case) for case in cases]


def fig9_cases(orders=(3, 4, 5)):
    """The Figure-9 sweep shapes, run at a modest fixed degree so a loop
    nest actually exists (the maximal merge would leave nothing to batch)."""
    cases = []
    for order in orders:
        for m in ORDER_SIZE_GRID[order][:3]:
            cases.append(((m,) * order, MODE, DEFAULT_J, 1))
    return cases


def report(rows, title):
    print_series(
        ["shape", "mode", "J", "B", "disp looped", "disp batched",
         "GF/s looped", "GF/s batched", "speedup"],
        [
            (
                r["shape"], r["mode"], r["j"], r["batch"],
                r["dispatch_looped"], r["dispatch_batched"],
                f"{r['gflops_looped']:.2f}", f"{r['gflops_batched']:.2f}",
                f"{r['speedup']:.2f}x",
            )
            for r in rows
        ],
        export_name=title,
    )


# -- pytest targets ------------------------------------------------------------


@pytest.mark.parametrize("case", QUICK_CASES)
def test_batched_smoke(case):
    """Tiny-shape smoke: batching reduces dispatches and stays correct."""
    row = measure_pair(*case)
    assert row["dispatch_batched"] < row["dispatch_looped"]
    assert row["dispatch_looped"] == row["dispatch_batched"] * row["batch"]


# -- script entry --------------------------------------------------------------


def main() -> int:
    quick = "--quick" in sys.argv
    print_header(
        "Batched InTTM ablation: fused batch runs vs. per-iteration dispatch"
    )
    if quick:
        print("[quick] tiny smoke shapes only\n")
        report(sweep(QUICK_CASES), "batched_inttm_quick")
        return 0
    print("Interpreter-overhead regime (small kernels, large M_L):\n")
    report(sweep(OVERHEAD_CASES), "batched_inttm_overhead")
    print("Figure-9 sweep shapes (degree 1):\n")
    report(sweep(fig9_cases()), "batched_inttm_fig9")
    return 0


if __name__ == "__main__":
    run_main(main)
