"""Plan-acquisition latency: estimator vs. persistent autotune cache.

The estimator re-derives thresholds and walks the candidate space on
every call; under real traffic the same signatures recur, so
:mod:`repro.autotune` memoizes the decision on disk per machine
fingerprint.  This benchmark quantifies what the cache buys: per-call
plan-acquisition latency through (a) a fresh estimation, (b) a warm
cache hit, and (c) a cold start that loads the store file from disk —
the deployment paths of a serving process.

Run as a script for the full table, or under pytest for a smoke check:
``python benchmarks/bench_autotune_cache.py [--quick]``.
"""

from __future__ import annotations

import os
import sys
import tempfile


if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import DEFAULT_J, print_header, print_series, run_main
from repro.autotune import AutotuneSession, PlanCache
from repro.core import InTensLi
from repro.perf.profiler import track_hot_path
from repro.perf.timing import time_callable

MODE = 1

SIGNATURES = [
    ((96, 96, 96), MODE, DEFAULT_J),
    ((20, 20, 20, 20), MODE, DEFAULT_J),
    ((10, 10, 10, 10, 10), MODE, DEFAULT_J),
    ((8, 8, 8, 8, 8, 8), MODE, DEFAULT_J),
]

QUICK_SIGNATURES = SIGNATURES[:2]


def measure_signature(session, shape, mode, j):
    """(row) per-call plan latency: estimation vs. warm cache hit."""
    estimate = lambda: session.lib.estimator.estimate(shape, mode, j)
    est_s = time_callable(estimate, min_repeats=3, min_seconds=0.01)
    session.plan(shape, mode, j)  # seed the cache
    hit_s = time_callable(
        lambda: session.plan(shape, mode, j), min_repeats=5, min_seconds=0.01
    )
    return {
        "shape": "x".join(str(s) for s in shape),
        "estimate_us": est_s * 1e6,
        "hit_us": hit_s * 1e6,
        "speedup": est_s / hit_s if hit_s > 0 else float("inf"),
    }


def measure_cold_start(path):
    """Seconds to open a populated store (per-process startup cost)."""
    return time_callable(
        lambda: PlanCache(path=path, autosave=False),
        min_repeats=3,
        min_seconds=0.01,
    )


def report(signatures):
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "plans.json")
        session = AutotuneSession(InTensLi(), path=path)
        rows = [measure_signature(session, *sig) for sig in signatures]
        cold_s = measure_cold_start(path)
    print_series(
        ["shape", "estimate (us)", "cache hit (us)", "speedup"],
        [
            (
                r["shape"],
                f"{r['estimate_us']:.1f}",
                f"{r['hit_us']:.1f}",
                f"{r['speedup']:.1f}x",
            )
            for r in rows
        ],
        export_name="autotune_cache_latency",
    )
    print(
        f"cold start: loading {len(signatures)} cached plans from disk took "
        f"{cold_s * 1e6:.0f} us (amortized over the whole process)\n"
    )
    return rows


# -- pytest targets ------------------------------------------------------------


def test_warm_hit_skips_estimator(tmp_path):
    """The cached path must do zero estimator work (the cache's reason)."""
    session = AutotuneSession(InTensLi(), path=str(tmp_path / "plans.json"))
    shape, mode, j = QUICK_SIGNATURES[0]
    session.plan(shape, mode, j)
    with track_hot_path() as counters:
        session.plan(shape, mode, j)
    assert counters.estimator_runs == 0
    assert counters.plan_cache_hits == 1


def test_hit_is_faster_than_estimation(tmp_path):
    """Qualitative claim: a cache hit beats re-estimating (loose bound:
    the container jitters, but dict lookup vs. threshold derivation is
    orders of magnitude, so 2x is a safe floor)."""
    session = AutotuneSession(InTensLi(), path=str(tmp_path / "plans.json"))
    row = measure_signature(session, *QUICK_SIGNATURES[1])
    assert row["hit_us"] * 2 < row["estimate_us"]


def test_plan_hit_benchmark(benchmark, tmp_path):
    session = AutotuneSession(InTensLi(), path=str(tmp_path / "plans.json"))
    shape, mode, j = QUICK_SIGNATURES[0]
    session.plan(shape, mode, j)
    plan = benchmark(session.plan, shape, mode, j)
    benchmark.extra_info["cached_entries"] = len(session.cache)
    assert plan.shape == shape


# -- script entry --------------------------------------------------------------


def main() -> int:
    quick = "--quick" in sys.argv
    print_header(
        "Autotune plan cache: per-call plan latency, estimator vs. cache"
    )
    if quick:
        print("[quick] reduced signature set\n")
        report(QUICK_SIGNATURES)
        return 0
    report(SIGNATURES)
    return 0


if __name__ == "__main__":
    run_main(main)
