"""Dtype-faithful execution: the multi-dtype kernel layer, end to end.

The contract under test: the element type of ``X`` flows through plan,
estimator, kernel dispatch, autotune cache, and output allocation with
**no silent upcast and no hidden copy**.  float32 inputs produce float32
outputs through float32 arithmetic; float16 (which real BLAS does not
expose) routes to the blocked kernel with a one-time warning; mixing
float widths is an error, never a conversion.
"""

import dataclasses
import json
import warnings

import numpy as np
import pytest

from repro.autotune.cache import PlanCache, PlanKey
from repro.autotune.store import PlanStore
from repro.core.estimator import ParameterEstimator
from repro.core.intensli import InTensLi
from repro.core.inttm import default_plan, ttm_inplace
from repro.core.partition import kernel_working_set_bytes
from repro.gemm import interface as gemm_interface
from repro.gemm.interface import (
    FALLBACK_KERNEL,
    KERNEL_DTYPES,
    blas_dtype_legal,
    kernel_supports,
    resolve_kernel,
)
from repro.obs import tracing
from repro.tensor.dense import DenseTensor
from repro.tensor.layout import COL_MAJOR, ROW_MAJOR
from repro.testing import DTYPE_TOLERANCES
from repro.util.dtypes import (
    DEFAULT_DTYPE,
    SUPPORTED_DTYPES,
    canonical_dtype,
    is_supported_dtype,
    result_dtype,
)
from repro.util.errors import DtypeError, PlanError
from tests.helpers import ttm_oracle

DTYPES = [np.dtype(name) for name in SUPPORTED_DTYPES]


def _case(shape, mode, j, layout=ROW_MAJOR, dtype="float64", seed=0):
    rng = np.random.default_rng(seed)
    x = DenseTensor(rng.standard_normal(shape), layout, dtype=dtype)
    u = rng.standard_normal((j, shape[mode])).astype(dtype)
    return x, u


class TestDtypeHelpers:
    def test_canonical_accepts_supported(self):
        for name in SUPPORTED_DTYPES:
            assert canonical_dtype(name) == np.dtype(name)

    def test_canonical_rejects_unsupported(self):
        for bad in ("int64", "complex128", "bool"):
            with pytest.raises(DtypeError):
                canonical_dtype(bad)

    def test_is_supported(self):
        assert is_supported_dtype(np.float32)
        assert not is_supported_dtype(np.int32)

    def test_result_dtype_preserves_float_width(self):
        a = np.ones((2, 2), dtype=np.float32)
        assert result_dtype(a, a) == np.float32

    def test_result_dtype_floors_non_float_at_default(self):
        a = np.ones((2, 2), dtype=np.int64)
        assert result_dtype(a, a) == DEFAULT_DTYPE


class TestDenseTensorDtype:
    def test_supported_float_preserved_without_copy(self):
        arr = np.ones((3, 4), dtype=np.float32)
        t = DenseTensor(arr)
        assert t.dtype == np.float32
        assert np.shares_memory(t.data, arr)

    def test_non_float_coerced_to_default(self):
        t = DenseTensor(np.arange(6).reshape(2, 3))
        assert t.dtype == DEFAULT_DTYPE

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_constructors_honor_dtype(self, dtype):
        for ctor in (DenseTensor.zeros, DenseTensor.empty):
            assert ctor((2, 3), dtype=dtype).dtype == dtype
        assert DenseTensor.random((2, 3), seed=0, dtype=dtype).dtype == dtype


class TestGemmKernelDtypes:
    """Every registered 2-D kernel preserves the operand dtype."""

    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("kernel", ["reference", "blocked", "threaded"])
    def test_kernels_preserve_dtype(self, kernel, dtype):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((5, 6)).astype(dtype)
        b = rng.standard_normal((6, 4)).astype(dtype)
        out = gemm_interface.gemm(a, b, kernel=kernel)
        assert out.dtype == dtype
        rtol, atol = DTYPE_TOLERANCES[dtype.name]
        assert np.allclose(out.astype(np.float64), a.astype(np.float64)
                           @ b.astype(np.float64), rtol=rtol, atol=atol)

    def test_auto_dispatch_preserves_float32(self):
        a = np.ones((4, 4), dtype=np.float32)
        assert gemm_interface.gemm(a, a).dtype == np.float32

    def test_capability_map_shape(self):
        assert set(KERNEL_DTYPES) >= {"blas", "blocked", "reference",
                                      "threaded"}
        assert not kernel_supports("blas", "float16")
        assert kernel_supports(FALLBACK_KERNEL, "float16")
        assert not blas_dtype_legal(np.float16)
        assert blas_dtype_legal(np.float32)


class TestCapabilityFallback:
    def setup_method(self):
        gemm_interface._FALLBACKS_WARNED.clear()

    def test_unsupported_dtype_warns_once_and_falls_back(self):
        with warnings.catch_warnings(record=True) as first:
            warnings.simplefilter("always")
            impl = resolve_kernel("blas", "float16")
        assert impl is resolve_kernel(FALLBACK_KERNEL)
        assert len(first) == 1
        assert issubclass(first[0].category, RuntimeWarning)
        assert "float16" in str(first[0].message)
        with warnings.catch_warnings(record=True) as second:
            warnings.simplefilter("always")
            resolve_kernel("blas", "float16")
        assert not second  # one-time per (kernel, dtype)

    def test_supported_dtype_resolves_silently(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            resolve_kernel("blas", "float64")
            resolve_kernel("blocked", "float16")


class TestNoSilentUpcast:
    """Regression for the float64 upcast-and-copy in ``_check_inputs``."""

    def test_float32_ttm_preserves_dtype(self):
        x, u = _case((4, 5, 6), 1, 3, dtype="float32")
        y = ttm_inplace(x, u, 1)
        assert y.data.dtype == x.data.dtype == np.float32

    def test_provided_out_is_written_in_place(self):
        x, u = _case((4, 5, 6), 1, 3, dtype="float32")
        out = DenseTensor.empty((4, 3, 6), dtype="float32")
        y = ttm_inplace(x, u, 1, out=out)
        assert y is out
        assert np.shares_memory(y.data, out.data)

    def test_wrapping_float32_never_copies_x(self):
        arr = np.random.default_rng(0).standard_normal((4, 5, 6))
        arr = arr.astype(np.float32)
        x = DenseTensor(arr)
        ttm_inplace(x, np.ones((3, 5), dtype=np.float32), 1)
        assert np.shares_memory(x.data, arr)  # never silently rematerialized

    def test_mixed_float_widths_raise(self):
        x, _ = _case((4, 5, 6), 1, 3, dtype="float32")
        u64 = np.ones((3, 5), dtype=np.float64)
        with pytest.raises(DtypeError):
            ttm_inplace(x, u64, 1)

    def test_wrong_dtype_out_raises(self):
        x, u = _case((4, 5, 6), 1, 3, dtype="float32")
        out = DenseTensor.empty((4, 3, 6), dtype="float64")
        with pytest.raises(DtypeError):
            ttm_inplace(x, u, 1, out=out)

    def test_x_vs_plan_dtype_mismatch_raises(self):
        x, u = _case((4, 5, 6), 1, 3, dtype="float32")
        plan = default_plan((4, 5, 6), 1, 3, ROW_MAJOR, dtype="float64")
        with pytest.raises(DtypeError):
            ttm_inplace(x, u, plan=plan)

    def test_non_float_u_is_cast_to_plan_dtype(self):
        # Ints and Python lists carry no float-width intent; casting the
        # tiny J x I_n matrix to the plan dtype is the ergonomic choice.
        x, _ = _case((4, 5, 6), 1, 3, dtype="float32")
        y = ttm_inplace(x, np.ones((3, 5), dtype=np.int64), 1)
        assert y.data.dtype == np.float32

    def test_strided_u_accepted(self):
        x, _ = _case((4, 5, 6), 1, 3, dtype="float32")
        base = np.random.default_rng(1).standard_normal((6, 10))
        u = base.astype(np.float32)[::2, ::2]  # non-contiguous view
        assert not u.flags["C_CONTIGUOUS"]
        y = ttm_inplace(x, u, 1)
        rtol, atol = DTYPE_TOLERANCES["float32"]
        expect = ttm_oracle(x.data.astype(np.float64),
                            u.astype(np.float64), 1)
        assert np.allclose(y.data.astype(np.float64), expect,
                           rtol=rtol, atol=atol)


class TestPlanDtype:
    def test_plan_carries_dtype(self):
        plan = default_plan((4, 5, 6), 1, 3, ROW_MAJOR, dtype="float32")
        assert plan.dtype == "float32"
        assert plan.np_dtype == np.float32
        assert plan.itemsize == 4
        assert "dtype=float32" in plan.describe()

    def test_plan_rejects_unsupported_dtype(self):
        with pytest.raises(DtypeError):
            default_plan((4, 5, 6), 1, 3, ROW_MAJOR, dtype="int32")
        base = default_plan((4, 5, 6), 1, 3, ROW_MAJOR)
        with pytest.raises(PlanError):
            dataclasses.replace(base, dtype="int32")

    def test_cache_key_separates_dtypes(self):
        p64 = default_plan((4, 5, 6), 1, 3, ROW_MAJOR)
        p32 = default_plan((4, 5, 6), 1, 3, ROW_MAJOR, dtype="float32")
        assert p64.cache_key() != p32.cache_key()

    def test_working_set_scales_with_itemsize(self):
        plan64 = default_plan((8, 9, 10), 1, 4, ROW_MAJOR)
        plan32 = dataclasses.replace(plan64, dtype="float32")
        plan16 = dataclasses.replace(plan64, dtype="float16")
        assert plan64.kernel_working_set_bytes == 2 * plan32.kernel_working_set_bytes
        assert plan32.kernel_working_set_bytes == 2 * plan16.kernel_working_set_bytes

    def test_partition_working_set_itemsize(self):
        ws8 = kernel_working_set_bytes((8, 9, 10), 1, 4, (2,))
        ws4 = kernel_working_set_bytes((8, 9, 10), 1, 4, (2,), itemsize=4)
        assert ws8 == 2 * ws4


class TestEstimatorDtype:
    def test_itemsize_shifts_threshold_window(self):
        # (96, 96, 96) mode 0: the float64 working set overshoots the
        # MSTH/MLTH window at degree 2, the float32 one (half the bytes)
        # fits — so the estimator merges one more mode.
        est = ParameterEstimator(max_threads=1)
        p64 = est.estimate((96, 96, 96), 0, 16, dtype="float64")
        p32 = est.estimate((96, 96, 96), 0, 16, dtype="float32")
        assert p32.degree > p64.degree

    def test_itemsize_shifts_pth_thread_split(self):
        est = ParameterEstimator(max_threads=4)
        p64 = est.estimate((96, 96, 96), 0, 16, dtype="float64")
        p32 = est.estimate((96, 96, 96), 0, 16, dtype="float32")
        split64 = (p64.loop_threads, p64.kernel_threads)
        split32 = (p32.loop_threads, p32.kernel_threads)
        assert split64 != split32

    def test_float16_routes_to_blocked_up_front(self):
        est = ParameterEstimator(max_threads=1)
        plan = est.estimate((6, 7, 8), 1, 4, dtype="float16")
        assert plan.kernel == FALLBACK_KERNEL

    def test_default_dtype_is_float64(self):
        est = ParameterEstimator(max_threads=1)
        assert est.estimate((6, 7, 8), 1, 4).dtype == "float64"


class TestAutotuneCacheDtype:
    def test_plan_key_encodes_dtype(self):
        key = PlanKey.make((6, 7, 8), 1, 4, ROW_MAJOR, 2, "float32")
        assert key.encode() == "6x7x8|m1|J4|ROW_MAJOR|T2|float32"
        assert PlanKey.decode(key.encode()) == key

    def test_distinct_keys_per_dtype(self):
        k64 = PlanKey.make((6, 7, 8), 1, 4, ROW_MAJOR, 2, "float64")
        k32 = PlanKey.make((6, 7, 8), 1, 4, ROW_MAJOR, 2, "float32")
        assert k64 != k32

    def test_malformed_dtype_token_raises_plan_error(self):
        with pytest.raises(PlanError):
            PlanKey.decode("6x7x8|m1|J4|ROW_MAJOR|T2|int32")

    def test_cache_entries_never_collide_across_dtypes(self, tmp_path):
        cache = PlanCache(path=str(tmp_path / "plans.json"),
                          fingerprint="test")
        p64 = default_plan((6, 7, 8), 1, 4, ROW_MAJOR)
        p32 = default_plan((6, 7, 8), 1, 4, ROW_MAJOR, dtype="float32")
        cache.put_plan((6, 7, 8), 1, 4, ROW_MAJOR, 1, p64, dtype="float64")
        cache.put_plan((6, 7, 8), 1, 4, ROW_MAJOR, 1, p32, dtype="float32")
        assert len(cache) == 2
        got64 = cache.get_plan((6, 7, 8), 1, 4, ROW_MAJOR, 1, dtype="float64")
        got32 = cache.get_plan((6, 7, 8), 1, 4, ROW_MAJOR, 1, dtype="float32")
        assert got64.dtype == "float64"
        assert got32.dtype == "float32"

    def test_pre_dtype_store_invalidates_gracefully(self, tmp_path):
        # A schema-2 (pre-dtype) cache file must degrade to an empty
        # cache — one logged invalidation — never a SchemaMismatch crash.
        path = tmp_path / "plans.json"
        plan = default_plan((6, 7, 8), 1, 4, ROW_MAJOR)
        from repro.core.serialize import plan_to_dict

        payload = plan_to_dict(plan)
        payload.pop("dtype")  # schema-2 plans predate the field
        path.write_text(json.dumps({
            "schema": 2,
            "fingerprint": "test",
            "entries": {
                "6x7x8|m1|J4|ROW_MAJOR|T1": {
                    "plan": payload, "source": "estimator",
                    "seconds": None, "trials": {},
                },
            },
        }))
        cache = PlanCache(path=str(path), fingerprint="test")
        assert len(cache) == 0
        assert cache.stats.invalidations == 1
        # The cache is usable immediately after invalidation.
        cache.put_plan((6, 7, 8), 1, 4, ROW_MAJOR, 1, plan)
        assert len(PlanCache(path=str(path), fingerprint="test")) == 1

    def test_v2_keys_without_dtype_are_rejected(self):
        # Even if a 5-token key sneaks past the schema gate, decoding
        # refuses it rather than guessing a dtype.
        with pytest.raises(PlanError):
            PlanKey.decode("6x7x8|m1|J4|ROW_MAJOR|T1")

    def test_store_roundtrips_dtype(self, tmp_path):
        path = str(tmp_path / "plans.json")
        store = PlanStore(path, "test")
        key = PlanKey.make((6, 7, 8), 1, 4, ROW_MAJOR, 1, "float32")
        plan = default_plan((6, 7, 8), 1, 4, ROW_MAJOR, dtype="float32")
        from repro.autotune.cache import CacheEntry

        store.save({key.encode(): CacheEntry(plan=plan).to_dict()})
        loaded = store.load()
        assert key.encode() in loaded
        assert loaded[key.encode()]["plan"]["dtype"] == "float32"


class TestEndToEndDtype:
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("executor", ["generated", "interpreted"])
    def test_intensli_matches_oracle_per_dtype(self, executor, dtype):
        lib = InTensLi(executor=executor)
        rtol, atol = DTYPE_TOLERANCES[dtype.name]
        for layout in (ROW_MAJOR, COL_MAJOR):
            x, u = _case((5, 6, 7), 1, 4, layout, dtype=dtype.name)
            y = lib.ttm(x, u, 1)
            assert y.dtype == dtype
            expect = ttm_oracle(x.data.astype(np.float64),
                                u.astype(np.float64), 1)
            assert np.allclose(y.data.astype(np.float64), expect,
                               rtol=rtol, atol=atol)

    def test_per_iteration_plan_matches_batched_float32(self):
        x, u = _case((4, 5, 6, 3), 2, 4, dtype="float32")
        batched = default_plan((4, 5, 6, 3), 2, 4, ROW_MAJOR, dtype="float32")
        looped = default_plan((4, 5, 6, 3), 2, 4, ROW_MAJOR, batched=False,
                              dtype="float32")
        yb = ttm_inplace(x, u, plan=batched)
        yl = ttm_inplace(x, u, plan=looped)
        assert yb.dtype == yl.dtype == np.float32
        np.testing.assert_array_equal(yb.data, yl.data)

    def test_spans_record_dtype(self):
        x, u = _case((4, 5, 6), 1, 3, dtype="float32")
        lib = InTensLi(executor="interpreted")
        with tracing() as tracer:
            lib.ttm(x, u, 1)
        spans = {s.name: s for s in tracer.collector.spans()}
        assert spans["ttm"].attrs["dtype"] == "float32"
        assert spans["execute"].attrs["dtype"] == "float32"
        assert spans["gemm-kernel"].attrs["dtype"] == "float32"


class TestZeroExtent:
    CASES = [((0, 4, 5), 1), ((3, 0, 5), 0), ((3, 4, 0), 2),
             ((3, 0, 5), 1), ((0, 0, 3), 2), ((0,), 0), ((4, 0), 1)]

    @pytest.mark.parametrize("shape,mode", CASES)
    def test_empty_outputs_across_executors(self, shape, mode):
        j = 6
        for layout in (ROW_MAJOR, COL_MAJOR):
            x = DenseTensor.random(shape, layout, seed=1)
            u = np.random.default_rng(2).standard_normal((j, shape[mode]))
            expect = tuple(j if i == mode else s
                           for i, s in enumerate(shape))
            for lib in (InTensLi(), InTensLi(executor="interpreted"),
                        InTensLi(max_threads=4)):
                y = lib.ttm(x, u, mode)
                assert y.shape == expect
            plan = default_plan(shape, mode, j, layout, batched=False)
            assert ttm_inplace(x, u, plan=plan).shape == expect

    def test_k_zero_contraction_writes_zeros(self):
        # Contracting an empty mode: the output is nonempty and must be
        # exactly zero, not np.empty garbage.
        for dtype in SUPPORTED_DTYPES:
            x = DenseTensor.random((3, 0, 5), seed=1, dtype=dtype)
            u = np.zeros((6, 0), dtype=dtype)
            y = ttm_inplace(x, u, 1)
            assert y.shape == (3, 6, 5)
            assert y.dtype == np.dtype(dtype)
            assert not np.any(y.data)

    def test_zero_extent_preserves_dtype(self):
        x = DenseTensor.random((0, 4, 5), seed=1, dtype="float32")
        u = np.ones((6, 4), dtype=np.float32)
        y = ttm_inplace(x, u, 1)
        assert y.shape == (0, 6, 5)
        assert y.dtype == np.float32

    def test_loop_threads_exceeding_iterations(self):
        # More loop threads than iterations (including zero iterations)
        # must degrade gracefully, not crash the parfor split.
        x = DenseTensor.random((2, 3, 4), seed=3)
        u = np.random.default_rng(4).standard_normal((5, 3))
        plan = default_plan((2, 3, 4), 1, 5, ROW_MAJOR, batched=False)
        plan = dataclasses.replace(plan, loop_threads=8)
        y = ttm_inplace(x, u, plan=plan)
        expect = ttm_oracle(x.data, u, 1)
        assert np.allclose(y.data, expect)
