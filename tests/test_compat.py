"""Tests for the Tensor Toolbox compatibility layer."""

import numpy as np
import pytest

from repro import compat
from repro.tensor.layout import COL_MAJOR
from repro.util.errors import ShapeError
from tests.helpers import ttm_oracle


@pytest.fixture()
def x3():
    rng = np.random.default_rng(0)
    return compat.tensor(rng.standard_normal((4, 5, 6)))


class TestBasics:
    def test_tensor_is_col_major(self, x3):
        assert x3.layout is COL_MAJOR

    def test_ndims_and_size(self, x3):
        assert compat.ndims(x3) == 3
        assert compat.size(x3) == (4, 5, 6)
        assert compat.size(x3, 2) == 5  # 1-based

    def test_size_mode_validation(self, x3):
        with pytest.raises(ShapeError):
            compat.size(x3, 0)
        with pytest.raises(ShapeError):
            compat.size(x3, 4)

    def test_norm(self, x3):
        assert compat.norm(x3) == pytest.approx(np.linalg.norm(x3.data))

    def test_tenmat_matches_unfold(self, x3):
        from repro.tensor.unfold import unfold

        assert np.array_equal(compat.tenmat(x3, 1), unfold(x3, 0))
        assert np.array_equal(compat.tenmat(x3, 3), unfold(x3, 2))


class TestTtmSingle:
    def test_one_based_mode(self, x3):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((3, 5))
        y = compat.ttm(x3, a, 2)
        assert np.allclose(y.data, ttm_oracle(x3.data, a, 1))

    def test_transpose_flag(self, x3):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((5, 3))  # I_n x J with 't'
        y = compat.ttm(x3, a, 2, "t")
        assert np.allclose(y.data, ttm_oracle(x3.data, a.T, 1))

    def test_missing_mode_raises(self, x3):
        with pytest.raises(ShapeError):
            compat.ttm(x3, np.zeros((2, 4)))

    def test_bad_flag(self, x3):
        with pytest.raises(ShapeError):
            compat.ttm(x3, np.zeros((2, 4)), 1, "x")

    def test_accepts_plain_arrays(self):
        rng = np.random.default_rng(3)
        raw = rng.standard_normal((4, 5))
        a = rng.standard_normal((2, 4))
        y = compat.ttm(raw, a, 1)
        assert np.allclose(y.data, ttm_oracle(raw, a, 0))


class TestTtmChains:
    def oracle_chain(self, x, pairs):
        out = x
        for mode0, u in pairs:
            out = ttm_oracle(out, u, mode0)
        return out

    def test_list_with_modes(self, x3):
        rng = np.random.default_rng(4)
        a1 = rng.standard_normal((2, 4))
        a3 = rng.standard_normal((3, 6))
        y = compat.ttm(x3, [a1, a3], [1, 3])
        assert np.allclose(
            y.data, self.oracle_chain(x3.data, [(0, a1), (2, a3)])
        )

    def test_all_modes_default(self, x3):
        rng = np.random.default_rng(5)
        mats = [rng.standard_normal((2, s)) for s in x3.shape]
        y = compat.ttm(x3, mats)
        assert np.allclose(
            y.data, self.oracle_chain(x3.data, list(enumerate(mats)))
        )

    def test_negative_mode_excludes(self, x3):
        rng = np.random.default_rng(6)
        mats = [rng.standard_normal((2, s)) for s in x3.shape]
        y = compat.ttm(x3, mats, -2)
        assert np.allclose(
            y.data,
            self.oracle_chain(x3.data, [(0, mats[0]), (2, mats[2])]),
        )

    def test_negative_mode_with_reduced_list(self, x3):
        rng = np.random.default_rng(7)
        mats = [
            rng.standard_normal((2, x3.shape[0])),
            rng.standard_normal((2, x3.shape[2])),
        ]
        y = compat.ttm(x3, mats, -2)
        assert np.allclose(
            y.data,
            self.oracle_chain(x3.data, [(0, mats[0]), (2, mats[1])]),
        )

    def test_chain_with_transpose_flag(self, x3):
        rng = np.random.default_rng(8)
        mats = [rng.standard_normal((s, 2)) for s in x3.shape]
        y = compat.ttm(x3, mats, None, "t")
        assert np.allclose(
            y.data,
            self.oracle_chain(
                x3.data, [(m, u.T) for m, u in enumerate(mats)]
            ),
        )

    def test_mismatched_lengths(self, x3):
        with pytest.raises(ShapeError):
            compat.ttm(x3, [np.zeros((2, 4))], [1, 2])


class TestTtv:
    def test_contracts_mode_away(self, x3):
        rng = np.random.default_rng(9)
        v = rng.standard_normal(5)
        y = compat.ttv(x3, v, 2)
        expect = np.einsum("ijk,j->ik", x3.data, v)
        assert y.shape == (4, 6)
        assert np.allclose(y.data, expect)

    def test_scalar_result_for_vector(self):
        v_tensor = compat.tensor(np.arange(4.0))
        result = compat.ttv(v_tensor, np.ones(4), 1)
        assert result == pytest.approx(6.0)

    def test_validation(self, x3):
        with pytest.raises(ShapeError):
            compat.ttv(x3, np.ones((2, 2)), 1)
        with pytest.raises(ShapeError):
            compat.ttv(x3, np.ones(4), 2)
